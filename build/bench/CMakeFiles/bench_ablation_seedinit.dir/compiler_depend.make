# Empty compiler generated dependencies file for bench_ablation_seedinit.
# This may be replaced when dependencies are built.
