file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seedinit.dir/bench_ablation_seedinit.cpp.o"
  "CMakeFiles/bench_ablation_seedinit.dir/bench_ablation_seedinit.cpp.o.d"
  "bench_ablation_seedinit"
  "bench_ablation_seedinit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seedinit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
