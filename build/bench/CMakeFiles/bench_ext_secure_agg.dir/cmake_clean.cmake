file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_secure_agg.dir/bench_ext_secure_agg.cpp.o"
  "CMakeFiles/bench_ext_secure_agg.dir/bench_ext_secure_agg.cpp.o.d"
  "bench_ext_secure_agg"
  "bench_ext_secure_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_secure_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
