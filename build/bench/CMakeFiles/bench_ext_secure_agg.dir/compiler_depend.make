# Empty compiler generated dependencies file for bench_ext_secure_agg.
# This may be replaced when dependencies are built.
