file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_attack.dir/bench_table7_attack.cpp.o"
  "CMakeFiles/bench_table7_attack.dir/bench_table7_attack.cpp.o.d"
  "bench_table7_attack"
  "bench_table7_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
