# Empty compiler generated dependencies file for bench_ext_membership.
# This may be replaced when dependencies are built.
