file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_membership.dir/bench_ext_membership.cpp.o"
  "CMakeFiles/bench_ext_membership.dir/bench_ext_membership.cpp.o.d"
  "bench_ext_membership"
  "bench_ext_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
