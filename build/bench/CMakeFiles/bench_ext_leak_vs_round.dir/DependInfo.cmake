
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_leak_vs_round.cpp" "bench/CMakeFiles/bench_ext_leak_vs_round.dir/bench_ext_leak_vs_round.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_leak_vs_round.dir/bench_ext_leak_vs_round.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/fedcl_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedcl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedcl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedcl_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
