# Empty compiler generated dependencies file for bench_ext_leak_vs_round.
# This may be replaced when dependencies are built.
