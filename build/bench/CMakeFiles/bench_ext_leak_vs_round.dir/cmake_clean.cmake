file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_leak_vs_round.dir/bench_ext_leak_vs_round.cpp.o"
  "CMakeFiles/bench_ext_leak_vs_round.dir/bench_ext_leak_vs_round.cpp.o.d"
  "bench_ext_leak_vs_round"
  "bench_ext_leak_vs_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_leak_vs_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
