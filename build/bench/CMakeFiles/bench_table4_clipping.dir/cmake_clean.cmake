file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_clipping.dir/bench_table4_clipping.cpp.o"
  "CMakeFiles/bench_table4_clipping.dir/bench_table4_clipping.cpp.o.d"
  "bench_table4_clipping"
  "bench_table4_clipping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_clipping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
