file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_noise.dir/bench_table5_noise.cpp.o"
  "CMakeFiles/bench_table5_noise.dir/bench_table5_noise.cpp.o.d"
  "bench_table5_noise"
  "bench_table5_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
