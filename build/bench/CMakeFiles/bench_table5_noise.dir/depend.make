# Empty dependencies file for bench_table5_noise.
# This may be replaced when dependencies are built.
