file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_timecost.dir/bench_table3_timecost.cpp.o"
  "CMakeFiles/bench_table3_timecost.dir/bench_table3_timecost.cpp.o.d"
  "bench_table3_timecost"
  "bench_table3_timecost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_timecost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
