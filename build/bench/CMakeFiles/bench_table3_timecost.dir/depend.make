# Empty dependencies file for bench_table3_timecost.
# This may be replaced when dependencies are built.
