file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_privacy.dir/bench_table6_privacy.cpp.o"
  "CMakeFiles/bench_table6_privacy.dir/bench_table6_privacy.cpp.o.d"
  "bench_table6_privacy"
  "bench_table6_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
