# Empty dependencies file for bench_fig3_gradnorm.
# This may be replaced when dependencies are built.
