file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_gradnorm.dir/bench_fig3_gradnorm.cpp.o"
  "CMakeFiles/bench_fig3_gradnorm.dir/bench_fig3_gradnorm.cpp.o.d"
  "bench_fig3_gradnorm"
  "bench_fig3_gradnorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_gradnorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
