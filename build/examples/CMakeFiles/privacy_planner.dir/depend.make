# Empty dependencies file for privacy_planner.
# This may be replaced when dependencies are built.
