file(REMOVE_RECURSE
  "CMakeFiles/privacy_planner.dir/privacy_planner.cpp.o"
  "CMakeFiles/privacy_planner.dir/privacy_planner.cpp.o.d"
  "privacy_planner"
  "privacy_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
