file(REMOVE_RECURSE
  "CMakeFiles/fl_simulator.dir/fl_simulator.cpp.o"
  "CMakeFiles/fl_simulator.dir/fl_simulator.cpp.o.d"
  "fl_simulator"
  "fl_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
