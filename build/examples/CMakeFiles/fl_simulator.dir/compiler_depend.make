# Empty compiler generated dependencies file for fl_simulator.
# This may be replaced when dependencies are built.
