# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fl_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/dp_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fl_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/nn_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/ops_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/attack_variants_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_api_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
