file(REMOVE_RECURSE
  "CMakeFiles/ops_extensions_test.dir/ops_extensions_test.cpp.o"
  "CMakeFiles/ops_extensions_test.dir/ops_extensions_test.cpp.o.d"
  "ops_extensions_test"
  "ops_extensions_test.pdb"
  "ops_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
