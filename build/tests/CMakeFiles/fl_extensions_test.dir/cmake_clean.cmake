file(REMOVE_RECURSE
  "CMakeFiles/fl_extensions_test.dir/fl_extensions_test.cpp.o"
  "CMakeFiles/fl_extensions_test.dir/fl_extensions_test.cpp.o.d"
  "fl_extensions_test"
  "fl_extensions_test.pdb"
  "fl_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
