file(REMOVE_RECURSE
  "CMakeFiles/nn_extensions_test.dir/nn_extensions_test.cpp.o"
  "CMakeFiles/nn_extensions_test.dir/nn_extensions_test.cpp.o.d"
  "nn_extensions_test"
  "nn_extensions_test.pdb"
  "nn_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
