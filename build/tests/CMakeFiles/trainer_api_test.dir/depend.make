# Empty dependencies file for trainer_api_test.
# This may be replaced when dependencies are built.
