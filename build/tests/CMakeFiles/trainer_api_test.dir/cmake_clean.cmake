file(REMOVE_RECURSE
  "CMakeFiles/trainer_api_test.dir/trainer_api_test.cpp.o"
  "CMakeFiles/trainer_api_test.dir/trainer_api_test.cpp.o.d"
  "trainer_api_test"
  "trainer_api_test.pdb"
  "trainer_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
