# Empty dependencies file for attack_variants_test.
# This may be replaced when dependencies are built.
