file(REMOVE_RECURSE
  "CMakeFiles/attack_variants_test.dir/attack_variants_test.cpp.o"
  "CMakeFiles/attack_variants_test.dir/attack_variants_test.cpp.o.d"
  "attack_variants_test"
  "attack_variants_test.pdb"
  "attack_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
