file(REMOVE_RECURSE
  "CMakeFiles/fedcl_attack.dir/lbfgs.cpp.o"
  "CMakeFiles/fedcl_attack.dir/lbfgs.cpp.o.d"
  "CMakeFiles/fedcl_attack.dir/leakage_eval.cpp.o"
  "CMakeFiles/fedcl_attack.dir/leakage_eval.cpp.o.d"
  "CMakeFiles/fedcl_attack.dir/membership.cpp.o"
  "CMakeFiles/fedcl_attack.dir/membership.cpp.o.d"
  "CMakeFiles/fedcl_attack.dir/reconstruction.cpp.o"
  "CMakeFiles/fedcl_attack.dir/reconstruction.cpp.o.d"
  "CMakeFiles/fedcl_attack.dir/seed_init.cpp.o"
  "CMakeFiles/fedcl_attack.dir/seed_init.cpp.o.d"
  "libfedcl_attack.a"
  "libfedcl_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
