# Empty dependencies file for fedcl_attack.
# This may be replaced when dependencies are built.
