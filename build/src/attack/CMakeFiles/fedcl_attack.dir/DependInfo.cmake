
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/lbfgs.cpp" "src/attack/CMakeFiles/fedcl_attack.dir/lbfgs.cpp.o" "gcc" "src/attack/CMakeFiles/fedcl_attack.dir/lbfgs.cpp.o.d"
  "/root/repo/src/attack/leakage_eval.cpp" "src/attack/CMakeFiles/fedcl_attack.dir/leakage_eval.cpp.o" "gcc" "src/attack/CMakeFiles/fedcl_attack.dir/leakage_eval.cpp.o.d"
  "/root/repo/src/attack/membership.cpp" "src/attack/CMakeFiles/fedcl_attack.dir/membership.cpp.o" "gcc" "src/attack/CMakeFiles/fedcl_attack.dir/membership.cpp.o.d"
  "/root/repo/src/attack/reconstruction.cpp" "src/attack/CMakeFiles/fedcl_attack.dir/reconstruction.cpp.o" "gcc" "src/attack/CMakeFiles/fedcl_attack.dir/reconstruction.cpp.o.d"
  "/root/repo/src/attack/seed_init.cpp" "src/attack/CMakeFiles/fedcl_attack.dir/seed_init.cpp.o" "gcc" "src/attack/CMakeFiles/fedcl_attack.dir/seed_init.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/fedcl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedcl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedcl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedcl_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
