file(REMOVE_RECURSE
  "libfedcl_attack.a"
)
