file(REMOVE_RECURSE
  "libfedcl_tensor.a"
)
