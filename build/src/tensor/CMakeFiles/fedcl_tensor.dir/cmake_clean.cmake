file(REMOVE_RECURSE
  "CMakeFiles/fedcl_tensor.dir/autograd.cpp.o"
  "CMakeFiles/fedcl_tensor.dir/autograd.cpp.o.d"
  "CMakeFiles/fedcl_tensor.dir/im2col.cpp.o"
  "CMakeFiles/fedcl_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/fedcl_tensor.dir/ops.cpp.o"
  "CMakeFiles/fedcl_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/fedcl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fedcl_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/fedcl_tensor.dir/tensor_list.cpp.o"
  "CMakeFiles/fedcl_tensor.dir/tensor_list.cpp.o.d"
  "libfedcl_tensor.a"
  "libfedcl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
