# Empty dependencies file for fedcl_tensor.
# This may be replaced when dependencies are built.
