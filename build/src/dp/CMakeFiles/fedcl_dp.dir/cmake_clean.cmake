file(REMOVE_RECURSE
  "CMakeFiles/fedcl_dp.dir/accountant.cpp.o"
  "CMakeFiles/fedcl_dp.dir/accountant.cpp.o.d"
  "CMakeFiles/fedcl_dp.dir/adaptive_clipping.cpp.o"
  "CMakeFiles/fedcl_dp.dir/adaptive_clipping.cpp.o.d"
  "CMakeFiles/fedcl_dp.dir/clipping.cpp.o"
  "CMakeFiles/fedcl_dp.dir/clipping.cpp.o.d"
  "CMakeFiles/fedcl_dp.dir/gaussian.cpp.o"
  "CMakeFiles/fedcl_dp.dir/gaussian.cpp.o.d"
  "CMakeFiles/fedcl_dp.dir/laplace.cpp.o"
  "CMakeFiles/fedcl_dp.dir/laplace.cpp.o.d"
  "libfedcl_dp.a"
  "libfedcl_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
