
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/accountant.cpp" "src/dp/CMakeFiles/fedcl_dp.dir/accountant.cpp.o" "gcc" "src/dp/CMakeFiles/fedcl_dp.dir/accountant.cpp.o.d"
  "/root/repo/src/dp/adaptive_clipping.cpp" "src/dp/CMakeFiles/fedcl_dp.dir/adaptive_clipping.cpp.o" "gcc" "src/dp/CMakeFiles/fedcl_dp.dir/adaptive_clipping.cpp.o.d"
  "/root/repo/src/dp/clipping.cpp" "src/dp/CMakeFiles/fedcl_dp.dir/clipping.cpp.o" "gcc" "src/dp/CMakeFiles/fedcl_dp.dir/clipping.cpp.o.d"
  "/root/repo/src/dp/gaussian.cpp" "src/dp/CMakeFiles/fedcl_dp.dir/gaussian.cpp.o" "gcc" "src/dp/CMakeFiles/fedcl_dp.dir/gaussian.cpp.o.d"
  "/root/repo/src/dp/laplace.cpp" "src/dp/CMakeFiles/fedcl_dp.dir/laplace.cpp.o" "gcc" "src/dp/CMakeFiles/fedcl_dp.dir/laplace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
