file(REMOVE_RECURSE
  "libfedcl_dp.a"
)
