# Empty compiler generated dependencies file for fedcl_dp.
# This may be replaced when dependencies are built.
