# Empty dependencies file for fedcl_core.
# This may be replaced when dependencies are built.
