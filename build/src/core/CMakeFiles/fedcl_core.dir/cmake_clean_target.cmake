file(REMOVE_RECURSE
  "libfedcl_core.a"
)
