file(REMOVE_RECURSE
  "CMakeFiles/fedcl_core.dir/accounting.cpp.o"
  "CMakeFiles/fedcl_core.dir/accounting.cpp.o.d"
  "CMakeFiles/fedcl_core.dir/policy.cpp.o"
  "CMakeFiles/fedcl_core.dir/policy.cpp.o.d"
  "libfedcl_core.a"
  "libfedcl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
