file(REMOVE_RECURSE
  "CMakeFiles/fedcl_data.dir/benchmarks.cpp.o"
  "CMakeFiles/fedcl_data.dir/benchmarks.cpp.o.d"
  "CMakeFiles/fedcl_data.dir/dataset.cpp.o"
  "CMakeFiles/fedcl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedcl_data.dir/partition.cpp.o"
  "CMakeFiles/fedcl_data.dir/partition.cpp.o.d"
  "CMakeFiles/fedcl_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedcl_data.dir/synthetic.cpp.o.d"
  "libfedcl_data.a"
  "libfedcl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
