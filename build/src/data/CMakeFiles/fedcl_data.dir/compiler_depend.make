# Empty compiler generated dependencies file for fedcl_data.
# This may be replaced when dependencies are built.
