file(REMOVE_RECURSE
  "libfedcl_data.a"
)
