# Empty compiler generated dependencies file for fedcl_fl.
# This may be replaced when dependencies are built.
