file(REMOVE_RECURSE
  "CMakeFiles/fedcl_fl.dir/client.cpp.o"
  "CMakeFiles/fedcl_fl.dir/client.cpp.o.d"
  "CMakeFiles/fedcl_fl.dir/compression.cpp.o"
  "CMakeFiles/fedcl_fl.dir/compression.cpp.o.d"
  "CMakeFiles/fedcl_fl.dir/dssgd.cpp.o"
  "CMakeFiles/fedcl_fl.dir/dssgd.cpp.o.d"
  "CMakeFiles/fedcl_fl.dir/protocol.cpp.o"
  "CMakeFiles/fedcl_fl.dir/protocol.cpp.o.d"
  "CMakeFiles/fedcl_fl.dir/secure_aggregation.cpp.o"
  "CMakeFiles/fedcl_fl.dir/secure_aggregation.cpp.o.d"
  "CMakeFiles/fedcl_fl.dir/server.cpp.o"
  "CMakeFiles/fedcl_fl.dir/server.cpp.o.d"
  "CMakeFiles/fedcl_fl.dir/trainer.cpp.o"
  "CMakeFiles/fedcl_fl.dir/trainer.cpp.o.d"
  "libfedcl_fl.a"
  "libfedcl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
