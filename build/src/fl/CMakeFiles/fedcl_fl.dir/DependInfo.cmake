
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/client.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/client.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/client.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/dssgd.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/dssgd.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/dssgd.cpp.o.d"
  "/root/repo/src/fl/protocol.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/protocol.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/protocol.cpp.o.d"
  "/root/repo/src/fl/secure_aggregation.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/secure_aggregation.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/secure_aggregation.cpp.o.d"
  "/root/repo/src/fl/server.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/server.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/server.cpp.o.d"
  "/root/repo/src/fl/trainer.cpp" "src/fl/CMakeFiles/fedcl_fl.dir/trainer.cpp.o" "gcc" "src/fl/CMakeFiles/fedcl_fl.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedcl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedcl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedcl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/fedcl_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedcl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedcl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
