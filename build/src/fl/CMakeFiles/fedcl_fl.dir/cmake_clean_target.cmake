file(REMOVE_RECURSE
  "libfedcl_fl.a"
)
