file(REMOVE_RECURSE
  "CMakeFiles/fedcl_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/fedcl_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/grad_utils.cpp.o"
  "CMakeFiles/fedcl_nn.dir/grad_utils.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/layer.cpp.o"
  "CMakeFiles/fedcl_nn.dir/layer.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/layers.cpp.o"
  "CMakeFiles/fedcl_nn.dir/layers.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/loss.cpp.o"
  "CMakeFiles/fedcl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/metrics.cpp.o"
  "CMakeFiles/fedcl_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/fedcl_nn.dir/model_zoo.cpp.o.d"
  "CMakeFiles/fedcl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedcl_nn.dir/optimizer.cpp.o.d"
  "libfedcl_nn.a"
  "libfedcl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
