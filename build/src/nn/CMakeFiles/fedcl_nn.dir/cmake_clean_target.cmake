file(REMOVE_RECURSE
  "libfedcl_nn.a"
)
