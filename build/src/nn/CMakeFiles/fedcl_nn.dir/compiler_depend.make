# Empty compiler generated dependencies file for fedcl_nn.
# This may be replaced when dependencies are built.
