file(REMOVE_RECURSE
  "libfedcl_common.a"
)
