file(REMOVE_RECURSE
  "CMakeFiles/fedcl_common.dir/env.cpp.o"
  "CMakeFiles/fedcl_common.dir/env.cpp.o.d"
  "CMakeFiles/fedcl_common.dir/flags.cpp.o"
  "CMakeFiles/fedcl_common.dir/flags.cpp.o.d"
  "CMakeFiles/fedcl_common.dir/logging.cpp.o"
  "CMakeFiles/fedcl_common.dir/logging.cpp.o.d"
  "CMakeFiles/fedcl_common.dir/rng.cpp.o"
  "CMakeFiles/fedcl_common.dir/rng.cpp.o.d"
  "CMakeFiles/fedcl_common.dir/stats.cpp.o"
  "CMakeFiles/fedcl_common.dir/stats.cpp.o.d"
  "CMakeFiles/fedcl_common.dir/table.cpp.o"
  "CMakeFiles/fedcl_common.dir/table.cpp.o.d"
  "CMakeFiles/fedcl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/fedcl_common.dir/thread_pool.cpp.o.d"
  "libfedcl_common.a"
  "libfedcl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
