# Empty compiler generated dependencies file for fedcl_common.
# This may be replaced when dependencies are built.
