// Membership inference attack (Yeom et al. style loss thresholding).
//
// The paper's Section II groups membership inference with gradient
// leakage as the dominating privacy threats: a model's loss on
// training members is statistically lower than on unseen data, and an
// adversary exploiting the gap can tell whether a given example was
// used for training. This module quantifies that gap for any trained
// model — the extension bench uses it to show that Fed-CDP's
// differential privacy also shrinks membership advantage, while
// non-private FL leaves a measurable gap.
#pragma once

#include "data/dataset.h"
#include "nn/layer.h"

namespace fedcl::attack {

struct MembershipResult {
  // Mean cross-entropy loss on members (training data) vs non-members.
  double member_mean_loss = 0.0;
  double nonmember_mean_loss = 0.0;
  // Best balanced accuracy over all loss thresholds (0.5 = no signal).
  double attack_accuracy = 0.5;
  // Yeom membership advantage = 2 * (attack_accuracy - 0.5).
  double advantage = 0.0;
  // AUC of "loss < threshold => member" over threshold sweep.
  double auc = 0.5;
};

// Scores the attack on equally many member and non-member examples
// (the smaller batch bounds both sides for balance).
MembershipResult evaluate_membership(const nn::Sequential& model,
                                     const data::Batch& members,
                                     const data::Batch& nonmembers);

// Per-example cross-entropy losses (no graph recorded).
std::vector<double> per_example_losses(const nn::Sequential& model,
                                       const data::Batch& batch);

}  // namespace fedcl::attack
