#include "attack/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.h"

namespace fedcl::attack {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double inf_norm(const std::vector<double>& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

void axpy(std::vector<double>& y, const std::vector<double>& x, double a) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

struct CurvaturePair {
  std::vector<double> s;  // x_{k+1} - x_k
  std::vector<double> y;  // g_{k+1} - g_k
  double rho;             // 1 / (y^T s)
};

// Strong-Wolfe line search (Nocedal & Wright, Alg. 3.5/3.6) along
// `direction` from x. phi(a) = f(x + a*direction). On success fills
// out_x/out_grad/out_loss with the accepted point and returns true.
class WolfeSearch {
 public:
  WolfeSearch(const LbfgsObjective& f, const std::vector<double>& x,
              const std::vector<double>& direction, double loss0,
              double dphi0, int max_evals)
      : f_(f),
        x_(x),
        direction_(direction),
        loss0_(loss0),
        dphi0_(dphi0),
        max_evals_(max_evals),
        trial_x_(x.size()),
        trial_grad_(x.size()) {}

  bool search(double initial_step, std::vector<double>& out_x,
              std::vector<double>& out_grad, double& out_loss) {
    constexpr double kC1 = 1e-4;
    constexpr double kC2 = 0.9;
    double a_prev = 0.0, phi_prev = loss0_, dphi_prev = dphi0_;
    double a = initial_step;
    for (int i = 0; i < max_evals_; ++i) {
      double phi = eval(a);
      double dphi = dot(trial_grad_, direction_);
      if (!std::isfinite(phi) || phi > loss0_ + kC1 * a * dphi0_ ||
          (i > 0 && phi >= phi_prev)) {
        return zoom(a_prev, phi_prev, dphi_prev, a, phi, kC1, kC2, out_x,
                    out_grad, out_loss);
      }
      if (std::abs(dphi) <= -kC2 * dphi0_) {
        accept(phi, out_x, out_grad, out_loss);
        return true;
      }
      if (dphi >= 0.0) {
        return zoom(a, phi, dphi, a_prev, phi_prev, kC1, kC2, out_x,
                    out_grad, out_loss);
      }
      a_prev = a;
      phi_prev = phi;
      dphi_prev = dphi;
      a *= 2.0;
    }
    return false;
  }

 private:
  double eval(double a) {
    trial_x_ = x_;
    axpy(trial_x_, direction_, a);
    return f_(trial_x_, trial_grad_);
  }

  void accept(double phi, std::vector<double>& out_x,
              std::vector<double>& out_grad, double& out_loss) {
    out_x = trial_x_;
    out_grad = trial_grad_;
    out_loss = phi;
  }

  bool zoom(double lo, double phi_lo, double dphi_lo, double hi,
            double phi_hi, double c1, double c2, std::vector<double>& out_x,
            std::vector<double>& out_grad, double& out_loss) {
    (void)phi_hi;
    for (int i = 0; i < max_evals_; ++i) {
      // Bisection keeps the implementation simple and is robust; the
      // interval halves every iteration.
      const double a = 0.5 * (lo + hi);
      double phi = eval(a);
      double dphi = dot(trial_grad_, direction_);
      if (!std::isfinite(phi) || phi > loss0_ + c1 * a * dphi0_ ||
          phi >= phi_lo) {
        hi = a;
      } else {
        if (std::abs(dphi) <= -c2 * dphi0_) {
          accept(phi, out_x, out_grad, out_loss);
          return true;
        }
        if (dphi * (hi - lo) >= 0.0) hi = lo;
        lo = a;
        phi_lo = phi;
        dphi_lo = dphi;
      }
      if (std::abs(hi - lo) < 1e-16) break;
    }
    (void)dphi_lo;
    // Fall back to the best sufficient-decrease point found, if any.
    if (phi_lo < loss0_) {
      eval(lo);
      accept(phi_lo, out_x, out_grad, out_loss);
      return true;
    }
    return false;
  }

  const LbfgsObjective& f_;
  const std::vector<double>& x_;
  const std::vector<double>& direction_;
  double loss0_;
  double dphi0_;
  int max_evals_;
  std::vector<double> trial_x_;
  std::vector<double> trial_grad_;
};

}  // namespace

LbfgsResult lbfgs_minimize(std::vector<double>& x, const LbfgsObjective& f,
                           const LbfgsOptions& options,
                           const LbfgsCallback& callback) {
  FEDCL_CHECK(!x.empty());
  FEDCL_CHECK_GT(options.max_iterations, 0);
  FEDCL_CHECK_GT(options.history, 0);

  const std::size_t n = x.size();
  std::vector<double> grad(n), new_grad(n), direction(n), new_x(n);
  double loss = f(x, grad);

  std::deque<CurvaturePair> pairs;
  LbfgsResult result;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (inf_norm(grad) < options.tolerance_grad) {
      result.converged = true;
      break;
    }

    // Two-loop recursion: direction = -H_k * grad.
    direction = grad;
    std::vector<double> alphas(pairs.size());
    for (std::size_t i = pairs.size(); i-- > 0;) {
      alphas[i] = pairs[i].rho * dot(pairs[i].s, direction);
      axpy(direction, pairs[i].y, -alphas[i]);
    }
    if (!pairs.empty()) {
      // Initial Hessian scaling gamma = s^T y / y^T y.
      const auto& last = pairs.back();
      const double yy = dot(last.y, last.y);
      if (yy > 0.0) {
        const double gamma = 1.0 / (last.rho * yy);
        for (double& d : direction) d *= gamma;
      }
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const double beta = pairs[i].rho * dot(pairs[i].y, direction);
      axpy(direction, pairs[i].s, alphas[i] - beta);
    }
    for (double& d : direction) d = -d;

    double directional = dot(grad, direction);
    if (directional >= 0.0) {
      // Not a descent direction (stale curvature): restart from
      // steepest descent.
      pairs.clear();
      for (std::size_t i = 0; i < n; ++i) direction[i] = -grad[i];
      directional = -dot(grad, grad);
    }

    WolfeSearch search(f, x, direction, loss, directional,
                       options.max_line_search_steps);
    double new_loss = loss;
    bool accepted =
        search.search(options.initial_step, new_x, new_grad, new_loss);
    if (!accepted && !pairs.empty()) {
      // Quasi-Newton direction stalled: retry once from gradient
      // descent with a gradient-scaled step.
      pairs.clear();
      const double gnorm = std::sqrt(dot(grad, grad));
      for (std::size_t i = 0; i < n; ++i) direction[i] = -grad[i];
      directional = -gnorm * gnorm;
      WolfeSearch retry(f, x, direction, loss, directional,
                        options.max_line_search_steps);
      accepted = retry.search(1.0 / (1.0 + gnorm), new_x, new_grad, new_loss);
    }
    if (!accepted) {
      // No improving point found along the gradient either: stationary
      // for all practical purposes (typical on DP-noised landscapes).
      result.converged = false;
      break;
    }

    // Curvature update.
    CurvaturePair pair;
    pair.s.resize(n);
    pair.y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      pair.s[i] = new_x[i] - x[i];
      pair.y[i] = new_grad[i] - grad[i];
    }
    const double ys = dot(pair.y, pair.s);
    if (ys > 1e-10) {
      pair.rho = 1.0 / ys;
      pairs.push_back(std::move(pair));
      if (static_cast<int>(pairs.size()) > options.history) {
        pairs.pop_front();
      }
    }

    const double change = std::abs(new_loss - loss);
    x.swap(new_x);
    grad.swap(new_grad);
    loss = new_loss;

    if (callback && callback(iter + 1, x, loss)) {
      result.stopped_by_callback = true;
      break;
    }
    if (change < options.tolerance_change) {
      result.converged = true;
      break;
    }
  }

  result.final_loss = loss;
  return result;
}

}  // namespace fedcl::attack
