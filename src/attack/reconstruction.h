// Gradient-leakage reconstruction attack (paper Figure 1a).
//
// Given an observed gradient g* (the leakage), the adversary:
//  1. initializes a dummy input x_rec (seed_init.h),
//  2. computes the dummy gradient grad_W loss(x_rec, y) through the
//     intercepted model,
//  3. minimizes the L2 gradient-matching loss
//     sum_layers ||grad_W(x_rec) - g*||^2 over x_rec with L-BFGS,
//  4. declares success when the reconstruction distance (RMSE against
//     the private input) falls below a threshold, or gives up after
//     `max_iterations` (the paper's attack-termination condition T,
//     default 300).
//
// The same attack serves all three leakage types: type-0/1 match the
// per-client round update (batched gradient), type-2 matches one
// per-example gradient observed during local training.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/lbfgs.h"
#include "attack/seed_init.h"
#include "nn/layer.h"
#include "tensor/tensor_list.h"

namespace fedcl {
class Rng;
}

namespace fedcl::attack {

using tensor::Tensor;
using tensor::list::TensorList;

// Gradient-matching loss variant.
enum class AttackObjective {
  // sum_layers ||grad(x) - g*||^2 — the paper's L2 loss (DLG/CPL).
  kL2,
  // 1 - cos(grad(x), g*) over the concatenated gradient, optionally
  // with a total-variation prior on the image — the "Inverting
  // Gradients" formulation of Geiping et al. (the paper's ref [7]).
  kCosine,
};

const char* attack_objective_name(AttackObjective objective);

struct AttackConfig {
  // The paper's termination condition T.
  int max_iterations = 300;
  // Success threshold on the reconstruction distance (root mean square
  // deviation between x_rec and x). Calibrated so the paper's
  // qualitative outcomes reproduce: non-private attacks land well
  // below it, DP-protected attacks well above.
  double success_distance = 0.25;
  SeedInit seed_init = SeedInit::kPatternedRandom;
  std::uint64_t seed = 20210701;
  // The adversary knows the valid input range and projects the
  // reconstruction into it before scoring (pixels live in [0,1]).
  // Disable for unbounded attribute data.
  bool clamp_reconstruction = true;
  float clamp_lo = 0.0f;
  float clamp_hi = 1.0f;
  // Treat exactly-zero coordinates of the observed gradient as
  // *unobserved* and exclude them from the matching loss. This is how
  // the CPL attack handles selective sharing (DSSGD) and compressed
  // updates: pruned coordinates carry no constraint. Harmless for
  // dense observations (noise makes exact zeros vanishing rare).
  bool mask_unobserved_coordinates = true;
  // Matching-loss formulation.
  AttackObjective objective = AttackObjective::kL2;
  // Total-variation prior weight on 4-D (image) inputs; 0 disables.
  // Only meaningful with kCosine (Geiping et al. use it to regularize
  // the flat cosine landscape).
  double tv_weight = 0.0;
  LbfgsOptions lbfgs;
  // Check the success condition every `check_every` attack iterations.
  int check_every = 5;
};

struct AttackResult {
  bool success = false;
  // RMSE between the private input and the reconstruction when the
  // attack stopped (the paper's "attack reconstruction distance").
  double reconstruction_distance = 0.0;
  // Attack iterations executed (== max_iterations for failed attacks,
  // matching how the paper reports Table VII).
  int iterations = 0;
  double final_gradient_loss = 0.0;
  Tensor reconstruction;
  // Copy of the private input the attack was scored against (handy for
  // visual side-by-side rendering).
  Tensor ground_truth;
};

class GradientReconstructionAttack {
 public:
  // The adversary holds the intercepted model (architecture + current
  // weights) — exactly what a curious server or client-resident
  // process has in the paper's threat model.
  GradientReconstructionAttack(std::shared_ptr<nn::Sequential> model,
                               AttackConfig config);

  // Reconstructs the private input(s) behind `observed_gradient`.
  //  - input_shape includes the batch dim ({B,H,W,C} or {B,D});
  //  - labels are the (known or inferred) labels of the examples;
  //  - ground_truth is the private input, used only for scoring.
  AttackResult run(const TensorList& observed_gradient,
                   const tensor::Shape& input_shape,
                   const std::vector<std::int64_t>& labels,
                   const Tensor& ground_truth) const;

  // iDLG-style label inference for a single-example leak: the true
  // class is the most negative entry of the last-layer bias gradient.
  static std::int64_t infer_label(const TensorList& observed_gradient);

  // Batched extension: the labels present in a B-example leak are the
  // classes with the most negative last-layer bias-gradient entries
  // (softmax-CE makes present classes' entries negative on average).
  // Returns B labels sorted ascending; multiplicities are approximated
  // by magnitude when fewer than B entries are negative.
  static std::vector<std::int64_t> infer_batch_labels(
      const TensorList& observed_gradient, std::int64_t batch_size);

 private:
  std::shared_ptr<nn::Sequential> model_;
  AttackConfig config_;
};

}  // namespace fedcl::attack
