#include "attack/membership.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace fedcl::attack {

std::vector<double> per_example_losses(const nn::Sequential& model,
                                       const data::Batch& batch) {
  FEDCL_CHECK_GT(batch.size(), 0);
  tensor::GradModeGuard no_grad(false);
  tensor::Var logits = model.forward(tensor::Var(batch.x, false));
  const tensor::Tensor probs = nn::softmax(logits.value());
  const std::int64_t c = probs.dim(1);
  std::vector<double> losses;
  losses.reserve(static_cast<std::size_t>(batch.size()));
  for (std::int64_t i = 0; i < batch.size(); ++i) {
    const std::int64_t label = batch.labels[static_cast<std::size_t>(i)];
    const double p =
        std::max(1e-12, static_cast<double>(probs.at(i * c + label)));
    losses.push_back(-std::log(p));
  }
  return losses;
}

MembershipResult evaluate_membership(const nn::Sequential& model,
                                     const data::Batch& members,
                                     const data::Batch& nonmembers) {
  std::vector<double> member_losses = per_example_losses(model, members);
  std::vector<double> nonmember_losses =
      per_example_losses(model, nonmembers);
  // Balance the two sides.
  const std::size_t n =
      std::min(member_losses.size(), nonmember_losses.size());
  FEDCL_CHECK_GT(n, 0u);
  member_losses.resize(n);
  nonmember_losses.resize(n);

  MembershipResult result;
  for (double l : member_losses) result.member_mean_loss += l;
  for (double l : nonmember_losses) result.nonmember_mean_loss += l;
  result.member_mean_loss /= static_cast<double>(n);
  result.nonmember_mean_loss /= static_cast<double>(n);

  // Threshold sweep: predict "member" when loss < threshold. Balanced
  // accuracy at the best threshold; AUC from pairwise ranking.
  std::vector<double> all = member_losses;
  all.insert(all.end(), nonmember_losses.begin(), nonmember_losses.end());
  std::sort(all.begin(), all.end());
  double best = 0.5;
  for (double threshold : all) {
    std::size_t member_hits = 0, nonmember_hits = 0;
    for (double l : member_losses) member_hits += l <= threshold ? 1 : 0;
    for (double l : nonmember_losses) nonmember_hits += l > threshold ? 1 : 0;
    const double balanced =
        0.5 * (static_cast<double>(member_hits) / n +
               static_cast<double>(nonmember_hits) / n);
    best = std::max(best, balanced);
  }
  result.attack_accuracy = best;
  result.advantage = 2.0 * (best - 0.5);

  // AUC: P(member loss < nonmember loss) + 0.5 P(tie).
  double wins = 0.0;
  for (double m : member_losses) {
    for (double o : nonmember_losses) {
      if (m < o) {
        wins += 1.0;
      } else if (m == o) {
        wins += 0.5;
      }
    }
  }
  result.auc = wins / (static_cast<double>(n) * static_cast<double>(n));
  return result;
}

}  // namespace fedcl::attack
