// End-to-end leakage-resilience evaluation harness (Table VII, Fig. 4,
// Fig. 5 resilience rows): runs clients under a privacy policy,
// intercepts the three observation points, mounts the reconstruction
// attack on each, and aggregates success rate / reconstruction
// distance / attack iterations across clients.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/reconstruction.h"
#include "core/policy.h"
#include "data/benchmarks.h"

namespace fedcl::attack {

struct LeakageExperimentConfig {
  data::BenchmarkConfig bench;
  AttackConfig attack;
  // Number of clients attacked (the paper averages over 100; scaled
  // runs use fewer).
  std::int64_t clients = 5;
  // Gradient compression applied to the shared update before the
  // type-0/1 observation (Figure 5's communication-efficient setting).
  double prune_ratio = 0.0;
  std::uint64_t seed = 42;
};

// Aggregated attack effectiveness over the attacked clients, in the
// shape of the paper's Table VII rows.
struct LeakageOutcome {
  double success_rate = 0.0;       // fraction of successful attacks
  double mean_distance = 0.0;      // mean reconstruction distance
  double mean_iterations = 0.0;    // mean #attack iterations
  bool any_success = false;        // Table VII's "succeed Y/N"
  std::vector<AttackResult> per_client;
};

struct LeakageReport {
  // Attack on the shared round update (observed at the server after
  // decryption = type-0, or at the client after local training =
  // type-1; both see the same tensor when noise is added client-side).
  LeakageOutcome type01;
  // Attack on a per-example gradient observed during local training.
  LeakageOutcome type2;
};

// The attacks run against gradients from the first local iteration of
// round 0 with L=1 (gradients early in training leak the most, per the
// paper's Section VII-C protocol).
LeakageReport evaluate_leakage(const LeakageExperimentConfig& config,
                               const core::PrivacyPolicy& policy);

// Renders a [H,W,C] or [1,H,W,C] image tensor as ASCII art (channel
// mean, 10-level ramp) — the repo's stand-in for the paper's
// reconstruction visualizations.
std::string ascii_image(const tensor::Tensor& image);

}  // namespace fedcl::attack
