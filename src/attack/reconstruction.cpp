#include "attack/reconstruction.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nn/grad_utils.h"
#include "tensor/ops.h"

namespace fedcl::attack {

namespace o = tensor::ops;
using tensor::Gradients;
using tensor::Var;

const char* attack_objective_name(AttackObjective objective) {
  switch (objective) {
    case AttackObjective::kL2:
      return "L2";
    case AttackObjective::kCosine:
      return "cosine";
  }
  return "?";
}

namespace {

// Total variation of an NHWC image batch, built from differentiable
// gather ops so it composes with the double-backward attack loss.
Var total_variation(const Var& x) {
  const tensor::Shape& s = x.value().shape();
  FEDCL_CHECK_EQ(s.size(), 4u) << "TV prior needs image input";
  const std::int64_t n = s[0], h = s[1], w = s[2], c = s[3];
  std::vector<std::int64_t> left, right, up, down;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t xo = 0; xo < w; ++xo) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          const std::int64_t flat = ((b * h + y) * w + xo) * c + ch;
          if (xo + 1 < w) {
            left.push_back(flat);
            right.push_back(flat + c);
          }
          if (y + 1 < h) {
            up.push_back(flat);
            down.push_back(flat + w * c);
          }
        }
      }
    }
  }
  Var flat = o::reshape(x, {x.value().numel()});
  Var dh = o::sub(o::gather_flat(flat, right), o::gather_flat(flat, left));
  Var dv = o::sub(o::gather_flat(flat, down), o::gather_flat(flat, up));
  return o::add(o::sum_all(o::abs(dh)), o::sum_all(o::abs(dv)));
}

}  // namespace

GradientReconstructionAttack::GradientReconstructionAttack(
    std::shared_ptr<nn::Sequential> model, AttackConfig config)
    : model_(std::move(model)), config_(config) {
  FEDCL_CHECK(model_ != nullptr);
  FEDCL_CHECK_GT(config_.max_iterations, 0);
  FEDCL_CHECK_GT(config_.check_every, 0);
  FEDCL_CHECK_GE(config_.tv_weight, 0.0);
}

std::vector<std::int64_t> GradientReconstructionAttack::infer_batch_labels(
    const TensorList& observed_gradient, std::int64_t batch_size) {
  FEDCL_CHECK(!observed_gradient.empty());
  FEDCL_CHECK_GT(batch_size, 0);
  const tensor::Tensor& bias_grad = observed_gradient.back();
  FEDCL_CHECK_EQ(bias_grad.ndim(), 1u) << "expected a bias gradient last";
  // Sort classes by gradient value ascending: negative entries signal
  // classes present in the batch (softmax probability below the 1 of
  // the one-hot target on average).
  std::vector<std::int64_t> order(
      static_cast<std::size_t>(bias_grad.numel()));
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<std::int64_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::int64_t a, std::int64_t b) {
              return bias_grad.at(a) < bias_grad.at(b);
            });
  std::vector<std::int64_t> labels;
  for (std::int64_t cls : order) {
    if (static_cast<std::int64_t>(labels.size()) >= batch_size) break;
    if (bias_grad.at(cls) < 0.0f) labels.push_back(cls);
  }
  // Fewer negative entries than examples: repeated labels. Assign the
  // remaining slots to the most negative classes by magnitude.
  std::size_t fill = 0;
  while (static_cast<std::int64_t>(labels.size()) < batch_size) {
    labels.push_back(order[fill % order.size()]);
    ++fill;
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::int64_t GradientReconstructionAttack::infer_label(
    const TensorList& observed_gradient) {
  FEDCL_CHECK(!observed_gradient.empty());
  // The last parameter of the paper's models is the classifier bias
  // [C]; for cross-entropy its gradient is softmax(p) - onehot(y), so
  // the only negative coordinate is the true label.
  const tensor::Tensor& bias_grad = observed_gradient.back();
  FEDCL_CHECK_EQ(bias_grad.ndim(), 1u) << "expected a bias gradient last";
  std::int64_t best = 0;
  float best_value = bias_grad.at(0);
  for (std::int64_t i = 1; i < bias_grad.numel(); ++i) {
    if (bias_grad.at(i) < best_value) {
      best_value = bias_grad.at(i);
      best = i;
    }
  }
  return best;
}

AttackResult GradientReconstructionAttack::run(
    const TensorList& observed_gradient, const tensor::Shape& input_shape,
    const std::vector<std::int64_t>& labels,
    const Tensor& ground_truth) const {
  const std::vector<Var>& params = model_->parameters();
  FEDCL_CHECK_EQ(observed_gradient.size(), params.size());
  FEDCL_CHECK_EQ(tensor::shape_numel(input_shape), ground_truth.numel());
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(labels.size()), input_shape[0]);

  Rng rng(config_.seed);
  Tensor seed = make_attack_seed(input_shape, config_.seed_init, rng);
  std::vector<float> truth = ground_truth.to_vector();

  // Coordinates pruned away (selective sharing / compression) carry no
  // constraint; mask them out of the matching loss.
  std::vector<Var> masks;
  if (config_.mask_unobserved_coordinates) {
    masks.reserve(observed_gradient.size());
    bool any_zero = false;
    for (const Tensor& g : observed_gradient) {
      Tensor mask(g.shape());
      const float* src = g.data();
      float* dst = mask.data();
      for (std::int64_t i = 0; i < g.numel(); ++i) {
        dst[i] = src[i] != 0.0f ? 1.0f : 0.0f;
        any_zero = any_zero || src[i] == 0.0f;
      }
      masks.push_back(o::constant(std::move(mask)));
    }
    if (!any_zero) masks.clear();  // dense observation: skip the muls
  }

  // Constant for the cosine denominator: the (masked) target norm.
  double target_norm_sq = 0.0;
  {
    for (std::size_t i = 0; i < observed_gradient.size(); ++i) {
      const double norm = observed_gradient[i].l2_norm();
      target_norm_sq += norm * norm;
    }
  }
  const auto target_norm =
      static_cast<float>(std::sqrt(std::max(target_norm_sq, 1e-24)));

  // Gradient-matching objective: value and d/dx via double backward.
  auto objective = [&](const std::vector<double>& x,
                       std::vector<double>& grad_out) -> double {
    Tensor xt(input_shape);
    for (std::int64_t i = 0; i < xt.numel(); ++i) {
      xt.at(i) = static_cast<float>(x[static_cast<std::size_t>(i)]);
    }
    Var xv(std::move(xt), /*requires_grad=*/true);
    std::vector<Var> dummy_grads =
        nn::compute_gradient_vars(*model_, xv, labels);
    Var loss;
    if (config_.objective == AttackObjective::kL2) {
      for (std::size_t i = 0; i < dummy_grads.size(); ++i) {
        Var diff =
            o::sub(dummy_grads[i], o::constant(observed_gradient[i]));
        if (!masks.empty()) diff = o::mul(diff, masks[i]);
        Var term = o::l2_norm_squared(diff);
        loss = loss.defined() ? o::add(loss, term) : term;
      }
    } else {
      // 1 - cos(grad(x), g*) over the concatenated (masked) gradient.
      Var dot, norm_sq;
      for (std::size_t i = 0; i < dummy_grads.size(); ++i) {
        Var d = dummy_grads[i];
        if (!masks.empty()) d = o::mul(d, masks[i]);
        Var dot_i = o::sum_all(o::mul(d, o::constant(observed_gradient[i])));
        Var nsq_i = o::l2_norm_squared(d);
        dot = dot.defined() ? o::add(dot, dot_i) : dot_i;
        norm_sq = norm_sq.defined() ? o::add(norm_sq, nsq_i) : nsq_i;
      }
      Var denom = o::mul_scalar(o::sqrt(o::add_scalar(norm_sq, 1e-12f)),
                                target_norm);
      Var cosine = o::div(dot, denom);
      loss = o::add_scalar(o::neg(cosine), 1.0f);
    }
    if (config_.tv_weight > 0.0 && input_shape.size() == 4) {
      loss = o::add(loss,
                    o::mul_scalar(total_variation(xv),
                                  static_cast<float>(config_.tv_weight)));
    }
    Gradients gx = tensor::backward(loss);
    const Tensor& gxt = gx.of(xv).value();
    grad_out.resize(static_cast<std::size_t>(gxt.numel()));
    for (std::int64_t i = 0; i < gxt.numel(); ++i) {
      grad_out[static_cast<std::size_t>(i)] = gxt.at(i);
    }
    return loss.value().item();
  };

  auto project = [&](double v) {
    if (!config_.clamp_reconstruction) return static_cast<float>(v);
    return std::clamp(static_cast<float>(v), config_.clamp_lo,
                      config_.clamp_hi);
  };
  auto distance_of = [&](const std::vector<double>& x) {
    std::vector<float> xf(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) xf[i] = project(x[i]);
    return rmse(xf, truth);
  };

  std::vector<double> x(static_cast<std::size_t>(seed.numel()));
  for (std::int64_t i = 0; i < seed.numel(); ++i) {
    x[static_cast<std::size_t>(i)] = seed.at(i);
  }

  AttackResult result;
  LbfgsOptions opts = config_.lbfgs;
  opts.max_iterations = config_.max_iterations;
  int success_iteration = 0;
  // The attack keeps optimizing to convergence (the adversary cannot
  // measure the true distance); we record the first iteration at which
  // the reconstruction crossed the success threshold — the paper's
  // "#attack iterations to succeed".
  auto callback = [&](int iteration, const std::vector<double>& cur,
                      double /*loss*/) {
    if (success_iteration == 0 && iteration % config_.check_every == 0 &&
        distance_of(cur) < config_.success_distance) {
      success_iteration = iteration;
    }
    return false;
  };

  LbfgsResult lr = lbfgs_minimize(x, objective, opts, callback);

  result.reconstruction_distance = distance_of(x);
  result.success = success_iteration > 0 ||
                   result.reconstruction_distance < config_.success_distance;
  // Paper convention: failed attacks are charged the full budget T.
  result.iterations =
      result.success
          ? (success_iteration > 0 ? success_iteration : lr.iterations)
          : config_.max_iterations;
  result.final_gradient_loss = lr.final_loss;
  Tensor rec(input_shape);
  for (std::int64_t i = 0; i < rec.numel(); ++i) {
    rec.at(i) = project(x[static_cast<std::size_t>(i)]);
  }
  result.reconstruction = std::move(rec);
  result.ground_truth = ground_truth.clone().reshape(input_shape);
  return result;
}

}  // namespace fedcl::attack
