// L-BFGS minimizer — the optimizer the paper's reconstruction attack
// uses (Section III: "L2 based loss function and L-BFGS optimizer").
//
// Two-loop recursion over an m-deep curvature history with Armijo
// backtracking line search; curvature pairs failing the positivity
// condition are skipped, which keeps the inverse-Hessian estimate
// positive definite without a full strong-Wolfe search.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fedcl::attack {

struct LbfgsOptions {
  int max_iterations = 300;
  int history = 10;  // m: number of curvature pairs retained
  double tolerance_grad = 1e-9;    // stop when ||g||_inf below this
  double tolerance_change = 1e-12; // stop when |loss change| below this
  int max_line_search_steps = 20;
  double initial_step = 1.0;
};

struct LbfgsResult {
  double final_loss = 0.0;
  int iterations = 0;
  bool converged = false;       // hit a tolerance (vs. iteration budget)
  bool stopped_by_callback = false;
};

// Objective: returns loss at x and fills grad (same size as x).
using LbfgsObjective =
    std::function<double(const std::vector<double>& x, std::vector<double>& grad)>;

// Per-iteration observer; return true to stop early (e.g. when the
// attack's reconstruction distance crosses the success threshold).
using LbfgsCallback =
    std::function<bool(int iteration, const std::vector<double>& x, double loss)>;

// Minimizes f starting from (and updating) x.
LbfgsResult lbfgs_minimize(std::vector<double>& x, const LbfgsObjective& f,
                           const LbfgsOptions& options,
                           const LbfgsCallback& callback = nullptr);

}  // namespace fedcl::attack
