#include "attack/seed_init.h"

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::attack {

namespace {
constexpr std::int64_t kPatchSide = 4;
}

const char* seed_init_name(SeedInit init) {
  switch (init) {
    case SeedInit::kPatternedRandom:
      return "patterned-random";
    case SeedInit::kUniformRandom:
      return "uniform-random";
    case SeedInit::kConstant:
      return "constant";
  }
  return "?";
}

tensor::Tensor make_attack_seed(const tensor::Shape& shape, SeedInit init,
                                Rng& rng) {
  FEDCL_CHECK(!shape.empty());
  switch (init) {
    case SeedInit::kUniformRandom:
      return tensor::Tensor::uniform(shape, rng, 0.0f, 1.0f);
    case SeedInit::kConstant:
      return tensor::Tensor::full(shape, 0.5f);
    case SeedInit::kPatternedRandom:
      break;
  }
  // Patterned random: tile a kPatchSide^2 random patch.
  tensor::Tensor seed(shape);
  if (shape.size() == 4) {
    // [N, H, W, C]: tile spatially, independent per channel.
    const std::int64_t n = shape[0], h = shape[1], w = shape[2], c = shape[3];
    tensor::Tensor patch =
        tensor::Tensor::uniform({kPatchSide, kPatchSide, c}, rng, 0.0f, 1.0f);
    float* dst = seed.data();
    const float* p = patch.data();
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          for (std::int64_t ch = 0; ch < c; ++ch) {
            dst[((b * h + y) * w + x) * c + ch] =
                p[((y % kPatchSide) * kPatchSide + (x % kPatchSide)) * c + ch];
          }
        }
      }
    }
    return seed;
  }
  // Flat inputs [N, D]: repeat a random stretch of kPatchSide^2 values.
  const std::int64_t period = kPatchSide * kPatchSide;
  tensor::Tensor patch = tensor::Tensor::uniform({period}, rng, 0.0f, 1.0f);
  const std::int64_t n = shape[0];
  const std::int64_t d = seed.numel() / n;
  float* dst = seed.data();
  const float* p = patch.data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t j = 0; j < d; ++j) {
      dst[b * d + j] = p[j % period];
    }
  }
  return seed;
}

}  // namespace fedcl::attack
