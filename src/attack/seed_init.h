// Attack seed (dummy input) initializers.
//
// The paper (via the CPL framework it builds on) reports that the
// initialization of the dummy input materially changes attack success
// rate and cost, and uses "patterned random" seeds for all
// experiments: a small random patch tiled across the input, which
// gives the optimizer a low-frequency, spatially correlated starting
// point.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace fedcl {
class Rng;
}

namespace fedcl::attack {

enum class SeedInit {
  kPatternedRandom,  // random patch tiled over the input (paper default)
  kUniformRandom,    // i.i.d. U[0,1)
  kConstant,         // all 0.5
};

const char* seed_init_name(SeedInit init);

// shape includes the batch dimension, e.g. {1, H, W, C} or {B, D}.
tensor::Tensor make_attack_seed(const tensor::Shape& shape, SeedInit init,
                                Rng& rng);

}  // namespace fedcl::attack
