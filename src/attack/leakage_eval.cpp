#include "attack/leakage_eval.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "nn/model_zoo.h"

namespace fedcl::attack {

namespace {

void accumulate(LeakageOutcome& outcome, AttackResult result) {
  outcome.per_client.push_back(std::move(result));
}

// Per-client reconstruction quality into the global registry: the RMSE
// series is the telemetry face of the paper's attack-success metric
// (low RMSE = high leakage).
void record_attack(const char* type, const std::string& policy_name,
                   std::int64_t client, const AttackResult& result) {
  auto& registry = telemetry::global_registry();
  const telemetry::Labels labels{{"policy", policy_name}, {"type", type}};
  registry
      .histogram("attack.reconstruction_rmse", telemetry::norm_buckets(),
                 labels)
      .observe(result.reconstruction_distance);
  registry.record_point("attack.reconstruction_rmse", client,
                        result.reconstruction_distance, labels);
  registry.counter("attack.attempts_total", labels).add(1);
  if (result.success) {
    registry.counter("attack.successes_total", labels).add(1);
  }
}

void finalize(LeakageOutcome& outcome) {
  FEDCL_CHECK(!outcome.per_client.empty());
  double dist = 0.0, iters = 0.0;
  std::size_t successes = 0;
  for (const AttackResult& r : outcome.per_client) {
    dist += r.reconstruction_distance;
    iters += r.iterations;
    if (r.success) ++successes;
  }
  const double n = static_cast<double>(outcome.per_client.size());
  outcome.mean_distance = dist / n;
  outcome.mean_iterations = iters / n;
  outcome.success_rate = static_cast<double>(successes) / n;
  outcome.any_success = successes > 0;
}

}  // namespace

LeakageReport evaluate_leakage(const LeakageExperimentConfig& config,
                               const core::PrivacyPolicy& policy) {
  FEDCL_CHECK_GT(config.clients, 0);
  Rng root(config.seed);
  Rng data_rng = root.fork("train-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");

  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(config.bench.train_spec, data_rng));
  data::PartitionSpec part = config.bench.partition;
  part.num_clients = config.clients;
  std::vector<data::ClientData> shards =
      data::partition(train, part, part_rng);

  std::shared_ptr<nn::Sequential> model =
      nn::build_model(config.bench.model, model_rng);
  const TensorList global_weights = model->weights();

  // The paper attacks gradients from the first local iteration, so the
  // observed round update is produced with L=1 and maps back to the
  // batch gradient through the -1/eta scaling the adversary knows.
  fl::LocalTrainConfig local{.local_iterations = 1,
                             .batch_size = config.bench.batch_size,
                             .learning_rate = config.bench.learning_rate};

  LeakageReport report;
  for (std::int64_t ci = 0; ci < config.clients; ++ci) {
    fl::Client client(ci, shards[static_cast<std::size_t>(ci)], local);
    fl::LeakageProbe probe;
    Rng crng = root.fork("round", static_cast<std::uint64_t>(ci));
    fl::ClientRoundOutcome outcome = client.run_round(
        *model, global_weights, policy, /*round=*/0, crng, &probe);
    FEDCL_CHECK(probe.captured);
    if (config.prune_ratio > 0.0) {
      fl::prune_smallest(outcome.update.delta, config.prune_ratio);
    }

    // Restore the intercepted global model for the attacker.
    model->set_weights(global_weights);

    AttackConfig attack_cfg = config.attack;
    attack_cfg.seed = config.attack.seed + static_cast<std::uint64_t>(ci);
    GradientReconstructionAttack attacker(model, attack_cfg);

    // ---- type-0/1: shared round update -> batched gradient ----
    TensorList observed01 = tensor::list::clone(outcome.update.delta);
    tensor::list::scale_(
        observed01,
        static_cast<float>(-1.0 / config.bench.learning_rate));
    AttackResult result01 =
        attacker.run(observed01, probe.first_batch.x.shape(),
                     probe.first_batch.labels, probe.first_batch.x);
    record_attack("type01", policy.name(), ci, result01);
    accumulate(report.type01, std::move(result01));

    // ---- type-2: per-example gradient during local training ----
    AttackResult result2 = attacker.run(
        probe.type2_observed, probe.type2_example.x.shape(),
        probe.type2_example.labels, probe.type2_example.x);
    record_attack("type2", policy.name(), ci, result2);
    accumulate(report.type2, std::move(result2));
  }
  finalize(report.type01);
  finalize(report.type2);
  return report;
}

std::string ascii_image(const tensor::Tensor& image) {
  tensor::Shape s = image.shape();
  if (s.size() == 4) {
    FEDCL_CHECK_EQ(s[0], 1);
    s.erase(s.begin());
  }
  FEDCL_CHECK_EQ(s.size(), 3u) << "expected [H,W,C]";
  const std::int64_t h = s[0], w = s[1], c = s[2];
  static const char kRamp[] = " .:-=+*#%@";
  const float* p = image.data();
  std::ostringstream os;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float v = 0.0f;
      for (std::int64_t ch = 0; ch < c; ++ch) v += p[(y * w + x) * c + ch];
      v /= static_cast<float>(c);
      const int level = std::clamp(static_cast<int>(v * 10.0f), 0, 9);
      os << kRamp[level] << kRamp[level];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fedcl::attack
