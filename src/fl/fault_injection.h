// Fault injection for the federated round engine.
//
// The paper's threat model (Section III) assumes clients are unreliable
// and updates traverse a hostile channel; this module makes those
// failure modes injectable so the server's screening and degradation
// paths can be exercised deterministically. A FaultPlan is a seeded
// schedule: the same (seed, round, client) always draws the same fault,
// independent of query order, so experiments stay bit-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tensor/tensor_list.h"

namespace fedcl {
class Rng;
}

namespace fedcl::fl {

using tensor::list::TensorList;

// The injectable fault taxonomy (DESIGN.md "Fault model" maps each to
// its handling path and stats field).
enum class FaultType {
  kNone = 0,
  kCrash,         // client dies before reporting (transient)
  kStraggler,     // client misses the round deadline (transient)
  kCorruptDelta,  // NaN/Inf poisoning + garbage scaling of the delta
  kBitFlip,       // bits flipped in the sealed wire bytes
  kStaleRound,    // replay of an update from an earlier round
};
inline constexpr std::size_t kFaultTypeCount = 6;

const char* fault_type_name(FaultType type);

struct FaultInjectionConfig {
  // Per (round, client) probability that some fault fires.
  double fault_rate = 0.0;
  // Relative mix of the fault types when one fires; need not sum to 1.
  // A zero weight disables that type.
  double crash_weight = 1.0;
  double straggler_weight = 1.0;
  double corrupt_weight = 1.0;
  double bit_flip_weight = 1.0;
  double stale_round_weight = 1.0;

  bool enabled() const { return fault_rate > 0.0; }
};

// Seeded per-round/per-client fault schedule.
class FaultPlan {
 public:
  // `seed` is folded with (round, client) per draw; pass the experiment
  // seed so the plan is reproducible yet decorrelated from the
  // sampling/noise streams.
  FaultPlan(FaultInjectionConfig config, std::uint64_t seed);

  // The fault (or kNone) scheduled for this client at this round.
  FaultType fault_for(std::int64_t round, std::int64_t client_id) const;

  // The fault drawn for dispatch attempt `attempt` (0-based) of this
  // (round, client). Attempt 0 is identical to fault_for(round, client);
  // retries draw from an independent stream so a re-dispatched client
  // faces the same fault *rate*, not the same fault.
  FaultType fault_for_attempt(std::int64_t round, std::int64_t client_id,
                              int attempt) const;

  const FaultInjectionConfig& config() const { return config_; }

 private:
  FaultInjectionConfig config_;
  std::uint64_t seed_;
  // Cumulative mix weights over the five non-kNone types.
  std::array<double, kFaultTypeCount - 1> cumulative_{};
  double total_weight_ = 0.0;
};

// Realizes kCorruptDelta: poisons a handful of entries with NaN/Inf and
// rescales the rest to garbage magnitude. The result always contains at
// least one non-finite value, so finite-value screening is guaranteed
// to catch it.
void corrupt_delta(TensorList& delta, Rng& rng);

// Realizes kBitFlip: flips `flips` random bits in the serialized (or
// sealed) bytes, exercising the channel's integrity tag.
void flip_random_bits(std::vector<std::uint8_t>& bytes, Rng& rng,
                      int flips = 3);

// Per-round failure accounting, aggregated across the run in
// FlRunResult. Every injected fault lands in exactly one of the
// "handled" counters: crashes and stragglers never report, and the
// remaining faults are screened out before aggregation — so with
// natural dropout and norm screening disabled, handled_total() equals
// injected_total().
struct RoundFailureStats {
  // Injected faults by type.
  std::int64_t injected_crash = 0;
  std::int64_t injected_straggler = 0;
  std::int64_t injected_corrupt = 0;
  std::int64_t injected_bit_flip = 0;
  std::int64_t injected_stale = 0;
  // Natural Bernoulli dropouts (distinct from injected crashes).
  std::int64_t dropouts = 0;
  // Updates rejected by screening, by reason.
  std::int64_t rejected_decode = 0;        // channel open / deserialize
  std::int64_t rejected_shape = 0;         // structural mismatch
  std::int64_t rejected_non_finite = 0;    // NaN/Inf in the delta
  std::int64_t rejected_norm_outlier = 0;  // L2 norm out of band
  std::int64_t rejected_stale = 0;         // wrong-round update
  // Recovery.
  std::int64_t retried_clients = 0;  // replacement clients sampled
  std::int64_t quorum_missed = 0;    // rounds skipped below min_reporting

  // Per-fault *disposition*: every injected fault instance resolves to
  // exactly one of these four, so with natural dropout excluded
  // injected_total() == faults_resolved_total() — the soak-test
  // invariant. (A retried dispatch that faults again is a new injected
  // instance with its own disposition.)
  std::int64_t fault_expired = 0;   // never delivered (no budget/run left)
  std::int64_t fault_screened = 0;  // delivered faulty, screened out, final
  std::int64_t fault_retried = 0;   // superseded by a fresh dispatch attempt
  std::int64_t fault_accepted_stale = 0;  // delivered late, decay-weighted in
  // Total re-dispatch attempts issued by the retry policy.
  std::int64_t retry_attempts = 0;
  // Rounds applied under the reduced-quorum degradation tier.
  std::int64_t reduced_quorum_rounds = 0;

  std::int64_t injected_total() const {
    return injected_crash + injected_straggler + injected_corrupt +
           injected_bit_flip + injected_stale;
  }
  std::int64_t rejected_total() const {
    return rejected_decode + rejected_shape + rejected_non_finite +
           rejected_norm_outlier + rejected_stale;
  }
  // Faults accounted for: never-reported clients plus screened updates.
  std::int64_t handled_total() const {
    return injected_crash + injected_straggler + dropouts +
           rejected_total();
  }
  // Disposition total — equals injected_total() whenever every fault's
  // fate is tracked (the retry/async engines; the legacy sync path
  // also maintains it).
  std::int64_t faults_resolved_total() const {
    return fault_expired + fault_screened + fault_retried +
           fault_accepted_stale;
  }

  void accumulate(const RoundFailureStats& other);
};

}  // namespace fedcl::fl
