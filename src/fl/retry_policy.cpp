#include "fl/retry_policy.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::fl {

const char* degradation_tier_name(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kFullQuorum:
      return "full-quorum";
    case DegradationTier::kReducedQuorum:
      return "reduced-quorum";
    case DegradationTier::kSkipRound:
      return "skip";
  }
  return "unknown";
}

RetryPolicy::RetryPolicy(RetryPolicyConfig config) : config_(config) {
  FEDCL_CHECK_GE(config_.max_attempts, 1);
  FEDCL_CHECK_GE(config_.base_backoff_ms, 0.0);
  FEDCL_CHECK_GE(config_.backoff_multiplier, 1.0);
  FEDCL_CHECK(config_.jitter_frac >= 0.0 && config_.jitter_frac < 1.0)
      << "jitter fraction " << config_.jitter_frac;
  FEDCL_CHECK_GT(config_.soft_deadline_ms, 0.0);
  FEDCL_CHECK_GE(config_.base_latency_ms, 0.0);
  FEDCL_CHECK_GE(config_.straggler_delay_ms, 0.0);
}

bool RetryPolicy::transient(FaultType fault) const {
  switch (fault) {
    case FaultType::kCrash:
    case FaultType::kCorruptDelta:
    case FaultType::kBitFlip:
      return true;
    case FaultType::kNone:
    case FaultType::kStraggler:
    case FaultType::kStaleRound:
      return false;
  }
  return false;
}

double RetryPolicy::backoff_ms(int attempt, Rng& rng) const {
  FEDCL_CHECK_GE(attempt, 1);
  if (attempt == 1) return 0.0;
  const double base =
      config_.base_backoff_ms *
      std::pow(config_.backoff_multiplier, static_cast<double>(attempt - 2));
  const double jitter =
      rng.uniform(1.0 - config_.jitter_frac, 1.0 + config_.jitter_frac);
  return base * jitter;
}

double RetryPolicy::latency_ms(FaultType fault, Rng& rng) const {
  double latency = config_.base_latency_ms * rng.uniform(0.5, 1.5);
  if (fault == FaultType::kStraggler) {
    latency += config_.straggler_delay_ms * rng.uniform(0.5, 1.5);
  }
  return latency;
}

std::int64_t RetryPolicy::rounds_late(double elapsed_ms) const {
  if (elapsed_ms <= config_.soft_deadline_ms) return 0;
  return static_cast<std::int64_t>(elapsed_ms / config_.soft_deadline_ms);
}

}  // namespace fedcl::fl
