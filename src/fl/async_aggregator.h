// Asynchronous, buffered FedSGD aggregation (FedBuff-style).
//
// The synchronous engine holds every round's surviving updates in
// memory, screens them as a batch, and applies one mean per round. This
// aggregator instead *streams*: each arriving update is screened,
// staleness-weighted, and folded into a single running accumulator —
// bounded memory (one TensorList plus one weight sum) no matter how
// many updates are buffered — and the aggregate is applied as soon as
// `min_to_apply` updates have been folded in, without waiting for the
// rest of the sampled cohort. Late updates from earlier rounds are not
// rejected: an update `s` rounds behind enters the mean with weight
// base_weight / (1 + s)^alpha, the standard staleness-decay of the
// asynchronous federated-optimization literature, and only updates
// older than `max_staleness` rounds (or tagged with a future round)
// are screened out.
//
// offer() is thread-safe: in the parallel round engine every worker
// thread delivers straight into the shared accumulator. Note the
// determinism boundary that buys: for a fixed seed the engine is
// bitwise reproducible on a serialized executor (updates fold in
// client order), while across different thread counts the fold order —
// and therefore float rounding — may differ (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/rng.h"
#include "core/policy.h"
#include "fl/protocol.h"
#include "fl/update_screening.h"
#include "tensor/shape.h"

namespace fedcl::fl {

struct AsyncAggregatorConfig {
  // M: buffered updates that trigger an apply. The trainer defaults
  // this to max(1, clients_per_round / 2) when left at 0.
  std::int64_t min_to_apply = 0;
  // Staleness-decay exponent: weight = 1 / (1 + staleness)^alpha.
  // 0 treats stale updates like fresh ones.
  double staleness_alpha = 0.5;
  // Oldest acceptable round tag, in rounds behind the current round.
  std::int64_t max_staleness = 8;
  // Per-update screening (structural / finite / absolute-norm; the
  // median-relative band needs a population and does not apply to the
  // streaming path).
  ScreeningConfig screening;
};

class AsyncAggregator {
 public:
  // What happened to one offered update. `applied` reports whether this
  // offer tripped the min_to_apply threshold and advanced the model.
  struct OfferResult {
    bool accepted = false;
    bool applied = false;
    std::int64_t staleness = 0;           // valid when accepted
    std::optional<RejectReason> reject;   // set when !accepted
  };

  // `policy` and `groups` must outlive the aggregator; the policy's
  // server-side sanitization hook runs on every accepted update before
  // it is folded in (the same per-update placement as the synchronous
  // Server). `rng` drives that hook, consumed in fold order.
  AsyncAggregator(TensorList initial_weights, AsyncAggregatorConfig config,
                  const core::PrivacyPolicy& policy,
                  const dp::ParamGroups& groups, Rng rng);

  // Screens, weights, and folds `update` into the accumulator;
  // `now_round` is the engine's current round clock (staleness =
  // now_round - update.round) and `base_weight` the caller's
  // aggregation weight (1, or the client data size). Thread-safe.
  OfferResult offer(ClientUpdate update, std::int64_t now_round,
                    double base_weight);

  // Applies whatever is buffered regardless of the threshold (the
  // end-of-round degradation flush and the end-of-run drain). Returns
  // true when something was applied. Thread-safe.
  bool flush();

  // Deep copy of the current global weights (what a newly dispatched
  // client trains against). Thread-safe.
  TensorList weights_snapshot() const;

  // Number of aggregate applications so far (the model version).
  std::int64_t applies() const;
  // Updates folded in since the last application.
  std::int64_t buffered() const;
  // Whether the *last* application tripped the threshold (full) or was
  // a below-threshold flush (reduced).
  std::int64_t min_to_apply() const { return config_.min_to_apply; }

  const AsyncAggregatorConfig& config() const { return config_; }

 private:
  // Applies accumulator_ / weight_sum_ to weights_. Caller holds mutex_.
  void apply_locked(const char* trigger);

  AsyncAggregatorConfig config_;
  const core::PrivacyPolicy& policy_;
  const dp::ParamGroups& groups_;
  UpdateScreener screener_;
  Rng rng_;

  mutable std::mutex mutex_;
  TensorList weights_;
  std::vector<tensor::Shape> expected_shapes_;
  TensorList accumulator_;   // sum of w_i * delta_i since the last apply
  double weight_sum_ = 0.0;  // sum of w_i since the last apply
  std::int64_t buffered_ = 0;
  std::int64_t applies_ = 0;
  ScreeningReport screening_totals_;
};

}  // namespace fedcl::fl
