#include "fl/server.h"

#include "common/error.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "tensor/shape.h"

namespace fedcl::fl {

Server::Server(TensorList initial_weights, AggregationOptions options)
    : weights_(std::move(initial_weights)),
      options_(options),
      screener_(options.screening) {
  FEDCL_CHECK(!weights_.empty()) << "server needs a model";
  FEDCL_CHECK(options_.server_momentum >= 0.0 &&
              options_.server_momentum < 1.0)
      << "server momentum " << options_.server_momentum;
  FEDCL_CHECK_GE(options_.min_reporting, 1);
  FEDCL_CHECK_GE(options_.reduced_min_reporting, 0);
  FEDCL_CHECK_LE(options_.reduced_min_reporting, options_.min_reporting)
      << "reduced quorum above the full quorum";
}

std::vector<std::size_t> Server::sample_clients(std::size_t total_clients,
                                                std::size_t clients_per_round,
                                                Rng& rng) const {
  FEDCL_CHECK_GT(clients_per_round, 0u);
  FEDCL_CHECK_LE(clients_per_round, total_clients);
  return rng.sample_without_replacement(total_clients, clients_per_round);
}

AggregateOutcome Server::aggregate(std::vector<ClientUpdate> updates,
                                   const core::PrivacyPolicy& policy,
                                   const dp::ParamGroups& groups, Rng& rng,
                                   const std::vector<double>* update_weights) {
  if (update_weights != nullptr) {
    FEDCL_CHECK_EQ(update_weights->size(), updates.size());
  }

  // Screen every received update; survivors carry their aggregation
  // weight along.
  std::vector<double> weights_buffer;
  std::vector<double>* kept_weights = nullptr;
  if (update_weights != nullptr) {
    weights_buffer = *update_weights;
    kept_weights = &weights_buffer;
  }
  AggregateOutcome outcome;
  ScreeningReport& report = outcome.screening;
  std::vector<ClientUpdate> accepted =
      screener_.screen(std::move(updates), tensor::list::shapes_of(weights_),
                       round_, report, kept_weights);
  if (report.accepted >= options_.min_reporting) {
    outcome.tier = DegradationTier::kFullQuorum;
  } else if (options_.reduced_min_reporting > 0 &&
             report.accepted >= options_.reduced_min_reporting) {
    // Degraded tier: apply anyway and surface how much wider the
    // per-update noise is than the full quorum would have left it.
    outcome.tier = DegradationTier::kReducedQuorum;
    outcome.noise_widening = static_cast<double>(options_.min_reporting) /
                             static_cast<double>(report.accepted);
  } else {
    // Quorum missed: leave the model and round untouched; the caller
    // records the skip.
    return outcome;
  }

  double total_weight = 0.0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    const double w = kept_weights != nullptr ? (*kept_weights)[i] : 1.0;
    FEDCL_CHECK_GE(w, 0.0) << "negative aggregation weight";
    total_weight += w;
  }
  FEDCL_CHECK_GT(total_weight, 0.0) << "all aggregation weights zero";

  TensorList mean_delta = tensor::list::zeros_like(weights_);
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    ClientUpdate& u = accepted[i];
    policy.sanitize_at_server(u.delta, groups, round_, rng);
    const double w = kept_weights != nullptr ? (*kept_weights)[i] : 1.0;
    tensor::list::add_(mean_delta, u.delta,
                       static_cast<float>(w / total_weight));
  }

  if (options_.server_momentum > 0.0) {
    if (velocity_.empty()) velocity_ = tensor::list::zeros_like(weights_);
    tensor::list::scale_(velocity_,
                         static_cast<float>(options_.server_momentum));
    tensor::list::add_(velocity_, mean_delta, 1.0f);
    tensor::list::add_(weights_, velocity_, 1.0f);
  } else {
    tensor::list::add_(weights_, mean_delta, 1.0f);
  }
  ++round_;
  outcome.applied = true;
  telemetry::global_registry()
      .counter("fl.server.updates_accepted_total")
      .add(report.accepted);
  return outcome;
}

void Server::apply_mean(const TensorList& mean_delta, std::int64_t accepted) {
  if (options_.server_momentum > 0.0) {
    if (velocity_.empty()) velocity_ = tensor::list::zeros_like(weights_);
    tensor::list::scale_(velocity_,
                         static_cast<float>(options_.server_momentum));
    tensor::list::add_(velocity_, mean_delta, 1.0f);
    tensor::list::add_(weights_, velocity_, 1.0f);
  } else {
    tensor::list::add_(weights_, mean_delta, 1.0f);
  }
  ++round_;
  telemetry::global_registry()
      .counter("fl.server.updates_accepted_total")
      .add(accepted);
}

void Server::skip_round() {
  ++round_;
  telemetry::global_registry().counter("fl.server.rounds_skipped_total").add(1);
}

}  // namespace fedcl::fl
