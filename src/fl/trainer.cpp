#include "fl/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/scale_engine.h"
#include "fl/server.h"
#include "fl/virtual_client.h"
#include "nn/grad_utils.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"

namespace fedcl::fl {

namespace {

// Stochastic layers (Dropout) hold their own RNG stream inside the
// model, so sharing scratch models across differently-scheduled
// clients would make the stream order depend on the schedule.
bool has_stochastic_layer(const nn::Sequential& model) {
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (dynamic_cast<const nn::Dropout*>(&model.layer(i)) != nullptr)
      return true;
  }
  return false;
}

// Every drawn fault instance is counted as injected exactly once, at
// draw time, so the disposition bijection (fault_injection.h) can be
// checked against injected_total().
void count_injected_fault(RoundFailureStats& stats, FaultType fault) {
  switch (fault) {
    case FaultType::kCrash:
      ++stats.injected_crash;
      return;
    case FaultType::kStraggler:
      ++stats.injected_straggler;
      return;
    case FaultType::kCorruptDelta:
      ++stats.injected_corrupt;
      return;
    case FaultType::kBitFlip:
      ++stats.injected_bit_flip;
      return;
    case FaultType::kStaleRound:
      ++stats.injected_stale;
      return;
    case FaultType::kNone:
      return;
  }
}

}  // namespace

FlRunResult run_experiment(const FlExperimentConfig& config,
                           const core::PrivacyPolicy& policy) {
  if (config.streaming_aggregation) {
    return run_streaming_experiment(config, policy);
  }
  FEDCL_CHECK_GT(config.total_clients, 0);
  FEDCL_CHECK_GT(config.clients_per_round, 0);
  FEDCL_CHECK_LE(config.clients_per_round, config.total_clients);
  FEDCL_CHECK_GE(config.min_reporting, 1);
  const std::int64_t rounds = config.effective_rounds();
  const std::int64_t local_iterations = config.effective_local_iterations();
  FEDCL_CHECK_GT(rounds, 0);

  Rng root(config.seed);
  Rng data_rng = root.fork("train-data");
  Rng val_rng = root.fork("val-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");
  Rng round_rng = root.fork("rounds");

  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(config.bench.train_spec, data_rng));
  data::Dataset val =
      data::generate_synthetic(config.bench.val_spec, val_rng);

  data::PartitionSpec part = config.bench.partition;
  part.num_clients = config.total_clients;
  LocalTrainConfig local{.local_iterations = local_iterations,
                         .batch_size = config.bench.batch_size,
                         .learning_rate = config.bench.learning_rate,
                         .lr_decay_per_round =
                             config.bench.lr_decay_per_round};
  // Virtualized client model: shards, fault schedules, and per-round
  // streams are synthesized on demand from (seed, client_id), so setup
  // is O(dataset) and a round touches only the clients it sampled —
  // never O(total_clients) storage (fl/virtual_client.h; bitwise
  // equality with eager construction is pinned in property_test).
  const VirtualClientProvider provider(train, part, part_rng, local,
                                       config.faults, config.seed);
  const std::size_t total_clients =
      static_cast<std::size_t>(config.total_clients);

  // The main scratch model serves serial training and evaluation; its
  // weights are overwritten from the global model each run_round.
  std::shared_ptr<nn::Sequential> model =
      nn::build_model(config.bench.model, model_rng);
  const dp::ParamGroups groups = to_param_groups(model->layer_groups());

  // Parallel client execution: correct only when clients are
  // independent given their forked RNG streams — which order-dependent
  // policies and in-model RNG state (Dropout) break, so those fall
  // back to the serial schedule.
  ThreadPool& pool = compute_pool();
  const bool parallel_clients = config.parallel_clients && pool.size() > 1 &&
                                !policy.order_dependent() &&
                                !has_stochastic_layer(*model);
  // One private scratch model per concurrent training slot. Their
  // initial weights are irrelevant (run_round installs the global
  // weights first), so each is built from a throwaway fork.
  std::vector<std::shared_ptr<nn::Sequential>> slot_models;
  if (parallel_clients) {
    const std::size_t slots =
        std::min(pool.size(),
                 static_cast<std::size_t>(config.clients_per_round));
    slot_models.reserve(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      Rng scratch_rng = root.fork("scratch-model", s);
      slot_models.push_back(nn::build_model(config.bench.model, scratch_rng));
    }
  }
  FEDCL_CHECK(config.client_dropout >= 0.0 && config.client_dropout < 1.0)
      << "client dropout " << config.client_dropout;
  Server server(model->weights(),
                {.server_momentum = config.server_momentum,
                 .screening = config.screening,
                 .min_reporting = config.min_reporting,
                 .reduced_min_reporting = config.reduced_min_reporting});
  const FaultPlan& plan = provider.fault_plan();
  const RetryPolicy rpolicy(config.retry);
  // Streaming accumulator for the async engine; screening comes from
  // the shared config (one source of truth).
  std::optional<AsyncAggregator> agg;
  if (config.async_mode) {
    AsyncAggregatorConfig async_cfg = config.async;
    if (async_cfg.min_to_apply <= 0) {
      async_cfg.min_to_apply =
          std::max<std::int64_t>(1, config.clients_per_round / 2);
    }
    async_cfg.screening = config.screening;
    agg.emplace(model->weights(), async_cfg, policy, groups,
                root.fork("async-aggregate"));
  }

  // One run owns the process-global registry: zero the aggregates so
  // the snapshot this run returns describes this run only (attached
  // sinks and outstanding instrument references survive the reset).
  telemetry::Registry& registry = telemetry::global_registry();
  registry.reset();

  FlRunResult result;
  result.privacy_setup = {
      .total_examples = train->size(),
      .batch_size = config.bench.batch_size,
      .clients_per_round = config.clients_per_round,
      .total_clients = config.total_clients,
      .local_iterations = local_iterations,
      .rounds = rounds,
      .noise_scale = config.noise_scale,
      .delta = config.delta,
  };
  // Cumulative per-round privacy budget, precomputed in one accountant
  // pass (bitwise identical to calling epsilon() after every round).
  // Skipped when the setup falls outside the accountant's domain
  // (sigma <= 0, or B*Kt exceeding the dataset).
  core::PrivacyRoundSeries eps_series;
  const double instance_q =
      static_cast<double>(config.bench.batch_size * config.clients_per_round) /
      static_cast<double>(train->size());
  if (config.noise_scale > 0.0 && instance_q <= 1.0) {
    eps_series = core::epsilon_round_series(result.privacy_setup);
    registry.gauge("dp.delta").set(config.delta);
  }

  double total_ms = 0.0;
  std::int64_t total_local_iters = 0;

  const telemetry::Labels policy_labels{{"policy", policy.name()}};
  // Clip-decision totals are counted inside the policies; the delta
  // across one round gives that round's clip fraction without the
  // policies having to know about rounds.
  auto clip_totals = [&registry, &policy_labels]() {
    const std::int64_t total =
        registry.counter("dp.clip.groups_total", policy_labels).value() +
        registry.counter("dp.clip.updates_total", policy_labels).value();
    const std::int64_t clipped =
        registry.counter("dp.clip.groups_clipped_total", policy_labels)
            .value() +
        registry.counter("dp.clip.updates_clipped_total", policy_labels)
            .value();
    return std::pair<std::int64_t, std::int64_t>(total, clipped);
  };

  if (config.async_mode) {
    // ================ asynchronous (FedBuff) engine ================
    // One round is one soft_deadline_ms window on the virtual latency
    // clock. Each round: deliver the late arrivals due now, sample a
    // cohort, resolve every client's dispatch-attempt chain (faults,
    // latency, backoff) serially on the virtual clock, train the
    // survivors (in parallel when allowed), and stream their updates
    // into the shared accumulator — which applies itself as soon as
    // min_to_apply updates are buffered. A round ending below the
    // threshold flushes its partial buffer (reduced-quorum tier)
    // instead of dropping the work.
    struct PendingArrival {
      std::int64_t due_round = 0;
      std::int64_t dispatch_round = 0;
      std::size_t ci = 0;
      FaultType fault = FaultType::kNone;  // straggler/etc. that delayed it
      ClientUpdate update;
      double weight = 1.0;
    };
    std::vector<PendingArrival> pending;

    for (std::int64_t t = 0; t < rounds; ++t) {
      // Same (seed, round) trace id the serving stack derives, so an
      // in-process run and a served run of one experiment produce
      // directly comparable traces (--trace-out, docs/METRICS.md).
      telemetry::TraceScope trace(
          telemetry::round_trace_root(config.seed, t));
      telemetry::SpanTimer round_span(registry, "fl.round", {}, t);
      const std::pair<std::int64_t, std::int64_t> clip_before = clip_totals();
      RoundRecord record;
      record.round = t;
      RoundFailureStats& stats = record.failures;
      const std::int64_t applies_before = agg->applies();
      std::int64_t round_accepted = 0;
      std::int64_t round_rejected = 0;

      // Serial disposition tally for one offer: the injected instance
      // (if any) behind an accepted delivery was absorbed stale; behind
      // a rejected one it was screened out.
      auto tally_offer = [&](const AsyncAggregator::OfferResult& res,
                             FaultType fault) {
        if (res.accepted) {
          ++round_accepted;
          if (fault != FaultType::kNone) ++stats.fault_accepted_stale;
          return;
        }
        ++round_rejected;
        if (fault != FaultType::kNone) ++stats.fault_screened;
        if (res.reject.has_value()) {
          switch (*res.reject) {
            case RejectReason::kShapeMismatch:
              ++stats.rejected_shape;
              break;
            case RejectReason::kNonFinite:
              ++stats.rejected_non_finite;
              break;
            case RejectReason::kNormOutlier:
              ++stats.rejected_norm_outlier;
              break;
            case RejectReason::kStaleRound:
              ++stats.rejected_stale;
              break;
          }
        }
      };

      // Phase 0 (serial): late arrivals due this round, in a
      // deterministic (due, dispatch, client) order.
      std::stable_sort(pending.begin(), pending.end(),
                       [](const PendingArrival& a, const PendingArrival& b) {
                         return std::tie(a.due_round, a.dispatch_round,
                                         a.ci) < std::tie(b.due_round,
                                                          b.dispatch_round,
                                                          b.ci);
                       });
      std::vector<PendingArrival> still_pending;
      for (PendingArrival& p : pending) {
        if (p.due_round > t) {
          still_pending.push_back(std::move(p));
          continue;
        }
        tally_offer(agg->offer(std::move(p.update), t, p.weight), p.fault);
      }
      pending = std::move(still_pending);

      // Phase 1: cohort sampling — the same stream as the sync engine.
      Rng sample_rng =
          round_rng.fork("sample", static_cast<std::uint64_t>(t));
      std::vector<std::size_t> chosen = server.sample_clients(
          total_clients, static_cast<std::size_t>(config.clients_per_round),
          sample_rng);
      Rng drop_rng =
          round_rng.fork("dropout", static_cast<std::uint64_t>(t));

      // Phase 2 (serial): resolve each client's dispatch-attempt chain
      // on the virtual clock. Every fault draw, latency draw, and
      // backoff happens here, in client order.
      struct AsyncAttempt {
        std::size_t ci = 0;
        FaultType fault = FaultType::kNone;  // final-attempt fault
        bool run = false;
        std::int64_t rounds_late = 0;
        double weight = 1.0;
        ClientRoundOutcome outcome;
        bool decode_failed = false;
        bool offered = false;
        AsyncAggregator::OfferResult offer;
        std::optional<ClientUpdate> late_update;
      };
      std::vector<AsyncAttempt> attempts;
      attempts.reserve(chosen.size());
      for (std::size_t ci : chosen) {
        AsyncAttempt a;
        a.ci = ci;
        if (config.client_dropout > 0.0 &&
            drop_rng.bernoulli(config.client_dropout)) {
          ++stats.dropouts;  // offline: never dispatched
          attempts.push_back(std::move(a));
          continue;
        }
        Rng lat_rng = round_rng.fork(
            "latency", static_cast<std::uint64_t>(
                           t * 1000003 + static_cast<std::int64_t>(ci)));
        double elapsed_ms = 0.0;
        int attempt = 0;
        for (;;) {
          const FaultType f = plan.fault_for_attempt(
              t, static_cast<std::int64_t>(ci), attempt);
          count_injected_fault(stats, f);
          const double lat = rpolicy.latency_ms(f, lat_rng);
          if (rpolicy.transient(f) &&
              attempt + 1 < config.retry.max_attempts) {
            // Re-dispatch: a crash is detected at the soft deadline, a
            // corrupt/damaged payload when the server rejects it.
            ++stats.fault_retried;
            ++stats.retry_attempts;
            elapsed_ms += f == FaultType::kCrash
                              ? config.retry.soft_deadline_ms
                              : lat;
            ++attempt;
            elapsed_ms += rpolicy.backoff_ms(attempt + 1, lat_rng);
            continue;
          }
          if (f == FaultType::kCrash) {
            ++stats.fault_expired;  // out of budget, never reports
            break;
          }
          a.fault = f;
          a.run = true;
          elapsed_ms += lat;
          a.rounds_late = rpolicy.rounds_late(elapsed_ms);
          break;
        }
        attempts.push_back(std::move(a));
      }

      // Phase 3: train the survivors and stream their updates in. An
      // on-time update is offered straight from its worker — the shared
      // accumulator is the designed contention point — while a late one
      // is stashed for its due round.
      const TensorList async_weights = agg->weights_snapshot();
      auto process_one = [&](AsyncAttempt& a, nn::Sequential& scratch) {
        Rng crng = VirtualClientProvider::training_stream(
            round_rng, t, static_cast<std::int64_t>(a.ci));
        const Client client =
            provider.client(static_cast<std::int64_t>(a.ci));
        a.outcome =
            client.run_round(scratch, async_weights, policy, t, crng);
        if (config.prune_ratio > 0.0) {
          prune_smallest(a.outcome.update.delta, config.prune_ratio);
        }
        // Per-(round, client) fault stream: corruption draws stay
        // schedule-independent even with parallel workers.
        Rng frng = VirtualClientProvider::delivery_fault_stream(
            round_rng, t, static_cast<std::int64_t>(a.ci));
        if (a.fault == FaultType::kCorruptDelta) {
          corrupt_delta(a.outcome.update.delta, frng);
        } else if (a.fault == FaultType::kStaleRound) {
          a.outcome.update.round = t - 1;  // replay of the prior round
        }
        SecureChannel channel(
            client_channel_key(config.seed, static_cast<std::int64_t>(a.ci)));
        std::vector<std::uint8_t> wire =
            channel.seal(serialize_update(a.outcome.update));
        if (a.fault == FaultType::kBitFlip) {
          flip_random_bits(wire, frng);
        }
        Result<std::vector<std::uint8_t>> opened =
            channel.open(std::move(wire));
        if (!opened.ok()) {
          a.decode_failed = true;
          return;
        }
        Result<ClientUpdate> decoded = deserialize_update(opened.value());
        if (!decoded.ok()) {
          a.decode_failed = true;
          return;
        }
        a.weight =
            config.weight_by_data_size
                ? static_cast<double>(
                      provider.data_size(static_cast<std::int64_t>(a.ci)))
                : 1.0;
        if (a.rounds_late == 0) {
          a.offer = agg->offer(decoded.take(), t, a.weight);
          a.offered = true;
        } else {
          a.late_update = decoded.take();
        }
      };

      {
        telemetry::SpanTimer train_span(
            registry, "fl.phase",
            telemetry::Labels{{"phase", "local_train"}}, t);
        std::vector<std::size_t> runnable;
        for (std::size_t i = 0; i < attempts.size(); ++i) {
          if (attempts[i].run) runnable.push_back(i);
        }
        if (!parallel_clients || runnable.size() <= 1) {
          for (std::size_t i : runnable) process_one(attempts[i], *model);
        } else {
          std::mutex slot_mutex;
          std::vector<nn::Sequential*> free_slots;
          free_slots.reserve(slot_models.size());
          for (const auto& m : slot_models) free_slots.push_back(m.get());
          // Pool threads have an empty trace stack; adopt the phase
          // span's context so client-side spans parent under it.
          const telemetry::TraceContext train_ctx =
              telemetry::current_trace();
          pool.parallel_for(runnable.size(), [&](std::size_t k) {
            telemetry::TraceScope adopt(train_ctx);
            nn::Sequential* scratch = nullptr;
            {
              std::lock_guard<std::mutex> lock(slot_mutex);
              FEDCL_CHECK(!free_slots.empty());
              scratch = free_slots.back();
              free_slots.pop_back();
            }
            process_one(attempts[runnable[k]], *scratch);
            std::lock_guard<std::mutex> lock(slot_mutex);
            free_slots.push_back(scratch);
          });
        }
      }

      // Phase 4 (serial, client order): metrics and dispositions.
      double norm_sum = 0.0, ms_sum = 0.0;
      std::size_t trained = 0;
      for (AsyncAttempt& a : attempts) {
        if (!a.run) continue;
        norm_sum += a.outcome.first_iteration_grad_norm;
        ms_sum += a.outcome.local_train_ms;
        ++trained;
        if (a.decode_failed) {
          ++stats.rejected_decode;
          ++round_rejected;
          if (a.fault != FaultType::kNone) ++stats.fault_screened;
          continue;
        }
        if (a.offered) {
          tally_offer(a.offer, a.fault);
        } else if (a.late_update.has_value()) {
          PendingArrival p;
          p.due_round = t + a.rounds_late;
          p.dispatch_round = t;
          p.ci = a.ci;
          p.fault = a.fault;
          p.update = std::move(*a.late_update);
          p.weight = a.weight;
          pending.push_back(std::move(p));
        }
      }

      // End of round: quorum applies happened inside offer(); a round
      // ending below the threshold folds its partial buffer in as the
      // reduced-quorum tier rather than dropping the work.
      bool applied = agg->applies() > applies_before;
      if (!applied && agg->buffered() > 0) {
        const double widening = static_cast<double>(agg->min_to_apply()) /
                                static_cast<double>(agg->buffered());
        agg->flush();
        applied = true;
        ++stats.reduced_quorum_rounds;
        ++result.reduced_quorum_rounds;
        result.max_noise_widening =
            std::max(result.max_noise_widening, widening);
        registry
            .counter("fl.round.degraded_total",
                     {{"tier", degradation_tier_name(
                                   DegradationTier::kReducedQuorum)}})
            .add(1);
        registry.record_point("fl.round.noise_widening", t, widening);
      }

      if (trained > 0) {
        record.mean_grad_norm = norm_sum / static_cast<double>(trained);
        record.mean_client_ms = ms_sum / static_cast<double>(trained);
        total_ms += ms_sum;
        total_local_iters +=
            static_cast<std::int64_t>(trained) * local_iterations;
      }

      // Per-round telemetry, mirroring the sync engine.
      const std::pair<std::int64_t, std::int64_t> clip_after = clip_totals();
      const std::int64_t clip_delta = clip_after.first - clip_before.first;
      if (clip_delta > 0) {
        registry.record_point(
            "fl.round.clip_fraction", t,
            static_cast<double>(clip_after.second - clip_before.second) /
                static_cast<double>(clip_delta),
            policy_labels);
      }
      if (trained > 0) {
        registry.record_point("fl.round.grad_norm_mean", t,
                              record.mean_grad_norm);
      }
      registry.record_point("fl.round.accepted", t,
                            static_cast<double>(round_accepted));
      registry.record_point("fl.round.rejected", t,
                            static_cast<double>(round_rejected));
      if (!eps_series.instance_epsilon.empty()) {
        const double inst_eps =
            eps_series.instance_epsilon[static_cast<std::size_t>(t)];
        const double client_eps =
            eps_series.client_epsilon[static_cast<std::size_t>(t)];
        registry.gauge("dp.epsilon", {{"level", "instance"}}).set(inst_eps);
        registry.gauge("dp.epsilon", {{"level", "client"}}).set(client_eps);
        registry.record_point("dp.epsilon", t, inst_eps,
                              {{"level", "instance"}});
        registry.record_point("dp.epsilon", t, client_eps,
                              {{"level", "client"}});
      }
      auto count_fault = [&registry](const char* type, std::int64_t n) {
        if (n > 0) {
          registry.counter("fl.faults.injected_total", {{"type", type}})
              .add(n);
        }
      };
      count_fault("crash", stats.injected_crash);
      count_fault("straggler", stats.injected_straggler);
      count_fault("corrupt", stats.injected_corrupt);
      count_fault("bit-flip", stats.injected_bit_flip);
      count_fault("stale", stats.injected_stale);
      if (stats.dropouts > 0) {
        registry.counter("fl.client.dropouts_total").add(stats.dropouts);
      }
      if (stats.rejected_decode > 0) {
        registry.counter("fl.transport.rejected_decode_total")
            .add(stats.rejected_decode);
      }
      if (stats.retry_attempts > 0) {
        registry.counter("fl.retry.attempts_total").add(stats.retry_attempts);
      }
      if (stats.fault_expired > 0) {
        registry.counter("fl.retry.expired_total").add(stats.fault_expired);
      }

      if (!applied) {
        // Nothing arrived and nothing was buffered: a genuinely dropped
        // round.
        ++result.dropped_rounds;
        ++stats.quorum_missed;
        registry.counter("fl.round.quorum_missed_total").add(1);
        record.accuracy = std::nan("");
      } else {
        const bool eval_now =
            (config.eval_every > 0 && (t + 1) % config.eval_every == 0) ||
            t + 1 == rounds;
        if (eval_now) {
          telemetry::SpanTimer eval_span(registry, "fl.phase",
                                         {{"phase", "eval"}}, t);
          model->set_weights(agg->weights_snapshot());
          record.accuracy =
              nn::evaluate_accuracy(*model, val.features(), val.labels());
          registry.record_point("fl.round.accuracy", t, record.accuracy);
          FEDCL_LOG(Debug) << config.bench.name << " " << policy.name()
                           << " async round " << (t + 1) << "/" << rounds
                           << " acc=" << record.accuracy;
        } else {
          record.accuracy = std::nan("");
        }
      }
      result.total_failures.accumulate(stats);
      result.history.push_back(record);
    }

    // End of run: arrivals scheduled past the horizon expire, and the
    // last partial buffer is drained into the model.
    RoundFailureStats drain;
    for (const PendingArrival& p : pending) {
      if (p.fault != FaultType::kNone) ++drain.fault_expired;
    }
    if (drain.fault_expired > 0) {
      registry.counter("fl.retry.expired_total").add(drain.fault_expired);
    }
    result.total_failures.accumulate(drain);
    pending.clear();
    agg->flush();

    result.async_applies = agg->applies();
    result.final_weights = agg->weights_snapshot();
    model->set_weights(result.final_weights);
    result.final_accuracy =
        nn::evaluate_accuracy(*model, val.features(), val.labels());
    result.ms_per_local_iteration =
        total_local_iters > 0
            ? total_ms / static_cast<double>(total_local_iters)
            : 0.0;
    result.completed_rounds = rounds - result.dropped_rounds;
    registry.flush_sinks();
    result.telemetry = registry.snapshot();
    return result;
  }

  for (std::int64_t t = 0; t < rounds; ++t) {
    telemetry::TraceScope trace(
        telemetry::round_trace_root(config.seed, t));
    telemetry::SpanTimer round_span(registry, "fl.round", {}, t);
    const std::pair<std::int64_t, std::int64_t> clip_before = clip_totals();
    Rng sample_rng = round_rng.fork("sample", static_cast<std::uint64_t>(t));
    std::vector<std::size_t> chosen = server.sample_clients(
        total_clients, static_cast<std::size_t>(config.clients_per_round),
        sample_rng);

    std::vector<ClientUpdate> updates;
    std::vector<double> update_weights;
    updates.reserve(chosen.size());
    RoundRecord record;
    record.round = t;
    RoundFailureStats& stats = record.failures;
    double norm_sum = 0.0, ms_sum = 0.0;
    std::size_t trained = 0;
    std::int64_t transient_failed = 0;
    Rng drop_rng = round_rng.fork("dropout", static_cast<std::uint64_t>(t));
    Rng fault_rng = round_rng.fork("faults", static_cast<std::uint64_t>(t));

    // Each client attempt is phase-split so the round stays bitwise
    // deterministic under any schedule:
    //  1. plan    (serial)   — dropout draws and fault lookups, in
    //                          client order (the shared drop_rng).
    //  2. train   (parallel) — local training from the client's own
    //                          (round, client)-forked stream on a
    //                          private scratch model.
    //  3. deliver (serial)   — metrics, fault corruption (the shared
    //                          fault_rng), transport, in client order.
    struct Attempt {
      std::size_t ci = 0;
      FaultType fault = FaultType::kNone;
      int attempt = 0;   // dispatch attempts already consumed (0-based)
      bool run = false;  // survived dropout / crash / straggler
      ClientRoundOutcome outcome;
    };

    auto plan_attempts = [&](const std::vector<std::size_t>& cis) {
      std::vector<Attempt> attempts;
      attempts.reserve(cis.size());
      for (std::size_t ci : cis) {
        Attempt a;
        a.ci = ci;
        if (config.client_dropout > 0.0 &&
            drop_rng.bernoulli(config.client_dropout)) {
          ++stats.dropouts;  // this client never reports back
          ++transient_failed;
        } else {
          a.fault = plan.fault_for(t, static_cast<std::int64_t>(ci));
          // A crashed dispatch is re-issued while the attempt budget
          // lasts (retry_policy.h); every redraw is a fresh injected
          // instance with its own disposition.
          while (a.fault == FaultType::kCrash &&
                 a.attempt + 1 < config.retry.max_attempts) {
            ++stats.injected_crash;
            ++stats.fault_retried;
            ++stats.retry_attempts;
            ++a.attempt;
            a.fault = plan.fault_for_attempt(
                t, static_cast<std::int64_t>(ci), a.attempt);
          }
          if (a.fault == FaultType::kCrash) {
            ++stats.injected_crash;  // dies before reporting
            ++stats.fault_expired;
            ++transient_failed;
          } else if (a.fault == FaultType::kStraggler) {
            ++stats.injected_straggler;  // misses the round deadline
            ++stats.fault_expired;
            ++transient_failed;
          } else {
            a.run = true;
          }
        }
        attempts.push_back(std::move(a));
      }
      return attempts;
    };

    auto train_attempts = [&](std::vector<Attempt>& attempts) {
      std::vector<std::size_t> runnable;
      for (std::size_t i = 0; i < attempts.size(); ++i) {
        if (attempts[i].run) runnable.push_back(i);
      }
      auto train_one = [&](Attempt& a, nn::Sequential& scratch) {
        Rng crng = VirtualClientProvider::training_stream(
            round_rng, t, static_cast<std::int64_t>(a.ci));
        const Client client =
            provider.client(static_cast<std::int64_t>(a.ci));
        a.outcome = client.run_round(scratch, server.weights(),
                                     policy, t, crng);
      };
      if (!parallel_clients || runnable.size() <= 1) {
        for (std::size_t i : runnable) train_one(attempts[i], *model);
        return;
      }
      // Scratch models are interchangeable (run_round installs the
      // global weights first), so a checkout stack suffices; the
      // concurrency level never exceeds the slot count.
      std::mutex slot_mutex;
      std::vector<nn::Sequential*> free_slots;
      free_slots.reserve(slot_models.size());
      for (const auto& m : slot_models) free_slots.push_back(m.get());
      // Adopt the caller's trace context on each pool thread so the
      // per-client spans parent under the local_train phase span.
      const telemetry::TraceContext train_ctx = telemetry::current_trace();
      pool.parallel_for(runnable.size(), [&](std::size_t k) {
        telemetry::TraceScope adopt(train_ctx);
        nn::Sequential* scratch = nullptr;
        {
          std::lock_guard<std::mutex> lock(slot_mutex);
          FEDCL_CHECK(!free_slots.empty());
          scratch = free_slots.back();
          free_slots.pop_back();
        }
        train_one(attempts[runnable[k]], *scratch);
        std::lock_guard<std::mutex> lock(slot_mutex);
        free_slots.push_back(scratch);
      });
    };

    // Serial delivery in client order: every failure mode remains a
    // per-client event, and fault_rng is consumed exactly as the
    // serial schedule would.
    auto deliver_attempts = [&](std::vector<Attempt>& attempts) {
      for (Attempt& a : attempts) {
        if (!a.run) continue;
        ClientRoundOutcome& outcome = a.outcome;
        if (config.prune_ratio > 0.0) {
          prune_smallest(outcome.update.delta, config.prune_ratio);
        }
        norm_sum += outcome.first_iteration_grad_norm;
        ms_sum += outcome.local_train_ms;
        ++trained;

        // Delivery-detectable faults (corrupt payload, damaged wire
        // bytes) are re-dispatched while the attempt budget lasts: the
        // client resends, drawing a fresh fault instance per attempt. A
        // redraw that crashes or straggles expires — the client already
        // spent its round.
        bool expired_in_redispatch = false;
        while ((a.fault == FaultType::kCorruptDelta ||
                a.fault == FaultType::kBitFlip) &&
               a.attempt + 1 < config.retry.max_attempts) {
          if (a.fault == FaultType::kCorruptDelta) {
            ++stats.injected_corrupt;
          } else {
            ++stats.injected_bit_flip;
          }
          ++stats.fault_retried;
          ++stats.retry_attempts;
          ++a.attempt;
          a.fault = plan.fault_for_attempt(t, static_cast<std::int64_t>(a.ci),
                                           a.attempt);
          if (a.fault == FaultType::kCrash ||
              a.fault == FaultType::kStraggler) {
            count_injected_fault(stats, a.fault);
            ++stats.fault_expired;
            ++transient_failed;
            expired_in_redispatch = true;
            break;
          }
        }
        if (expired_in_redispatch) continue;

        if (a.fault == FaultType::kCorruptDelta) {
          corrupt_delta(outcome.update.delta, fault_rng);
          ++stats.injected_corrupt;
          ++stats.fault_screened;  // non-finite: screening always catches it
        } else if (a.fault == FaultType::kStaleRound) {
          outcome.update.round = t - 1;  // replayed from the prior round
          ++stats.injected_stale;
          ++stats.fault_screened;  // wrong round tag: batch screening rejects
        }

        // Transport: serialize -> seal -> (hostile channel) -> open ->
        // deserialize. A decode failure drops this client's update only.
        SecureChannel channel(
            client_channel_key(config.seed, static_cast<std::int64_t>(a.ci)));
        std::vector<std::uint8_t> wire =
            channel.seal(serialize_update(outcome.update));
        if (a.fault == FaultType::kBitFlip) {
          flip_random_bits(wire, fault_rng);
          ++stats.injected_bit_flip;
          ++stats.fault_screened;  // integrity tag: open() fails
        }
        Result<std::vector<std::uint8_t>> opened =
            channel.open(std::move(wire));
        if (!opened.ok()) {
          ++stats.rejected_decode;
          continue;
        }
        Result<ClientUpdate> decoded = deserialize_update(opened.value());
        if (!decoded.ok()) {
          ++stats.rejected_decode;
          continue;
        }
        updates.push_back(decoded.take());
        update_weights.push_back(static_cast<double>(
            provider.data_size(static_cast<std::int64_t>(a.ci))));
      }
    };

    auto attempt_clients = [&](const std::vector<std::size_t>& cis) {
      std::vector<Attempt> attempts = plan_attempts(cis);
      train_attempts(attempts);
      deliver_attempts(attempts);
    };

    std::optional<telemetry::SpanTimer> local_train_span;
    local_train_span.emplace(registry, "fl.phase",
                             telemetry::Labels{{"phase", "local_train"}}, t);
    attempt_clients(chosen);

    // One resample-retry pass: when delivery fell below the quorum and
    // some failures were transient (crash/straggler/dropout), draw
    // replacement clients from the unsampled pool.
    if (config.retry_failed_clients && transient_failed > 0 &&
        static_cast<std::int64_t>(updates.size()) < config.min_reporting) {
      std::vector<bool> in_round(total_clients, false);
      for (std::size_t ci : chosen) in_round[ci] = true;
      std::vector<std::size_t> spare;
      for (std::size_t i = 0; i < total_clients; ++i) {
        if (!in_round[i]) spare.push_back(i);
      }
      Rng retry_rng = round_rng.fork("retry", static_cast<std::uint64_t>(t));
      retry_rng.shuffle(spare);
      const std::size_t replacements =
          std::min(spare.size(), static_cast<std::size_t>(transient_failed));
      std::vector<std::size_t> replacement_cis(
          spare.begin(), spare.begin() + static_cast<std::ptrdiff_t>(
                                             replacements));
      stats.retried_clients += static_cast<std::int64_t>(replacements);
      attempt_clients(replacement_cis);
    }
    local_train_span.reset();  // close the local_train phase span

    bool applied = false;
    std::int64_t round_accepted = 0;
    if (!updates.empty()) {
      telemetry::SpanTimer aggregate_span(
          registry, "fl.phase", {{"phase", "aggregate"}}, t);
      Rng agg_rng =
          round_rng.fork("aggregate", static_cast<std::uint64_t>(t));
      AggregateOutcome outcome = server.aggregate(
          std::move(updates), policy, groups, agg_rng,
          config.weight_by_data_size ? &update_weights : nullptr);
      const ScreeningReport& report = outcome.screening;
      stats.rejected_shape += report.rejected_shape;
      stats.rejected_non_finite += report.rejected_non_finite;
      stats.rejected_norm_outlier += report.rejected_norm_outlier;
      stats.rejected_stale += report.rejected_stale;
      round_accepted = report.accepted;
      applied = outcome.applied;
      if (outcome.tier == DegradationTier::kReducedQuorum) {
        ++stats.reduced_quorum_rounds;
        ++result.reduced_quorum_rounds;
        result.max_noise_widening =
            std::max(result.max_noise_widening, outcome.noise_widening);
        registry
            .counter("fl.round.degraded_total",
                     {{"tier", degradation_tier_name(outcome.tier)}})
            .add(1);
        registry.record_point("fl.round.noise_widening", t,
                              outcome.noise_widening);
      }
    }

    if (trained > 0) {
      record.mean_grad_norm = norm_sum / static_cast<double>(trained);
      record.mean_client_ms = ms_sum / static_cast<double>(trained);
      total_ms += ms_sum;
      total_local_iters +=
          static_cast<std::int64_t>(trained) * local_iterations;
    }

    // Per-round telemetry, recorded whether or not the round applied.
    const std::pair<std::int64_t, std::int64_t> clip_after = clip_totals();
    const std::int64_t clip_delta = clip_after.first - clip_before.first;
    if (clip_delta > 0) {
      registry.record_point(
          "fl.round.clip_fraction", t,
          static_cast<double>(clip_after.second - clip_before.second) /
              static_cast<double>(clip_delta),
          policy_labels);
    }
    if (trained > 0) {
      registry.record_point("fl.round.grad_norm_mean", t,
                            record.mean_grad_norm);
    }
    registry.record_point("fl.round.accepted", t,
                          static_cast<double>(round_accepted));
    registry.record_point(
        "fl.round.rejected", t,
        static_cast<double>(stats.rejected_shape + stats.rejected_non_finite +
                            stats.rejected_norm_outlier +
                            stats.rejected_stale + stats.rejected_decode));
    if (!eps_series.instance_epsilon.empty()) {
      const double inst_eps =
          eps_series.instance_epsilon[static_cast<std::size_t>(t)];
      const double client_eps =
          eps_series.client_epsilon[static_cast<std::size_t>(t)];
      registry.gauge("dp.epsilon", {{"level", "instance"}}).set(inst_eps);
      registry.gauge("dp.epsilon", {{"level", "client"}}).set(client_eps);
      registry.record_point("dp.epsilon", t, inst_eps,
                            {{"level", "instance"}});
      registry.record_point("dp.epsilon", t, client_eps,
                            {{"level", "client"}});
    }
    auto count_fault = [&registry](const char* type, std::int64_t n) {
      if (n > 0) {
        registry.counter("fl.faults.injected_total", {{"type", type}}).add(n);
      }
    };
    count_fault("crash", stats.injected_crash);
    count_fault("straggler", stats.injected_straggler);
    count_fault("corrupt", stats.injected_corrupt);
    count_fault("bit-flip", stats.injected_bit_flip);
    count_fault("stale", stats.injected_stale);
    if (stats.dropouts > 0) {
      registry.counter("fl.client.dropouts_total").add(stats.dropouts);
    }
    if (stats.retried_clients > 0) {
      registry.counter("fl.client.retried_total").add(stats.retried_clients);
    }
    if (stats.rejected_decode > 0) {
      registry.counter("fl.transport.rejected_decode_total")
          .add(stats.rejected_decode);
    }
    if (stats.retry_attempts > 0) {
      registry.counter("fl.retry.attempts_total").add(stats.retry_attempts);
    }
    if (stats.fault_expired > 0) {
      registry.counter("fl.retry.expired_total").add(stats.fault_expired);
    }

    if (!applied) {
      // Graceful degradation: the round produces no aggregate — either
      // nobody reported or screening left the quorum unmet.
      server.skip_round();
      ++result.dropped_rounds;
      ++stats.quorum_missed;
      registry.counter("fl.round.quorum_missed_total").add(1);
      record.accuracy = std::nan("");
      result.total_failures.accumulate(stats);
      result.history.push_back(record);
      continue;
    }

    const bool eval_now =
        (config.eval_every > 0 && (t + 1) % config.eval_every == 0) ||
        t + 1 == rounds;
    if (eval_now) {
      telemetry::SpanTimer eval_span(registry, "fl.phase",
                                     {{"phase", "eval"}}, t);
      model->set_weights(server.weights());
      record.accuracy =
          nn::evaluate_accuracy(*model, val.features(), val.labels());
      registry.record_point("fl.round.accuracy", t, record.accuracy);
      FEDCL_LOG(Debug) << config.bench.name << " " << policy.name()
                       << " round " << (t + 1) << "/" << rounds
                       << " acc=" << record.accuracy;
    } else {
      record.accuracy = std::nan("");
    }
    result.total_failures.accumulate(stats);
    result.history.push_back(record);
  }

  result.final_accuracy = result.history.back().accuracy;
  if (std::isnan(result.final_accuracy)) {
    // The last round was skipped (all clients dropped): evaluate the
    // surviving global model directly.
    model->set_weights(server.weights());
    result.final_accuracy =
        nn::evaluate_accuracy(*model, val.features(), val.labels());
  }
  result.ms_per_local_iteration =
      total_local_iters > 0
          ? total_ms / static_cast<double>(total_local_iters)
          : 0.0;
  result.completed_rounds = rounds - result.dropped_rounds;
  result.final_weights = tensor::list::clone(server.weights());
  registry.flush_sinks();
  result.telemetry = registry.snapshot();
  return result;
}

}  // namespace fedcl::fl
