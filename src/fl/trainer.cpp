#include "fl/trainer.h"

#include <cmath>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/server.h"
#include "nn/grad_utils.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"

namespace fedcl::fl {

namespace {

// Stochastic layers (Dropout) hold their own RNG stream inside the
// model, so sharing scratch models across differently-scheduled
// clients would make the stream order depend on the schedule.
bool has_stochastic_layer(const nn::Sequential& model) {
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (dynamic_cast<const nn::Dropout*>(&model.layer(i)) != nullptr)
      return true;
  }
  return false;
}

}  // namespace

FlRunResult run_experiment(const FlExperimentConfig& config,
                           const core::PrivacyPolicy& policy) {
  FEDCL_CHECK_GT(config.total_clients, 0);
  FEDCL_CHECK_GT(config.clients_per_round, 0);
  FEDCL_CHECK_LE(config.clients_per_round, config.total_clients);
  FEDCL_CHECK_GE(config.min_reporting, 1);
  const std::int64_t rounds = config.effective_rounds();
  const std::int64_t local_iterations = config.effective_local_iterations();
  FEDCL_CHECK_GT(rounds, 0);

  Rng root(config.seed);
  Rng data_rng = root.fork("train-data");
  Rng val_rng = root.fork("val-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");
  Rng round_rng = root.fork("rounds");

  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(config.bench.train_spec, data_rng));
  data::Dataset val =
      data::generate_synthetic(config.bench.val_spec, val_rng);

  data::PartitionSpec part = config.bench.partition;
  part.num_clients = config.total_clients;
  std::vector<data::ClientData> shards =
      data::partition(train, part, part_rng);

  LocalTrainConfig local{.local_iterations = local_iterations,
                         .batch_size = config.bench.batch_size,
                         .learning_rate = config.bench.learning_rate,
                         .lr_decay_per_round =
                             config.bench.lr_decay_per_round};
  std::vector<Client> clients;
  clients.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    clients.emplace_back(static_cast<std::int64_t>(i), std::move(shards[i]),
                         local);
  }

  // The main scratch model serves serial training and evaluation; its
  // weights are overwritten from the global model each run_round.
  std::shared_ptr<nn::Sequential> model =
      nn::build_model(config.bench.model, model_rng);
  const dp::ParamGroups groups = to_param_groups(model->layer_groups());

  // Parallel client execution: correct only when clients are
  // independent given their forked RNG streams — which order-dependent
  // policies and in-model RNG state (Dropout) break, so those fall
  // back to the serial schedule.
  ThreadPool& pool = compute_pool();
  const bool parallel_clients = config.parallel_clients && pool.size() > 1 &&
                                !policy.order_dependent() &&
                                !has_stochastic_layer(*model);
  // One private scratch model per concurrent training slot. Their
  // initial weights are irrelevant (run_round installs the global
  // weights first), so each is built from a throwaway fork.
  std::vector<std::shared_ptr<nn::Sequential>> slot_models;
  if (parallel_clients) {
    const std::size_t slots =
        std::min(pool.size(),
                 static_cast<std::size_t>(config.clients_per_round));
    slot_models.reserve(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      Rng scratch_rng = root.fork("scratch-model", s);
      slot_models.push_back(nn::build_model(config.bench.model, scratch_rng));
    }
  }
  FEDCL_CHECK(config.client_dropout >= 0.0 && config.client_dropout < 1.0)
      << "client dropout " << config.client_dropout;
  Server server(model->weights(),
                {.server_momentum = config.server_momentum,
                 .screening = config.screening,
                 .min_reporting = config.min_reporting});
  const FaultPlan plan(config.faults, config.seed);

  // One run owns the process-global registry: zero the aggregates so
  // the snapshot this run returns describes this run only (attached
  // sinks and outstanding instrument references survive the reset).
  telemetry::Registry& registry = telemetry::global_registry();
  registry.reset();

  FlRunResult result;
  result.privacy_setup = {
      .total_examples = train->size(),
      .batch_size = config.bench.batch_size,
      .clients_per_round = config.clients_per_round,
      .total_clients = config.total_clients,
      .local_iterations = local_iterations,
      .rounds = rounds,
      .noise_scale = config.noise_scale,
      .delta = config.delta,
  };
  // Cumulative per-round privacy budget, precomputed in one accountant
  // pass (bitwise identical to calling epsilon() after every round).
  // Skipped when the setup falls outside the accountant's domain
  // (sigma <= 0, or B*Kt exceeding the dataset).
  core::PrivacyRoundSeries eps_series;
  const double instance_q =
      static_cast<double>(config.bench.batch_size * config.clients_per_round) /
      static_cast<double>(train->size());
  if (config.noise_scale > 0.0 && instance_q <= 1.0) {
    eps_series = core::epsilon_round_series(result.privacy_setup);
    registry.gauge("dp.delta").set(config.delta);
  }

  double total_ms = 0.0;
  std::int64_t total_local_iters = 0;

  const telemetry::Labels policy_labels{{"policy", policy.name()}};
  // Clip-decision totals are counted inside the policies; the delta
  // across one round gives that round's clip fraction without the
  // policies having to know about rounds.
  auto clip_totals = [&registry, &policy_labels]() {
    const std::int64_t total =
        registry.counter("dp.clip.groups_total", policy_labels).value() +
        registry.counter("dp.clip.updates_total", policy_labels).value();
    const std::int64_t clipped =
        registry.counter("dp.clip.groups_clipped_total", policy_labels)
            .value() +
        registry.counter("dp.clip.updates_clipped_total", policy_labels)
            .value();
    return std::pair<std::int64_t, std::int64_t>(total, clipped);
  };

  for (std::int64_t t = 0; t < rounds; ++t) {
    telemetry::SpanTimer round_span(registry, "fl.round", {}, t);
    const std::pair<std::int64_t, std::int64_t> clip_before = clip_totals();
    Rng sample_rng = round_rng.fork("sample", static_cast<std::uint64_t>(t));
    std::vector<std::size_t> chosen = server.sample_clients(
        clients.size(), static_cast<std::size_t>(config.clients_per_round),
        sample_rng);

    std::vector<ClientUpdate> updates;
    std::vector<double> update_weights;
    updates.reserve(chosen.size());
    RoundRecord record;
    record.round = t;
    RoundFailureStats& stats = record.failures;
    double norm_sum = 0.0, ms_sum = 0.0;
    std::size_t trained = 0;
    std::int64_t transient_failed = 0;
    Rng drop_rng = round_rng.fork("dropout", static_cast<std::uint64_t>(t));
    Rng fault_rng = round_rng.fork("faults", static_cast<std::uint64_t>(t));

    // Each client attempt is phase-split so the round stays bitwise
    // deterministic under any schedule:
    //  1. plan    (serial)   — dropout draws and fault lookups, in
    //                          client order (the shared drop_rng).
    //  2. train   (parallel) — local training from the client's own
    //                          (round, client)-forked stream on a
    //                          private scratch model.
    //  3. deliver (serial)   — metrics, fault corruption (the shared
    //                          fault_rng), transport, in client order.
    struct Attempt {
      std::size_t ci = 0;
      FaultType fault = FaultType::kNone;
      bool run = false;  // survived dropout / crash / straggler
      ClientRoundOutcome outcome;
    };

    auto plan_attempts = [&](const std::vector<std::size_t>& cis) {
      std::vector<Attempt> attempts;
      attempts.reserve(cis.size());
      for (std::size_t ci : cis) {
        Attempt a;
        a.ci = ci;
        if (config.client_dropout > 0.0 &&
            drop_rng.bernoulli(config.client_dropout)) {
          ++stats.dropouts;  // this client never reports back
          ++transient_failed;
        } else {
          a.fault = plan.fault_for(t, static_cast<std::int64_t>(ci));
          if (a.fault == FaultType::kCrash) {
            ++stats.injected_crash;  // dies before reporting
            ++transient_failed;
          } else if (a.fault == FaultType::kStraggler) {
            ++stats.injected_straggler;  // misses the round deadline
            ++transient_failed;
          } else {
            a.run = true;
          }
        }
        attempts.push_back(std::move(a));
      }
      return attempts;
    };

    auto train_attempts = [&](std::vector<Attempt>& attempts) {
      std::vector<std::size_t> runnable;
      for (std::size_t i = 0; i < attempts.size(); ++i) {
        if (attempts[i].run) runnable.push_back(i);
      }
      auto train_one = [&](Attempt& a, nn::Sequential& scratch) {
        Rng crng = round_rng.fork(
            "client", static_cast<std::uint64_t>(
                          t * 1000003 + static_cast<std::int64_t>(a.ci)));
        a.outcome = clients[a.ci].run_round(scratch, server.weights(),
                                            policy, t, crng);
      };
      if (!parallel_clients || runnable.size() <= 1) {
        for (std::size_t i : runnable) train_one(attempts[i], *model);
        return;
      }
      // Scratch models are interchangeable (run_round installs the
      // global weights first), so a checkout stack suffices; the
      // concurrency level never exceeds the slot count.
      std::mutex slot_mutex;
      std::vector<nn::Sequential*> free_slots;
      free_slots.reserve(slot_models.size());
      for (const auto& m : slot_models) free_slots.push_back(m.get());
      pool.parallel_for(runnable.size(), [&](std::size_t k) {
        nn::Sequential* scratch = nullptr;
        {
          std::lock_guard<std::mutex> lock(slot_mutex);
          FEDCL_CHECK(!free_slots.empty());
          scratch = free_slots.back();
          free_slots.pop_back();
        }
        train_one(attempts[runnable[k]], *scratch);
        std::lock_guard<std::mutex> lock(slot_mutex);
        free_slots.push_back(scratch);
      });
    };

    // Serial delivery in client order: every failure mode remains a
    // per-client event, and fault_rng is consumed exactly as the
    // serial schedule would.
    auto deliver_attempts = [&](std::vector<Attempt>& attempts) {
      for (Attempt& a : attempts) {
        if (!a.run) continue;
        ClientRoundOutcome& outcome = a.outcome;
        if (config.prune_ratio > 0.0) {
          prune_smallest(outcome.update.delta, config.prune_ratio);
        }
        norm_sum += outcome.first_iteration_grad_norm;
        ms_sum += outcome.local_train_ms;
        ++trained;

        if (a.fault == FaultType::kCorruptDelta) {
          corrupt_delta(outcome.update.delta, fault_rng);
          ++stats.injected_corrupt;
        } else if (a.fault == FaultType::kStaleRound) {
          outcome.update.round = t - 1;  // replayed from the prior round
          ++stats.injected_stale;
        }

        // Transport: serialize -> seal -> (hostile channel) -> open ->
        // deserialize. A decode failure drops this client's update only.
        SecureChannel channel(
            config.seed ^ (0x5EC2E7ULL + static_cast<std::uint64_t>(a.ci) *
                                             0x9E3779B97F4A7C15ULL));
        std::vector<std::uint8_t> wire =
            channel.seal(serialize_update(outcome.update));
        if (a.fault == FaultType::kBitFlip) {
          flip_random_bits(wire, fault_rng);
          ++stats.injected_bit_flip;
        }
        Result<std::vector<std::uint8_t>> opened =
            channel.open(std::move(wire));
        if (!opened.ok()) {
          ++stats.rejected_decode;
          continue;
        }
        Result<ClientUpdate> decoded = deserialize_update(opened.value());
        if (!decoded.ok()) {
          ++stats.rejected_decode;
          continue;
        }
        updates.push_back(decoded.take());
        update_weights.push_back(
            static_cast<double>(clients[a.ci].data().size()));
      }
    };

    auto attempt_clients = [&](const std::vector<std::size_t>& cis) {
      std::vector<Attempt> attempts = plan_attempts(cis);
      train_attempts(attempts);
      deliver_attempts(attempts);
    };

    std::optional<telemetry::SpanTimer> local_train_span;
    local_train_span.emplace(registry, "fl.phase",
                             telemetry::Labels{{"phase", "local_train"}}, t);
    attempt_clients(chosen);

    // One resample-retry pass: when delivery fell below the quorum and
    // some failures were transient (crash/straggler/dropout), draw
    // replacement clients from the unsampled pool.
    if (config.retry_failed_clients && transient_failed > 0 &&
        static_cast<std::int64_t>(updates.size()) < config.min_reporting) {
      std::vector<bool> in_round(clients.size(), false);
      for (std::size_t ci : chosen) in_round[ci] = true;
      std::vector<std::size_t> spare;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        if (!in_round[i]) spare.push_back(i);
      }
      Rng retry_rng = round_rng.fork("retry", static_cast<std::uint64_t>(t));
      retry_rng.shuffle(spare);
      const std::size_t replacements =
          std::min(spare.size(), static_cast<std::size_t>(transient_failed));
      std::vector<std::size_t> replacement_cis(
          spare.begin(), spare.begin() + static_cast<std::ptrdiff_t>(
                                             replacements));
      stats.retried_clients += static_cast<std::int64_t>(replacements);
      attempt_clients(replacement_cis);
    }
    local_train_span.reset();  // close the local_train phase span

    bool applied = false;
    std::int64_t round_accepted = 0;
    if (!updates.empty()) {
      telemetry::SpanTimer aggregate_span(
          registry, "fl.phase", {{"phase", "aggregate"}}, t);
      Rng agg_rng =
          round_rng.fork("aggregate", static_cast<std::uint64_t>(t));
      ScreeningReport report = server.aggregate(
          std::move(updates), policy, groups, agg_rng,
          config.weight_by_data_size ? &update_weights : nullptr);
      stats.rejected_shape += report.rejected_shape;
      stats.rejected_non_finite += report.rejected_non_finite;
      stats.rejected_norm_outlier += report.rejected_norm_outlier;
      stats.rejected_stale += report.rejected_stale;
      round_accepted = report.accepted;
      applied = report.accepted >= config.min_reporting;
    }

    if (trained > 0) {
      record.mean_grad_norm = norm_sum / static_cast<double>(trained);
      record.mean_client_ms = ms_sum / static_cast<double>(trained);
      total_ms += ms_sum;
      total_local_iters +=
          static_cast<std::int64_t>(trained) * local_iterations;
    }

    // Per-round telemetry, recorded whether or not the round applied.
    const std::pair<std::int64_t, std::int64_t> clip_after = clip_totals();
    const std::int64_t clip_delta = clip_after.first - clip_before.first;
    if (clip_delta > 0) {
      registry.record_point(
          "fl.round.clip_fraction", t,
          static_cast<double>(clip_after.second - clip_before.second) /
              static_cast<double>(clip_delta),
          policy_labels);
    }
    if (trained > 0) {
      registry.record_point("fl.round.grad_norm_mean", t,
                            record.mean_grad_norm);
    }
    registry.record_point("fl.round.accepted", t,
                          static_cast<double>(round_accepted));
    registry.record_point(
        "fl.round.rejected", t,
        static_cast<double>(stats.rejected_shape + stats.rejected_non_finite +
                            stats.rejected_norm_outlier +
                            stats.rejected_stale + stats.rejected_decode));
    if (!eps_series.instance_epsilon.empty()) {
      const double inst_eps =
          eps_series.instance_epsilon[static_cast<std::size_t>(t)];
      const double client_eps =
          eps_series.client_epsilon[static_cast<std::size_t>(t)];
      registry.gauge("dp.epsilon", {{"level", "instance"}}).set(inst_eps);
      registry.gauge("dp.epsilon", {{"level", "client"}}).set(client_eps);
      registry.record_point("dp.epsilon", t, inst_eps,
                            {{"level", "instance"}});
      registry.record_point("dp.epsilon", t, client_eps,
                            {{"level", "client"}});
    }
    auto count_fault = [&registry](const char* type, std::int64_t n) {
      if (n > 0) {
        registry.counter("fl.faults.injected_total", {{"type", type}}).add(n);
      }
    };
    count_fault("crash", stats.injected_crash);
    count_fault("straggler", stats.injected_straggler);
    count_fault("corrupt", stats.injected_corrupt);
    count_fault("bit-flip", stats.injected_bit_flip);
    count_fault("stale", stats.injected_stale);
    if (stats.dropouts > 0) {
      registry.counter("fl.client.dropouts_total").add(stats.dropouts);
    }
    if (stats.retried_clients > 0) {
      registry.counter("fl.client.retried_total").add(stats.retried_clients);
    }
    if (stats.rejected_decode > 0) {
      registry.counter("fl.transport.rejected_decode_total")
          .add(stats.rejected_decode);
    }

    if (!applied) {
      // Graceful degradation: the round produces no aggregate — either
      // nobody reported or screening left the quorum unmet.
      server.skip_round();
      ++result.dropped_rounds;
      ++stats.quorum_missed;
      registry.counter("fl.round.quorum_missed_total").add(1);
      record.accuracy = std::nan("");
      result.total_failures.accumulate(stats);
      result.history.push_back(record);
      continue;
    }

    const bool eval_now =
        (config.eval_every > 0 && (t + 1) % config.eval_every == 0) ||
        t + 1 == rounds;
    if (eval_now) {
      telemetry::SpanTimer eval_span(registry, "fl.phase",
                                     {{"phase", "eval"}}, t);
      model->set_weights(server.weights());
      record.accuracy =
          nn::evaluate_accuracy(*model, val.features(), val.labels());
      registry.record_point("fl.round.accuracy", t, record.accuracy);
      FEDCL_LOG(Debug) << config.bench.name << " " << policy.name()
                       << " round " << (t + 1) << "/" << rounds
                       << " acc=" << record.accuracy;
    } else {
      record.accuracy = std::nan("");
    }
    result.total_failures.accumulate(stats);
    result.history.push_back(record);
  }

  result.final_accuracy = result.history.back().accuracy;
  if (std::isnan(result.final_accuracy)) {
    // The last round was skipped (all clients dropped): evaluate the
    // surviving global model directly.
    model->set_weights(server.weights());
    result.final_accuracy =
        nn::evaluate_accuracy(*model, val.features(), val.labels());
  }
  result.ms_per_local_iteration =
      total_local_iters > 0
          ? total_ms / static_cast<double>(total_local_iters)
          : 0.0;
  result.completed_rounds = rounds - result.dropped_rounds;
  result.final_weights = tensor::list::clone(server.weights());
  registry.flush_sinks();
  result.telemetry = registry.snapshot();
  return result;
}

}  // namespace fedcl::fl
