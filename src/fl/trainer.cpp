#include "fl/trainer.h"

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/server.h"
#include "nn/grad_utils.h"
#include "nn/model_zoo.h"

namespace fedcl::fl {

FlRunResult run_experiment(const FlExperimentConfig& config,
                           const core::PrivacyPolicy& policy) {
  FEDCL_CHECK_GT(config.total_clients, 0);
  FEDCL_CHECK_GT(config.clients_per_round, 0);
  FEDCL_CHECK_LE(config.clients_per_round, config.total_clients);
  const std::int64_t rounds = config.effective_rounds();
  const std::int64_t local_iterations = config.effective_local_iterations();
  FEDCL_CHECK_GT(rounds, 0);

  Rng root(config.seed);
  Rng data_rng = root.fork("train-data");
  Rng val_rng = root.fork("val-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");
  Rng round_rng = root.fork("rounds");

  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(config.bench.train_spec, data_rng));
  data::Dataset val =
      data::generate_synthetic(config.bench.val_spec, val_rng);

  data::PartitionSpec part = config.bench.partition;
  part.num_clients = config.total_clients;
  std::vector<data::ClientData> shards =
      data::partition(train, part, part_rng);

  LocalTrainConfig local{.local_iterations = local_iterations,
                         .batch_size = config.bench.batch_size,
                         .learning_rate = config.bench.learning_rate,
                         .lr_decay_per_round =
                             config.bench.lr_decay_per_round};
  std::vector<Client> clients;
  clients.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    clients.emplace_back(static_cast<std::int64_t>(i), std::move(shards[i]),
                         local);
  }

  // One scratch model instance serves all clients sequentially; its
  // weights are overwritten from the global model each run_round.
  std::shared_ptr<nn::Sequential> model =
      nn::build_model(config.bench.model, model_rng);
  const dp::ParamGroups groups = to_param_groups(model->layer_groups());
  FEDCL_CHECK(config.client_dropout >= 0.0 && config.client_dropout < 1.0)
      << "client dropout " << config.client_dropout;
  Server server(model->weights(),
                {.server_momentum = config.server_momentum});

  FlRunResult result;
  double total_ms = 0.0;
  std::int64_t total_local_iters = 0;

  for (std::int64_t t = 0; t < rounds; ++t) {
    Rng sample_rng = round_rng.fork("sample", static_cast<std::uint64_t>(t));
    std::vector<std::size_t> chosen = server.sample_clients(
        clients.size(), static_cast<std::size_t>(config.clients_per_round),
        sample_rng);

    std::vector<ClientUpdate> updates;
    std::vector<double> update_weights;
    updates.reserve(chosen.size());
    RoundRecord record;
    record.round = t;
    double norm_sum = 0.0, ms_sum = 0.0;
    std::size_t reporting = 0;
    Rng drop_rng = round_rng.fork("dropout", static_cast<std::uint64_t>(t));
    for (std::size_t ci : chosen) {
      if (config.client_dropout > 0.0 &&
          drop_rng.bernoulli(config.client_dropout)) {
        continue;  // this client never reports back
      }
      Rng crng = round_rng.fork("client", static_cast<std::uint64_t>(
                                              t * 1000003 +
                                              static_cast<std::int64_t>(ci)));
      ClientRoundOutcome outcome = clients[ci].run_round(
          *model, server.weights(), policy, t, crng);
      if (config.prune_ratio > 0.0) {
        prune_smallest(outcome.update.delta, config.prune_ratio);
      }
      norm_sum += outcome.first_iteration_grad_norm;
      ms_sum += outcome.local_train_ms;
      updates.push_back(std::move(outcome.update));
      update_weights.push_back(
          static_cast<double>(clients[ci].data().size()));
      ++reporting;
    }
    if (updates.empty()) {
      // Every sampled client dropped out: the round produces no
      // aggregate (unstable-availability corner).
      server.skip_round();
      ++result.dropped_rounds;
      record.accuracy = std::nan("");
      result.history.push_back(record);
      continue;
    }
    Rng agg_rng = round_rng.fork("aggregate", static_cast<std::uint64_t>(t));
    server.aggregate(std::move(updates), policy, groups, agg_rng,
                     config.weight_by_data_size ? &update_weights : nullptr);

    record.mean_grad_norm = norm_sum / static_cast<double>(reporting);
    record.mean_client_ms = ms_sum / static_cast<double>(reporting);
    total_ms += ms_sum;
    total_local_iters +=
        static_cast<std::int64_t>(reporting) * local_iterations;

    const bool eval_now =
        (config.eval_every > 0 && (t + 1) % config.eval_every == 0) ||
        t + 1 == rounds;
    if (eval_now) {
      model->set_weights(server.weights());
      record.accuracy =
          nn::evaluate_accuracy(*model, val.features(), val.labels());
      FEDCL_LOG(Debug) << config.bench.name << " " << policy.name()
                       << " round " << (t + 1) << "/" << rounds
                       << " acc=" << record.accuracy;
    } else {
      record.accuracy = std::nan("");
    }
    result.history.push_back(record);
  }

  result.final_accuracy = result.history.back().accuracy;
  if (std::isnan(result.final_accuracy)) {
    // The last round was skipped (all clients dropped): evaluate the
    // surviving global model directly.
    model->set_weights(server.weights());
    result.final_accuracy =
        nn::evaluate_accuracy(*model, val.features(), val.labels());
  }
  result.ms_per_local_iteration =
      total_local_iters > 0
          ? total_ms / static_cast<double>(total_local_iters)
          : 0.0;
  result.final_weights = tensor::list::clone(server.weights());
  result.privacy_setup = {
      .total_examples = train->size(),
      .batch_size = config.bench.batch_size,
      .clients_per_round = config.clients_per_round,
      .total_clients = config.total_clients,
      .local_iterations = local_iterations,
      .rounds = rounds,
      .noise_scale = config.noise_scale,
      .delta = config.delta,
  };
  return result;
}

}  // namespace fedcl::fl
