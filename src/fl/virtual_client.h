// Virtualized client model: every per-client artifact — data shard,
// fault schedule, per-round RNG streams — is a pure function of
// (seed, client_id), synthesized on demand with no per-client
// storage. A million-client federation costs O(dataset) to set up and
// O(clients actually touched) per round; the synthesized state is
// bitwise identical to what eager construction produced (pinned in
// tests/property_test.cpp and tests/scale_engine_test.cpp).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/partition.h"
#include "fl/client.h"
#include "fl/fault_injection.h"

namespace fedcl::fl {

class VirtualClientProvider {
 public:
  VirtualClientProvider(std::shared_ptr<const data::Dataset> base,
                        const data::PartitionSpec& spec, const Rng& part_rng,
                        LocalTrainConfig local, FaultInjectionConfig faults,
                        std::uint64_t seed);

  std::int64_t total_clients() const { return plan_.num_clients(); }
  // O(1): every shard has the same size by construction, so the
  // aggregation weight of a client never requires materializing it.
  std::int64_t data_size(std::int64_t id) const;
  // Materializes the client. Const and thread-safe: repeated calls
  // (from any thread) yield identical shards.
  Client client(std::int64_t id) const;

  const data::ShardPlan& shard_plan() const { return plan_; }
  const FaultPlan& fault_plan() const { return fault_plan_; }
  const LocalTrainConfig& local_config() const { return local_; }

  // The per-(round, client) streams shared by every engine (in-process
  // trainer, streaming scale engine, net worker). Centralizing the
  // fork labels here is what keeps the engines bitwise interchangeable.
  static Rng training_stream(const Rng& round_rng, std::int64_t round,
                             std::int64_t id);
  // Delivery-fault draws (corrupt bytes / bit-flip positions). The
  // async engine introduced this per-client stream; the streaming
  // engine reuses it so delivery noise is schedule-independent.
  static Rng delivery_fault_stream(const Rng& round_rng, std::int64_t round,
                                   std::int64_t id);
  // Server-side sanitization stream for the streaming engine, where
  // updates are folded as they arrive instead of in a serial pass.
  static Rng sanitize_stream(const Rng& round_rng, std::int64_t round,
                             std::int64_t id);

 private:
  data::ShardPlan plan_;
  LocalTrainConfig local_;
  FaultPlan fault_plan_;
};

}  // namespace fedcl::fl