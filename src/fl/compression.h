// Gradient compression for communication-efficient federated learning
// (the paper's Figure 5 experiment): insignificant gradients — those
// with the smallest magnitudes — are pruned before the update is
// shared.
#pragma once

#include <cstdint>

#include "tensor/tensor_list.h"

namespace fedcl::fl {

using tensor::list::TensorList;

// Zeroes the smallest-magnitude `prune_ratio` fraction of coordinates
// across the whole update (0 = no-op, 0.3 = paper's "compression ratio
// 30%"). Returns the number of coordinates kept.
std::int64_t prune_smallest(TensorList& update, double prune_ratio);

// Fraction of exactly-zero coordinates.
double sparsity(const TensorList& update);

// Uniform symmetric quantization: each tensor's coordinates are
// snapped to 2^bits - 1 evenly spaced levels within [-max_abs,
// +max_abs] (per tensor). A second axis of communication-efficient FL
// next to magnitude pruning. Returns the root mean squared
// quantization error. bits in [1, 16].
double quantize_uniform(TensorList& update, int bits);

}  // namespace fedcl::fl
