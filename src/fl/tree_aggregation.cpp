#include "fl/tree_aggregation.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace fedcl::fl {

namespace {

// The one merge the whole module uses: older (left) += newer (right).
void merge_into(ReduceNode& older, ReduceNode&& newer) {
  tensor::list::add_(older.sum, newer.sum, 1.0f);
  older.weight += newer.weight;
  older.leaves += newer.leaves;
}

ReduceNode leaf_node(TensorList delta, double weight) {
  ReduceNode node;
  node.sum = std::move(delta);
  // Unweighted leaves keep their raw bytes: scaling by 1.0f would be a
  // no-op numerically but the branch documents the contract.
  if (weight != 1.0) {
    tensor::list::scale_(node.sum, static_cast<float>(weight));
  }
  node.weight = weight;
  node.leaves = 1;
  return node;
}

}  // namespace

bool is_power_of_two(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

void StreamingReducer::push(TensorList delta, double weight) {
  carry(leaf_node(std::move(delta), weight));
}

void StreamingReducer::push_node(ReduceNode node) {
  if (node.empty()) return;
  carry(std::move(node));
}

void StreamingReducer::carry(ReduceNode node) {
  ++units_;
  for (std::size_t l = 0;; ++l) {
    if (l == levels_.size()) {
      levels_.push_back(std::move(node));
      break;
    }
    if (levels_[l].empty()) {
      levels_[l] = std::move(node);
      break;
    }
    // Slot occupied: merge (older slot on the left) and carry up.
    merge_into(levels_[l], std::move(node));
    node = std::move(levels_[l]);
    levels_[l] = ReduceNode{};
  }
  max_occupancy_ = std::max(max_occupancy_, occupancy());
}

int StreamingReducer::occupancy() const {
  int n = 0;
  for (const ReduceNode& node : levels_) {
    if (!node.empty()) ++n;
  }
  return n;
}

ReduceNode StreamingReducer::finalize() {
  // Fold lowest level first: each surviving level covers leaves that
  // come AFTER every higher level's leaves, so the running accumulator
  // is always the right operand of the next (older += newer) merge.
  ReduceNode acc;
  for (ReduceNode& level : levels_) {
    if (level.empty()) continue;
    if (acc.empty()) {
      acc = std::move(level);
    } else {
      merge_into(level, std::move(acc));
      acc = std::move(level);
    }
    level = ReduceNode{};
  }
  levels_.clear();
  units_ = 0;
  return acc;
}

namespace {

// Perfect pairwise tree over deltas[begin, begin+size), size = 2^k.
ReduceNode perfect_tree(std::vector<TensorList>& deltas,
                        const std::vector<double>& weights, std::size_t begin,
                        std::size_t size) {
  if (size == 1) {
    return leaf_node(std::move(deltas[begin]), weights[begin]);
  }
  ReduceNode left = perfect_tree(deltas, weights, begin, size / 2);
  ReduceNode right =
      perfect_tree(deltas, weights, begin + size / 2, size - size / 2);
  merge_into(left, std::move(right));
  return left;
}

}  // namespace

ReduceNode reduce_buffered(std::vector<TensorList> deltas,
                           const std::vector<double>& weights) {
  FEDCL_CHECK_EQ(deltas.size(), weights.size());
  if (deltas.empty()) return ReduceNode{};
  // Tensor copies share storage, so the by-value parameter still
  // aliases the caller's tensors — and the in-place leaf scaling /
  // merges below would corrupt them. Detach before reducing.
  for (TensorList& d : deltas) d = tensor::list::clone(d);

  // Binary decomposition of n: perfect subtrees in leaf order,
  // largest first (matching the counter's level contents), ...
  std::vector<ReduceNode> blocks;
  std::size_t begin = 0;
  const std::size_t n = deltas.size();
  for (int bit = 62; bit >= 0; --bit) {
    const std::size_t size = static_cast<std::size_t>(1) << bit;
    if ((n & size) != 0) {
      blocks.push_back(perfect_tree(deltas, weights, begin, size));
      begin += size;
    }
  }
  // ... then folded last block first (the counter finalizes lowest
  // level — latest leaves — first).
  ReduceNode acc = std::move(blocks.back());
  for (std::size_t i = blocks.size() - 1; i-- > 0;) {
    merge_into(blocks[i], std::move(acc));
    acc = std::move(blocks[i]);
  }
  return acc;
}

ReduceNode tree_reduce(std::vector<TensorList> deltas,
                       const std::vector<double>& weights,
                       std::int64_t fan_out) {
  FEDCL_CHECK_EQ(deltas.size(), weights.size());
  FEDCL_CHECK(is_power_of_two(fan_out) && fan_out >= 2)
      << "tree fan-out must be a power of two >= 2, got " << fan_out;
  if (deltas.empty()) return ReduceNode{};
  // Same storage-detach as reduce_buffered: shallow Tensor copies mean
  // the caller's deltas would otherwise be scaled/merged in place.
  for (TensorList& d : deltas) d = tensor::list::clone(d);

  // Tier 0: edge aggregators over consecutive fan_out-sized leaf
  // blocks (the last block may be short).
  const std::size_t f = static_cast<std::size_t>(fan_out);
  std::vector<ReduceNode> tier;
  for (std::size_t b = 0; b < deltas.size(); b += f) {
    StreamingReducer edge;
    const std::size_t end = std::min(b + f, deltas.size());
    for (std::size_t i = b; i < end; ++i) {
      edge.push(std::move(deltas[i]), weights[i]);
    }
    tier.push_back(edge.finalize());
  }
  // Higher tiers: each parent reduces fan_out consecutive partials.
  while (tier.size() > 1) {
    std::vector<ReduceNode> next;
    for (std::size_t b = 0; b < tier.size(); b += f) {
      StreamingReducer parent;
      const std::size_t end = std::min(b + f, tier.size());
      for (std::size_t i = b; i < end; ++i) {
        parent.push_node(std::move(tier[i]));
      }
      next.push_back(parent.finalize());
    }
    tier = std::move(next);
  }
  return std::move(tier.front());
}

TensorList finalize_mean(ReduceNode node) {
  FEDCL_CHECK(!node.empty()) << "cannot take the mean of zero updates";
  FEDCL_CHECK_GT(node.weight, 0.0);
  tensor::list::scale_(node.sum, static_cast<float>(1.0 / node.weight));
  return std::move(node.sum);
}

}  // namespace fedcl::fl