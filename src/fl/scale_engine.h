// Streaming round engine for virtualized federations at scale.
//
// Same synchronous semantics as the classic engine in fl/trainer.cpp —
// per-round cohort sampling, fault planning, quorum tiers, one
// resample-retry pass — but built for K in the millions: clients are
// synthesized on demand (fl/virtual_client.h) and every accepted
// update is screened, sanitized, and folded immediately into an
// O(log K) binary-counter accumulator (fl/tree_aggregation.h) instead
// of being buffered. Edge aggregators of `tree_fan_out` consecutive
// cohort members reduce in parallel; their partials feed a root
// reducer in block order, which keeps the whole reduction bitwise
// identical to the flat pinned order (and therefore identical across
// thread counts and, on fault-free rounds, across fan-outs).
#pragma once

#include "fl/trainer.h"

namespace fedcl::fl {

// Entry point used by run_experiment when
// config.streaming_aggregation is set. Requires !config.async_mode and
// a power-of-two config.tree_fan_out >= 2.
FlRunResult run_streaming_experiment(const FlExperimentConfig& config,
                                     const core::PrivacyPolicy& policy);

}  // namespace fedcl::fl