#include "fl/update_screening.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.h"
#include "common/telemetry.h"

namespace fedcl::fl {

namespace {

bool shapes_match(const ClientUpdate& u,
                  const std::vector<tensor::Shape>& expected) {
  if (u.delta.size() != expected.size()) return false;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (!u.delta[i].defined() || u.delta[i].shape() != expected[i]) {
      return false;
    }
  }
  return true;
}

bool all_finite(const TensorList& delta) {
  for (const auto& t : delta) {
    const float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      if (!std::isfinite(p[i])) return false;
    }
  }
  return true;
}

double median(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kShapeMismatch:
      return "shape-mismatch";
    case RejectReason::kNonFinite:
      return "non-finite";
    case RejectReason::kNormOutlier:
      return "norm-outlier";
    case RejectReason::kStaleRound:
      return "stale-round";
  }
  return "unknown";
}

void ScreeningReport::count(RejectReason reason) {
  // Single home of the per-reason rejection counter: every screening
  // path funnels through here, so the telemetry total cannot drift
  // from the report fields.
  telemetry::global_registry()
      .counter("fl.screening.rejected_total",
               {{"reason", reject_reason_name(reason)}})
      .add(1);
  switch (reason) {
    case RejectReason::kShapeMismatch:
      ++rejected_shape;
      return;
    case RejectReason::kNonFinite:
      ++rejected_non_finite;
      return;
    case RejectReason::kNormOutlier:
      ++rejected_norm_outlier;
      return;
    case RejectReason::kStaleRound:
      ++rejected_stale;
      return;
  }
}

UpdateScreener::UpdateScreener(ScreeningConfig config) : config_(config) {
  FEDCL_CHECK_GE(config_.norm_outlier_factor, 0.0);
  FEDCL_CHECK_GE(config_.max_update_norm, 0.0);
}

ScreenVerdict UpdateScreener::screen_one(
    const ClientUpdate& update, const std::vector<tensor::Shape>& expected,
    std::int64_t current_round, std::int64_t max_staleness,
    ScreeningReport& report) const {
  FEDCL_CHECK_GE(max_staleness, 0);
  ScreenVerdict verdict;
  verdict.staleness = current_round - update.round;
  if (verdict.staleness < 0 || verdict.staleness > max_staleness) {
    // Future-tagged (replayed or forged clock) or too far behind to be
    // worth a decayed weight.
    verdict.reject = RejectReason::kStaleRound;
  } else if (!shapes_match(update, expected)) {
    verdict.reject = RejectReason::kShapeMismatch;
  } else if (!all_finite(update.delta)) {
    verdict.reject = RejectReason::kNonFinite;
  } else if (config_.max_update_norm > 0.0 &&
             tensor::list::l2_norm(update.delta) > config_.max_update_norm) {
    verdict.reject = RejectReason::kNormOutlier;
  }
  if (verdict.reject.has_value()) {
    report.count(*verdict.reject);
  } else {
    ++report.accepted;
  }
  return verdict;
}

std::vector<ClientUpdate> UpdateScreener::screen(
    std::vector<ClientUpdate> updates,
    const std::vector<tensor::Shape>& expected, std::int64_t current_round,
    ScreeningReport& report, std::vector<double>* weights) const {
  if (weights != nullptr) {
    FEDCL_CHECK_EQ(weights->size(), updates.size());
  }

  // Pass 1: per-update checks, cheapest first. An update that fails any
  // of them is counted against its first failing reason only.
  std::vector<std::optional<RejectReason>> verdict(updates.size());
  std::vector<double> norms(updates.size(), 0.0);
  std::vector<double> valid_norms;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const ClientUpdate& u = updates[i];
    if (u.round != current_round) {
      verdict[i] = RejectReason::kStaleRound;
    } else if (!shapes_match(u, expected)) {
      verdict[i] = RejectReason::kShapeMismatch;
    } else if (!all_finite(u.delta)) {
      verdict[i] = RejectReason::kNonFinite;
    } else {
      norms[i] = tensor::list::l2_norm(u.delta);
      if (config_.max_update_norm > 0.0 &&
          norms[i] > config_.max_update_norm) {
        verdict[i] = RejectReason::kNormOutlier;
      } else {
        valid_norms.push_back(norms[i]);
      }
    }
  }

  // Pass 2: relative norm-outlier rejection against the round median of
  // the surviving updates (robust to the outliers themselves).
  if (config_.norm_outlier_factor > 0.0 && valid_norms.size() >= 3) {
    const double med = median(valid_norms);
    if (med > 0.0) {
      const double cutoff = config_.norm_outlier_factor * med;
      for (std::size_t i = 0; i < updates.size(); ++i) {
        if (!verdict[i].has_value() && norms[i] > cutoff) {
          verdict[i] = RejectReason::kNormOutlier;
        }
      }
    }
  }

  std::vector<ClientUpdate> accepted;
  accepted.reserve(updates.size());
  std::size_t kept_weights = 0;
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (verdict[i].has_value()) {
      report.count(*verdict[i]);
      continue;
    }
    accepted.push_back(std::move(updates[i]));
    if (weights != nullptr) (*weights)[kept_weights] = (*weights)[i];
    ++kept_weights;
  }
  if (weights != nullptr) weights->resize(kept_weights);
  report.accepted += static_cast<std::int64_t>(accepted.size());
  return accepted;
}

}  // namespace fedcl::fl
