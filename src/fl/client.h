// Federated client: local SGD training under a privacy policy, plus
// the leakage probe that models what an adversary observes at the
// client-side interception points.
#pragma once

#include <cstdint>

#include "core/policy.h"
#include "data/dataset.h"
#include "fl/protocol.h"
#include "nn/layer.h"

namespace fedcl::fl {

struct LocalTrainConfig {
  std::int64_t local_iterations = 1;  // L
  std::int64_t batch_size = 1;        // B
  double learning_rate = 0.1;         // eta at round 0
  // Multiplicative per-round decay of eta (1 = constant). The paper
  // points at systematically decreasing learning rates [36] as the
  // companion of decaying gradient norms.
  double lr_decay_per_round = 1.0;

  double learning_rate_at(std::int64_t round) const;
};

// What a gradient-leakage adversary can read at a client during one
// round (filled when requested). All tensors are the values an
// adversary would actually see — i.e. after any per-example
// sanitization that the policy performs (type-2), and the true private
// data for scoring reconstructions.
struct LeakageProbe {
  // Private ground truth of the first local iteration.
  data::Batch first_batch;
  // Type-2 observation: the per-example gradient of example 0 of the
  // first iteration, as visible during local training (post-policy for
  // Fed-CDP, raw for non-private / Fed-SDP / DSSGD).
  TensorList type2_observed;
  // The first example itself (reconstruction target for type-2).
  data::Batch type2_example;
  // True (pre-policy) batch-averaged gradient of the first iteration —
  // the type-0/1 observation when L == 1, up to the -eta scaling.
  TensorList first_batch_gradient;
  bool captured = false;
};

// Per-round result: the (possibly sanitized) update that is shared,
// plus bookkeeping the trainer aggregates into metrics.
struct ClientRoundOutcome {
  ClientUpdate update;
  double first_iteration_grad_norm = 0.0;  // pre-policy batch grad L2
  double local_train_ms = 0.0;             // wall time of local training
};

class Client {
 public:
  Client(std::int64_t id, data::ClientData data, LocalTrainConfig config);

  std::int64_t id() const { return id_; }
  const data::ClientData& data() const { return data_; }
  const LocalTrainConfig& config() const { return config_; }

  // Runs one round of local training starting from global_weights on
  // the provided scratch model (its weights are overwritten). The
  // model's architecture must match the weights. `rng` drives batch
  // sampling and DP noise; `probe`, when non-null, captures the
  // adversary-visible gradients of the first iteration.
  ClientRoundOutcome run_round(nn::Sequential& model,
                               const TensorList& global_weights,
                               const core::PrivacyPolicy& policy,
                               std::int64_t round, Rng& rng,
                               LeakageProbe* probe = nullptr) const;

 private:
  std::int64_t id_;
  data::ClientData data_;
  LocalTrainConfig config_;
};

// Adapts a model's layer groups to the index-list form the dp module
// uses for per-layer clipping.
dp::ParamGroups to_param_groups(const std::vector<nn::LayerGroup>& groups);

}  // namespace fedcl::fl
