#include "fl/compression.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace fedcl::fl {

std::int64_t prune_smallest(TensorList& update, double prune_ratio) {
  FEDCL_CHECK(prune_ratio >= 0.0 && prune_ratio <= 1.0)
      << "prune_ratio " << prune_ratio;
  const std::int64_t total = tensor::list::total_numel(update);
  if (prune_ratio == 0.0 || total == 0) return total;
  const auto prune_count = static_cast<std::int64_t>(
      std::floor(prune_ratio * static_cast<double>(total)));
  if (prune_count == 0) return total;

  std::vector<float> magnitudes;
  magnitudes.reserve(static_cast<std::size_t>(total));
  for (const auto& t : update) {
    const float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i)
      magnitudes.push_back(std::abs(p[i]));
  }
  // Threshold below which coordinates are dropped.
  auto nth = magnitudes.begin() + (prune_count - 1);
  std::nth_element(magnitudes.begin(), nth, magnitudes.end());
  const float threshold = *nth;

  // Zero everything strictly below the threshold, then drop ties at the
  // threshold until exactly prune_count coordinates are removed (keeps
  // the contract exact when many magnitudes are equal).
  std::int64_t removed = 0;
  for (auto& t : update) {
    float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      if (std::abs(p[i]) < threshold) {
        p[i] = 0.0f;
        ++removed;
      }
    }
  }
  for (auto& t : update) {
    if (removed >= prune_count) break;
    float* p = t.data();
    for (std::int64_t i = 0; i < t.numel() && removed < prune_count; ++i) {
      if (p[i] != 0.0f && std::abs(p[i]) == threshold) {
        p[i] = 0.0f;
        ++removed;
      }
    }
  }
  return total - prune_count;
}

double quantize_uniform(TensorList& update, int bits) {
  FEDCL_CHECK(bits >= 1 && bits <= 16) << "bits " << bits;
  const double levels = static_cast<double>((1 << bits) - 1);
  double sq_error = 0.0;
  std::int64_t total = 0;
  for (auto& t : update) {
    const float max_abs = t.max_abs();
    total += t.numel();
    if (max_abs == 0.0f) continue;
    // step spans [-max_abs, max_abs] with `levels` intervals.
    const double step = 2.0 * max_abs / levels;
    float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      const double snapped =
          std::round((p[i] + max_abs) / step) * step - max_abs;
      const double err = snapped - p[i];
      sq_error += err * err;
      p[i] = static_cast<float>(snapped);
    }
  }
  FEDCL_CHECK_GT(total, 0);
  return std::sqrt(sq_error / static_cast<double>(total));
}

double sparsity(const TensorList& update) {
  const std::int64_t total = tensor::list::total_numel(update);
  if (total == 0) return 0.0;
  std::int64_t zeros = 0;
  for (const auto& t : update) {
    const float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      if (p[i] == 0.0f) ++zeros;
    }
  }
  return static_cast<double>(zeros) / static_cast<double>(total);
}

}  // namespace fedcl::fl
