#include "fl/fault_injection.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::fl {

const char* fault_type_name(FaultType type) {
  switch (type) {
    case FaultType::kNone:
      return "none";
    case FaultType::kCrash:
      return "crash";
    case FaultType::kStraggler:
      return "straggler";
    case FaultType::kCorruptDelta:
      return "corrupt-delta";
    case FaultType::kBitFlip:
      return "bit-flip";
    case FaultType::kStaleRound:
      return "stale-round";
  }
  return "unknown";
}

FaultPlan::FaultPlan(FaultInjectionConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  FEDCL_CHECK(config_.fault_rate >= 0.0 && config_.fault_rate <= 1.0)
      << "fault rate " << config_.fault_rate;
  const double weights[] = {config_.crash_weight, config_.straggler_weight,
                            config_.corrupt_weight, config_.bit_flip_weight,
                            config_.stale_round_weight};
  double acc = 0.0;
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    FEDCL_CHECK_GE(weights[i], 0.0) << "negative fault mix weight";
    acc += weights[i];
    cumulative_[i] = acc;
  }
  total_weight_ = acc;
  FEDCL_CHECK(!config_.enabled() || total_weight_ > 0.0)
      << "fault rate > 0 but every mix weight is zero";
}

FaultType FaultPlan::fault_for(std::int64_t round,
                               std::int64_t client_id) const {
  return fault_for_attempt(round, client_id, 0);
}

FaultType FaultPlan::fault_for_attempt(std::int64_t round,
                                       std::int64_t client_id,
                                       int attempt) const {
  if (!config_.enabled()) return FaultType::kNone;
  // One independent draw stream per (round, client): query order and
  // count cannot perturb the schedule. Attempt 0 keeps the historical
  // stream; retries fork an independent one per attempt.
  Rng draw =
      attempt == 0
          ? Rng(seed_).fork("fault-plan",
                            static_cast<std::uint64_t>(round) * 0x1000003ULL +
                                static_cast<std::uint64_t>(client_id))
          : Rng(seed_)
                .fork("fault-plan-retry",
                      (static_cast<std::uint64_t>(round) * 0x1000003ULL +
                       static_cast<std::uint64_t>(client_id)) *
                              31ULL +
                          static_cast<std::uint64_t>(attempt));
  if (!draw.bernoulli(config_.fault_rate)) return FaultType::kNone;
  const double pick = draw.uniform(0.0, total_weight_);
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (pick < cumulative_[i]) {
      return static_cast<FaultType>(i + 1);
    }
  }
  return FaultType::kStaleRound;
}

void corrupt_delta(TensorList& delta, Rng& rng) {
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  bool poisoned = false;
  for (auto& t : delta) {
    if (!t.defined() || t.numel() == 0) continue;
    // Scaled garbage: blow the magnitude out by ~1e6.
    t.scale_(1e6f);
    // Poison ~1% of entries (at least one) with NaN/Inf.
    const std::int64_t n = t.numel();
    const std::int64_t hits = std::max<std::int64_t>(1, n / 100);
    for (std::int64_t h = 0; h < hits; ++h) {
      const auto i = static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(n)));
      t.data()[i] = rng.bernoulli(0.5) ? kNan : kInf;
      poisoned = true;
    }
  }
  FEDCL_CHECK(poisoned) << "corrupt_delta on an empty update";
}

void flip_random_bits(std::vector<std::uint8_t>& bytes, Rng& rng, int flips) {
  FEDCL_CHECK(!bytes.empty()) << "flip_random_bits on an empty buffer";
  FEDCL_CHECK_GT(flips, 0);
  for (int f = 0; f < flips; ++f) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(bytes.size())));
    bytes[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
  }
}

void RoundFailureStats::accumulate(const RoundFailureStats& other) {
  injected_crash += other.injected_crash;
  injected_straggler += other.injected_straggler;
  injected_corrupt += other.injected_corrupt;
  injected_bit_flip += other.injected_bit_flip;
  injected_stale += other.injected_stale;
  dropouts += other.dropouts;
  rejected_decode += other.rejected_decode;
  rejected_shape += other.rejected_shape;
  rejected_non_finite += other.rejected_non_finite;
  rejected_norm_outlier += other.rejected_norm_outlier;
  rejected_stale += other.rejected_stale;
  retried_clients += other.retried_clients;
  quorum_missed += other.quorum_missed;
  fault_expired += other.fault_expired;
  fault_screened += other.fault_screened;
  fault_retried += other.fault_retried;
  fault_accepted_stale += other.fault_accepted_stale;
  retry_attempts += other.retry_attempts;
  reduced_quorum_rounds += other.reduced_quorum_rounds;
}

}  // namespace fedcl::fl
