// Pinned-order reductions for bounded-memory aggregation at scale.
//
// Every reduction shape in this module — the O(log K) streaming
// accumulator, the buffered recursive reference, and the hierarchical
// fan-out tree — executes the exact same float additions in the exact
// same association order: the canonical binary-counter pairwise tree
// over the leaf sequence. That makes "streaming == buffered == tree"
// a bitwise identity, not an approximation (tests/scale_engine_test
// pins it for fan-outs {2, 8, 64} across leaf counts).
//
// Determinism boundary (DESIGN.md §7): the identity requires blocks
// that are aligned and power-of-two sized, which is why tree fan-outs
// are restricted to powers of two. With that restriction, an edge
// aggregator's partial over leaves [bF, bF+F) occupies exactly the
// tree position the flat counter would have given those leaves, so
// pushing finished partials into a parent counter in block order
// replays the flat schedule operation for operation.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor_list.h"

namespace fedcl::fl {

using tensor::list::TensorList;

// A partial reduction: sum = Σ w_i·delta_i over `leaves` consecutive
// leaves, weight = Σ w_i (accumulated in the same pinned order, so
// weights are bitwise reproducible too).
struct ReduceNode {
  TensorList sum;
  double weight = 0.0;
  std::int64_t leaves = 0;

  bool empty() const { return leaves == 0; }
};

// The fixed-size accumulator: a binary counter over pushed units.
// Level l holds the pending sum of 2^l consecutive units; pushing the
// (2k+1)-th unit at a level merges it up (older += newer). Memory is
// O(log n) nodes for n pushes — the sync-path analogue of the async
// engine's single-buffer accumulator, but bitwise equal to the
// buffered reduction.
class StreamingReducer {
 public:
  // Pushes one leaf update. `delta` is consumed and mutated in place
  // (scaled by `weight` unless weight == 1.0, then merged into), so it
  // must own its storage — Tensor copies share storage; clone first if
  // the caller keeps a reference (tensor::list::clone).
  void push(TensorList delta, double weight);
  // Pushes a finished partial as a single unit (an edge aggregator's
  // result entering its parent). Empty nodes are ignored.
  void push_node(ReduceNode node);
  // Folds the surviving levels (lowest first) into one node and
  // resets the counter. Returns an empty node if nothing was pushed.
  ReduceNode finalize();

  std::int64_t units() const { return units_; }
  int occupancy() const;
  // High-water occupancy across the reducer's lifetime (not reset by
  // finalize) — the bounded-memory witness asserted by the soak test.
  int max_occupancy() const { return max_occupancy_; }

 private:
  void carry(ReduceNode node);

  std::vector<ReduceNode> levels_;
  std::int64_t units_ = 0;
  int max_occupancy_ = 0;
};

// Reference implementation: materializes the binary-counter tree
// recursively over fully buffered inputs. Deliberately shares no code
// with StreamingReducer so the bitwise pin between them is meaningful.
// Unlike push(), both buffered reductions detach (deep-copy) their
// inputs, so the caller's tensors are never mutated.
ReduceNode reduce_buffered(std::vector<TensorList> deltas,
                           const std::vector<double>& weights);

// Hierarchical reduction: consecutive fan_out-sized blocks of leaves
// are reduced by edge aggregators, whose partials are reduced by the
// next tier, until one node remains. fan_out must be a power of two
// (>= 2) — the alignment condition under which the result is bitwise
// identical to reduce_buffered / StreamingReducer.
ReduceNode tree_reduce(std::vector<TensorList> deltas,
                       const std::vector<double>& weights,
                       std::int64_t fan_out);

// sum / Σw — the streaming mean. Checks the node is non-empty with
// positive total weight.
TensorList finalize_mean(ReduceNode node);

bool is_power_of_two(std::int64_t v);

}  // namespace fedcl::fl