// Distributed Selective SGD (Shokri & Shmatikov, CCS'15) — the
// selective parameter-sharing baseline the paper compares against in
// Figure 4. Each client shares only the largest-magnitude fraction of
// its round update; no noise is added, which is why the paper shows it
// vulnerable to all three leakage types.
#pragma once

#include <string>

#include "core/policy.h"

namespace fedcl::fl {

class DssgdPolicy final : public core::PrivacyPolicy {
 public:
  // share_fraction theta in (0, 1]: fraction of coordinates uploaded.
  explicit DssgdPolicy(double share_fraction = 0.1);

  std::string name() const override { return "DSSGD"; }
  double share_fraction() const { return share_fraction_; }

  void sanitize_client_update(core::TensorList& update,
                              const core::ParamGroups& groups,
                              std::int64_t round, Rng& rng) const override;

 private:
  double share_fraction_;
};

}  // namespace fedcl::fl
