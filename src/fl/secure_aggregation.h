// Pairwise-masking secure aggregation (Bonawitz et al., CCS'17 —
// the paper's reference [22]), simulated without real cryptography.
//
// Every participant pair (i, j) derives the same mask stream from a
// shared session seed; client i adds the mask, client j subtracts it,
// so the masks cancel exactly in the server's sum while every
// individual masked update is indistinguishable from noise. This is
// the "cryptographic approaches secure the transport and the
// aggregation" point of Section II: a type-0 adversary at the server
// sees only masked updates, but type-1/2 leakage at the client is
// untouched — which is exactly what the extension bench demonstrates.
//
// The mask PRG is the library's SplitMix64 stream — NOT cryptographic;
// the simulation preserves the protocol's information flow, not its
// hardness assumptions. Dropout recovery (secret-sharing the seeds) is
// out of scope.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor_list.h"

namespace fedcl::fl {

class SecureAggregator {
 public:
  // participants: ids of the clients of this round (each pair derives
  // a shared mask from session_seed); shapes: the update tensor shapes.
  SecureAggregator(std::vector<std::int64_t> participants,
                   std::uint64_t session_seed,
                   std::vector<tensor::Shape> shapes);

  std::size_t participant_count() const { return participants_.size(); }

  // Masks `update` in place for the given participant. The sum of all
  // participants' masked updates equals the sum of the originals.
  void mask(std::int64_t client_id, tensor::list::TensorList& update) const;

  // The mask a participant applies (useful for tests; sums to zero
  // over all participants).
  tensor::list::TensorList mask_for(std::int64_t client_id) const;

 private:
  std::vector<std::int64_t> participants_;
  std::uint64_t session_seed_;
  std::vector<tensor::Shape> shapes_;
};

}  // namespace fedcl::fl
