#include "fl/async_aggregator.h"

#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/telemetry.h"

namespace fedcl::fl {

namespace {

// Inclusive upper edges for the staleness histogram (rounds behind);
// one overflow bucket is implicit.
const std::vector<double>& staleness_buckets() {
  static const std::vector<double> buckets = {0, 1, 2, 4, 8, 16, 32};
  return buckets;
}

}  // namespace

AsyncAggregator::AsyncAggregator(TensorList initial_weights,
                                 AsyncAggregatorConfig config,
                                 const core::PrivacyPolicy& policy,
                                 const dp::ParamGroups& groups, Rng rng)
    : config_(config),
      policy_(policy),
      groups_(groups),
      screener_(config.screening),
      rng_(rng),
      weights_(std::move(initial_weights)) {
  FEDCL_CHECK(!weights_.empty()) << "async aggregator needs a model";
  FEDCL_CHECK_GE(config_.min_to_apply, 1);
  FEDCL_CHECK_GE(config_.staleness_alpha, 0.0);
  FEDCL_CHECK_GE(config_.max_staleness, 0);
  expected_shapes_ = tensor::list::shapes_of(weights_);
  accumulator_ = tensor::list::zeros_like(weights_);
}

AsyncAggregator::OfferResult AsyncAggregator::offer(ClientUpdate update,
                                                    std::int64_t now_round,
                                                    double base_weight) {
  FEDCL_CHECK_GE(base_weight, 0.0) << "negative aggregation weight";
  std::lock_guard<std::mutex> lock(mutex_);
  telemetry::Registry& registry = telemetry::global_registry();

  OfferResult result;
  const ScreenVerdict verdict =
      screener_.screen_one(update, expected_shapes_, now_round,
                           config_.max_staleness, screening_totals_);
  result.staleness = verdict.staleness;
  if (!verdict.accepted()) {
    result.reject = verdict.reject;
    return result;
  }
  result.accepted = true;

  // Streaming fold: sanitize (the per-update server-side hook, exactly
  // as the synchronous Server applies it), staleness-decay, accumulate.
  policy_.sanitize_at_server(update.delta, groups_, now_round, rng_);
  const double decay =
      std::pow(1.0 + static_cast<double>(verdict.staleness),
               -config_.staleness_alpha);
  const double w = base_weight * decay;
  tensor::list::add_(accumulator_, update.delta, static_cast<float>(w));
  weight_sum_ += w;
  ++buffered_;

  registry.histogram("fl.async.staleness", staleness_buckets())
      .observe(static_cast<double>(verdict.staleness));
  registry.gauge("fl.async.buffer_occupancy")
      .set(static_cast<double>(buffered_));
  registry.counter("fl.server.updates_accepted_total").add(1);
  if (verdict.staleness > 0) {
    registry.counter("fl.async.stale_accepted_total").add(1);
  }

  if (buffered_ >= config_.min_to_apply && weight_sum_ > 0.0) {
    apply_locked("quorum");
    result.applied = true;
  }
  return result;
}

bool AsyncAggregator::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffered_ == 0 || weight_sum_ <= 0.0) return false;
  apply_locked("flush");
  return true;
}

void AsyncAggregator::apply_locked(const char* trigger) {
  // weights += accumulator / weight_sum — the staleness-weighted mean
  // of everything buffered since the last application.
  tensor::list::add_(weights_, accumulator_,
                     static_cast<float>(1.0 / weight_sum_));
  tensor::list::scale_(accumulator_, 0.0f);
  weight_sum_ = 0.0;
  buffered_ = 0;
  ++applies_;
  telemetry::Registry& registry = telemetry::global_registry();
  registry.counter("fl.async.applied_total", {{"trigger", trigger}}).add(1);
  registry.gauge("fl.async.buffer_occupancy").set(0.0);
}

TensorList AsyncAggregator::weights_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tensor::list::clone(weights_);
}

std::int64_t AsyncAggregator::applies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applies_;
}

std::int64_t AsyncAggregator::buffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffered_;
}

}  // namespace fedcl::fl
