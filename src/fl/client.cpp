#include "fl/client.h"

#include <chrono>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "nn/grad_utils.h"
#include "nn/optimizer.h"

namespace fedcl::fl {

namespace {

// Extracts example j of a batch as a batch of size 1.
data::Batch slice_example(const data::Batch& batch, std::int64_t j) {
  FEDCL_CHECK(j >= 0 && j < batch.size());
  tensor::Shape shape = batch.x.shape();
  shape[0] = 1;
  data::Batch out;
  out.x = tensor::Tensor(shape);
  const std::int64_t row = batch.x.numel() / batch.size();
  const float* src = batch.x.data() + j * row;
  std::copy(src, src + row, out.x.data());
  out.labels = {batch.labels[static_cast<std::size_t>(j)]};
  return out;
}

}  // namespace

double LocalTrainConfig::learning_rate_at(std::int64_t round) const {
  FEDCL_CHECK_GE(round, 0);
  return learning_rate * std::pow(lr_decay_per_round,
                                  static_cast<double>(round));
}

dp::ParamGroups to_param_groups(const std::vector<nn::LayerGroup>& groups) {
  dp::ParamGroups out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.param_indices);
  return out;
}

Client::Client(std::int64_t id, data::ClientData data, LocalTrainConfig config)
    : id_(id), data_(std::move(data)), config_(config) {
  FEDCL_CHECK_GE(id, 0);
  FEDCL_CHECK_GT(config.local_iterations, 0);
  FEDCL_CHECK_GT(config.batch_size, 0);
  FEDCL_CHECK_GT(config.learning_rate, 0.0);
  FEDCL_CHECK(config.lr_decay_per_round > 0.0 &&
              config.lr_decay_per_round <= 1.0)
      << "lr decay " << config.lr_decay_per_round;
}

ClientRoundOutcome Client::run_round(nn::Sequential& model,
                                     const TensorList& global_weights,
                                     const core::PrivacyPolicy& policy,
                                     std::int64_t round, Rng& rng,
                                     LeakageProbe* probe) const {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  model.set_weights(global_weights);
  std::vector<tensor::Var> params = model.parameters();
  const dp::ParamGroups groups = to_param_groups(model.layer_groups());
  nn::SgdOptimizer optimizer(config_.learning_rate_at(round));

  ClientRoundOutcome outcome;
  const float inv_b = 1.0f / static_cast<float>(config_.batch_size);

  for (std::int64_t l = 0; l < config_.local_iterations; ++l) {
    data::Batch batch = data_.sample_batch(rng, config_.batch_size);
    const bool probing = probe != nullptr && l == 0;

    TensorList step_grad;
    if (policy.needs_per_example_gradients()) {
      // Algorithm 2 lines 6-14: per-example gradient, per-layer clip,
      // per-example noise, then the 1/B batch average.
      for (std::int64_t j = 0; j < batch.size(); ++j) {
        data::Batch ex = slice_example(batch, j);
        TensorList grad = nn::compute_gradients(model, ex.x, ex.labels);
        policy.sanitize_per_example(grad, groups, round, rng);
        if (probing && j == 0) {
          probe->type2_observed = tensor::list::clone(grad);
          probe->type2_example = ex;
        }
        if (step_grad.empty()) {
          step_grad = std::move(grad);
        } else {
          tensor::list::add_(step_grad, grad);
        }
      }
      tensor::list::scale_(step_grad, inv_b);
    } else {
      step_grad = nn::compute_gradients(model, batch.x, batch.labels);
      if (probing) {
        // Type-2 adversary reads the raw per-example gradient during
        // training; non-per-example policies leave it unprotected.
        data::Batch ex = slice_example(batch, 0);
        probe->type2_observed = nn::compute_gradients(model, ex.x, ex.labels);
        probe->type2_example = ex;
      }
    }

    if (probing) {
      probe->first_batch = batch;
      probe->first_batch_gradient =
          policy.needs_per_example_gradients()
              ? nn::compute_gradients(model, batch.x, batch.labels)
              : tensor::list::clone(step_grad);
      probe->captured = true;
    }
    if (l == 0) {
      outcome.first_iteration_grad_norm =
          policy.needs_per_example_gradients()
              ? tensor::list::l2_norm(
                    nn::compute_gradients(model, batch.x, batch.labels))
              : tensor::list::l2_norm(step_grad);
    }

    // Line 15: local gradient descent with the sanitized batch gradient.
    optimizer.step(params, step_grad);
  }

  // Line 17: Delta W_i(t) = W_i(t)_L - W(t).
  TensorList delta = model.weights();
  tensor::list::add_(delta, global_weights, -1.0f);
  policy.sanitize_client_update(delta, groups, round, rng);

  outcome.update.client_id = id_;
  outcome.update.round = round;
  outcome.update.delta = std::move(delta);
  outcome.local_train_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return outcome;
}

}  // namespace fedcl::fl
