#include "fl/client.h"

#include <chrono>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "nn/grad_utils.h"
#include "nn/optimizer.h"
#include "nn/per_example.h"

namespace fedcl::fl {

double LocalTrainConfig::learning_rate_at(std::int64_t round) const {
  FEDCL_CHECK_GE(round, 0);
  return learning_rate * std::pow(lr_decay_per_round,
                                  static_cast<double>(round));
}

dp::ParamGroups to_param_groups(const std::vector<nn::LayerGroup>& groups) {
  dp::ParamGroups out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.param_indices);
  return out;
}

Client::Client(std::int64_t id, data::ClientData data, LocalTrainConfig config)
    : id_(id), data_(std::move(data)), config_(config) {
  FEDCL_CHECK_GE(id, 0);
  FEDCL_CHECK_GT(config.local_iterations, 0);
  FEDCL_CHECK_GT(config.batch_size, 0);
  FEDCL_CHECK_GT(config.learning_rate, 0.0);
  FEDCL_CHECK(config.lr_decay_per_round > 0.0 &&
              config.lr_decay_per_round <= 1.0)
      << "lr decay " << config.lr_decay_per_round;
}

ClientRoundOutcome Client::run_round(nn::Sequential& model,
                                     const TensorList& global_weights,
                                     const core::PrivacyPolicy& policy,
                                     std::int64_t round, Rng& rng,
                                     LeakageProbe* probe) const {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();

  model.set_weights(global_weights);
  std::vector<tensor::Var> params = model.parameters();
  const dp::ParamGroups groups = to_param_groups(model.layer_groups());
  nn::SgdOptimizer optimizer(config_.learning_rate_at(round));

  ClientRoundOutcome outcome;

  // Which gradient engine this round actually runs on: the batched
  // per-example engine, the sliced B-graph fallback, or the plain
  // batch backward for policies that never look at per-example grads.
  const char* engine = "batch";
  if (policy.needs_per_example_gradients()) {
    const bool batched =
        nn::per_example_mode() == nn::PerExampleMode::kBatched ||
        (nn::per_example_mode() == nn::PerExampleMode::kAuto &&
         nn::per_example_supported(model));
    engine = batched ? "batched" : "sliced";
  }
  telemetry::global_registry()
      .counter("fl.client.rounds_total", {{"engine", engine}})
      .add(1);

  for (std::int64_t l = 0; l < config_.local_iterations; ++l) {
    data::Batch batch = data_.sample_batch(rng, config_.batch_size);
    const bool probing = probe != nullptr && l == 0;

    TensorList step_grad;
    if (policy.needs_per_example_gradients()) {
      // Algorithm 2 lines 6-14: one batched forward/backward yields
      // every example's gradient, then per-layer clip + per-example
      // noise in place, then the 1/B batch average.
      tensor::list::PerExampleGrads grads =
          nn::per_example_gradients(model, batch.x, batch.labels);
      if (l == 0) {
        // The pre-policy batch gradient is the mean of the raw
        // per-example gradients — no second full backward needed for
        // the probe or the norm metric.
        TensorList batch_grad = grads.mean();
        outcome.first_iteration_grad_norm =
            tensor::list::l2_norm(batch_grad);
        if (probing) probe->first_batch_gradient = std::move(batch_grad);
      }
      {
        telemetry::SpanTimer sanitize_span(
            telemetry::global_registry(), "dp.sanitize",
            {{"stage", "per_example"}}, round);
        policy.sanitize_per_example_batch(grads, groups, round, rng);
      }
      if (probing) {
        probe->type2_observed = grads.example(0);
        data::copy_example(batch, 0, probe->type2_example);
      }
      step_grad = grads.mean();
    } else {
      step_grad = nn::compute_gradients(model, batch.x, batch.labels);
      if (probing) {
        // Type-2 adversary reads the raw per-example gradient during
        // training; non-per-example policies leave it unprotected.
        data::copy_example(batch, 0, probe->type2_example);
        probe->type2_observed = nn::compute_gradients(
            model, probe->type2_example.x, probe->type2_example.labels);
      }
      if (l == 0) {
        outcome.first_iteration_grad_norm = tensor::list::l2_norm(step_grad);
      }
    }

    if (probing) {
      probe->first_batch = batch;
      if (!policy.needs_per_example_gradients()) {
        probe->first_batch_gradient = tensor::list::clone(step_grad);
      }
      probe->captured = true;
    }

    // Line 15: local gradient descent with the sanitized batch gradient.
    optimizer.step(params, step_grad);
  }

  // Line 17: Delta W_i(t) = W_i(t)_L - W(t).
  TensorList delta = model.weights();
  tensor::list::add_(delta, global_weights, -1.0f);
  {
    telemetry::SpanTimer sanitize_span(
        telemetry::global_registry(), "dp.sanitize", {{"stage", "update"}},
        round);
    policy.sanitize_client_update(delta, groups, round, rng);
  }

  // Pre-sanitization first-iteration batch gradient norm — the
  // quantity the paper's clipping bound C is calibrated against.
  telemetry::global_registry()
      .histogram("fl.client.grad_norm", telemetry::norm_buckets(),
                 {{"policy", policy.name()}})
      .observe(outcome.first_iteration_grad_norm);

  outcome.update.client_id = id_;
  outcome.update.round = round;
  outcome.update.delta = std::move(delta);
  outcome.local_train_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  // Real (not virtual) local-training latency: the empirical companion
  // of the retry layer's soft-deadline policy.
  telemetry::global_registry()
      .histogram("fl.client.local_train_ms",
                 {0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000})
      .observe(outcome.local_train_ms);
  return outcome;
}

}  // namespace fedcl::fl
