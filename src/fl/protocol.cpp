#include "fl/protocol.h"

#include <cstring>

#include "common/error.h"

namespace fedcl::fl {

namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::uint8_t>& in, std::size_t& offset) {
  FEDCL_CHECK_LE(offset + sizeof(T), in.size()) << "truncated message";
  T v;
  std::memcpy(&v, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return v;
}

std::uint64_t splitmix64_step(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> serialize_update(const ClientUpdate& update) {
  std::vector<std::uint8_t> out;
  append_pod(out, update.client_id);
  append_pod(out, update.round);
  append_pod(out, static_cast<std::uint32_t>(update.delta.size()));
  for (const auto& t : update.delta) {
    FEDCL_CHECK(t.defined()) << "undefined tensor in update";
    append_pod(out, static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d = 0; d < t.ndim(); ++d) {
      append_pod(out, static_cast<std::int64_t>(t.dim(d)));
    }
    const auto* p = reinterpret_cast<const std::uint8_t*>(t.data());
    out.insert(out.end(), p, p + sizeof(float) * t.numel());
  }
  return out;
}

ClientUpdate deserialize_update(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  ClientUpdate update;
  update.client_id = read_pod<std::int64_t>(bytes, offset);
  update.round = read_pod<std::int64_t>(bytes, offset);
  const auto count = read_pod<std::uint32_t>(bytes, offset);
  update.delta.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto ndim = read_pod<std::uint32_t>(bytes, offset);
    FEDCL_CHECK_LE(ndim, 8u) << "implausible tensor rank";
    tensor::Shape shape;
    for (std::uint32_t d = 0; d < ndim; ++d) {
      shape.push_back(read_pod<std::int64_t>(bytes, offset));
    }
    tensor::Tensor t(shape);
    const std::size_t nbytes = sizeof(float) * static_cast<std::size_t>(t.numel());
    FEDCL_CHECK_LE(offset + nbytes, bytes.size()) << "truncated tensor data";
    std::memcpy(t.data(), bytes.data() + offset, nbytes);
    offset += nbytes;
    update.delta.push_back(std::move(t));
  }
  FEDCL_CHECK_EQ(offset, bytes.size()) << "trailing bytes in message";
  return update;
}

std::vector<std::uint8_t> SecureChannel::seal(
    std::vector<std::uint8_t> plaintext) const {
  const std::uint64_t tag = fnv1a(plaintext.data(), plaintext.size());
  append_pod(plaintext, tag);
  std::uint64_t state = key_;
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    if (i % 8 == 0) splitmix64_step(state);
    std::uint64_t probe = state;
    plaintext[i] ^= static_cast<std::uint8_t>(
        splitmix64_step(probe) >> ((i % 8) * 8));
  }
  return plaintext;
}

std::vector<std::uint8_t> SecureChannel::open(
    std::vector<std::uint8_t> sealed) const {
  FEDCL_CHECK_GE(sealed.size(), sizeof(std::uint64_t)) << "short ciphertext";
  std::uint64_t state = key_;
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    if (i % 8 == 0) splitmix64_step(state);
    std::uint64_t probe = state;
    sealed[i] ^= static_cast<std::uint8_t>(
        splitmix64_step(probe) >> ((i % 8) * 8));
  }
  std::size_t body = sealed.size() - sizeof(std::uint64_t);
  std::size_t offset = body;
  const auto tag = read_pod<std::uint64_t>(sealed, offset);
  FEDCL_CHECK_EQ(tag, fnv1a(sealed.data(), body)) << "integrity tag mismatch";
  sealed.resize(body);
  return sealed;
}

}  // namespace fedcl::fl
