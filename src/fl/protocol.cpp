#include "fl/protocol.h"

#include <cstring>
#include <limits>

#include "common/error.h"

namespace fedcl::fl {

namespace {

// Reject implausible wire values before allocating anything: a flipped
// bit in a count or dim field must fail cleanly, not request gigabytes.
constexpr std::uint32_t kMaxTensors = 4096;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 28;  // 1 GiB of f32

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

// Bounds-checked read cursor over an untrusted buffer. Operating on a
// ByteSpan keeps the cursor zero-copy: the network layer points it at
// a frame inside its receive buffer and the only copy of the payload
// is the memcpy into the destination tensor.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan bytes) : bytes_(bytes) {}

  template <typename T>
  bool read(T& out) {
    if (sizeof(T) > remaining()) return false;
    std::memcpy(&out, bytes_.data + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool read_floats(float* dst, std::size_t count) {
    const std::size_t nbytes = sizeof(float) * count;
    if (count > std::numeric_limits<std::size_t>::max() / sizeof(float) ||
        nbytes > remaining()) {
      return false;
    }
    std::memcpy(dst, bytes_.data + offset_, nbytes);
    offset_ += nbytes;
    return true;
  }

  std::size_t remaining() const { return bytes_.size - offset_; }

 private:
  ByteSpan bytes_;
  std::size_t offset_ = 0;
};

// Reads one tensor-list blob; on failure returns the reason, leaving
// `out` partially filled (callers discard it).
const char* read_tensor_list(ByteReader& reader, TensorList& out) {
  std::uint32_t count = 0;
  if (!reader.read(count)) return "truncated tensor count";
  if (count > kMaxTensors) return "implausible tensor count";
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t ndim = 0;
    if (!reader.read(ndim)) return "truncated tensor rank";
    if (ndim > kMaxRank) return "implausible tensor rank";
    tensor::Shape shape;
    std::int64_t numel = 1;
    for (std::uint32_t d = 0; d < ndim; ++d) {
      std::int64_t dim = 0;
      if (!reader.read(dim)) return "truncated tensor shape";
      if (dim <= 0 || dim > kMaxElements || numel > kMaxElements / dim) {
        return "implausible tensor dimension";
      }
      numel *= dim;
      shape.push_back(dim);
    }
    // Cheap size check before the allocation the shape implies.
    if (sizeof(float) * static_cast<std::size_t>(numel) >
        reader.remaining()) {
      return "truncated tensor data";
    }
    tensor::Tensor t(shape);
    if (!reader.read_floats(t.data(), static_cast<std::size_t>(t.numel()))) {
      return "truncated tensor data";
    }
    out.push_back(std::move(t));
  }
  return nullptr;
}

std::uint64_t splitmix64_step(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void apply_keystream(std::vector<std::uint8_t>& bytes, std::uint64_t key) {
  std::uint64_t state = key;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i % 8 == 0) splitmix64_step(state);
    std::uint64_t probe = state;
    bytes[i] ^= static_cast<std::uint8_t>(
        splitmix64_step(probe) >> ((i % 8) * 8));
  }
}

}  // namespace

void append_tensor_list(std::vector<std::uint8_t>& out,
                        const TensorList& list) {
  append_pod(out, static_cast<std::uint32_t>(list.size()));
  for (const auto& t : list) {
    FEDCL_CHECK(t.defined()) << "undefined tensor in list";
    append_pod(out, static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d = 0; d < t.ndim(); ++d) {
      append_pod(out, static_cast<std::int64_t>(t.dim(d)));
    }
    const auto* p = reinterpret_cast<const std::uint8_t*>(t.data());
    out.insert(out.end(), p, p + sizeof(float) * t.numel());
  }
}

std::vector<std::uint8_t> serialize_tensor_list(const TensorList& list) {
  std::vector<std::uint8_t> out;
  append_tensor_list(out, list);
  return out;
}

Result<TensorList> deserialize_tensor_list(ByteSpan bytes) {
  using R = Result<TensorList>;
  ByteReader reader(bytes);
  TensorList list;
  if (const char* err = read_tensor_list(reader, list)) return R::failure(err);
  if (reader.remaining() != 0) return R::failure("trailing bytes in message");
  return list;
}

std::vector<std::uint8_t> serialize_update(const ClientUpdate& update) {
  std::vector<std::uint8_t> out;
  append_pod(out, update.client_id);
  append_pod(out, update.round);
  append_tensor_list(out, update.delta);
  return out;
}

Result<ClientUpdate> deserialize_update(ByteSpan bytes) {
  using R = Result<ClientUpdate>;
  ByteReader reader(bytes);
  ClientUpdate update;
  if (!reader.read(update.client_id) || !reader.read(update.round)) {
    return R::failure("truncated header");
  }
  if (const char* err = read_tensor_list(reader, update.delta)) {
    return R::failure(err);
  }
  if (reader.remaining() != 0) return R::failure("trailing bytes in message");
  return update;
}

Result<ClientUpdate> deserialize_update(
    const std::vector<std::uint8_t>& bytes) {
  return deserialize_update(ByteSpan(bytes));
}

std::uint64_t client_channel_key(std::uint64_t experiment_seed,
                                 std::int64_t client_id) {
  return experiment_seed ^
         (0x5EC2E7ULL +
          static_cast<std::uint64_t>(client_id) * 0x9E3779B97F4A7C15ULL);
}

std::vector<std::uint8_t> SecureChannel::seal(
    std::vector<std::uint8_t> plaintext) const {
  const std::uint64_t tag = fnv1a(plaintext.data(), plaintext.size());
  append_pod(plaintext, tag);
  apply_keystream(plaintext, key_);
  return plaintext;
}

Result<std::vector<std::uint8_t>> SecureChannel::open(
    std::vector<std::uint8_t> sealed) const {
  using R = Result<std::vector<std::uint8_t>>;
  if (sealed.size() < sizeof(std::uint64_t)) {
    return R::failure("short ciphertext");
  }
  apply_keystream(sealed, key_);
  const std::size_t body = sealed.size() - sizeof(std::uint64_t);
  std::uint64_t tag = 0;
  std::memcpy(&tag, sealed.data() + body, sizeof(tag));
  if (tag != fnv1a(sealed.data(), body)) {
    return R::failure("integrity tag mismatch");
  }
  sealed.resize(body);
  return sealed;
}

}  // namespace fedcl::fl
