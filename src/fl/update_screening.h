// Server-side validation of client updates before aggregation.
//
// Updates arrive from unreliable clients over a hostile channel, so the
// server screens every one — structural check against the global weight
// shapes, finite-value check, L2-norm outlier rejection, stale-round
// rejection — and aggregates only the survivors, in the spirit of the
// adversarial-update screening that "Securing Distributed SGD against
// Gradient Leakage Threats" (Wei et al., 2023) layers on top of
// Fed-CDP-style sanitization. A rejected update is a per-client event
// counted per reason, never a process-wide abort.
#pragma once

#include <cstdint>
#include <vector>

#include "fl/protocol.h"
#include "tensor/shape.h"

namespace fedcl::fl {

enum class RejectReason {
  kShapeMismatch,  // wrong tensor count, rank, or dims
  kNonFinite,      // NaN/Inf anywhere in the delta
  kNormOutlier,    // L2 norm out of band
  kStaleRound,     // update.round != current round
};

const char* reject_reason_name(RejectReason reason);

struct ScreeningConfig {
  // Reject updates whose L2 norm exceeds `norm_outlier_factor` times
  // the median norm of the round's structurally valid updates
  // (0 disables). Needs >= 3 candidates to be meaningful; below that
  // the relative check is skipped.
  double norm_outlier_factor = 0.0;
  // Absolute cap on the update L2 norm (0 disables).
  double max_update_norm = 0.0;
  // Structural / finite / stale checks are always on: an update that
  // fails them cannot be aggregated at all.
};

// Per-reason rejection counts for one screening pass.
struct ScreeningReport {
  std::int64_t accepted = 0;
  std::int64_t rejected_shape = 0;
  std::int64_t rejected_non_finite = 0;
  std::int64_t rejected_norm_outlier = 0;
  std::int64_t rejected_stale = 0;

  std::int64_t rejected_total() const {
    return rejected_shape + rejected_non_finite + rejected_norm_outlier +
           rejected_stale;
  }
  void count(RejectReason reason);
};

class UpdateScreener {
 public:
  explicit UpdateScreener(ScreeningConfig config = {});

  // Validates `updates` against the expected parameter shapes and the
  // current round, returning the accepted subset (order preserved).
  // When `weights` is non-null it holds one aggregation weight per
  // update and is filtered in lockstep.
  std::vector<ClientUpdate> screen(std::vector<ClientUpdate> updates,
                                   const std::vector<tensor::Shape>& expected,
                                   std::int64_t current_round,
                                   ScreeningReport& report,
                                   std::vector<double>* weights = nullptr)
      const;

  const ScreeningConfig& config() const { return config_; }

 private:
  ScreeningConfig config_;
};

}  // namespace fedcl::fl
