// Server-side validation of client updates before aggregation.
//
// Updates arrive from unreliable clients over a hostile channel, so the
// server screens every one — structural check against the global weight
// shapes, finite-value check, L2-norm outlier rejection, stale-round
// rejection — and aggregates only the survivors, in the spirit of the
// adversarial-update screening that "Securing Distributed SGD against
// Gradient Leakage Threats" (Wei et al., 2023) layers on top of
// Fed-CDP-style sanitization. A rejected update is a per-client event
// counted per reason, never a process-wide abort.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fl/protocol.h"
#include "tensor/shape.h"

namespace fedcl::fl {

enum class RejectReason {
  kShapeMismatch,  // wrong tensor count, rank, or dims
  kNonFinite,      // NaN/Inf anywhere in the delta
  kNormOutlier,    // L2 norm out of band
  kStaleRound,     // update.round != current round
};

const char* reject_reason_name(RejectReason reason);

struct ScreeningConfig {
  // Reject updates whose L2 norm exceeds `norm_outlier_factor` times
  // the median norm of the round's structurally valid updates
  // (0 disables). Needs >= 3 candidates to be meaningful; below that
  // the relative check is skipped.
  double norm_outlier_factor = 0.0;
  // Absolute cap on the update L2 norm (0 disables).
  double max_update_norm = 0.0;
  // Structural / finite / stale checks are always on: an update that
  // fails them cannot be aggregated at all.
};

// Verdict for a single streamed update (the async path screens updates
// one at a time as they arrive, so staleness becomes a *measurement*
// the caller can weight by instead of a bare reject).
struct ScreenVerdict {
  // Reject reason, or nullopt when the update is acceptable.
  std::optional<RejectReason> reject;
  // Rounds behind the current round (current_round - update.round).
  // Valid whenever the round tag parsed sanely; 0 for a fresh update.
  std::int64_t staleness = 0;

  bool accepted() const { return !reject.has_value(); }
};

// Per-reason rejection counts for one screening pass.
struct ScreeningReport {
  std::int64_t accepted = 0;
  std::int64_t rejected_shape = 0;
  std::int64_t rejected_non_finite = 0;
  std::int64_t rejected_norm_outlier = 0;
  std::int64_t rejected_stale = 0;

  std::int64_t rejected_total() const {
    return rejected_shape + rejected_non_finite + rejected_norm_outlier +
           rejected_stale;
  }
  void count(RejectReason reason);
};

class UpdateScreener {
 public:
  explicit UpdateScreener(ScreeningConfig config = {});

  // Validates `updates` against the expected parameter shapes and the
  // current round, returning the accepted subset (order preserved).
  // When `weights` is non-null it holds one aggregation weight per
  // update and is filtered in lockstep.
  std::vector<ClientUpdate> screen(std::vector<ClientUpdate> updates,
                                   const std::vector<tensor::Shape>& expected,
                                   std::int64_t current_round,
                                   ScreeningReport& report,
                                   std::vector<double>* weights = nullptr)
      const;

  // Streaming form: screens one update as it arrives and returns the
  // verdict *with* the computed staleness, so the caller can weight a
  // late update instead of dropping it. `max_staleness` is the oldest
  // round tag still acceptable (0 reproduces the synchronous
  // semantics: any round mismatch rejects); updates tagged with a
  // future round always reject as kStaleRound. The median-relative
  // norm band needs a population and therefore does not apply here —
  // only the absolute max_update_norm cap does.
  ScreenVerdict screen_one(const ClientUpdate& update,
                           const std::vector<tensor::Shape>& expected,
                           std::int64_t current_round,
                           std::int64_t max_staleness,
                           ScreeningReport& report) const;

  const ScreeningConfig& config() const { return config_; }

 private:
  ScreeningConfig config_;
};

}  // namespace fedcl::fl
