#include "fl/secure_aggregation.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::fl {

namespace {

// The pair (lo, hi) must hash identically for both endpoints.
std::uint64_t pair_key(std::int64_t a, std::int64_t b) {
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(a, b));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(a, b));
  return lo * 0x1F123BB5ull + hi * 0x9E3779B9ull + 0x7FEDCA11ull;
}

}  // namespace

SecureAggregator::SecureAggregator(std::vector<std::int64_t> participants,
                                   std::uint64_t session_seed,
                                   std::vector<tensor::Shape> shapes)
    : participants_(std::move(participants)),
      session_seed_(session_seed),
      shapes_(std::move(shapes)) {
  FEDCL_CHECK_GE(participants_.size(), 2u)
      << "secure aggregation needs at least two participants";
  FEDCL_CHECK(!shapes_.empty());
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    for (std::size_t j = i + 1; j < participants_.size(); ++j) {
      FEDCL_CHECK_NE(participants_[i], participants_[j])
          << "duplicate participant id";
    }
  }
}

tensor::list::TensorList SecureAggregator::mask_for(
    std::int64_t client_id) const {
  const bool known = std::find(participants_.begin(), participants_.end(),
                               client_id) != participants_.end();
  FEDCL_CHECK(known) << "client " << client_id << " not in this session";

  tensor::list::TensorList mask;
  mask.reserve(shapes_.size());
  for (const auto& s : shapes_) mask.emplace_back(tensor::Tensor(s));

  for (std::int64_t peer : participants_) {
    if (peer == client_id) continue;
    Rng pair_rng = Rng(session_seed_).fork("pairmask",
                                           pair_key(client_id, peer));
    // The lower id adds the stream, the higher id subtracts it — both
    // derive the identical stream, so the pair cancels in the sum.
    const float sign = client_id < peer ? 1.0f : -1.0f;
    for (auto& t : mask) {
      float* p = t.data();
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        p[i] += sign * static_cast<float>(pair_rng.normal(0.0, 1.0));
      }
    }
  }
  return mask;
}

void SecureAggregator::mask(std::int64_t client_id,
                            tensor::list::TensorList& update) const {
  FEDCL_CHECK_EQ(update.size(), shapes_.size());
  tensor::list::TensorList m = mask_for(client_id);
  tensor::list::add_(update, m, 1.0f);
}

}  // namespace fedcl::fl
