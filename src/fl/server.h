// Federated server: client sampling, update screening, and FedSGD
// aggregation with graceful degradation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.h"
#include "fl/protocol.h"
#include "fl/retry_policy.h"
#include "fl/update_screening.h"

namespace fedcl {
class Rng;
}

namespace fedcl::fl {

struct AggregationOptions {
  // Server-side momentum on the aggregated delta (0 = plain FedSGD;
  // the momentum-accelerated FL the paper cites as [32]).
  double server_momentum = 0.0;
  // Validation applied to every received update before aggregation.
  ScreeningConfig screening;
  // Minimum number of accepted updates required to apply the round;
  // below it aggregate() leaves the model untouched and the caller
  // falls back to skip_round().
  std::int64_t min_reporting = 1;
  // Graceful-degradation floor: when the full quorum is missed but at
  // least this many updates survive screening, the round is applied
  // anyway under the reduced-quorum tier, with the noise-widening
  // factor surfaced in the outcome. 0 (default) disables the tier and
  // keeps the historical binary apply-or-skip behavior.
  std::int64_t reduced_min_reporting = 0;
};

// What aggregate() did with the round's updates. `noise_widening` is
// min_reporting / accepted when the reduced-quorum tier fired: the DP
// noise was calibrated for a min_reporting-sized mean, so averaging
// over fewer updates leaves proportionally *more* noise per update —
// the privacy guarantee is untouched, utility pays instead, and the
// factor quantifies by how much.
struct AggregateOutcome {
  ScreeningReport screening;
  DegradationTier tier = DegradationTier::kSkipRound;
  bool applied = false;
  double noise_widening = 1.0;
};

class Server {
 public:
  explicit Server(TensorList initial_weights,
                  AggregationOptions options = {});

  const TensorList& weights() const { return weights_; }
  std::int64_t round() const { return round_; }
  const AggregationOptions& options() const { return options_; }

  // Selects Kt distinct clients out of K for this round (the paper's
  // random per-round subset; q = Kt/K drives client-level accounting).
  std::vector<std::size_t> sample_clients(std::size_t total_clients,
                                          std::size_t clients_per_round,
                                          Rng& rng) const;

  // FedSGD: W(t+1) = W(t) + (1/Kt) * sum_k delta_k, applying the
  // policy's server-side hook to each update first (the Fed-SDP
  // noise-at-server variant). Every update is screened first (shape /
  // finite / norm / round checks — see update_screening.h); a rejected
  // update is dropped and counted in the returned report rather than
  // aborting the round. When fewer than min_reporting updates survive,
  // nothing is applied, the round does not advance, and the report
  // shows the quorum miss — the caller decides (normally skip_round()).
  // When `weights` is non-null it holds one non-negative weight per
  // update (e.g. client data sizes) and the mean becomes weighted —
  // with equal weights this reduces to FedSGD, and since every delta
  // is relative to the same W(t) it is also exactly FedAveraging
  // (Section IV notes the two are mathematically equivalent).
  AggregateOutcome aggregate(std::vector<ClientUpdate> updates,
                             const core::PrivacyPolicy& policy,
                             const dp::ParamGroups& groups, Rng& rng,
                             const std::vector<double>* update_weights =
                                 nullptr);

  // Applies an externally reduced mean delta (the streaming scale
  // engine screens, sanitizes, and reduces updates as they arrive —
  // see fl/scale_engine.h — and hands the server only the finished
  // mean). Same momentum tail and round advance as aggregate();
  // screening/quorum accounting stays with the caller, which also
  // records the accepted count on fl.server.updates_accepted_total.
  void apply_mean(const TensorList& mean_delta, std::int64_t accepted);

  // Advances the round without an update (e.g. every sampled client
  // dropped out — the unstable-availability case of [2]).
  void skip_round();

 private:
  TensorList weights_;
  AggregationOptions options_;
  UpdateScreener screener_;
  TensorList velocity_;  // lazily sized when momentum is enabled
  std::int64_t round_ = 0;
};

}  // namespace fedcl::fl
