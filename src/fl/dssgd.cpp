#include "fl/dssgd.h"

#include "common/error.h"
#include "fl/compression.h"

namespace fedcl::fl {

DssgdPolicy::DssgdPolicy(double share_fraction)
    : share_fraction_(share_fraction) {
  FEDCL_CHECK(share_fraction > 0.0 && share_fraction <= 1.0)
      << "share fraction " << share_fraction;
}

void DssgdPolicy::sanitize_client_update(core::TensorList& update,
                                         const core::ParamGroups& /*groups*/,
                                         std::int64_t /*round*/,
                                         Rng& /*rng*/) const {
  prune_smallest(update, 1.0 - share_fraction_);
}

}  // namespace fedcl::fl
