// Deadline / retry / backoff policy for client dispatch, and the
// graceful-degradation tier ladder that replaces the binary
// apply-or-skip round decision.
//
// The round engine treats a client report as one or more *dispatch
// attempts*. An attempt can fail transiently (the client crashed before
// reporting, its payload arrived corrupted, the wire bytes were
// damaged) — those are worth re-dispatching with exponential backoff
// plus jitter, up to a bounded attempt budget. A straggler is different:
// it has not failed, it is merely late. Its fate is decided by a
// per-client soft deadline over a *virtual* latency clock (simulated
// milliseconds, deterministic per seed): in the synchronous engine a
// missed deadline costs the round the update, in the asynchronous
// engine (fl/async_aggregator.h) the update arrives `rounds_late`
// rounds later and is folded in with a staleness-decay weight.
//
// When a round still comes up short, it degrades through explicit
// tiers instead of flipping straight to skip:
//   full quorum    — accepted >= min_reporting, the normal apply;
//   reduced quorum — accepted in [reduced_min_reporting, min_reporting),
//                    the aggregate is applied anyway and the shortfall
//                    is surfaced as a noise-widening factor
//                    (min_reporting / accepted >= 1): server-side noise
//                    calibrated for the planned quorum is averaged over
//                    fewer updates, so the effective noise in the
//                    applied mean is wider by exactly that factor — the
//                    DP guarantee is untouched, the utility accounting
//                    must know;
//   skip           — below every quorum, the model is left alone
//                    (the legacy behavior).
#pragma once

#include <cstdint>

#include "fl/fault_injection.h"

namespace fedcl {
class Rng;
}

namespace fedcl::fl {

// Outcome ladder for one round's aggregate (see header comment).
enum class DegradationTier {
  kFullQuorum = 0,
  kReducedQuorum,
  kSkipRound,
};

const char* degradation_tier_name(DegradationTier tier);

struct RetryPolicyConfig {
  // Total dispatch attempts per client per round. 1 = no retries (the
  // legacy engine); the resample-retry pass in the trainer is
  // independent of this budget.
  int max_attempts = 1;
  // Exponential backoff before re-dispatch: attempt a (2-based) waits
  // base_backoff_ms * multiplier^(a-2), scaled by a uniform jitter in
  // [1 - jitter_frac, 1 + jitter_frac] to de-synchronize retries.
  double base_backoff_ms = 8.0;
  double backoff_multiplier = 2.0;
  double jitter_frac = 0.25;
  // Per-client soft deadline on the virtual latency clock. One round of
  // the async engine spans exactly this many virtual milliseconds, so
  // an attempt landing at latency L is floor(L / soft_deadline_ms)
  // rounds late.
  double soft_deadline_ms = 100.0;
  // Mean virtual latency of a healthy dispatch (drawn uniformly in
  // [0.5, 1.5] * base_latency_ms — well inside the deadline).
  double base_latency_ms = 5.0;
  // Extra virtual delay a straggler adds (same +/-50% spread) — the
  // quantity that drives it past the soft deadline.
  double straggler_delay_ms = 400.0;

  bool retries_enabled() const { return max_attempts > 1; }
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyConfig config = {});

  const RetryPolicyConfig& config() const { return config_; }

  // Transient failures are worth re-dispatching: a crashed client can
  // restart, a corrupted payload can be regenerated, damaged wire
  // bytes can be resent. A straggler is not transient — it is still
  // running — and a natural dropout means the client is offline.
  bool transient(FaultType fault) const;

  // Virtual backoff before dispatch attempt `attempt` (1-based; attempt
  // 1 starts immediately and returns 0).
  double backoff_ms(int attempt, Rng& rng) const;

  // Virtual end-to-end latency of one dispatch attempt under `fault`.
  double latency_ms(FaultType fault, Rng& rng) const;

  // How many rounds past its dispatch round an attempt arriving at
  // `elapsed_ms` on the virtual clock lands (0 = within the deadline).
  std::int64_t rounds_late(double elapsed_ms) const;

 private:
  RetryPolicyConfig config_;
};

}  // namespace fedcl::fl
