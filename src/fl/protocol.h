// Client/server messaging: the round update record, a compact binary
// serialization, and a toy secure channel.
//
// The paper's threat model assumes client-server communication is
// encrypted yet gradients still leak at the endpoints. SecureChannel
// makes that assumption concrete: updates are sealed in transit, and
// the three leakage observation points (type-0 at the server after
// open(), type-1/2 at the client before seal()) are explicit in the
// training loop. The cipher is a keystream XOR with an integrity tag —
// deliberately simple and NOT real cryptography; transport security is
// not what the paper (or this reproduction) evaluates.
//
// Bytes arriving at the server cross a trust boundary: open() and
// deserialize_update() return a Result instead of throwing, so a
// tampered, truncated, or malformed message is a per-client recoverable
// event (the update is screened out) rather than a process-wide abort.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "tensor/tensor_list.h"

namespace fedcl::fl {

using tensor::list::TensorList;

// Local training parameter update shared by client i at round t:
// delta = W_i(t)_L - W(t).
struct ClientUpdate {
  std::int64_t client_id = -1;
  std::int64_t round = -1;
  TensorList delta;
};

// Non-owning view over received bytes. The network layer deserializes
// straight out of a connection's receive buffer through this — no
// intermediate vector copy; the one memcpy per tensor lands the floats
// directly in the Tensor the aggregator consumes.
struct ByteSpan {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  ByteSpan() = default;
  ByteSpan(const std::uint8_t* d, std::size_t n) : data(d), size(n) {}
  ByteSpan(const std::vector<std::uint8_t>& v)  // NOLINT: implicit view
      : data(v.data()), size(v.size()) {}
};

std::vector<std::uint8_t> serialize_update(const ClientUpdate& update);
// Every read is bounds-checked; fails (never crashes or over-reads) on
// truncated, oversized, or otherwise malformed buffers.
Result<ClientUpdate> deserialize_update(ByteSpan bytes);
Result<ClientUpdate> deserialize_update(const std::vector<std::uint8_t>& bytes);

// The tensor-list blob shared by update payloads and the wire
// protocol's model broadcast (docs/PROTOCOL.md): u32 count, then per
// tensor u32 rank, i64 dims, raw little-endian f32 data.
void append_tensor_list(std::vector<std::uint8_t>& out, const TensorList& list);
std::vector<std::uint8_t> serialize_tensor_list(const TensorList& list);
// Bounds-checked (same caps as deserialize_update); fails on any
// truncated, oversized, or implausible field. Requires the whole span
// to be consumed (no trailing bytes).
Result<TensorList> deserialize_tensor_list(ByteSpan bytes);

// Per-client channel key derivation, shared by the in-process trainer
// and the socket serving path (docs/PROTOCOL.md §4): both sides of a
// connection derive the same key from the experiment seed alone, so no
// key material ever crosses the wire.
std::uint64_t client_channel_key(std::uint64_t experiment_seed,
                                 std::int64_t client_id);

class SecureChannel {
 public:
  explicit SecureChannel(std::uint64_t key) : key_(key) {}

  // Encrypts and appends an integrity tag.
  std::vector<std::uint8_t> seal(std::vector<std::uint8_t> plaintext) const;
  // Decrypts; fails on a short ciphertext or a bad tag (tampered or
  // wrong-key ciphertext).
  Result<std::vector<std::uint8_t>> open(
      std::vector<std::uint8_t> sealed) const;

 private:
  std::uint64_t key_;
};

}  // namespace fedcl::fl
