#include "fl/scale_engine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/server.h"
#include "fl/tree_aggregation.h"
#include "fl/virtual_client.h"
#include "nn/grad_utils.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"

namespace fedcl::fl {

namespace {

// Same guard as the classic engine: in-model RNG state (Dropout) makes
// scratch-model sharing schedule-dependent, so those models serialize.
bool stochastic_model(const nn::Sequential& model) {
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (dynamic_cast<const nn::Dropout*>(&model.layer(i)) != nullptr)
      return true;
  }
  return false;
}

void count_injected(RoundFailureStats& stats, FaultType fault) {
  switch (fault) {
    case FaultType::kCrash:
      ++stats.injected_crash;
      return;
    case FaultType::kStraggler:
      ++stats.injected_straggler;
      return;
    case FaultType::kCorruptDelta:
      ++stats.injected_corrupt;
      return;
    case FaultType::kBitFlip:
      ++stats.injected_bit_flip;
      return;
    case FaultType::kStaleRound:
      ++stats.injected_stale;
      return;
    case FaultType::kNone:
      return;
  }
}

// One planned dispatch: the client to run and the final fault of its
// crash-redraw chain (resolved serially, like the classic engine).
struct Attempt {
  std::size_t ci = 0;
  FaultType fault = FaultType::kNone;
  int attempt = 0;
  bool run = false;
};

// Everything one edge block produces. Blocks execute in parallel but
// their outcomes are folded serially in block order, so every counter
// lands deterministically.
struct BlockOutcome {
  ReduceNode partial;
  RoundFailureStats stats;
  double norm_sum = 0.0;
  double ms_sum = 0.0;
  std::int64_t trained = 0;
  std::int64_t accepted = 0;
  std::int64_t transient_failed = 0;
  int max_levels = 0;
};

}  // namespace

FlRunResult run_streaming_experiment(const FlExperimentConfig& config,
                                     const core::PrivacyPolicy& policy) {
  FEDCL_CHECK_GT(config.total_clients, 0);
  FEDCL_CHECK_GT(config.clients_per_round, 0);
  FEDCL_CHECK_LE(config.clients_per_round, config.total_clients);
  FEDCL_CHECK_GE(config.min_reporting, 1);
  FEDCL_CHECK(!config.async_mode)
      << "streaming_aggregation is a synchronous engine; it cannot be "
         "combined with async_mode";
  FEDCL_CHECK(is_power_of_two(config.tree_fan_out) && config.tree_fan_out >= 2)
      << "tree_fan_out must be a power of two >= 2, got "
      << config.tree_fan_out;
  FEDCL_CHECK(config.client_dropout >= 0.0 && config.client_dropout < 1.0)
      << "client dropout " << config.client_dropout;
  const std::int64_t rounds = config.effective_rounds();
  const std::int64_t local_iterations = config.effective_local_iterations();
  FEDCL_CHECK_GT(rounds, 0);

  Rng root(config.seed);
  Rng data_rng = root.fork("train-data");
  Rng val_rng = root.fork("val-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");
  Rng round_rng = root.fork("rounds");

  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(config.bench.train_spec, data_rng));
  data::Dataset val = data::generate_synthetic(config.bench.val_spec, val_rng);

  data::PartitionSpec part = config.bench.partition;
  part.num_clients = config.total_clients;
  LocalTrainConfig local{.local_iterations = local_iterations,
                         .batch_size = config.bench.batch_size,
                         .learning_rate = config.bench.learning_rate,
                         .lr_decay_per_round =
                             config.bench.lr_decay_per_round};
  const VirtualClientProvider provider(train, part, part_rng, local,
                                       config.faults, config.seed);
  const std::size_t total_clients =
      static_cast<std::size_t>(config.total_clients);

  std::shared_ptr<nn::Sequential> model =
      nn::build_model(config.bench.model, model_rng);
  const dp::ParamGroups groups = to_param_groups(model->layer_groups());

  ThreadPool& pool = compute_pool();
  const bool parallel_clients = config.parallel_clients && pool.size() > 1 &&
                                !policy.order_dependent() &&
                                !stochastic_model(*model);
  std::vector<std::shared_ptr<nn::Sequential>> slot_models;
  if (parallel_clients) {
    const std::size_t slots =
        std::min(pool.size(),
                 static_cast<std::size_t>(config.clients_per_round));
    slot_models.reserve(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      Rng scratch_rng = root.fork("scratch-model", s);
      slot_models.push_back(nn::build_model(config.bench.model, scratch_rng));
    }
  }

  Server server(model->weights(),
                {.server_momentum = config.server_momentum,
                 .screening = config.screening,
                 .min_reporting = config.min_reporting,
                 .reduced_min_reporting = config.reduced_min_reporting});
  const FaultPlan& plan = provider.fault_plan();
  const UpdateScreener screener(config.screening);
  const std::vector<tensor::Shape> expected_shapes =
      tensor::list::shapes_of(server.weights());

  telemetry::Registry& registry = telemetry::global_registry();
  registry.reset();
  registry.gauge("fl.scale.virtual_clients")
      .set(static_cast<double>(config.total_clients));

  FlRunResult result;
  result.privacy_setup = {
      .total_examples = train->size(),
      .batch_size = config.bench.batch_size,
      .clients_per_round = config.clients_per_round,
      .total_clients = config.total_clients,
      .local_iterations = local_iterations,
      .rounds = rounds,
      .noise_scale = config.noise_scale,
      .delta = config.delta,
  };
  core::PrivacyRoundSeries eps_series;
  const double instance_q =
      static_cast<double>(config.bench.batch_size * config.clients_per_round) /
      static_cast<double>(train->size());
  if (config.noise_scale > 0.0 && instance_q <= 1.0) {
    eps_series = core::epsilon_round_series(result.privacy_setup);
    registry.gauge("dp.delta").set(config.delta);
  }

  double total_ms = 0.0;
  std::int64_t total_local_iters = 0;

  const telemetry::Labels policy_labels{{"policy", policy.name()}};
  auto clip_totals = [&registry, &policy_labels]() {
    const std::int64_t total =
        registry.counter("dp.clip.groups_total", policy_labels).value() +
        registry.counter("dp.clip.updates_total", policy_labels).value();
    const std::int64_t clipped =
        registry.counter("dp.clip.groups_clipped_total", policy_labels)
            .value() +
        registry.counter("dp.clip.updates_clipped_total", policy_labels)
            .value();
    return std::pair<std::int64_t, std::int64_t>(total, clipped);
  };

  for (std::int64_t t = 0; t < rounds; ++t) {
    telemetry::TraceScope trace(telemetry::round_trace_root(config.seed, t));
    telemetry::SpanTimer round_span(registry, "fl.round", {}, t);
    const std::pair<std::int64_t, std::int64_t> clip_before = clip_totals();
    Rng sample_rng = round_rng.fork("sample", static_cast<std::uint64_t>(t));
    std::vector<std::size_t> chosen = server.sample_clients(
        total_clients, static_cast<std::size_t>(config.clients_per_round),
        sample_rng);
    Rng drop_rng = round_rng.fork("dropout", static_cast<std::uint64_t>(t));

    RoundRecord record;
    record.round = t;
    RoundFailureStats& stats = record.failures;
    double norm_sum = 0.0, ms_sum = 0.0;
    std::int64_t trained = 0;
    std::int64_t accepted_total = 0;
    std::int64_t transient_failed = 0;
    std::int64_t edge_blocks = 0;
    int max_levels_round = 0;
    StreamingReducer root_reducer;

    // Phase 1 (serial, client order): dropout draws on the shared
    // drop_rng and the crash-redraw chain — identical bookkeeping to
    // the classic engine's plan phase.
    auto plan_attempts = [&](const std::vector<std::size_t>& cis) {
      std::vector<Attempt> attempts;
      attempts.reserve(cis.size());
      for (std::size_t ci : cis) {
        Attempt a;
        a.ci = ci;
        if (config.client_dropout > 0.0 &&
            drop_rng.bernoulli(config.client_dropout)) {
          ++stats.dropouts;
          ++transient_failed;
        } else {
          a.fault = plan.fault_for(t, static_cast<std::int64_t>(ci));
          while (a.fault == FaultType::kCrash &&
                 a.attempt + 1 < config.retry.max_attempts) {
            ++stats.injected_crash;
            ++stats.fault_retried;
            ++stats.retry_attempts;
            ++a.attempt;
            a.fault = plan.fault_for_attempt(
                t, static_cast<std::int64_t>(ci), a.attempt);
          }
          if (a.fault == FaultType::kCrash) {
            ++stats.injected_crash;
            ++stats.fault_expired;
            ++transient_failed;
          } else if (a.fault == FaultType::kStraggler) {
            ++stats.injected_straggler;
            ++stats.fault_expired;
            ++transient_failed;
          } else {
            a.run = true;
          }
        }
        attempts.push_back(a);
      }
      return attempts;
    };

    // One cohort member, start to finish: materialize, train,
    // delivery faults, transport, screen, sanitize, fold. Every RNG
    // draw comes from a per-(round, client) stream, so the result does
    // not depend on which block or thread ran it.
    auto process_client = [&](Attempt a, nn::Sequential& scratch,
                              StreamingReducer& reducer, BlockOutcome& out) {
      const auto id = static_cast<std::int64_t>(a.ci);
      Rng crng = VirtualClientProvider::training_stream(round_rng, t, id);
      const Client client = provider.client(id);
      ClientRoundOutcome outcome =
          client.run_round(scratch, server.weights(), policy, t, crng);
      out.norm_sum += outcome.first_iteration_grad_norm;
      out.ms_sum += outcome.local_train_ms;
      ++out.trained;
      if (config.prune_ratio > 0.0) {
        prune_smallest(outcome.update.delta, config.prune_ratio);
      }

      // Delivery-detectable faults re-dispatch while the budget lasts
      // (same chain as the classic engine, pure per-attempt draws).
      while ((a.fault == FaultType::kCorruptDelta ||
              a.fault == FaultType::kBitFlip) &&
             a.attempt + 1 < config.retry.max_attempts) {
        count_injected(out.stats, a.fault);
        ++out.stats.fault_retried;
        ++out.stats.retry_attempts;
        ++a.attempt;
        a.fault = plan.fault_for_attempt(t, id, a.attempt);
        if (a.fault == FaultType::kCrash ||
            a.fault == FaultType::kStraggler) {
          count_injected(out.stats, a.fault);
          ++out.stats.fault_expired;
          ++out.transient_failed;
          return;
        }
      }

      Rng frng =
          VirtualClientProvider::delivery_fault_stream(round_rng, t, id);
      if (a.fault == FaultType::kCorruptDelta) {
        corrupt_delta(outcome.update.delta, frng);
        ++out.stats.injected_corrupt;
      } else if (a.fault == FaultType::kStaleRound) {
        outcome.update.round = t - 1;
        ++out.stats.injected_stale;
      }

      SecureChannel channel(client_channel_key(config.seed, id));
      std::vector<std::uint8_t> wire =
          channel.seal(serialize_update(outcome.update));
      if (a.fault == FaultType::kBitFlip) {
        flip_random_bits(wire, frng);
        ++out.stats.injected_bit_flip;
      }
      Result<std::vector<std::uint8_t>> opened = channel.open(std::move(wire));
      if (!opened.ok()) {
        ++out.stats.rejected_decode;
        if (a.fault != FaultType::kNone) ++out.stats.fault_screened;
        return;
      }
      Result<ClientUpdate> decoded = deserialize_update(opened.value());
      if (!decoded.ok()) {
        ++out.stats.rejected_decode;
        if (a.fault != FaultType::kNone) ++out.stats.fault_screened;
        return;
      }
      ClientUpdate update = decoded.take();

      // Screen one update as it arrives (max_staleness 0 = synchronous
      // semantics). The median-relative norm band needs the round's
      // full population and therefore does not apply on the streaming
      // path — only the absolute caps do (same trade as the async
      // engine; DESIGN.md §7).
      ScreeningReport report;
      const ScreenVerdict verdict =
          screener.screen_one(update, expected_shapes, t, 0, report);
      out.stats.rejected_shape += report.rejected_shape;
      out.stats.rejected_non_finite += report.rejected_non_finite;
      out.stats.rejected_norm_outlier += report.rejected_norm_outlier;
      out.stats.rejected_stale += report.rejected_stale;
      if (!verdict.accepted()) {
        if (a.fault != FaultType::kNone) ++out.stats.fault_screened;
        return;
      }

      // Server-side sanitization from a per-(round, client) stream —
      // schedule-independent, unlike the classic engine's serial
      // aggregate stream (the documented stream difference between the
      // two sync engines).
      Rng srng = VirtualClientProvider::sanitize_stream(round_rng, t, id);
      policy.sanitize_at_server(update.delta, groups, t, srng);
      const double weight =
          config.weight_by_data_size
              ? static_cast<double>(provider.data_size(id))
              : 1.0;
      reducer.push(std::move(update.delta), weight);
      ++out.accepted;
    };

    // Phase 2: edge blocks of tree_fan_out consecutive cohort members
    // reduce independently (in parallel, wave by wave so only O(wave)
    // partials are ever alive); phase 3 folds each wave's partials and
    // counters into the root reducer in block order.
    auto process_attempts = [&](const std::vector<Attempt>& attempts) {
      const std::size_t fan_out =
          static_cast<std::size_t>(config.tree_fan_out);
      const std::size_t nblocks =
          (attempts.size() + fan_out - 1) / fan_out;
      edge_blocks += static_cast<std::int64_t>(nblocks);
      const std::size_t wave_width =
          parallel_clients ? std::max<std::size_t>(slot_models.size() * 4, 1)
                           : 1;
      for (std::size_t wave_begin = 0; wave_begin < nblocks;
           wave_begin += wave_width) {
        const std::size_t wave = std::min(wave_width, nblocks - wave_begin);
        std::vector<BlockOutcome> outcomes(wave);
        auto run_block = [&](std::size_t wi, nn::Sequential& scratch) {
          BlockOutcome& out = outcomes[wi];
          StreamingReducer reducer;
          const std::size_t begin = (wave_begin + wi) * fan_out;
          const std::size_t end =
              std::min(begin + fan_out, attempts.size());
          for (std::size_t i = begin; i < end; ++i) {
            if (attempts[i].run) {
              process_client(attempts[i], scratch, reducer, out);
            }
          }
          out.partial = reducer.finalize();
          out.max_levels = reducer.max_occupancy();
        };
        if (!parallel_clients || wave <= 1) {
          for (std::size_t wi = 0; wi < wave; ++wi) run_block(wi, *model);
        } else {
          std::mutex slot_mutex;
          std::vector<nn::Sequential*> free_slots;
          free_slots.reserve(slot_models.size());
          for (const auto& m : slot_models) free_slots.push_back(m.get());
          const telemetry::TraceContext ctx = telemetry::current_trace();
          pool.parallel_for(wave, [&](std::size_t wi) {
            telemetry::TraceScope adopt(ctx);
            nn::Sequential* scratch = nullptr;
            {
              std::lock_guard<std::mutex> lock(slot_mutex);
              FEDCL_CHECK(!free_slots.empty());
              scratch = free_slots.back();
              free_slots.pop_back();
            }
            run_block(wi, *scratch);
            std::lock_guard<std::mutex> lock(slot_mutex);
            free_slots.push_back(scratch);
          });
        }
        for (BlockOutcome& out : outcomes) {
          if (!out.partial.empty()) {
            root_reducer.push_node(std::move(out.partial));
          }
          stats.accumulate(out.stats);
          norm_sum += out.norm_sum;
          ms_sum += out.ms_sum;
          trained += out.trained;
          accepted_total += out.accepted;
          transient_failed += out.transient_failed;
          max_levels_round = std::max(max_levels_round, out.max_levels);
        }
      }
    };

    std::optional<telemetry::SpanTimer> local_train_span;
    local_train_span.emplace(registry, "fl.phase",
                             telemetry::Labels{{"phase", "local_train"}}, t);
    process_attempts(plan_attempts(chosen));

    // One resample-retry pass, same policy as the classic engine:
    // replacements enter as fresh edge blocks appended after the
    // primary cohort's blocks.
    if (config.retry_failed_clients && transient_failed > 0 &&
        accepted_total < config.min_reporting) {
      std::vector<bool> in_round(total_clients, false);
      for (std::size_t ci : chosen) in_round[ci] = true;
      std::vector<std::size_t> spare;
      for (std::size_t i = 0; i < total_clients; ++i) {
        if (!in_round[i]) spare.push_back(i);
      }
      Rng retry_rng = round_rng.fork("retry", static_cast<std::uint64_t>(t));
      retry_rng.shuffle(spare);
      const std::size_t replacements =
          std::min(spare.size(), static_cast<std::size_t>(transient_failed));
      std::vector<std::size_t> replacement_cis(
          spare.begin(),
          spare.begin() + static_cast<std::ptrdiff_t>(replacements));
      stats.retried_clients += static_cast<std::int64_t>(replacements);
      process_attempts(plan_attempts(replacement_cis));
    }
    local_train_span.reset();

    // Quorum tiers, mirroring Server::aggregate's decision on the
    // streamed counts.
    bool applied = false;
    {
      telemetry::SpanTimer aggregate_span(registry, "fl.phase",
                                          {{"phase", "aggregate"}}, t);
      DegradationTier tier = DegradationTier::kSkipRound;
      if (accepted_total >= config.min_reporting) {
        tier = DegradationTier::kFullQuorum;
      } else if (config.reduced_min_reporting > 0 &&
                 accepted_total >= config.reduced_min_reporting) {
        tier = DegradationTier::kReducedQuorum;
      }
      if (tier != DegradationTier::kSkipRound) {
        ReduceNode total = root_reducer.finalize();
        max_levels_round =
            std::max(max_levels_round, root_reducer.max_occupancy());
        const TensorList mean = finalize_mean(std::move(total));
        server.apply_mean(mean, accepted_total);
        applied = true;
        registry.counter("fl.scale.streamed_updates_total")
            .add(accepted_total);
        if (tier == DegradationTier::kReducedQuorum) {
          const double widening =
              static_cast<double>(config.min_reporting) /
              static_cast<double>(accepted_total);
          ++stats.reduced_quorum_rounds;
          ++result.reduced_quorum_rounds;
          result.max_noise_widening =
              std::max(result.max_noise_widening, widening);
          registry
              .counter("fl.round.degraded_total",
                       {{"tier", degradation_tier_name(tier)}})
              .add(1);
          registry.record_point("fl.round.noise_widening", t, widening);
        }
      }
    }
    result.max_stream_levels =
        std::max(result.max_stream_levels,
                 static_cast<std::int64_t>(max_levels_round));
    registry.record_point("fl.scale.edge_blocks", t,
                          static_cast<double>(edge_blocks));
    registry.gauge("fl.scale.reducer_levels")
        .set(static_cast<double>(result.max_stream_levels));

    if (trained > 0) {
      record.mean_grad_norm = norm_sum / static_cast<double>(trained);
      record.mean_client_ms = ms_sum / static_cast<double>(trained);
      total_ms += ms_sum;
      total_local_iters += trained * local_iterations;
    }

    // Per-round telemetry, mirroring the classic sync engine.
    const std::pair<std::int64_t, std::int64_t> clip_after = clip_totals();
    const std::int64_t clip_delta = clip_after.first - clip_before.first;
    if (clip_delta > 0) {
      registry.record_point(
          "fl.round.clip_fraction", t,
          static_cast<double>(clip_after.second - clip_before.second) /
              static_cast<double>(clip_delta),
          policy_labels);
    }
    if (trained > 0) {
      registry.record_point("fl.round.grad_norm_mean", t,
                            record.mean_grad_norm);
    }
    registry.record_point("fl.round.accepted", t,
                          static_cast<double>(accepted_total));
    registry.record_point(
        "fl.round.rejected", t,
        static_cast<double>(stats.rejected_shape + stats.rejected_non_finite +
                            stats.rejected_norm_outlier +
                            stats.rejected_stale + stats.rejected_decode));
    if (!eps_series.instance_epsilon.empty()) {
      const double inst_eps =
          eps_series.instance_epsilon[static_cast<std::size_t>(t)];
      const double client_eps =
          eps_series.client_epsilon[static_cast<std::size_t>(t)];
      registry.gauge("dp.epsilon", {{"level", "instance"}}).set(inst_eps);
      registry.gauge("dp.epsilon", {{"level", "client"}}).set(client_eps);
      registry.record_point("dp.epsilon", t, inst_eps,
                            {{"level", "instance"}});
      registry.record_point("dp.epsilon", t, client_eps,
                            {{"level", "client"}});
    }
    auto count_fault = [&registry](const char* type, std::int64_t n) {
      if (n > 0) {
        registry.counter("fl.faults.injected_total", {{"type", type}}).add(n);
      }
    };
    count_fault("crash", stats.injected_crash);
    count_fault("straggler", stats.injected_straggler);
    count_fault("corrupt", stats.injected_corrupt);
    count_fault("bit-flip", stats.injected_bit_flip);
    count_fault("stale", stats.injected_stale);
    if (stats.dropouts > 0) {
      registry.counter("fl.client.dropouts_total").add(stats.dropouts);
    }
    if (stats.retried_clients > 0) {
      registry.counter("fl.client.retried_total").add(stats.retried_clients);
    }
    if (stats.rejected_decode > 0) {
      registry.counter("fl.transport.rejected_decode_total")
          .add(stats.rejected_decode);
    }
    if (stats.retry_attempts > 0) {
      registry.counter("fl.retry.attempts_total").add(stats.retry_attempts);
    }
    if (stats.fault_expired > 0) {
      registry.counter("fl.retry.expired_total").add(stats.fault_expired);
    }

    if (!applied) {
      server.skip_round();
      ++result.dropped_rounds;
      ++stats.quorum_missed;
      registry.counter("fl.round.quorum_missed_total").add(1);
      record.accuracy = std::nan("");
      result.total_failures.accumulate(stats);
      result.history.push_back(record);
      continue;
    }

    const bool eval_now =
        (config.eval_every > 0 && (t + 1) % config.eval_every == 0) ||
        t + 1 == rounds;
    if (eval_now) {
      telemetry::SpanTimer eval_span(registry, "fl.phase",
                                     {{"phase", "eval"}}, t);
      model->set_weights(server.weights());
      record.accuracy =
          nn::evaluate_accuracy(*model, val.features(), val.labels());
      registry.record_point("fl.round.accuracy", t, record.accuracy);
      FEDCL_LOG(Debug) << config.bench.name << " " << policy.name()
                       << " streaming round " << (t + 1) << "/" << rounds
                       << " acc=" << record.accuracy;
    } else {
      record.accuracy = std::nan("");
    }
    result.total_failures.accumulate(stats);
    result.history.push_back(record);
  }

  result.final_accuracy = result.history.back().accuracy;
  if (std::isnan(result.final_accuracy)) {
    model->set_weights(server.weights());
    result.final_accuracy =
        nn::evaluate_accuracy(*model, val.features(), val.labels());
  }
  result.ms_per_local_iteration =
      total_local_iters > 0
          ? total_ms / static_cast<double>(total_local_iters)
          : 0.0;
  result.completed_rounds = rounds - result.dropped_rounds;
  result.final_weights = tensor::list::clone(server.weights());
  registry.flush_sinks();
  result.telemetry = registry.snapshot();
  return result;
}

}  // namespace fedcl::fl