#include "fl/virtual_client.h"

#include <utility>

#include "common/error.h"

namespace fedcl::fl {

namespace {
std::uint64_t stream_index(std::int64_t round, std::int64_t id) {
  return static_cast<std::uint64_t>(round * 1000003 + id);
}
}  // namespace

VirtualClientProvider::VirtualClientProvider(
    std::shared_ptr<const data::Dataset> base, const data::PartitionSpec& spec,
    const Rng& part_rng, LocalTrainConfig local, FaultInjectionConfig faults,
    std::uint64_t seed)
    : plan_(std::move(base), spec, part_rng),
      local_(local),
      fault_plan_(faults, seed) {}

std::int64_t VirtualClientProvider::data_size(std::int64_t id) const {
  FEDCL_CHECK_GE(id, 0);
  FEDCL_CHECK_LT(id, plan_.num_clients());
  return plan_.shard_size();
}

Client VirtualClientProvider::client(std::int64_t id) const {
  return Client(id, plan_.shard(id), local_);
}

Rng VirtualClientProvider::training_stream(const Rng& round_rng,
                                           std::int64_t round,
                                           std::int64_t id) {
  return round_rng.fork("client", stream_index(round, id));
}

Rng VirtualClientProvider::delivery_fault_stream(const Rng& round_rng,
                                                 std::int64_t round,
                                                 std::int64_t id) {
  return round_rng.fork("fault-delivery", stream_index(round, id));
}

Rng VirtualClientProvider::sanitize_stream(const Rng& round_rng,
                                           std::int64_t round,
                                           std::int64_t id) {
  return round_rng.fork("sanitize", stream_index(round, id));
}

}  // namespace fedcl::fl