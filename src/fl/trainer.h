// End-to-end federated experiment runner: builds the synthetic
// benchmark, partitions it across clients, runs T rounds of FedSGD
// under a privacy policy, and records the metrics the paper's tables
// report (validation accuracy, ms per local iteration, gradient-norm
// series, privacy-accounting inputs).
//
// The round engine is fault-tolerant: every update travels through the
// serialize/seal/open/deserialize transport path, injected faults
// (fault_injection.h) and natural dropout are survived per client, the
// server screens updates before aggregation (update_screening.h), and a
// min_reporting quorum with one resample-retry pass governs when a
// round is applied versus skipped.
#pragma once

#include <cstdint>
#include <vector>

#include "common/telemetry.h"
#include "core/accounting.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/async_aggregator.h"
#include "fl/fault_injection.h"
#include "fl/retry_policy.h"
#include "fl/update_screening.h"

namespace fedcl::fl {

struct FlExperimentConfig {
  data::BenchmarkConfig bench;
  std::int64_t total_clients = 100;     // K
  std::int64_t clients_per_round = 10;  // Kt
  // Overrides bench.rounds when > 0.
  std::int64_t rounds = 0;
  // Overrides bench.local_iterations when > 0.
  std::int64_t local_iterations = 0;
  // Gradient compression prune ratio for communication-efficient FL
  // (Figure 5); 0 disables.
  double prune_ratio = 0.0;
  // Evaluate every n rounds (n <= 0: final round only).
  std::int64_t eval_every = 0;
  std::uint64_t seed = 42;
  // Recorded into privacy_setup for accounting (should match the
  // policy's noise scale).
  double noise_scale = 6.0;
  double delta = 1e-5;
  // Probability that a selected client fails to report its update
  // this round (the unstable-availability setting of McMahan et al.).
  double client_dropout = 0.0;
  // Weight each client's update by its local data size instead of the
  // uniform 1/Kt mean.
  bool weight_by_data_size = false;
  // Server-side momentum on the aggregated delta (0 = plain FedSGD).
  double server_momentum = 0.0;
  // Injected faults (crash/straggler/corrupt/bit-flip/stale); the plan
  // is seeded from `seed` so runs stay reproducible.
  FaultInjectionConfig faults;
  // Server-side screening of received updates before aggregation.
  ScreeningConfig screening;
  // Minimum accepted updates for a round to be applied; below it the
  // round is skipped (weights untouched, counted in dropped_rounds and
  // quorum_missed).
  std::int64_t min_reporting = 1;
  // When delivered updates fall below min_reporting, sample replacement
  // clients (one retry pass) for the transiently failed ones before
  // giving up on the round.
  bool retry_failed_clients = true;
  // Run the selected clients' local training concurrently on the shared
  // compute pool. The round is phase-split so every shared RNG stream
  // is consumed serially in client order, and each client trains from
  // its own (round, client)-forked stream on a private scratch model —
  // results are bitwise identical to the serial schedule for any
  // FEDCL_THREADS. Policies with order-dependent state (the median-norm
  // estimator) and models with stochastic layers are serialized
  // automatically.
  bool parallel_clients = true;
  // Asynchronous (FedBuff-style) round engine: updates stream into a
  // bounded-memory accumulator (fl/async_aggregator.h) and the model
  // advances as soon as `async.min_to_apply` updates are buffered;
  // stragglers arrive `rounds_late` rounds later and are folded in with
  // a 1/(1+staleness)^alpha weight instead of being rejected. The
  // sync engine is untouched when false. Determinism boundary: with
  // parallel_clients=false the async engine is bitwise reproducible for
  // a fixed seed; across thread counts the fold order (and therefore
  // float rounding) may differ — see DESIGN.md.
  bool async_mode = false;
  // Async engine knobs. min_to_apply <= 0 defaults to
  // max(1, clients_per_round / 2); `async.screening` is overridden with
  // `screening` above (one source of truth).
  AsyncAggregatorConfig async;
  // Deadline / retry / backoff for client dispatch, in both engines.
  // The default (max_attempts = 1) keeps the sync engine bitwise
  // identical to the pre-retry behavior.
  RetryPolicyConfig retry;
  // Graceful-degradation floor for the sync engine (see
  // AggregationOptions::reduced_min_reporting); 0 keeps the binary
  // apply-or-skip behavior. In the async engine the analogous tier is
  // the end-of-round partial flush, which is always on.
  std::int64_t reduced_min_reporting = 0;
  // Streaming scale engine (fl/scale_engine.h): updates are screened,
  // sanitized, and folded into an O(log K) binary-counter accumulator
  // as they arrive — no K-sized update buffer — with edge aggregators
  // of `tree_fan_out` clients feeding a root reducer. Synchronous
  // semantics (same cohort, quorum, and retry behavior); the reduction
  // order is pinned so any fan-out produces bitwise-identical results
  // on fault-free rounds (DESIGN.md §7). Mutually exclusive with
  // async_mode. Note the rounding of the mean differs from the legacy
  // engine (sum × 1/Σw vs incremental w/Σw folds), so streaming runs
  // are bitwise self-consistent but not bitwise equal to legacy runs.
  bool streaming_aggregation = false;
  // Edge-aggregator fan-out for the streaming engine; must be a power
  // of two >= 2. Values >= clients_per_round degenerate to one flat
  // streaming accumulator.
  std::int64_t tree_fan_out = 64;

  std::int64_t effective_rounds() const {
    return rounds > 0 ? rounds : bench.rounds;
  }
  std::int64_t effective_local_iterations() const {
    return local_iterations > 0 ? local_iterations : bench.local_iterations;
  }
};

struct RoundRecord {
  std::int64_t round = 0;
  double accuracy = 0.0;          // NaN when not evaluated this round
  double mean_grad_norm = 0.0;    // mean first-iteration batch-grad L2
  double mean_client_ms = 0.0;    // mean local-training wall time
  // Injection/rejection/recovery accounting for this round.
  RoundFailureStats failures;
};

struct FlRunResult {
  double final_accuracy = 0.0;
  // Mean wall-clock per local iteration per client, the paper's
  // Table III metric.
  double ms_per_local_iteration = 0.0;
  std::vector<RoundRecord> history;
  // Inputs for core::account_privacy on this run.
  core::FlPrivacySetup privacy_setup;
  // Rounds where no aggregate was applied (all clients failed, or the
  // min_reporting quorum was missed).
  std::int64_t dropped_rounds = 0;
  // Rounds where an aggregate was applied (= rounds - dropped_rounds).
  std::int64_t completed_rounds = 0;
  // Async engine: total aggregate applications (the final model
  // version); a round can apply more than once.
  std::int64_t async_applies = 0;
  // Streaming engine: high-water binary-counter occupancy across every
  // reducer the run created — the bounded-memory witness, bounded by
  // floor(log2(units)) + 1 regardless of K (fl/tree_aggregation.h).
  std::int64_t max_stream_levels = 0;
  // Rounds applied under the reduced-quorum degradation tier (sync:
  // below min_reporting but at or above reduced_min_reporting; async:
  // end-of-round partial flush).
  std::int64_t reduced_quorum_rounds = 0;
  // Largest noise-widening factor any degraded round incurred (1.0 when
  // every applied round met its full quorum).
  double max_noise_widening = 1.0;
  // Sum of the per-round failure stats.
  RoundFailureStats total_failures;
  // The trained global model parameters (deep copy) — load into a
  // model built from the same ModelSpec via Sequential::set_weights.
  core::TensorList final_weights;
  // Everything the run recorded into the global telemetry registry:
  // round/phase spans, clip fractions, screening counters, the
  // cumulative per-round (epsilon, delta) series. Tests assert on this
  // instead of scraping logs.
  telemetry::TelemetrySnapshot telemetry;
};

FlRunResult run_experiment(const FlExperimentConfig& config,
                           const core::PrivacyPolicy& policy);

}  // namespace fedcl::fl
