#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedcl {

double mean(const std::vector<double>& v) {
  FEDCL_CHECK(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) {
  FEDCL_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double min_of(const std::vector<double>& v) {
  FEDCL_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  FEDCL_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double rmse(const std::vector<float>& a, const std::vector<float>& b) {
  FEDCL_CHECK_EQ(a.size(), b.size());
  FEDCL_CHECK(!a.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  FEDCL_CHECK_EQ(a.size(), b.size());
  FEDCL_CHECK(!a.empty());
  double ma = mean(a), mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace fedcl
