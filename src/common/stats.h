// Small statistics helpers used by benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace fedcl {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance
double stddev(const std::vector<double>& v);
double median(std::vector<double> v);  // by value: sorts a copy
double min_of(const std::vector<double>& v);
double max_of(const std::vector<double>& v);

// Root mean squared deviation between two equally sized vectors —
// the paper's attack "reconstruction distance" metric
// (1/A) * sum_i (x_i - y_i)^2 under a square root.
double rmse(const std::vector<float>& a, const std::vector<float>& b);

// Pearson correlation; returns 0 when either side has zero variance.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace fedcl
