// Run manifest: who/what/where of the current process, captured once
// and embedded in every machine-readable artifact the stack emits —
// the telemetry JSONL meta header and every BENCH_*.json document —
// so a run is reproducible by inspection (git sha + dirty flag,
// compiler/build type, hostname, core counts, seed, scale, and the
// command line it was invoked with).
//
// The git fields are resolved at runtime against the source tree the
// binary was built from (FEDCL_SOURCE_DIR, baked in by CMake), so a
// rebuilt-but-uncommitted tree is honestly reported as dirty. When git
// or the tree is unavailable (installed binary, stripped container)
// they degrade to "unknown"; FEDCL_GIT_SHA / FEDCL_GIT_DIRTY override
// both for hermetic build environments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace fedcl::runinfo {

struct RunInfo {
  std::string git_sha;        // full sha, or "unknown"
  bool git_dirty = false;     // uncommitted changes in the source tree
  std::string build_type;     // CMAKE_BUILD_TYPE at configure time
  std::string compiler;       // e.g. "g++ 12.2.0"
  std::string hostname;       // gethostname(), or "unknown"
  std::int64_t hardware_threads = 0;  // std::thread::hardware_concurrency
  std::int64_t compute_threads = 0;   // compute_pool().size()
  std::uint64_t seed = 0;     // experiment_seed() (FEDCL_SEED)
  std::string scale;          // bench_scale_name (FEDCL_SCALE)
  std::vector<std::string> argv;  // set via set_command_line; may be empty
};

// Records the process command line so the manifest can carry the
// resolved invocation. Call once, first thing in main(); later
// current() / to_json() calls include it.
void set_command_line(int argc, char** argv);

// The manifest for this process. Git/host/build fields are resolved on
// first call and cached; seed/scale/argv are re-read every call so a
// manifest captured after flag parsing reflects the resolved config.
RunInfo current();

// JSON form used by the telemetry meta line and bench documents:
//   {"git":{"sha":...,"dirty":...},"build":{"type":...,"compiler":...},
//    "host":{"name":...,"hardware_threads":...,"compute_threads":...},
//    "seed":...,"scale":...,"argv":[...]}
json::Value to_json(const RunInfo& info);
inline json::Value to_json() { return to_json(current()); }

}  // namespace fedcl::runinfo
