// Counter-based (stateless) random numbers for parallel noise.
//
// The sequential Rng in common/rng.h hands one SplitMix64 stream from
// draw to draw, which forces every consumer into a single visit order:
// per-example DP noise had to be generated example-major on one thread
// because element k's value depended on the k-1 draws before it. The
// Philox4x32-10 generator here removes that coupling. It is a pure
// function
//
//     (key, stream, counter)  ->  four 32-bit words
//
// with no carried state, so ANY thread can produce ANY noise element
// without stream hand-off, and the result is independent of visit
// order and thread count by construction.
//
// Keying scheme used by the DP sanitizers (see DESIGN.md §7):
//   key     = one 64-bit draw from the caller's Rng. The Rng is already
//             forked per (experiment seed, round, client), so the draw
//             encodes seed/client/round; consecutive sanitize calls and
//             consecutive examples get fresh keys in a fixed serial
//             order (one next_u64 per example) while the expensive part
//             — the Gaussian fill itself — is order-free.
//   stream  = parameter-tensor index within the model.
//   counter = element block within the tensor (each Philox block yields
//             two Box-Muller normals, i.e. elements 2k and 2k+1).
//
// Philox is the generator of JAX/XLA and cuRAND; 10 rounds of the
// 4x32 variant passes BigCrush. Not cryptographic.
#pragma once

#include <cstdint>

namespace fedcl {

struct PhiloxBlock {
  std::uint32_t v[4];
};

// One Philox4x32-10 block: counter (c0..c3) encrypted under key
// (k0, k1). Pure function, branch-free, ~20 32x32 multiplies.
PhiloxBlock philox4x32(std::uint32_t c0, std::uint32_t c1, std::uint32_t c2,
                       std::uint32_t c3, std::uint32_t k0, std::uint32_t k1);

// Stateless standard-normal access keyed by a 64-bit key. normal_pair
// maps (key, stream, block) to two N(0,1) doubles via Box-Muller over
// one Philox block; element i of a logical stream is
// pair(i >> 1) component (i & 1), so random access costs one block.
class CounterNoise {
 public:
  explicit CounterNoise(std::uint64_t key) : key_(key) {}

  // The two normals of block `block` in stream `stream`.
  void normal_pair(std::uint64_t stream, std::uint64_t block, double* z0,
                   double* z1) const;

  // Gaussian element i of `stream` (random access; prefer add_scaled
  // for contiguous fills, which uses both halves of each block).
  double normal(std::uint64_t stream, std::uint64_t i) const;

  // dst[i] += (float)(stddev * normal(stream, i)) for i in [0, n).
  // Bitwise identical for any thread count or call slicing as long as
  // (key, stream) and element indices are preserved.
  void add_scaled(float* dst, std::int64_t n, std::uint64_t stream,
                  double stddev) const;

  std::uint64_t key() const { return key_; }

 private:
  std::uint64_t key_;
};

}  // namespace fedcl
