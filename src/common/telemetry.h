// First-class observability for the federated training stack.
//
// Two complementary surfaces (see docs/METRICS.md for the full metric
// reference and DESIGN.md §8 for the architecture):
//
//  1. Aggregate instruments — thread-safe counters, gauges, and
//     histograms with labeled series, registered in a process-wide
//     Registry. These are the passive substrate: updating one is a
//     handful of atomic operations, cheap enough for the training hot
//     path, and they cost nothing to read until a snapshot or a
//     Prometheus-style text dump is requested.
//
//  2. An event stream — spans (RAII-timed phases), points (a value at
//     a step, e.g. cumulative epsilon per round), and log lines —
//     delivered in call order to attached Sinks. The JSONL sink writes
//     one JSON object per event; with no sink attached the stream
//     costs one relaxed atomic load per potential event.
//
// Everything in the repo records into the global registry: the trainer
// emits round/phase spans and per-round points, the DP policies count
// clip decisions, update screening counts rejections per reason, the
// accountant wiring gauges cumulative (epsilon, delta), and the attack
// harness records reconstruction RMSE. run_experiment() resets the
// registry's aggregates at the start of each run (attached sinks and
// instrument references stay valid) and returns a TelemetrySnapshot,
// so tests can assert on observed behavior.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fedcl::telemetry {

// Label sets are small ordered key/value lists; they are canonicalized
// (sorted by key) on registration so {a,b} and {b,a} name one series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// ---------------------------------------------------------------------------
// Instruments

class Counter {
 public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `bounds` are the inclusive upper edges of the finite buckets, in
  // increasing order; one overflow bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }
  // counts().size() == bounds().size() + 1 (last = overflow).
  std::vector<std::int64_t> counts() const;
  std::int64_t count() const;
  double sum() const;
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponentially spaced bucket bounds: start, start*factor, ... (count
// edges). The conventional shape for norms and durations.
std::vector<double> exponential_buckets(double start, double factor,
                                        int count);
// Default bucket sets used across the stack (documented in METRICS.md).
const std::vector<double>& duration_ms_buckets();
const std::vector<double>& norm_buckets();

// ---------------------------------------------------------------------------
// Trace context

// The distributed-tracing identity a span is emitted under: a 128-bit
// trace id (one per federated round, deterministic in (seed, round) so
// the same round traced by different processes lands in the same
// trace) plus the span id children should parent under. A context with
// trace_hi == trace_lo == 0 is "not tracing" — spans emitted outside
// any context carry no ids at all, which keeps the pre-trace JSONL
// byte format for untraced streams.
struct TraceContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;  // the span new children parent under
  // True when this context was adopted from another process (the wire
  // carried it here): the direct child span's parent id is then not
  // resolvable in the local event stream, and is flagged as such so
  // single-file validators don't count it as dangling.
  bool remote = false;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

// The calling thread's innermost trace context ({} when not tracing).
TraceContext current_trace();

// Process-unique nonzero span id (counter mixed with a per-process
// salt, so ids never collide across the server/worker processes of
// one deployment).
std::uint64_t next_span_id();

// Deterministic per-round root context: same (seed, round) => same
// 128-bit trace id in every process, span_id = 0 (the round span
// becomes the trace root).
TraceContext round_trace_root(std::uint64_t seed, std::int64_t round);

// RAII adoption of a trace context onto the calling thread: pool
// workers and the remote-worker round loop wrap their work in one so
// spans they emit parent correctly. SpanTimer pushes/pops its own
// context automatically; explicit scopes are for crossing thread or
// process boundaries.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool pushed_ = false;
};

// ---------------------------------------------------------------------------
// Event stream

struct Event {
  enum class Kind { kSpan, kPoint, kLog };
  Kind kind = Kind::kPoint;
  std::string name;     // span/point: metric name; log: unused
  Labels labels;
  double t_ms = 0.0;    // ms since registry creation (event emit time)
  std::int64_t step = -1;  // round/iteration index; -1 = not stepped
  double value = 0.0;   // point: the value; span: duration in ms
  std::string level;    // log only: DEBUG/INFO/WARN/ERROR
  std::string message;  // log only
  // Trace identity (kSpan only; span_id == 0 = untraced span, which
  // serializes exactly as before tracing existed).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  // 0 = trace root
  bool parent_remote = false;     // parent id lives in another process
  double start_ms = 0.0;          // span start (t_ms is the end/emit time)
};

class Sink {
 public:
  virtual ~Sink() = default;
  // Called in event order under the registry's sink lock — implementors
  // need no further synchronization.
  virtual void write(const Event& event) = 0;
  virtual void flush() {}
};

// One JSON object per line (see docs/telemetry.schema.json):
//   {"type":"meta","version":1,...}          — first line
//   {"type":"span","name":...,"dur_ms":...}
//   {"type":"point","name":...,"value":...}
//   {"type":"log","level":...,"message":...}
class JsonlSink final : public Sink {
 public:
  // Opens (truncates) `path` and writes the meta line.
  explicit JsonlSink(const std::string& path);
  // Test form: writes to a caller-owned stream.
  explicit JsonlSink(std::ostream* out);
  ~JsonlSink() override;

  bool ok() const { return out_ != nullptr; }
  void write(const Event& event) override;
  void flush() override;

 private:
  std::ofstream file_;
  std::ostream* out_ = nullptr;
};

// Chrome trace-event JSON (one "X" complete event per span), viewable
// in Perfetto / chrome://tracing and consumed by tools/fedcl_trace.py.
// Timestamps are anchored to the wall clock (`wall_epoch_unix_ms`, see
// Registry::wall_epoch_unix_ms) so traces captured by separate
// processes merge onto one timeline. Events are buffered and the file
// is rewritten as a complete JSON document on every flush(), so a
// crash-path flush (install_crash_flush_handler) still leaves a
// loadable trace behind.
class ChromeTraceSink final : public Sink {
 public:
  ChromeTraceSink(std::string path, std::string process_name,
                  double wall_epoch_unix_ms);
  ~ChromeTraceSink() override;

  bool ok() const { return ok_; }
  void write(const Event& event) override;  // spans only; others ignored
  void flush() override;

 private:
  std::string path_;
  std::string process_name_;
  double epoch_ms_;
  std::int64_t pid_;
  std::vector<Event> spans_;  // pending (not yet flushed) spans only
  std::vector<int> tids_;  // per-span small thread ids, parallel to spans_
  // Byte offset of the document's constant closing suffix. Flush
  // appends only the pending events there and rewrites the suffix, so
  // a flush costs O(new events), not O(events so far) — a repeatedly
  // flushed long run (crash handler, per-run flushes) stays linear.
  long tail_pos_ = 0;
  bool ok_ = true;
  bool dirty_ = false;
};

// Installs SIGINT/SIGTERM handlers that flush the global registry's
// sinks (JSONL and Chrome-trace files land complete) and exit with the
// conventional 128+signo status. Best-effort: the flush takes locks
// that are not async-signal-safe, acceptable for the Ctrl-C runbook
// path it guards (DEPLOYMENT.md §5).
void install_crash_flush_handler();

// ---------------------------------------------------------------------------
// Snapshot

struct SeriesPoint {
  std::int64_t step = 0;
  double value = 0.0;
};

struct CounterSample {
  std::string name;
  Labels labels;
  std::int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  // bounds.size() + 1 entries
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct SeriesSample {
  std::string name;
  Labels labels;
  std::vector<SeriesPoint> points;
};

// A consistent copy of every instrument and recorded point series,
// ordered by (name, labels). FlRunResult carries one per run.
struct TelemetrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SeriesSample> series;

  // Lookup helpers (exact label match). Missing => 0 / NaN / nullptr /
  // empty.
  std::int64_t counter_value(const std::string& name,
                             const Labels& labels = {}) const;
  double gauge_value(const std::string& name, const Labels& labels = {}) const;
  const HistogramSample* find_histogram(const std::string& name,
                                        const Labels& labels = {}) const;
  std::vector<SeriesPoint> series_points(const std::string& name,
                                         const Labels& labels = {}) const;
};

// ---------------------------------------------------------------------------
// Registry

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Instrument lookup-or-create. References stay valid for the
  // registry's lifetime (reset() zeroes values, never invalidates).
  // A histogram's bounds are fixed by its first registration.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {});

  // Records (step, value) into the named point series and emits a
  // kPoint event to the sinks.
  void record_point(const std::string& name, std::int64_t step, double value,
                    const Labels& labels = {});

  // Emits a kSpan event (SpanTimer calls this; the duration histogram
  // `<name>.duration_ms` is updated by SpanTimer itself).
  void emit_span(const std::string& name, double dur_ms, std::int64_t step,
                 const Labels& labels);

  // Emits a fully-formed event (labels canonicalized, t_ms stamped at
  // call time). SpanTimer uses this to attach trace identities; prefer
  // record_point / log_line / emit_span elsewhere.
  void emit(Event event);

  // Emits a kLog event. The logging module routes every line that
  // passes its level filter through here, so JSONL runs capture
  // WARN/ERROR interleaved with metrics in emission order.
  void log_line(const std::string& level, const std::string& message);

  void add_sink(std::unique_ptr<Sink> sink);
  void clear_sinks();
  bool has_sinks() const {
    return has_sinks_.load(std::memory_order_relaxed);
  }
  void flush_sinks();

  // Milliseconds since this registry was created (steady clock).
  double now_ms() const;

  // Wall-clock (unix epoch) milliseconds at registry creation: the
  // anchor that places the steady-clock `t_ms`/`start_ms` offsets of
  // this process's events onto the shared cross-process timeline
  // (epoch_ms + offset). ChromeTraceSink consumes it.
  double wall_epoch_unix_ms() const;

  // Caps distinct label sets per metric name; beyond it, updates are
  // folded into an {"overflow","true"} series and a WARN is logged
  // once per metric (runaway label cardinality stays bounded).
  void set_series_limit(std::size_t limit);

  TelemetrySnapshot snapshot() const;

  // Prometheus text exposition of counters/gauges/histograms. Dots and
  // dashes in names become underscores, prefixed "fedcl_".
  std::string prometheus_text() const;

  // Zeroes all instruments and clears point series. Sinks, instrument
  // identities, and outstanding references are untouched.
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> has_sinks_{false};
};

// Process-wide registry every module records into.
Registry& global_registry();

// ---------------------------------------------------------------------------
// Spans

// RAII phase timer: on destruction observes the elapsed ms into the
// histogram `<name>.duration_ms` (with the same labels) and, when a
// sink is attached, emits a kSpan event.
//
// Tracing: when the calling thread has an active trace context
// (TraceScope, or an enclosing SpanTimer), the timer allocates its
// span id at *construction* — so context() is usable immediately, e.g.
// to stamp a TrainRequest before the round span closes — captures the
// enclosing context as its parent, and pushes its own context for the
// scope of the span. Outside any context the span stays untraced and
// costs one thread-local read extra.
class SpanTimer {
 public:
  SpanTimer(Registry& registry, std::string name, Labels labels = {},
            std::int64_t step = -1);
  ~SpanTimer();
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  // This span's context ({trace ids, span_id}; invalid when untraced).
  // Hand it to TraceScope in a pool-worker lambda or encode it onto
  // the wire to parent remote spans under this one.
  TraceContext context() const { return ctx_; }

 private:
  Registry& registry_;
  std::string name_;
  Labels labels_;
  std::int64_t step_;
  double start_ms_;
  TraceContext ctx_;               // valid() only when tracing
  std::uint64_t parent_span_ = 0;
  bool parent_remote_ = false;
  bool pushed_ = false;
};

}  // namespace fedcl::telemetry
