#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace fedcl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

void emit_log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%8.3f %-5s] %s\n", secs, level_name(level),
               msg.c_str());
}

}  // namespace detail
}  // namespace fedcl
