#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/telemetry.h"

namespace fedcl {
namespace {

LogLevel level_from_env() {
  const char* v = std::getenv("FEDCL_LOG");
  if (v == nullptr) return LogLevel::kInfo;
  if (std::strcmp(v, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(v, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(v, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(v, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

std::mutex g_mutex;

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace detail {

void emit_log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Route through the telemetry sinks first (a no-op without sinks):
  // the registry serializes all event kinds under one lock, so log
  // lines land in the JSONL stream in order with metric events.
  telemetry::global_registry().log_line(log_level_name(level), msg);
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%8.3f %-5s] %s\n", secs, log_level_name(level),
               msg.c_str());
}

}  // namespace detail
}  // namespace fedcl
