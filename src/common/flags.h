// Minimal command-line flag parsing for the example binaries:
// --name=value and --name value forms, plus positional arguments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fedcl {

class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  // "true"/"1"/"yes" (case sensitive) => true; bare "--flag" => true.
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fedcl
