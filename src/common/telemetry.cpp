#include "common/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <limits>

#include "common/json.h"
#include "common/logging.h"
#include "common/run_info.h"

namespace fedcl::telemetry {

namespace {

// First line of every JSONL stream: schema id + the run manifest, so
// any stream identifies the code, config, and host that produced it.
void write_meta_line(std::ostream& out) {
  json::Value meta = json::Value::object();
  meta["type"] = "meta";
  meta["version"] = 1;
  meta["schema"] = "fedcl-telemetry-v1";
  meta["run"] = runinfo::to_json();
  out << meta.dump() << '\n';
}

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Map key: name and canonical labels, joined with bytes that cannot
// appear in either.
std::string encode_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Fixed-width lowercase hex, the textual form of trace/span ids in
// JSONL and Chrome-trace output (JSON numbers cannot carry u64).
std::string hex_id(std::uint64_t v, int digits) {
  static const char* kHex = "0123456789abcdef";
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int i = digits - 1; i >= 0 && v != 0; --i, v >>= 4) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xF];
  }
  return out;
}

std::string trace_hex(std::uint64_t hi, std::uint64_t lo) {
  return hex_id(hi, 16) + hex_id(lo, 16);
}

thread_local std::vector<TraceContext> t_trace_stack;

}  // namespace

// ---------------------------------------------------------------------------
// Trace context

TraceContext current_trace() {
  return t_trace_stack.empty() ? TraceContext{} : t_trace_stack.back();
}

std::uint64_t next_span_id() {
  // Per-process salt from pid + wall clock: two processes of one
  // deployment mint from disjoint streams, so ids are unique across a
  // merged trace (collision probability is splitmix-negligible).
  static const std::uint64_t kSalt = [] {
    std::uint64_t s =
        static_cast<std::uint64_t>(::getpid()) ^
        static_cast<std::uint64_t>(
            std::chrono::system_clock::now().time_since_epoch().count());
    return splitmix64(s);
  }();
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id = 0;
  while (id == 0) {
    std::uint64_t state =
        kSalt + counter.fetch_add(1, std::memory_order_relaxed);
    id = splitmix64(state);
  }
  return id;
}

TraceContext round_trace_root(std::uint64_t seed, std::int64_t round) {
  // Deterministic in (seed, round) and identical in every process, so
  // the server's, the workers', and the simulator's spans for one round
  // share a trace id and merge into one Perfetto track group.
  std::uint64_t state = seed ^ 0xF3D7A5C912B86E04ULL;
  const std::uint64_t mixed_seed = splitmix64(state);
  state = mixed_seed + static_cast<std::uint64_t>(round);
  TraceContext ctx;
  ctx.trace_hi = splitmix64(state);
  ctx.trace_lo = splitmix64(state);
  if ((ctx.trace_hi | ctx.trace_lo) == 0) ctx.trace_lo = 1;
  ctx.span_id = 0;  // the round span becomes the root
  return ctx;
}

TraceScope::TraceScope(const TraceContext& ctx) {
  if (!ctx.valid()) return;
  t_trace_stack.push_back(ctx);
  pushed_ = true;
}

TraceScope::~TraceScope() {
  if (pushed_) t_trace_stack.pop_back();
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::observe(double v) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                v) -
                               bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  ++total_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

std::vector<std::int64_t> Histogram::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double edge = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

const std::vector<double>& duration_ms_buckets() {
  // 0.05 ms .. ~27 s in x2.5 steps: local rounds land mid-range at any
  // FEDCL_SCALE.
  static const std::vector<double> kBuckets =
      exponential_buckets(0.05, 2.5, 15);
  return kBuckets;
}

const std::vector<double>& norm_buckets() {
  // 1e-3 .. ~1e3 in x2 steps covers gradient/update L2 norms across the
  // model zoo (Fig. 3's range sits well inside).
  static const std::vector<double> kBuckets =
      exponential_buckets(0.001, 2.0, 21);
  return kBuckets;
}

// ---------------------------------------------------------------------------
// JsonlSink

JsonlSink::JsonlSink(const std::string& path) : file_(path) {
  if (!file_) return;
  out_ = &file_;
  write_meta_line(*out_);
}

JsonlSink::JsonlSink(std::ostream* out) : out_(out) {
  write_meta_line(*out_);
}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::write(const Event& event) {
  if (out_ == nullptr) return;
  json::Value v = json::Value::object();
  switch (event.kind) {
    case Event::Kind::kSpan:
      v["type"] = "span";
      v["name"] = event.name;
      break;
    case Event::Kind::kPoint:
      v["type"] = "point";
      v["name"] = event.name;
      break;
    case Event::Kind::kLog:
      v["type"] = "log";
      break;
  }
  v["t_ms"] = event.t_ms;
  if (event.kind == Event::Kind::kSpan) {
    v["dur_ms"] = event.value;
  } else if (event.kind == Event::Kind::kPoint) {
    v["value"] = event.value;
  } else {
    v["level"] = event.level;
    v["message"] = event.message;
  }
  if (event.step >= 0) v["step"] = event.step;
  if (event.kind == Event::Kind::kSpan && event.span_id != 0) {
    // Trace identity (absent on untraced spans, whose byte format is
    // unchanged from before tracing existed). Ids are lowercase hex
    // strings: JSON numbers are doubles and cannot carry u64.
    v["trace"] = trace_hex(event.trace_hi, event.trace_lo);
    v["span"] = hex_id(event.span_id, 16);
    if (event.parent_span != 0) v["parent"] = hex_id(event.parent_span, 16);
    if (event.parent_remote) v["parent_remote"] = true;
    v["start_ms"] = event.start_ms;
  }
  if (!event.labels.empty()) {
    json::Value labels = json::Value::object();
    for (const auto& [k, val] : event.labels) labels[k] = val;
    v["labels"] = std::move(labels);
  }
  *out_ << v.dump() << '\n';
}

void JsonlSink::flush() {
  if (out_ != nullptr) out_->flush();
}

// ---------------------------------------------------------------------------
// ChromeTraceSink

namespace {

// Small dense per-thread ids for the Chrome "tid" field (hashed
// std::thread::id values render as noise in Perfetto's track names).
int current_tid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

namespace {

// The document's constant closing bytes. Every flush leaves
// `{"traceEvents":[...events...]` followed by exactly this suffix, so
// the file on disk is a complete, loadable trace after each flush.
constexpr char kTraceSuffix[] = "],\"displayTimeUnit\":\"ms\"}\n";

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::string path, std::string process_name,
                                 double wall_epoch_unix_ms)
    : path_(std::move(path)),
      process_name_(std::move(process_name)),
      epoch_ms_(wall_epoch_unix_ms),
      pid_(static_cast<std::int64_t>(::getpid())) {
  // Write the document skeleton up front: a bad --trace-out path fails
  // at startup, and even a span-free run leaves a loadable empty trace.
  // The only event so far is the process-name metadata ("M") Perfetto
  // uses to label the track group.
  json::Value m = json::Value::object();
  m["name"] = "process_name";
  m["ph"] = "M";
  m["pid"] = pid_;
  json::Value margs = json::Value::object();
  margs["name"] = process_name_;
  m["args"] = std::move(margs);
  const std::string head = "{\"traceEvents\":[" + m.dump();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    ok_ = false;
    return;
  }
  ok_ = std::fwrite(head.data(), 1, head.size(), f) == head.size() &&
        std::fwrite(kTraceSuffix, 1, sizeof(kTraceSuffix) - 1, f) ==
            sizeof(kTraceSuffix) - 1;
  std::fclose(f);
  tail_pos_ = static_cast<long>(head.size());
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::write(const Event& event) {
  if (!ok_ || event.kind != Event::Kind::kSpan) return;
  spans_.push_back(event);
  tids_.push_back(current_tid());
  dirty_ = true;
}

void ChromeTraceSink::flush() {
  if (!ok_ || !dirty_) return;
  // Serialize only the spans buffered since the last flush and splice
  // them in ahead of the constant suffix: the file only ever grows, so
  // no truncation is needed, and a flush stays O(new events) no matter
  // how long the run has been going.
  std::string chunk;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Event& e = spans_[i];
    json::Value v = json::Value::object();
    v["name"] = e.name;
    v["cat"] = "fedcl";
    v["ph"] = "X";
    // Complete events: ts/dur in microseconds, anchored to the wall
    // clock so multi-process traces merge onto one timeline.
    v["ts"] = (epoch_ms_ + e.start_ms) * 1000.0;
    v["dur"] = e.value * 1000.0;
    v["pid"] = pid_;
    v["tid"] = tids_[i];
    json::Value args = json::Value::object();
    if (e.span_id != 0) {
      args["trace"] = trace_hex(e.trace_hi, e.trace_lo);
      args["span"] = hex_id(e.span_id, 16);
      if (e.parent_span != 0) args["parent"] = hex_id(e.parent_span, 16);
      if (e.parent_remote) args["parent_remote"] = true;
    }
    if (e.step >= 0) args["step"] = e.step;
    for (const auto& [k, val] : e.labels) args[k] = val;
    v["args"] = std::move(args);
    chunk += ',';
    chunk += v.dump();
  }
  spans_.clear();
  tids_.clear();
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  if (f == nullptr || std::fseek(f, tail_pos_, SEEK_SET) != 0) {
    if (f != nullptr) std::fclose(f);
    ok_ = false;
    return;
  }
  ok_ = std::fwrite(chunk.data(), 1, chunk.size(), f) == chunk.size() &&
        std::fwrite(kTraceSuffix, 1, sizeof(kTraceSuffix) - 1, f) ==
            sizeof(kTraceSuffix) - 1;
  std::fclose(f);
  tail_pos_ += static_cast<long>(chunk.size());
  dirty_ = false;
}

// ---------------------------------------------------------------------------
// Snapshot lookups

namespace {

template <typename Sample>
const Sample* find_sample(const std::vector<Sample>& samples,
                          const std::string& name, const Labels& labels) {
  const Labels want = canonical(labels);
  for (const Sample& s : samples) {
    if (s.name == name && s.labels == want) return &s;
  }
  return nullptr;
}

}  // namespace

std::int64_t TelemetrySnapshot::counter_value(const std::string& name,
                                              const Labels& labels) const {
  const CounterSample* s = find_sample(counters, name, labels);
  return s != nullptr ? s->value : 0;
}

double TelemetrySnapshot::gauge_value(const std::string& name,
                                      const Labels& labels) const {
  const GaugeSample* s = find_sample(gauges, name, labels);
  return s != nullptr ? s->value : std::nan("");
}

const HistogramSample* TelemetrySnapshot::find_histogram(
    const std::string& name, const Labels& labels) const {
  return find_sample(histograms, name, labels);
}

std::vector<SeriesPoint> TelemetrySnapshot::series_points(
    const std::string& name, const Labels& labels) const {
  const SeriesSample* s = find_sample(series, name, labels);
  return s != nullptr ? s->points : std::vector<SeriesPoint>{};
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> instrument;
  };

  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  // Wall-clock anchor captured together with `start`: unix-epoch ms
  // that t_ms == 0 corresponds to (the cross-process trace timeline).
  double wall_epoch_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::system_clock::now()
                                 .time_since_epoch())
                             .count();

  // Guards instruments, series, and cardinality bookkeeping. The sink
  // mutex below is the innermost lock: it is never held while taking
  // this one.
  mutable std::mutex mu;
  std::map<std::string, Entry<Counter>> counters;
  std::map<std::string, Entry<Gauge>> gauges;
  std::map<std::string, Entry<Histogram>> histograms;
  std::map<std::string, SeriesSample> series;
  // Distinct label sets per "<kind>:<name>" family, and whether the
  // overflow warning fired for it.
  std::map<std::string, std::size_t> family_count;
  std::map<std::string, bool> family_warned;
  std::size_t series_limit = 1024;

  mutable std::mutex sink_mu;
  std::vector<std::unique_ptr<Sink>> sinks;

  // Looks up or creates an instrument, enforcing the per-family label
  // cardinality cap. Returns {instrument, warn_now}.
  template <typename T, typename Make>
  std::pair<T*, bool> get(std::map<std::string, Entry<T>>& table,
                          const char* kind, const std::string& name,
                          const Labels& labels, const Make& make) {
    Labels canon = canonical(labels);
    std::string key = encode_key(name, canon);
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(key);
    if (it != table.end()) return {it->second.instrument.get(), false};
    const std::string family = std::string(kind) + ":" + name;
    bool warn = false;
    if (family_count[family] >= series_limit) {
      canon = {{"overflow", "true"}};
      key = encode_key(name, canon);
      it = table.find(key);
      if (it != table.end()) return {it->second.instrument.get(), false};
      if (!family_warned[family]) {
        family_warned[family] = true;
        warn = true;
      }
    } else {
      ++family_count[family];
    }
    Entry<T> entry{name, std::move(canon), make()};
    T* instrument = entry.instrument.get();
    table.emplace(std::move(key), std::move(entry));
    return {instrument, warn};
  }

  void write_sinks(const Event& event) {
    std::lock_guard<std::mutex> lock(sink_mu);
    for (auto& sink : sinks) sink->write(event);
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

double Registry::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - impl_->start)
      .count();
}

double Registry::wall_epoch_unix_ms() const { return impl_->wall_epoch_ms; }

namespace {

void warn_cardinality(const std::string& name) {
  FEDCL_LOG(Warn) << "telemetry: metric '" << name
                  << "' exceeded its label-cardinality limit; further "
                     "label sets fold into {overflow=\"true\"}";
}

}  // namespace

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  auto [c, warn] = impl_->get(impl_->counters, "counter", name, labels,
                              [] { return std::make_unique<Counter>(); });
  if (warn) warn_cardinality(name);
  return *c;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  auto [g, warn] = impl_->get(impl_->gauges, "gauge", name, labels,
                              [] { return std::make_unique<Gauge>(); });
  if (warn) warn_cardinality(name);
  return *g;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const Labels& labels) {
  auto [h, warn] = impl_->get(impl_->histograms, "histogram", name, labels,
                              [&] {
                                return std::make_unique<Histogram>(
                                    std::move(bounds));
                              });
  if (warn) warn_cardinality(name);
  return *h;
}

void Registry::record_point(const std::string& name, std::int64_t step,
                            double value, const Labels& labels) {
  const double t = now_ms();
  Labels canon = canonical(labels);
  bool warn = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::string key = encode_key(name, canon);
    auto it = impl_->series.find(key);
    if (it == impl_->series.end()) {
      const std::string family = "series:" + name;
      if (impl_->family_count[family] >= impl_->series_limit) {
        canon = {{"overflow", "true"}};
        key = encode_key(name, canon);
        if (!impl_->family_warned[family]) {
          impl_->family_warned[family] = true;
          warn = true;
        }
      } else {
        ++impl_->family_count[family];
      }
      it = impl_->series.emplace(key, SeriesSample{name, canon, {}}).first;
    }
    it->second.points.push_back({step, value});
  }
  if (warn) warn_cardinality(name);
  if (has_sinks()) {
    Event e;
    e.kind = Event::Kind::kPoint;
    e.name = name;
    e.labels = std::move(canon);
    e.t_ms = t;
    e.step = step;
    e.value = value;
    impl_->write_sinks(e);
  }
}

void Registry::emit_span(const std::string& name, double dur_ms,
                         std::int64_t step, const Labels& labels) {
  if (!has_sinks()) return;
  Event e;
  e.kind = Event::Kind::kSpan;
  e.name = name;
  e.labels = canonical(labels);
  e.t_ms = now_ms();
  e.step = step;
  e.value = dur_ms;
  impl_->write_sinks(e);
}

void Registry::emit(Event event) {
  if (!has_sinks()) return;
  event.labels = canonical(std::move(event.labels));
  event.t_ms = now_ms();
  impl_->write_sinks(event);
}

void Registry::log_line(const std::string& level, const std::string& message) {
  if (!has_sinks()) return;
  Event e;
  e.kind = Event::Kind::kLog;
  e.t_ms = now_ms();
  e.level = level;
  e.message = message;
  impl_->write_sinks(e);
}

void Registry::add_sink(std::unique_ptr<Sink> sink) {
  std::lock_guard<std::mutex> lock(impl_->sink_mu);
  impl_->sinks.push_back(std::move(sink));
  has_sinks_.store(true, std::memory_order_relaxed);
}

void Registry::clear_sinks() {
  std::lock_guard<std::mutex> lock(impl_->sink_mu);
  for (auto& sink : impl_->sinks) sink->flush();
  impl_->sinks.clear();
  has_sinks_.store(false, std::memory_order_relaxed);
}

void Registry::flush_sinks() {
  std::lock_guard<std::mutex> lock(impl_->sink_mu);
  for (auto& sink : impl_->sinks) sink->flush();
}

void Registry::set_series_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->series_limit = limit;
}

TelemetrySnapshot Registry::snapshot() const {
  TelemetrySnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [key, entry] : impl_->counters) {
    snap.counters.push_back(
        {entry.name, entry.labels, entry.instrument->value()});
  }
  for (const auto& [key, entry] : impl_->gauges) {
    snap.gauges.push_back(
        {entry.name, entry.labels, entry.instrument->value()});
  }
  for (const auto& [key, entry] : impl_->histograms) {
    const Histogram& h = *entry.instrument;
    snap.histograms.push_back({entry.name, entry.labels, h.bounds(),
                               h.counts(), h.count(), h.sum(), h.min(),
                               h.max()});
  }
  for (const auto& [key, s] : impl_->series) snap.series.push_back(s);
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [key, entry] : impl_->counters) entry.instrument->reset();
  for (auto& [key, entry] : impl_->gauges) entry.instrument->reset();
  for (auto& [key, entry] : impl_->histograms) entry.instrument->reset();
  // Series are per-run data, not instruments: drop them (and release
  // their cardinality slots) entirely.
  impl_->series.clear();
  for (auto it = impl_->family_count.begin();
       it != impl_->family_count.end();) {
    if (it->first.rfind("series:", 0) == 0) {
      it = impl_->family_count.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "fedcl_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + json::escape(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string Registry::prometheus_text() const {
  const TelemetrySnapshot snap = snapshot();
  std::string out;
  std::string last_family;
  auto type_line = [&](const std::string& name, const char* type) {
    if (name != last_family) {
      out += "# TYPE " + prom_name(name) + " " + type + "\n";
      last_family = name;
    }
  };
  for (const auto& c : snap.counters) {
    type_line(c.name, "counter");
    out += prom_name(c.name) + prom_labels(c.labels) + " " +
           std::to_string(c.value) + "\n";
  }
  last_family.clear();
  for (const auto& g : snap.gauges) {
    type_line(g.name, "gauge");
    out += prom_name(g.name) + prom_labels(g.labels) + " " +
           prom_number(g.value) + "\n";
  }
  last_family.clear();
  for (const auto& h : snap.histograms) {
    type_line(h.name, "histogram");
    const std::string base = prom_name(h.name);
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.counts[b];
      Labels with_le = h.labels;
      with_le.emplace_back("le", prom_number(h.bounds[b]));
      out += base + "_bucket" + prom_labels(with_le) + " " +
             std::to_string(cumulative) + "\n";
    }
    Labels inf = h.labels;
    inf.emplace_back("le", "+Inf");
    out += base + "_bucket" + prom_labels(inf) + " " +
           std::to_string(h.count) + "\n";
    out += base + "_sum" + prom_labels(h.labels) + " " + prom_number(h.sum) +
           "\n";
    out += base + "_count" + prom_labels(h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

Registry& global_registry() {
  // Leaked on purpose: policies and static objects may hold instrument
  // references or log through the sinks during shutdown, so the global
  // registry must outlive every other static.
  static Registry* registry = new Registry();
  return *registry;
}

// ---------------------------------------------------------------------------
// SpanTimer

SpanTimer::SpanTimer(Registry& registry, std::string name, Labels labels,
                     std::int64_t step)
    : registry_(registry),
      name_(std::move(name)),
      labels_(std::move(labels)),
      step_(step),
      start_ms_(registry.now_ms()) {
  const TraceContext parent = current_trace();
  if (!parent.valid()) return;  // no active trace: untraced span
  // The span id is minted here, at construction, so context() can be
  // propagated (onto the wire, into pool workers) while the span is
  // still open.
  ctx_.trace_hi = parent.trace_hi;
  ctx_.trace_lo = parent.trace_lo;
  ctx_.span_id = next_span_id();
  parent_span_ = parent.span_id;
  parent_remote_ = parent.remote;
  t_trace_stack.push_back(ctx_);
  pushed_ = true;
}

SpanTimer::~SpanTimer() {
  if (pushed_) t_trace_stack.pop_back();
  const double dur_ms = registry_.now_ms() - start_ms_;
  registry_.histogram(name_ + ".duration_ms", duration_ms_buckets(), labels_)
      .observe(dur_ms);
  if (!ctx_.valid()) {
    registry_.emit_span(name_, dur_ms, step_, labels_);
    return;
  }
  Event e;
  e.kind = Event::Kind::kSpan;
  e.name = name_;
  e.labels = labels_;
  e.step = step_;
  e.value = dur_ms;
  e.trace_hi = ctx_.trace_hi;
  e.trace_lo = ctx_.trace_lo;
  e.span_id = ctx_.span_id;
  e.parent_span = parent_span_;
  e.parent_remote = parent_remote_ && parent_span_ != 0;
  e.start_ms = start_ms_;
  registry_.emit(std::move(e));
}

// ---------------------------------------------------------------------------
// Crash-path flush

namespace {

extern "C" void crash_flush_signal_handler(int signo) {
  // Best-effort: flush_sinks takes the sink mutex and ChromeTraceSink
  // rewrites its file — not async-signal-safe, but the runbook's
  // Ctrl-C lands while the process waits on sockets or rounds, where
  // the locks are free. Restoring the default disposition first means
  // a second Ctrl-C kills a wedged flush the normal way.
  std::signal(signo, SIG_DFL);
  global_registry().flush_sinks();
  std::_Exit(128 + signo);
}

}  // namespace

void install_crash_flush_handler() {
  std::signal(SIGINT, crash_flush_signal_handler);
  std::signal(SIGTERM, crash_flush_signal_handler);
}

}  // namespace fedcl::telemetry
