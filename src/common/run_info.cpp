#include "common/run_info.h"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/env.h"
#include "common/thread_pool.h"

#ifndef FEDCL_SOURCE_DIR
#define FEDCL_SOURCE_DIR ""
#endif
#ifndef FEDCL_BUILD_TYPE
#define FEDCL_BUILD_TYPE "unknown"
#endif

namespace fedcl::runinfo {

namespace {

std::mutex g_mutex;
std::vector<std::string> g_argv;

// Runs `command` (stderr discarded) and returns its first output line,
// or "" on any failure — git being absent or the source dir not being
// a work tree must never break a run.
std::string command_line_output(const std::string& command) {
  std::FILE* pipe = ::popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) return "";
  std::array<char, 256> buf{};
  std::string out;
  if (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    out = buf.data();
  }
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("g++ ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string detect_hostname() {
  std::array<char, 256> buf{};
  if (::gethostname(buf.data(), buf.size() - 1) != 0) return "unknown";
  return buf.data()[0] != '\0' ? std::string(buf.data()) : "unknown";
}

struct GitState {
  std::string sha = "unknown";
  bool dirty = false;
};

GitState detect_git() {
  GitState state;
  if (const char* sha = std::getenv("FEDCL_GIT_SHA")) {
    state.sha = sha;
    if (const char* dirty = std::getenv("FEDCL_GIT_DIRTY")) {
      state.dirty = std::string(dirty) == "1" || std::string(dirty) == "true";
    }
    return state;
  }
  const std::string dir = FEDCL_SOURCE_DIR;
  if (dir.empty()) return state;
  const std::string git = "git -C \"" + dir + "\" ";
  const std::string sha = command_line_output(git + "rev-parse HEAD");
  if (sha.empty()) return state;
  state.sha = sha;
  state.dirty =
      !command_line_output(git + "status --porcelain --untracked-files=no")
           .empty();
  return state;
}

}  // namespace

void set_command_line(int argc, char** argv) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_argv.assign(argv, argv + argc);
}

RunInfo current() {
  // Process-constant fields, resolved once (the git subprocess is the
  // expensive part).
  static const GitState kGit = detect_git();
  static const std::string kCompiler = detect_compiler();
  static const std::string kHostname = detect_hostname();

  RunInfo info;
  info.git_sha = kGit.sha;
  info.git_dirty = kGit.dirty;
  info.build_type = FEDCL_BUILD_TYPE;
  info.compiler = kCompiler;
  info.hostname = kHostname;
  info.hardware_threads =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  info.compute_threads = static_cast<std::int64_t>(compute_pool().size());
  info.seed = experiment_seed();
  info.scale = bench_scale_name(bench_scale());
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    info.argv = g_argv;
  }
  return info;
}

json::Value to_json(const RunInfo& info) {
  json::Value v = json::Value::object();
  json::Value git = json::Value::object();
  git["sha"] = info.git_sha;
  git["dirty"] = info.git_dirty;
  v["git"] = std::move(git);
  json::Value build = json::Value::object();
  build["type"] = info.build_type;
  build["compiler"] = info.compiler;
  v["build"] = std::move(build);
  json::Value host = json::Value::object();
  host["name"] = info.hostname;
  host["hardware_threads"] = info.hardware_threads;
  host["compute_threads"] = info.compute_threads;
  v["host"] = std::move(host);
  v["seed"] = static_cast<std::int64_t>(info.seed);
  v["scale"] = info.scale;
  json::Value argv = json::Value::array();
  for (const std::string& a : info.argv) argv.push_back(a);
  v["argv"] = std::move(argv);
  return v;
}

}  // namespace fedcl::runinfo
