#include "common/thread_pool.h"

#include <algorithm>

#include "common/error.h"

namespace fedcl {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDCL_CHECK(!stop_) << "submit on stopped pool";
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // rethrows task exceptions
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace fedcl
