#include "common/thread_pool.h"

#include <algorithm>

#include "common/env.h"
#include "common/error.h"

namespace fedcl {

namespace {

// Worker threads mark the pool they belong to so parallel_for can
// detect nested calls and run inline instead of deadlocking on a full
// queue.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_current_pool == this; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDCL_CHECK(!stop_) << "submit on stopped pool";
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || size() == 1 || on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared completion state instead of per-task futures: the caller
  // must not return (and release `fn` and the captures inside it)
  // until *every* task has finished, even when several throw
  // concurrently. The first exception to complete is kept under the
  // mutex and rethrown after the barrier; later ones are discarded
  // deliberately rather than racing on a single slot.
  struct State {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr first;
  };
  auto state = std::make_shared<State>();
  state->remaining = n;

  for (std::size_t i = 0; i < n; ++i) {
    submit([state, &fn, i] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->m);
      if (err && !state->first) state->first = err;
      if (--state->remaining == 0) state->done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->m);
  state->done.wait(lock, [&] { return state->remaining == 0; });
  if (state->first) std::rethrow_exception(state->first);
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t max_chunks = std::max<std::size_t>(1, size());
  const std::size_t chunk =
      std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t chunks = (n + chunk - 1) / chunk;
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    fn(begin, std::min(n, begin + chunk));
  });
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& compute_pool() {
  static ThreadPool pool(
      static_cast<std::size_t>(std::max<std::int64_t>(
          0, env_int("FEDCL_THREADS", 0))));
  return pool;
}

}  // namespace fedcl
