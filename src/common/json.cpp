#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fedcl::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Value& Value::operator[](const std::string& key) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value());
  return members_.back().second;
}

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

std::string number_repr(double d, std::int64_t i, bool is_int) {
  if (is_int) return std::to_string(i);
  // NaN/Inf have no JSON representation; null is the conventional
  // stand-in and keeps downstream parsers alive.
  if (!std::isfinite(d)) return "null";
  char buf[32];
  // %.17g round-trips any double; trim to the shortest form that does.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out += number_repr(number_, int_, is_int_);
      break;
    case Kind::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(members_[i].first);
        out += '"';
        out += colon;
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        out += pad;
        elements_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool run(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Value(std::move(s));
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out = Value();
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out = Value(true);
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out = Value(false);
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out += c;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by this library's writer).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string repr = text_.substr(start, pos_ - start);
    char* end = nullptr;
    if (integral) {
      const long long i = std::strtoll(repr.c_str(), &end, 10);
      if (end == repr.c_str() + repr.size()) {
        out = Value(static_cast<std::int64_t>(i));
        return true;
      }
    }
    const double d = std::strtod(repr.c_str(), &end);
    if (end != repr.c_str() + repr.size()) return fail("bad number");
    out = Value(d);
    return true;
  }

  bool parse_object(Value& out) {
    consume('{');
    out = Value::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out[key] = std::move(v);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    consume('[');
    out = Value::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string* error) {
  return Parser(text, error).run(out);
}

}  // namespace fedcl::json
