#include "common/env.h"

#include <cstdlib>
#include <string>

namespace fedcl {

BenchScale bench_scale() {
  const char* v = std::getenv("FEDCL_SCALE");
  if (v == nullptr) return BenchScale::kSmall;
  std::string s(v);
  if (s == "smoke") return BenchScale::kSmoke;
  if (s == "paper") return BenchScale::kPaper;
  return BenchScale::kSmall;
}

const char* bench_scale_name(BenchScale s) {
  switch (s) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kSmall:
      return "small";
    case BenchScale::kPaper:
      return "paper";
  }
  return "?";
}

std::uint64_t experiment_seed() {
  return static_cast<std::uint64_t>(env_int("FEDCL_SEED", 42));
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::int64_t>(parsed);
}

double env_double(const std::string& name, double fallback) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

}  // namespace fedcl
