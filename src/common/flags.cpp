#include "common/flags.h"

#include <cstdlib>

#include "common/error.h"

namespace fedcl {

FlagParser::FlagParser(int argc, char** argv) {
  FEDCL_CHECK_GE(argc, 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    FEDCL_CHECK(!body.empty()) << "bare -- argument";
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean flag
    }
  }
}

bool FlagParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::get(const std::string& name,
                            const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t FlagParser::get_int(const std::string& name,
                                 std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  FEDCL_CHECK(end != it->second.c_str() && *end == '\0')
      << "--" << name << " expects an integer, got '" << it->second << "'";
  return static_cast<std::int64_t>(v);
}

double FlagParser::get_double(const std::string& name,
                              double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  FEDCL_CHECK(end != it->second.c_str() && *end == '\0')
      << "--" << name << " expects a number, got '" << it->second << "'";
  return v;
}

bool FlagParser::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  FEDCL_CHECK(false) << "--" << name << " expects a boolean, got '" << v
                     << "'";
  return fallback;
}

}  // namespace fedcl
