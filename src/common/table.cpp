#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace fedcl {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string AsciiTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  FEDCL_CHECK_GT(cols, 0u) << "empty table";

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream os;
  auto hline = [&]() {
    os << '+';
    for (std::size_t i = 0; i < cols; ++i)
      os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << ' ' << cell << std::string(width[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) emit(r);
  hline();
  return os.str();
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace fedcl
