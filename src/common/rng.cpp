#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace fedcl {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// FNV-1a over the label bytes, used to derive independent sub-streams.
std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng Rng::fork(std::string_view label, std::uint64_t index) const {
  std::uint64_t mix = state_;
  mix ^= hash_label(label);
  mix ^= index * 0xD1B54A32D192ED03ULL + 0x8CB92BA72F3D8DD7ULL;
  // Run the mixer once so adjacent indices diverge immediately.
  return Rng(splitmix64(mix));
}

std::uint64_t Rng::next_u64() { return splitmix64(state_); }

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FEDCL_CHECK_LE(lo, hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  FEDCL_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  double sin_theta, cos_theta;
#if defined(__GLIBC__)
  // glibc computes both in one call with results identical to separate
  // sin/cos, shaving a table lookup off every other draw — noise
  // generation is the floor of every Fed-CDP iteration.
  ::sincos(theta, &sin_theta, &cos_theta);
#else
  sin_theta = std::sin(theta);
  cos_theta = std::cos(theta);
#endif
  cached_normal_ = r * sin_theta;
  has_cached_normal_ = true;
  return r * cos_theta;
}

double Rng::normal(double mean, double stddev) {
  FEDCL_CHECK_GE(stddev, 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  FEDCL_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FEDCL_CHECK_LE(k, n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> Rng::sample_with_replacement(std::size_t n,
                                                      std::size_t k) {
  FEDCL_CHECK_GT(n, 0u);
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = static_cast<std::size_t>(uniform_int(n));
  }
  return out;
}

}  // namespace fedcl
