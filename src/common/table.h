// ASCII table rendering for bench output. Benches print the same row
// and column structure as the paper's tables, so results are easy to
// compare side by side.
#pragma once

#include <string>
#include <vector>

namespace fedcl {

class AsciiTable {
 public:
  explicit AsciiTable(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  // Formats a double with the given precision (trailing zeros kept so
  // columns align).
  static std::string fmt(double v, int precision = 4);

  std::string render() const;
  void print() const;  // render to stdout

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedcl
