// Minimal leveled logger. Thread-safe line output to stderr, and every
// line that passes the level filter is also routed through the
// telemetry sink interface (common/telemetry.h), so a JSONL run
// captures WARN/ERROR events interleaved with metric events in
// emission order.
//
// The minimum level defaults to Info and can be set at startup with
// the FEDCL_LOG environment variable (debug|info|warn|error) or at
// runtime with set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace fedcl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

const char* log_level_name(LogLevel level);

namespace detail {

void emit_log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  ~LogMessage() { emit_log_line(level_, os_.str()); }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace fedcl

#define FEDCL_LOG(level) \
  ::fedcl::detail::LogMessage(::fedcl::LogLevel::k##level)
