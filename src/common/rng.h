// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in fedcl (data synthesis, client sampling,
// DP noise, attack seeds) draws from an Rng seeded from a single
// experiment seed via named sub-streams, so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace fedcl {

// SplitMix64-based generator. Small, fast, and statistically strong
// enough for simulation workloads (not for cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  // Derives an independent child stream, e.g. rng.fork("client", 7).
  Rng fork(std::string_view label, std::uint64_t index = 0) const;

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  // Standard normal via Box-Muller (cached second value).
  double normal();
  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  // Bernoulli trial with success probability p.
  bool bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // k draws from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);
  // k draws from [0, n) with replacement.
  std::vector<std::size_t> sample_with_replacement(std::size_t n,
                                                   std::size_t k);

 private:
  std::uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedcl
