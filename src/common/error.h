// Error handling primitives shared by all fedcl modules.
//
// We use exceptions for contract violations (CHECK) because every
// public entry point of the library validates its inputs and a violated
// precondition indicates a programming error by the caller; tests
// assert on these throws.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace fedcl {

// Thrown on any violated precondition or internal invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Recoverable failure of an operation whose inputs cross a trust
// boundary (bytes off the wire, updates from unreliable clients).
// Unlike FEDCL_CHECK — which flags caller bugs — a failed Result is an
// expected runtime outcome the caller must branch on.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit ok
  static Result failure(std::string message) {
    Result r;
    r.error_ = std::move(message);
    if (r.error_.empty()) r.error_ = "unknown error";
    return r;
  }

  bool ok() const { return error_.empty(); }
  explicit operator bool() const { return ok(); }
  // Empty when ok().
  const std::string& error() const { return error_; }

  // value()/take() require ok(); violating that is a caller bug.
  const T& value() const {
    ensure_ok();
    return value_;
  }
  T& value() {
    ensure_ok();
    return value_;
  }
  T&& take() {
    ensure_ok();
    return std::move(value_);
  }

 private:
  Result() = default;
  void ensure_ok() const {
    if (!ok()) throw Error("Result accessed while failed: " + error_);
  }
  T value_{};
  std::string error_;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FEDCL_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Accumulates a streamed message for FEDCL_CHECK(cond) << "detail".
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  [[noreturn]] ~CheckMessage() noexcept(false) {
    check_failed(expr_, file_, line_, os_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace fedcl

// FEDCL_CHECK(cond) << "message"; throws fedcl::Error when cond is false.
#define FEDCL_CHECK(cond)                                             \
  if (cond) {                                                         \
  } else                                                              \
    ::fedcl::detail::CheckMessage(#cond, __FILE__, __LINE__)

// Convenience comparisons with value reporting.
#define FEDCL_CHECK_EQ(a, b) FEDCL_CHECK((a) == (b)) << (a) << " vs " << (b)
#define FEDCL_CHECK_NE(a, b) FEDCL_CHECK((a) != (b)) << (a) << " vs " << (b)
#define FEDCL_CHECK_LT(a, b) FEDCL_CHECK((a) < (b)) << (a) << " vs " << (b)
#define FEDCL_CHECK_LE(a, b) FEDCL_CHECK((a) <= (b)) << (a) << " vs " << (b)
#define FEDCL_CHECK_GT(a, b) FEDCL_CHECK((a) > (b)) << (a) << " vs " << (b)
#define FEDCL_CHECK_GE(a, b) FEDCL_CHECK((a) >= (b)) << (a) << " vs " << (b)
