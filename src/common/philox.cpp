#include "common/philox.h"

#include <cmath>

namespace fedcl {

namespace {

// Philox4x32 round constants (Salmon et al., "Parallel Random Numbers:
// As Easy as 1, 2, 3", SC'11).
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void philox_round(std::uint32_t (&c)[4], std::uint32_t k0,
                         std::uint32_t k1) {
  const std::uint64_t p0 = static_cast<std::uint64_t>(kPhiloxM0) * c[0];
  const std::uint64_t p1 = static_cast<std::uint64_t>(kPhiloxM1) * c[2];
  const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
  const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
  const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
  const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
  const std::uint32_t n0 = hi1 ^ c[1] ^ k0;
  const std::uint32_t n1 = lo1;
  const std::uint32_t n2 = hi0 ^ c[3] ^ k1;
  const std::uint32_t n3 = lo0;
  c[0] = n0;
  c[1] = n1;
  c[2] = n2;
  c[3] = n3;
}

// 53 random bits -> double in (0, 1]: the +1 before scaling keeps
// log(u) finite without the rejection loop the sequential Rng needs.
inline double u53_open_closed(std::uint32_t hi, std::uint32_t lo) {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(hi) << 32) | static_cast<std::uint64_t>(lo);
  return static_cast<double>((bits >> 11) + 1) * 0x1.0p-53;
}

}  // namespace

PhiloxBlock philox4x32(std::uint32_t c0, std::uint32_t c1, std::uint32_t c2,
                       std::uint32_t c3, std::uint32_t k0, std::uint32_t k1) {
  std::uint32_t c[4] = {c0, c1, c2, c3};
  for (int r = 0; r < 10; ++r) {
    philox_round(c, k0, k1);
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return PhiloxBlock{{c[0], c[1], c[2], c[3]}};
}

void CounterNoise::normal_pair(std::uint64_t stream, std::uint64_t block,
                               double* z0, double* z1) const {
  const PhiloxBlock b = philox4x32(
      static_cast<std::uint32_t>(block), static_cast<std::uint32_t>(block >> 32),
      static_cast<std::uint32_t>(stream),
      static_cast<std::uint32_t>(stream >> 32),
      static_cast<std::uint32_t>(key_), static_cast<std::uint32_t>(key_ >> 32));
  // Box-Muller, same transform (and glibc sincos shortcut) as
  // Rng::normal so the two generators share rounding behaviour.
  const double u1 = u53_open_closed(b.v[0], b.v[1]);
  const double u2 = u53_open_closed(b.v[2], b.v[3]);
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  double sin_theta, cos_theta;
#if defined(__GLIBC__)
  ::sincos(theta, &sin_theta, &cos_theta);
#else
  sin_theta = std::sin(theta);
  cos_theta = std::cos(theta);
#endif
  *z0 = r * cos_theta;
  *z1 = r * sin_theta;
}

double CounterNoise::normal(std::uint64_t stream, std::uint64_t i) const {
  double z0, z1;
  normal_pair(stream, i >> 1, &z0, &z1);
  return (i & 1) ? z1 : z0;
}

void CounterNoise::add_scaled(float* dst, std::int64_t n, std::uint64_t stream,
                              double stddev) const {
  double z0, z1;
  const std::int64_t even = n & ~static_cast<std::int64_t>(1);
  for (std::int64_t i = 0; i < even; i += 2) {
    normal_pair(stream, static_cast<std::uint64_t>(i) >> 1, &z0, &z1);
    dst[i] += static_cast<float>(stddev * z0);
    dst[i + 1] += static_cast<float>(stddev * z1);
  }
  if (n & 1) {
    normal_pair(stream, static_cast<std::uint64_t>(even) >> 1, &z0, &z1);
    dst[even] += static_cast<float>(stddev * z0);
  }
}

}  // namespace fedcl
