#include "common/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/telemetry.h"

namespace fedcl::telemetry {

namespace {

// Reads until the end of the request headers ("\r\n\r\n"), a small cap,
// or a short timeout. Returns the raw request text (possibly partial).
std::string read_request(int fd) {
  std::string request;
  char buf[1024];
  while (request.size() < 8192) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;
    }
  }
  return request;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Registry& registry)
    : registry_(registry) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(int port, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, /*backlog=*/8) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::handle_connection(int fd) {
  const std::string request = read_request(fd);
  const std::size_t line_end = request.find('\r');
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  // Request line: METHOD SP path SP version.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? "" : line.substr(0, sp1);
  std::string path = sp1 == std::string::npos || sp2 == std::string::npos
                         ? ""
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    send_all(fd, http_response("405 Method Not Allowed", "text/plain",
                               "method not allowed\n"));
    return;
  }
  if (path == "/metrics") {
    send_all(fd, http_response("200 OK",
                               "text/plain; version=0.0.4; charset=utf-8",
                               registry_.prometheus_text()));
  } else if (path == "/healthz") {
    send_all(fd, http_response("200 OK", "text/plain", "ok\n"));
  } else {
    send_all(fd, http_response("404 Not Found", "text/plain",
                               "not found (try /metrics)\n"));
  }
}

}  // namespace fedcl::telemetry
