// Minimal JSON document model: build, serialize, and parse.
//
// One shared implementation backs every machine-readable artifact the
// repo emits — the telemetry JSONL sink, the Prometheus-adjacent
// snapshot dump, and the per-bench bench_json documents — so escaping
// and number formatting are correct in one place instead of being
// re-implemented per bench with snprintf. The parser exists for the
// JSONL round-trip tests and the few places that read artifacts back;
// it is strict enough for documents this library itself produces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace fedcl::json {

// Escapes a string for inclusion inside JSON quotes (adds no quotes).
std::string escape(const std::string& s);

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}
  Value(std::int64_t i)
      : kind_(Kind::kNumber), number_(static_cast<double>(i)), int_(i),
        is_int_(true) {}
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  std::int64_t as_int() const {
    return is_int_ ? int_ : static_cast<std::int64_t>(number_);
  }
  const std::string& as_string() const { return string_; }

  // Object access. operator[] inserts a null member when missing (build
  // mode); find returns nullptr when missing (read mode). Member order
  // is insertion order, so emitted documents are stable.
  Value& operator[](const std::string& key);
  const Value* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  // Array access.
  void push_back(Value v) { elements_.push_back(std::move(v)); }
  std::size_t size() const {
    return kind_ == Kind::kObject ? members_.size() : elements_.size();
  }
  const Value& at(std::size_t i) const { return elements_[i]; }
  const std::vector<Value>& elements() const { return elements_; }

  // indent < 0: compact single line. indent >= 0: pretty-printed with
  // that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string string_;
  std::vector<std::pair<std::string, Value>> members_;
  std::vector<Value> elements_;
};

// Parses `text` into `out`. Returns false (and fills *error when given)
// on malformed input. Trailing whitespace is allowed, trailing garbage
// is not.
bool parse(const std::string& text, Value& out, std::string* error = nullptr);

}  // namespace fedcl::json
