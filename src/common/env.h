// Experiment scaling knobs read from the environment.
//
// Benches default to laptop-scale parameters so the whole suite runs in
// minutes on one CPU core. Setting FEDCL_SCALE=paper selects the
// paper-sized configuration. FEDCL_SEED overrides the experiment seed.
#pragma once

#include <cstdint>
#include <string>

namespace fedcl {

enum class BenchScale {
  kSmoke,  // FEDCL_SCALE=smoke : seconds, CI-sized
  kSmall,  // default           : minutes, shape-preserving
  kPaper,  // FEDCL_SCALE=paper : paper-sized parameters
};

BenchScale bench_scale();
const char* bench_scale_name(BenchScale s);

// Experiment seed (FEDCL_SEED, default 42).
std::uint64_t experiment_seed();

// Reads an integer/double env override, returning fallback when unset.
std::int64_t env_int(const std::string& name, std::int64_t fallback);
double env_double(const std::string& name, double fallback);

}  // namespace fedcl
