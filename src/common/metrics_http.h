// Minimal live /metrics exporter: a poll-based HTTP server on the
// loopback interface that renders telemetry::Registry::prometheus_text()
// on demand, so long runs can be scraped mid-flight instead of only
// post-mortem via --telemetry-prom. The body served for GET /metrics
// is byte-identical to the --telemetry-prom dump for the same registry
// state (both call prometheus_text()).
//
// Scope is deliberately tiny: one background thread, one connection at
// a time, GET only, Connection: close. That is exactly what a
// Prometheus scrape (or curl) needs and nothing a training loop has to
// pay for — the hot path never touches the server; rendering happens
// on the scraper's thread.
//
// Endpoints:
//   GET /metrics  -> 200, text/plain; version=0.0.4 exposition
//   GET /healthz  -> 200, "ok\n"
//   anything else -> 404 (non-GET: 405)
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace fedcl::telemetry {

class Registry;

class MetricsHttpServer {
 public:
  explicit MetricsHttpServer(Registry& registry);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds 127.0.0.1:port (port 0 picks an ephemeral port) and starts
  // the serving thread. Returns false and fills *error (when given) if
  // the socket cannot be set up; the server is then not running.
  bool start(int port, std::string* error = nullptr);

  // Stops the serving thread and closes the socket. Idempotent; the
  // destructor calls it.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolved after start when 0 was requested).
  int port() const { return port_; }

 private:
  void serve_loop();
  void handle_connection(int fd);

  Registry& registry_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace fedcl::telemetry
