// Fixed-size thread pool shared by the compute hot paths: the blocked
// matmul kernel parallelizes row blocks across it and the federated
// trainer runs per-client local training on it. Clients and row blocks
// are independent, so the pool needs no work stealing — a single
// shared queue suffices.
//
// Nesting contract: parallel_for called from a worker thread of the
// same pool runs its iterations inline on that thread instead of
// enqueuing. This makes nested parallelism (a parallel client whose
// matmuls would also parallelize) deadlock-free, and it keeps results
// independent of nesting depth because every iteration still executes
// exactly once in index order within its executor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedcl {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency() (>= 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  // Enqueues a task and returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [0, n) across the pool and waits for all of
  // them to finish — including when some throw. If one or more tasks
  // throw, the first exception (in task-completion order) is rethrown
  // after every task has completed, so captured references stay valid
  // for the full run and no exception is silently dropped. Called from
  // a worker thread of this pool, the loop runs inline (see header
  // comment).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Splits [0, n) into contiguous chunks of at least `grain` indices
  // and runs fn(begin, end) per chunk via parallel_for. Chunking is a
  // pure function of (n, grain, size()), never of scheduling, so any
  // work partitioned this way is reproducible across runs.
  void parallel_for_chunks(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Process-wide pool for compute parallelism (matmul tiles, parallel
// clients). Sized by FEDCL_THREADS (0 or unset: hardware concurrency).
// Created on first use; safe to call from any thread.
ThreadPool& compute_pool();

}  // namespace fedcl
