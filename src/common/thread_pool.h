// Fixed-size thread pool used to run per-client local training in
// parallel within a federated round. Clients are independent, so the
// pool needs no work stealing — a single shared queue suffices.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedcl {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency() (>= 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueues a task and returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [0, n) across the pool and waits for all.
  // Exceptions from tasks propagate out of parallel_for (first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fedcl
