// Non-IID shard partitioning of a dataset across federated clients.
//
// Mirrors the paper's setup (Section VII): examples are grouped by
// class into shards and each client receives shards from a small
// number of classes (2 for MNIST/CIFAR, ~15 for LFW), holding
// `data_per_client` examples total.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace fedcl::data {

struct PartitionSpec {
  std::int64_t num_clients = 0;
  std::int64_t data_per_client = 0;
  // Number of distinct classes per client; 0 means every client holds a
  // full copy of the dataset (the paper's breast-cancer setting).
  std::int64_t classes_per_client = 2;
};

// Lazily synthesizable shard plan. A client's shard is a pure
// function of (partition stream, client index): `Rng::fork` never
// advances the parent stream, so `indices_for(k)` can materialize any
// client's indices on demand, in any order and from any thread, and
// the bytes are identical to what the eager `partition()` below
// produced for that client. Construction cost is O(dataset), never
// O(num_clients) — this is what lets a million-client federation keep
// no per-client storage (fl/virtual_client.h).
class ShardPlan {
 public:
  ShardPlan(std::shared_ptr<const Dataset> base, const PartitionSpec& spec,
            const Rng& rng);

  std::int64_t num_clients() const { return spec_.num_clients; }
  // Every shard has the same size by construction.
  std::int64_t shard_size() const;
  const std::shared_ptr<const Dataset>& base() const { return base_; }

  // Thread-safe: each call forks a private stream from the stored
  // partition stream.
  std::vector<std::int64_t> indices_for(std::int64_t k) const;
  ClientData shard(std::int64_t k) const;

 private:
  std::shared_ptr<const Dataset> base_;
  PartitionSpec spec_;
  Rng rng_;  // the partition stream; only const-forked, never advanced
  // classes_per_client > 0: per-class index pools; else the shared
  // full-copy index list every client receives.
  std::vector<std::vector<std::int64_t>> by_class_;
  std::vector<std::int64_t> full_copy_;
};

// Deterministic for a given rng. Clients draw from class pools with
// replacement when a pool is smaller than the demand, so any
// num_clients is serviceable (matching the random shard assignment in
// the paper's simulator). Implemented as an eager walk over a
// ShardPlan, so the two paths cannot drift.
std::vector<ClientData> partition(std::shared_ptr<const Dataset> base,
                                  const PartitionSpec& spec, Rng& rng);

}  // namespace fedcl::data
