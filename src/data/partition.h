// Non-IID shard partitioning of a dataset across federated clients.
//
// Mirrors the paper's setup (Section VII): examples are grouped by
// class into shards and each client receives shards from a small
// number of classes (2 for MNIST/CIFAR, ~15 for LFW), holding
// `data_per_client` examples total.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"

namespace fedcl::data {

struct PartitionSpec {
  std::int64_t num_clients = 0;
  std::int64_t data_per_client = 0;
  // Number of distinct classes per client; 0 means every client holds a
  // full copy of the dataset (the paper's breast-cancer setting).
  std::int64_t classes_per_client = 2;
};

// Deterministic for a given rng. Clients draw from class pools with
// replacement when a pool is smaller than the demand, so any
// num_clients is serviceable (matching the random shard assignment in
// the paper's simulator).
std::vector<ClientData> partition(std::shared_ptr<const Dataset> base,
                                  const PartitionSpec& spec, Rng& rng);

}  // namespace fedcl::data
