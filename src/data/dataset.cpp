#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::data {

Dataset::Dataset(Tensor features, std::vector<std::int64_t> labels,
                 std::int64_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  FEDCL_CHECK(features_.defined());
  FEDCL_CHECK_GE(features_.ndim(), 2u) << "features need a batch dim";
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(labels_.size()), features_.dim(0));
  FEDCL_CHECK_GT(num_classes_, 1);
  for (std::int64_t label : labels_) {
    FEDCL_CHECK(label >= 0 && label < num_classes_)
        << "label " << label << " outside [0," << num_classes_ << ")";
  }
}

void copy_example(const Batch& batch, std::int64_t j, Batch& out) {
  FEDCL_CHECK(j >= 0 && j < batch.size());
  Shape shape = batch.x.shape();
  shape[0] = 1;
  if (!out.x.defined() || !(out.x.shape() == shape)) {
    out.x = Tensor(shape);
  }
  const std::int64_t row = batch.x.numel() / batch.size();
  std::memcpy(out.x.data(), batch.x.data() + j * row,
              sizeof(float) * static_cast<std::size_t>(row));
  out.labels.assign(1, batch.labels[static_cast<std::size_t>(j)]);
}

Shape Dataset::example_shape() const {
  Shape s = features_.shape();
  s.erase(s.begin());
  return s;
}

std::int64_t Dataset::example_numel() const {
  return features_.numel() / std::max<std::int64_t>(1, size());
}

Batch Dataset::gather(const std::vector<std::int64_t>& indices) const {
  FEDCL_CHECK(!indices.empty());
  Shape bshape = features_.shape();
  bshape[0] = static_cast<std::int64_t>(indices.size());
  Batch batch;
  batch.x = Tensor(bshape);
  batch.labels.reserve(indices.size());
  const std::int64_t row = example_numel();
  const float* src = features_.data();
  float* dst = batch.x.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t idx = indices[i];
    FEDCL_CHECK(idx >= 0 && idx < size()) << "index " << idx;
    std::memcpy(dst + static_cast<std::int64_t>(i) * row, src + idx * row,
                sizeof(float) * static_cast<std::size_t>(row));
    batch.labels.push_back(labels_[static_cast<std::size_t>(idx)]);
  }
  return batch;
}

Batch Dataset::example(std::int64_t i) const { return gather({i}); }

std::vector<std::int64_t> Dataset::indices_of_class(std::int64_t label) const {
  std::vector<std::int64_t> out;
  for (std::int64_t i = 0; i < size(); ++i) {
    if (labels_[static_cast<std::size_t>(i)] == label) out.push_back(i);
  }
  return out;
}

ClientData::ClientData(std::shared_ptr<const Dataset> base,
                       std::vector<std::int64_t> indices)
    : base_(std::move(base)), indices_(std::move(indices)) {
  FEDCL_CHECK(base_ != nullptr);
  FEDCL_CHECK(!indices_.empty()) << "client with no data";
  for (std::int64_t i : indices_) {
    FEDCL_CHECK(i >= 0 && i < base_->size());
  }
}

Batch ClientData::sample_batch(Rng& rng, std::int64_t batch_size) const {
  FEDCL_CHECK_GT(batch_size, 0);
  std::vector<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(batch_size));
  for (std::int64_t i = 0; i < batch_size; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(indices_.size())));
    chosen.push_back(indices_[j]);
  }
  return base_->gather(chosen);
}

Batch ClientData::all() const { return base_->gather(indices_); }

std::vector<std::int64_t> ClientData::classes_present() const {
  std::set<std::int64_t> seen;
  for (std::int64_t i : indices_) {
    seen.insert(base_->labels()[static_cast<std::size_t>(i)]);
  }
  return std::vector<std::int64_t>(seen.begin(), seen.end());
}

}  // namespace fedcl::data
