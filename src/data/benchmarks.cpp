#include "data/benchmarks.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fedcl::data {

const char* benchmark_name(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kMnist:
      return "MNIST";
    case BenchmarkId::kCifar10:
      return "CIFAR-10";
    case BenchmarkId::kLfw:
      return "LFW";
    case BenchmarkId::kAdult:
      return "adult";
    case BenchmarkId::kCancer:
      return "cancer";
  }
  return "?";
}

std::vector<BenchmarkId> all_benchmarks() {
  return {BenchmarkId::kMnist, BenchmarkId::kCifar10, BenchmarkId::kLfw,
          BenchmarkId::kAdult, BenchmarkId::kCancer};
}

namespace {

// Dimensions per scale: {image side, train count divisor}.
struct ScaleParams {
  std::int64_t image_side;
  std::int64_t local_iterations;
  double round_fraction;   // T scaled relative to the paper's T
  double count_fraction;   // dataset size relative to the paper's
};

ScaleParams scale_params(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return {8, 2, 0.02, 0.01};
    case BenchScale::kSmall:
      return {12, 10, 0.3, 0.03};
    case BenchScale::kPaper:
      return {0, 100, 1.0, 1.0};  // image_side 0 => paper dims
  }
  return {12, 10, 0.3, 0.03};
}

// Scales a paper parameter down by `fraction` (clamped to 1 so the
// paper scale reproduces the paper value exactly), with a floor.
std::int64_t scaled(std::int64_t paper_value, double fraction,
                    std::int64_t minimum) {
  const double f = std::min(1.0, fraction);
  const auto v = static_cast<std::int64_t>(paper_value * f);
  return std::min(paper_value, std::max(minimum, v));
}

}  // namespace

BenchmarkConfig benchmark_config(BenchmarkId id, BenchScale scale) {
  const ScaleParams sp = scale_params(scale);
  BenchmarkConfig cfg;
  cfg.id = id;
  cfg.name = benchmark_name(id);
  cfg.local_iterations = sp.local_iterations;

  auto image_side = [&](std::int64_t paper_side) {
    return sp.image_side == 0 ? paper_side : sp.image_side;
  };

  switch (id) {
    case BenchmarkId::kMnist: {
      const std::int64_t side = image_side(28);
      cfg.train_spec = {.example_shape = {side, side, 1},
                        .classes = 10,
                        .count = scaled(50000, sp.count_fraction, 400)};
      cfg.val_spec = cfg.train_spec;
      cfg.val_spec.count = scaled(10000, sp.count_fraction, 100);
      cfg.model = {.kind = nn::ModelSpec::Kind::kImageCnn,
                   .height = side,
                   .width = side,
                   .channels = 1,
                   .classes = 10};
      cfg.partition = {.num_clients = 0,
                       .data_per_client = scaled(500, sp.count_fraction * 3, 40),
                       .classes_per_client = 2};
      cfg.batch_size = 5;
      cfg.rounds = scaled(100, sp.round_fraction, 2);
      cfg.learning_rate = 0.2;
      cfg.paper_nonprivate_accuracy = 0.9798;
      cfg.paper_cost_ms = 6.8;
      break;
    }
    case BenchmarkId::kCifar10: {
      const std::int64_t side = image_side(32);
      cfg.train_spec = {.example_shape = {side, side, 3},
                        .classes = 10,
                        .count = scaled(40000, sp.count_fraction, 400),
                        .noise = 0.22f};
      cfg.val_spec = cfg.train_spec;
      cfg.val_spec.count = scaled(10000, sp.count_fraction, 100);
      cfg.model = {.kind = nn::ModelSpec::Kind::kImageCnn,
                   .height = side,
                   .width = side,
                   .channels = 3,
                   .classes = 10};
      cfg.partition = {.num_clients = 0,
                       .data_per_client = scaled(400, sp.count_fraction * 3, 40),
                       .classes_per_client = 2};
      cfg.batch_size = 4;
      cfg.rounds = scaled(100, sp.round_fraction, 2);
      cfg.learning_rate = 0.2;
      cfg.paper_nonprivate_accuracy = 0.674;
      cfg.paper_cost_ms = 32.5;
      break;
    }
    case BenchmarkId::kLfw: {
      const std::int64_t side = image_side(32);
      cfg.train_spec = {.example_shape = {side, side, 3},
                        .classes = 62,
                        .count = scaled(2267, sp.count_fraction * 30, 620),
                        .noise = 0.09f};
      cfg.val_spec = cfg.train_spec;
      cfg.val_spec.count = scaled(756, sp.count_fraction * 30, 124);
      cfg.model = {.kind = nn::ModelSpec::Kind::kImageCnn,
                   .height = side,
                   .width = side,
                   .channels = 3,
                   .classes = 62};
      cfg.partition = {.num_clients = 0,
                       .data_per_client = scaled(300, sp.count_fraction * 3, 30),
                       .classes_per_client = 15};
      cfg.batch_size = 3;
      cfg.rounds = scaled(60, sp.round_fraction, 2);
      cfg.learning_rate = 0.2;
      cfg.paper_nonprivate_accuracy = 0.695;
      cfg.paper_cost_ms = 30.9;
      break;
    }
    case BenchmarkId::kAdult: {
      cfg.train_spec = {.example_shape = {105},
                        .classes = 2,
                        .count = scaled(36631, sp.count_fraction, 400),
                        .noise = 6.0f,
                        .clamp01 = false};
      cfg.val_spec = cfg.train_spec;
      cfg.val_spec.count = scaled(12211, sp.count_fraction, 100);
      cfg.model = {.kind = nn::ModelSpec::Kind::kMlp,
                   .in_features = 105,
                   .classes = 2};
      cfg.partition = {.num_clients = 0,
                       .data_per_client = scaled(300, sp.count_fraction * 3, 30),
                       .classes_per_client = 2};
      cfg.batch_size = 3;
      cfg.rounds = scaled(10, sp.round_fraction * 5, 2);
      cfg.learning_rate = 0.2;
      cfg.paper_nonprivate_accuracy = 0.8424;
      cfg.paper_cost_ms = 5.1;
      break;
    }
    case BenchmarkId::kCancer: {
      cfg.train_spec = {.example_shape = {30},
                        .classes = 2,
                        .count = scale == BenchScale::kSmoke ? 64 : 426,
                        .noise = 1.6f,
                        .clamp01 = false};
      cfg.val_spec = cfg.train_spec;
      cfg.val_spec.count = scale == BenchScale::kSmoke ? 32 : 143;
      cfg.model = {.kind = nn::ModelSpec::Kind::kMlp,
                   .in_features = 30,
                   .classes = 2};
      // Paper: every client holds a full copy of the dataset.
      cfg.partition = {.num_clients = 0,
                       .data_per_client = cfg.train_spec.count,
                       .classes_per_client = 0};
      cfg.batch_size = 4;
      cfg.rounds = 3;
      cfg.learning_rate = 0.2;
      cfg.paper_nonprivate_accuracy = 0.993;
      cfg.paper_cost_ms = 4.9;
      break;
    }
  }
  // Train and validation describe the same task: shared prototypes,
  // distinct per-benchmark so e.g. MNIST and CIFAR stay different.
  const std::uint64_t domain =
      0xFEDC1000ull + static_cast<std::uint64_t>(id) * 0x9E37ull;
  cfg.train_spec.domain_seed = domain;
  cfg.val_spec.domain_seed = domain;
  FEDCL_CHECK_GT(cfg.rounds, 0);
  return cfg;
}

BenchmarkConfig benchmark_config(BenchmarkId id) {
  return benchmark_config(id, bench_scale());
}

double default_noise_scale(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return 0.25;
    case BenchScale::kSmall:
      return 0.25;
    case BenchScale::kPaper:
      return 6.0;
  }
  return 0.25;
}

double default_noise_scale() { return default_noise_scale(bench_scale()); }

}  // namespace fedcl::data
