#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::data {

namespace {

bool is_image_shape(const Shape& s) { return s.size() == 3; }

// Smooth structured image prototype: a base level plus a few random
// 2-D sinusoids per channel, mapped into [0.1, 0.9].
Tensor image_prototype(const Shape& shape, Rng& rng) {
  const std::int64_t h = shape[0], w = shape[1], c = shape[2];
  Tensor proto(shape);
  float* p = proto.data();
  for (std::int64_t ch = 0; ch < c; ++ch) {
    // A class-specific base intensity gives strong (linearly
    // separable) class evidence so small models converge quickly; the
    // sinusoids add the spatial structure reconstructions are scored
    // against.
    const double base = rng.uniform(0.2, 0.8);
    struct Wave {
      double fy, fx, phase, amp;
    };
    Wave waves[3];
    for (Wave& wv : waves) {
      wv.fy = rng.uniform(0.5, 3.0);
      wv.fx = rng.uniform(0.5, 3.0);
      wv.phase = rng.uniform(0.0, 2.0 * M_PI);
      wv.amp = rng.uniform(0.3, 1.0);
    }
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        double v = 0.0;
        for (const Wave& wv : waves) {
          v += wv.amp * std::sin(2.0 * M_PI *
                                     (wv.fy * y / static_cast<double>(h) +
                                      wv.fx * x / static_cast<double>(w)) +
                                 wv.phase);
        }
        // v in roughly [-3, 3] around the class base level.
        double scaled = base + v / 12.0;
        p[(y * w + x) * c + ch] =
            static_cast<float>(std::clamp(scaled, 0.05, 0.95));
      }
    }
  }
  return proto;
}

Tensor attribute_prototype(const Shape& shape, Rng& rng) {
  Tensor proto(shape);
  float* p = proto.data();
  for (std::int64_t i = 0; i < proto.numel(); ++i) {
    p[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return proto;
}

}  // namespace

Tensor class_prototype(const SyntheticSpec& spec, std::int64_t label) {
  FEDCL_CHECK(label >= 0 && label < spec.classes);
  Rng rng = Rng(spec.domain_seed).fork("proto",
                                       static_cast<std::uint64_t>(label));
  if (is_image_shape(spec.example_shape)) {
    return image_prototype(spec.example_shape, rng);
  }
  return attribute_prototype(spec.example_shape, rng);
}

Dataset generate_synthetic(const SyntheticSpec& spec, Rng& rng) {
  FEDCL_CHECK_GT(spec.count, 0);
  FEDCL_CHECK_GT(spec.classes, 1);
  FEDCL_CHECK(!spec.example_shape.empty());
  FEDCL_CHECK_GE(spec.noise, 0.0f);

  std::vector<Tensor> protos;
  protos.reserve(static_cast<std::size_t>(spec.classes));
  for (std::int64_t c = 0; c < spec.classes; ++c) {
    protos.push_back(class_prototype(spec, c));
  }

  Shape full = spec.example_shape;
  full.insert(full.begin(), spec.count);
  Tensor features(full);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(spec.count));
  const std::int64_t row = protos[0].numel();
  Rng noise_rng = rng.fork("noise");

  // Unclamped (attribute) features are standardized by their expected
  // std sqrt(1 + noise^2) so the class-separation/noise ratio — the
  // task difficulty — is independent of the raw feature scale, and
  // optimization stays well-conditioned at any noise level.
  const float attr_scale =
      1.0f / std::sqrt(1.0f + spec.noise * spec.noise);

  float* dst = features.data();
  for (std::int64_t i = 0; i < spec.count; ++i) {
    const std::int64_t label = i % spec.classes;  // balanced classes
    labels[static_cast<std::size_t>(i)] = label;
    const float* proto = protos[static_cast<std::size_t>(label)].data();
    float* out = dst + i * row;
    for (std::int64_t j = 0; j < row; ++j) {
      float v = proto[j] +
                static_cast<float>(noise_rng.normal(0.0, spec.noise));
      v = spec.clamp01 ? std::clamp(v, 0.0f, 1.0f) : v * attr_scale;
      out[j] = v;
    }
  }
  return Dataset(std::move(features), std::move(labels), spec.classes);
}

}  // namespace fedcl::data
