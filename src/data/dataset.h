// In-memory labeled dataset and batch gathering.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace fedcl {
class Rng;
}

namespace fedcl::data {

using tensor::Shape;
using tensor::Tensor;

// A minibatch: features stacked along dim 0 plus labels.
struct Batch {
  Tensor x;
  std::vector<std::int64_t> labels;
  std::int64_t size() const { return x.defined() ? x.dim(0) : 0; }
};

// Copies example j of `batch` into `out` as a batch of size 1, reusing
// out's storage when the shape already matches. Callers that extract
// examples repeatedly keep one scratch Batch instead of allocating per
// example.
void copy_example(const Batch& batch, std::int64_t j, Batch& out);

// Immutable dataset: features [N, ...example dims], integer labels.
class Dataset {
 public:
  Dataset(Tensor features, std::vector<std::int64_t> labels,
          std::int64_t num_classes);

  std::int64_t size() const { return features_.dim(0); }
  std::int64_t num_classes() const { return num_classes_; }
  const Tensor& features() const { return features_; }
  const std::vector<std::int64_t>& labels() const { return labels_; }
  // Shape of one example (without the leading N).
  Shape example_shape() const;
  std::int64_t example_numel() const;

  // Gathers the given rows into a batch.
  Batch gather(const std::vector<std::int64_t>& indices) const;
  Batch example(std::int64_t i) const;
  // Indices of all examples with the given label.
  std::vector<std::int64_t> indices_of_class(std::int64_t label) const;

 private:
  Tensor features_;
  std::vector<std::int64_t> labels_;
  std::int64_t num_classes_;
};

// A client's local view: indices into a shared base dataset (no data
// copies — mirrors data staying on-device in FL).
class ClientData {
 public:
  ClientData(std::shared_ptr<const Dataset> base,
             std::vector<std::int64_t> indices);

  std::int64_t size() const { return static_cast<std::int64_t>(indices_.size()); }
  const Dataset& base() const { return *base_; }
  const std::vector<std::int64_t>& indices() const { return indices_; }

  // Random batch of `batch_size` examples sampled with replacement —
  // the subsampling the moments accountant assumes (Definition 5).
  Batch sample_batch(Rng& rng, std::int64_t batch_size) const;
  // All local data as one batch.
  Batch all() const;
  // Distinct labels present locally.
  std::vector<std::int64_t> classes_present() const;

 private:
  std::shared_ptr<const Dataset> base_;
  std::vector<std::int64_t> indices_;
};

}  // namespace fedcl::data
