// The paper's five benchmark configurations (Table I), with scaled
// variants so experiments run on one CPU core.
//
// FEDCL_SCALE=paper reproduces Table I's parameters exactly (feature
// dims, #data/client, L=100 local iterations, paper round counts).
// The default "small" scale shrinks images, dataset sizes, L and T
// while preserving every structural property the results depend on
// (class counts, non-IID shards, batch sizes, relative round budgets).
#pragma once

#include <string>
#include <vector>

#include "common/env.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"

namespace fedcl::data {

enum class BenchmarkId { kMnist, kCifar10, kLfw, kAdult, kCancer };

const char* benchmark_name(BenchmarkId id);
std::vector<BenchmarkId> all_benchmarks();

struct BenchmarkConfig {
  BenchmarkId id;
  std::string name;
  SyntheticSpec train_spec;
  SyntheticSpec val_spec;
  nn::ModelSpec model;
  // data_per_client / classes_per_client defaults (num_clients filled
  // in by each experiment).
  PartitionSpec partition;
  std::int64_t local_iterations = 1;  // L
  std::int64_t batch_size = 1;        // B
  std::int64_t rounds = 1;            // T
  double learning_rate = 0.05;
  // Per-round multiplicative learning-rate decay (1 = constant); set
  // so the rate halves over the configured round budget.
  double lr_decay_per_round = 1.0;

  // Paper-reported reference values (Table I) for EXPERIMENTS.md.
  double paper_nonprivate_accuracy = 0.0;
  double paper_cost_ms = 0.0;
};

BenchmarkConfig benchmark_config(BenchmarkId id, BenchScale scale);

// Convenience: config at the scale selected via FEDCL_SCALE.
BenchmarkConfig benchmark_config(BenchmarkId id);

// Default DP noise scale (the paper's sigma) for *training*
// experiments at the given scale. The paper's sigma = 6 is calibrated
// to its testbed's averaging budget (L*T = 10^4 DP-SGD steps and up to
// Kt = 5000 clients averaged per round); the scaled-down runs keep the
// same signal-to-noise ratio by shrinking sigma with the averaging
// factor (see EXPERIMENTS.md, "noise-scale calibration"). Privacy
// *accounting* benches (Table VI) always use the paper's sigma = 6 —
// they are pure computation and need no scaling.
double default_noise_scale(BenchScale scale);
double default_noise_scale();

// Default clipping bound (the paper's C = 4) — scale independent.
inline constexpr double kDefaultClippingBound = 4.0;
// Fed-CDP(decay) schedule endpoints (paper: C decays 6 -> 2).
inline constexpr double kDecayClipStart = 6.0;
inline constexpr double kDecayClipEnd = 2.0;

}  // namespace fedcl::data
