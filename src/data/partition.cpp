#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::data {

std::vector<ClientData> partition(std::shared_ptr<const Dataset> base,
                                  const PartitionSpec& spec, Rng& rng) {
  FEDCL_CHECK(base != nullptr);
  FEDCL_CHECK_GT(spec.num_clients, 0);
  FEDCL_CHECK_GT(spec.data_per_client, 0);

  std::vector<ClientData> clients;
  clients.reserve(static_cast<std::size_t>(spec.num_clients));

  if (spec.classes_per_client <= 0) {
    // Full-copy mode: every client sees the entire dataset.
    std::vector<std::int64_t> all(static_cast<std::size_t>(base->size()));
    std::iota(all.begin(), all.end(), 0);
    for (std::int64_t c = 0; c < spec.num_clients; ++c) {
      clients.emplace_back(base, all);
    }
    return clients;
  }

  const std::int64_t z = base->num_classes();
  FEDCL_CHECK_LE(spec.classes_per_client, z);
  std::vector<std::vector<std::int64_t>> by_class(
      static_cast<std::size_t>(z));
  for (std::int64_t c = 0; c < z; ++c) {
    by_class[static_cast<std::size_t>(c)] = base->indices_of_class(c);
    FEDCL_CHECK(!by_class[static_cast<std::size_t>(c)].empty())
        << "class " << c << " has no examples";
  }

  for (std::int64_t k = 0; k < spec.num_clients; ++k) {
    Rng crng = rng.fork("partition", static_cast<std::uint64_t>(k));
    // Pick the client's classes without replacement.
    std::vector<std::size_t> class_pick = crng.sample_without_replacement(
        static_cast<std::size_t>(z),
        static_cast<std::size_t>(spec.classes_per_client));
    std::vector<std::int64_t> indices;
    indices.reserve(static_cast<std::size_t>(spec.data_per_client));
    const std::int64_t per_class =
        spec.data_per_client / spec.classes_per_client;
    std::int64_t remaining = spec.data_per_client;
    for (std::size_t ci = 0; ci < class_pick.size(); ++ci) {
      const auto& pool = by_class[class_pick[ci]];
      const std::int64_t want =
          (ci + 1 == class_pick.size()) ? remaining : per_class;
      for (std::int64_t j = 0; j < want; ++j) {
        const std::size_t pick = static_cast<std::size_t>(
            crng.uniform_int(static_cast<std::uint64_t>(pool.size())));
        indices.push_back(pool[pick]);
      }
      remaining -= want;
    }
    clients.emplace_back(base, std::move(indices));
  }
  return clients;
}

}  // namespace fedcl::data
