#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::data {

ShardPlan::ShardPlan(std::shared_ptr<const Dataset> base,
                     const PartitionSpec& spec, const Rng& rng)
    : base_(std::move(base)), spec_(spec), rng_(rng) {
  FEDCL_CHECK(base_ != nullptr);
  FEDCL_CHECK_GT(spec_.num_clients, 0);
  FEDCL_CHECK_GT(spec_.data_per_client, 0);

  if (spec_.classes_per_client <= 0) {
    // Full-copy mode: every client sees the entire dataset.
    full_copy_.resize(static_cast<std::size_t>(base_->size()));
    std::iota(full_copy_.begin(), full_copy_.end(), 0);
    return;
  }

  const std::int64_t z = base_->num_classes();
  FEDCL_CHECK_LE(spec_.classes_per_client, z);
  by_class_.resize(static_cast<std::size_t>(z));
  for (std::int64_t c = 0; c < z; ++c) {
    by_class_[static_cast<std::size_t>(c)] = base_->indices_of_class(c);
    FEDCL_CHECK(!by_class_[static_cast<std::size_t>(c)].empty())
        << "class " << c << " has no examples";
  }
}

std::int64_t ShardPlan::shard_size() const {
  return spec_.classes_per_client <= 0 ? base_->size()
                                       : spec_.data_per_client;
}

std::vector<std::int64_t> ShardPlan::indices_for(std::int64_t k) const {
  FEDCL_CHECK_GE(k, 0);
  FEDCL_CHECK_LT(k, spec_.num_clients);
  if (spec_.classes_per_client <= 0) return full_copy_;

  Rng crng = rng_.fork("partition", static_cast<std::uint64_t>(k));
  // Pick the client's classes without replacement.
  std::vector<std::size_t> class_pick = crng.sample_without_replacement(
      static_cast<std::size_t>(base_->num_classes()),
      static_cast<std::size_t>(spec_.classes_per_client));
  std::vector<std::int64_t> indices;
  indices.reserve(static_cast<std::size_t>(spec_.data_per_client));
  const std::int64_t per_class =
      spec_.data_per_client / spec_.classes_per_client;
  std::int64_t remaining = spec_.data_per_client;
  for (std::size_t ci = 0; ci < class_pick.size(); ++ci) {
    const auto& pool = by_class_[class_pick[ci]];
    const std::int64_t want =
        (ci + 1 == class_pick.size()) ? remaining : per_class;
    for (std::int64_t j = 0; j < want; ++j) {
      const std::size_t pick = static_cast<std::size_t>(
          crng.uniform_int(static_cast<std::uint64_t>(pool.size())));
      indices.push_back(pool[pick]);
    }
    remaining -= want;
  }
  return indices;
}

ClientData ShardPlan::shard(std::int64_t k) const {
  return ClientData(base_, indices_for(k));
}

std::vector<ClientData> partition(std::shared_ptr<const Dataset> base,
                                  const PartitionSpec& spec, Rng& rng) {
  const ShardPlan plan(std::move(base), spec, rng);
  std::vector<ClientData> clients;
  clients.reserve(static_cast<std::size_t>(spec.num_clients));
  for (std::int64_t k = 0; k < spec.num_clients; ++k) {
    clients.push_back(plan.shard(k));
  }
  return clients;
}

}  // namespace fedcl::data