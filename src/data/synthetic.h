// Synthetic stand-ins for the paper's five benchmark datasets.
//
// Real MNIST/CIFAR-10/LFW/Adult/Cancer files are not available in this
// offline environment, so we generate class-conditional data with the
// same feature dimensions and class counts (see DESIGN.md,
// "Substitutions"). Each class has a smooth structured prototype
// (mixture of 2-D sinusoids for images, a dense random vector for
// attribute data); examples are the prototype plus i.i.d. Gaussian
// noise, clamped to [0,1] for images. This keeps three properties the
// experiments rely on:
//  1. learnable: the paper's small CNN/MLP reach high accuracy,
//  2. decaying gradient norms during training (Fig. 3 shape),
//  3. inputs with visible spatial structure that the gradient-leakage
//     attack can meaningfully reconstruct and that RMSE can score.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace fedcl::data {

struct SyntheticSpec {
  Shape example_shape;  // e.g. {28,28,1} or {105}
  std::int64_t classes = 2;
  std::int64_t count = 0;
  // Noise std around the class prototype; smaller => easier task.
  float noise = 0.15f;
  // Whether to clamp features to [0,1] (images).
  bool clamp01 = true;
  // Defines the class prototypes (the "task"). Train and validation
  // splits of the same benchmark must share this so they describe the
  // same distribution; the rng passed to generate_synthetic only
  // drives the per-example noise.
  std::uint64_t domain_seed = 0x5EEDu;
};

// Examples are deterministic given (spec, rng state): spec.domain_seed
// fixes the prototypes, rng draws the noise.
Dataset generate_synthetic(const SyntheticSpec& spec, Rng& rng);

// The class prototype image/vector itself (useful in tests and for
// attack visualization baselines).
Tensor class_prototype(const SyntheticSpec& spec, std::int64_t label);

}  // namespace fedcl::data
