// Message payloads of the serving protocol (docs/PROTOCOL.md §3) and
// their bounds-checked codecs.
//
// The Welcome descriptor is the protocol's "one source of truth": the
// server resolves the full experiment configuration (benchmark, scale,
// policy, seed, round budget) once and ships it to every worker, so a
// worker reconstructs bit-identical datasets, models, and RNG streams
// from the descriptor alone — no local flags or environment consulted.
// Decoders return Result<T> and never trust a length or count field.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/policy.h"
#include "data/benchmarks.h"

namespace fedcl::net {

// Policy identifiers on the wire. Only order-independent policies are
// servable: a policy whose per-client state depends on visitation
// order (the median-norm estimator) cannot be replicated across worker
// processes, so the server refuses it up front (docs/PROTOCOL.md §5).
enum class PolicyId : std::uint8_t {
  kNonPrivate = 0,
  kFedSdp = 1,
  kFedCdp = 2,
  kFedCdpDecay = 3,
};

const char* policy_id_name(PolicyId id);
// Parses the fl_simulator policy-name vocabulary; fails on unknown or
// order-dependent names.
Result<PolicyId> parse_policy_id(const std::string& name);

// client -> server, first frame on every connection.
struct HelloMsg {
  std::uint32_t worker_index = 0;
  std::uint32_t num_workers = 0;
};

// server -> client: the resolved experiment. Everything a worker needs
// to rebuild its shards, model, policy, and RNG streams.
struct ExperimentDescriptor {
  std::uint8_t bench_id = 0;   // data::BenchmarkId
  std::uint8_t scale = 0;      // BenchScale
  PolicyId policy = PolicyId::kFedCdp;
  std::int64_t total_clients = 0;
  std::int64_t clients_per_round = 0;
  std::int64_t rounds = 0;            // effective (already resolved)
  std::int64_t local_iterations = 0;  // effective (already resolved)
  double prune_ratio = 0.0;
  double clip = 4.0;
  double sigma = 6.0;
  std::uint64_t seed = 42;
};

// server -> client: train these clients at this round, starting from
// these global weights (the tensor-list blob of fl/protocol.h).
//
// The trace context is an *optional trailing field* (PROTOCOL.md
// §3.4): 24 bytes appended only when `has_trace` — which the server
// sets only for workers that advertised kFrameFlagTraceContext in
// their Hello, because a pre-tracing decoder rejects any trailing
// bytes. The decoder accepts both lengths, so a new worker
// interoperates with an old server (absent field) and an old worker
// with a new server (field withheld).
struct TrainRequestMsg {
  std::int64_t round = 0;
  std::vector<std::int64_t> client_ids;
  std::vector<std::uint8_t> weights_blob;
  bool has_trace = false;
  std::uint64_t trace_hi = 0;     // 128-bit trace id of the round
  std::uint64_t trace_lo = 0;
  std::uint64_t parent_span = 0;  // the server's round span id
};

// client -> server: one client's sealed update. client_id travels in
// the clear so the server can pick the per-client channel key; the
// sealed bytes carry the authoritative (id, round, delta) inside.
struct UpdateMsg {
  std::int64_t client_id = -1;
  std::int64_t data_size = 0;  // local shard size, for weight-by-size
  std::vector<std::uint8_t> sealed;
};

// client -> server: the worker could not produce this client's update.
struct TrainErrorMsg {
  std::int64_t client_id = -1;
  std::string message;
};

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg);
Result<HelloMsg> decode_hello(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_descriptor(const ExperimentDescriptor& d);
Result<ExperimentDescriptor> decode_descriptor(
    const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_train_request(const TrainRequestMsg& msg);
Result<TrainRequestMsg> decode_train_request(
    const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_update(const UpdateMsg& msg);
Result<UpdateMsg> decode_update(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_train_error(const TrainErrorMsg& msg);
Result<TrainErrorMsg> decode_train_error(
    const std::vector<std::uint8_t>& payload);

// Builds the policy a descriptor names, identically on both ends.
std::unique_ptr<core::PrivacyPolicy> make_policy(
    const ExperimentDescriptor& d);

// Validates the descriptor's enum fields (bench id, scale, policy) and
// basic invariants; the decoder calls this, and servers call it on the
// config they are about to announce.
Result<ExperimentDescriptor> validate_descriptor(ExperimentDescriptor d);

}  // namespace fedcl::net
