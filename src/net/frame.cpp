#include "net/frame.h"

#include <cstring>

namespace fedcl::net {

namespace {

void put_u32(std::uint8_t* dst, std::uint32_t v) {
  dst[0] = static_cast<std::uint8_t>(v);
  dst[1] = static_cast<std::uint8_t>(v >> 8);
  dst[2] = static_cast<std::uint8_t>(v >> 16);
  dst[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* src) {
  return static_cast<std::uint32_t>(src[0]) |
         (static_cast<std::uint32_t>(src[1]) << 8) |
         (static_cast<std::uint32_t>(src[2]) << 16) |
         (static_cast<std::uint32_t>(src[3]) << 24);
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kWelcome:
      return "welcome";
    case MsgType::kTrainRequest:
      return "train-request";
    case MsgType::kUpdate:
      return "update";
    case MsgType::kTrainError:
      return "train-error";
    case MsgType::kBusy:
      return "busy";
    case MsgType::kBye:
      return "bye";
  }
  return "unknown";
}

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk:
      return "ok";
    case FrameStatus::kClosed:
      return "closed";
    case FrameStatus::kTimeout:
      return "timeout";
    case FrameStatus::kIo:
      return "io-error";
    case FrameStatus::kBadMagic:
      return "bad-magic";
    case FrameStatus::kBadVersion:
      return "bad-version";
    case FrameStatus::kBadType:
      return "bad-type";
    case FrameStatus::kOversized:
      return "oversized";
  }
  return "unknown";
}

bool write_frame(TcpConn& conn, MsgType type, const std::uint8_t* payload,
                 std::size_t payload_len, std::uint8_t flags) {
  std::uint8_t header[kFrameHeaderBytes];
  put_u32(header, kFrameMagic);
  header[4] = kProtocolVersion;
  header[5] = static_cast<std::uint8_t>(type);
  header[6] = flags;  // capability flags (0 = none, the v1 byte value)
  header[7] = 0;      // reserved
  put_u32(header + 8, static_cast<std::uint32_t>(payload_len));
  if (!conn.send_all(header, sizeof(header))) return false;
  if (payload_len == 0) return true;
  return conn.send_all(payload, payload_len);
}

bool write_frame(TcpConn& conn, MsgType type,
                 const std::vector<std::uint8_t>& payload,
                 std::uint8_t flags) {
  return write_frame(conn, type, payload.data(), payload.size(), flags);
}

FrameStatus read_frame(TcpConn& conn, Frame& out, std::size_t max_payload,
                       int timeout_ms) {
  std::uint8_t header[kFrameHeaderBytes];
  switch (conn.recv_exact(header, sizeof(header), timeout_ms)) {
    case IoStatus::kOk:
      break;
    case IoStatus::kClosed:
      return FrameStatus::kClosed;
    case IoStatus::kTimeout:
      return FrameStatus::kTimeout;
    case IoStatus::kError:
      return FrameStatus::kIo;
  }
  if (get_u32(header) != kFrameMagic) return FrameStatus::kBadMagic;
  if (header[4] != kProtocolVersion) return FrameStatus::kBadVersion;
  const std::uint8_t type = header[5];
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kBye)) {
    return FrameStatus::kBadType;
  }
  const std::uint32_t payload_len = get_u32(header + 8);
  // The cap gates the allocation: a flipped length bit fails here, not
  // in the allocator.
  if (payload_len > max_payload) return FrameStatus::kOversized;
  out.type = static_cast<MsgType>(type);
  // Capability flags: surfaced, never validated — unknown bits from a
  // newer peer are simply capabilities this build doesn't use.
  out.flags = header[6];
  out.payload.resize(payload_len);
  if (payload_len > 0) {
    switch (conn.recv_exact(out.payload.data(), payload_len, timeout_ms)) {
      case IoStatus::kOk:
        break;
      case IoStatus::kClosed:
        return FrameStatus::kClosed;  // truncated mid-payload
      case IoStatus::kTimeout:
        return FrameStatus::kTimeout;
      case IoStatus::kError:
        return FrameStatus::kIo;
    }
  }
  return FrameStatus::kOk;
}

}  // namespace fedcl::net
