#include "net/wire.h"

#include <cstring>

namespace fedcl::net {

namespace {

// Caps on untrusted count fields, far above any real workload.
constexpr std::uint32_t kMaxClientsPerRequest = 1u << 20;
constexpr std::uint32_t kMaxStringBytes = 4096;
constexpr std::uint32_t kMaxBlobBytes = 256u << 20;

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  template <typename T>
  bool read(T& out) {
    if (sizeof(T) > remaining()) return false;
    std::memcpy(&out, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return true;
  }

  bool read_bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (n > remaining()) return false;
    out.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(offset_),
               bytes_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
    offset_ += n;
    return true;
  }

  bool read_string(std::string& out, std::size_t n) {
    if (n > remaining()) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + offset_), n);
    offset_ += n;
    return true;
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

const char* policy_id_name(PolicyId id) {
  switch (id) {
    case PolicyId::kNonPrivate:
      return "non-private";
    case PolicyId::kFedSdp:
      return "fed-sdp";
    case PolicyId::kFedCdp:
      return "fed-cdp";
    case PolicyId::kFedCdpDecay:
      return "fed-cdp-decay";
  }
  return "unknown";
}

Result<PolicyId> parse_policy_id(const std::string& name) {
  using R = Result<PolicyId>;
  if (name == "non-private") return PolicyId::kNonPrivate;
  if (name == "fed-sdp") return PolicyId::kFedSdp;
  if (name == "fed-cdp") return PolicyId::kFedCdp;
  if (name == "fed-cdp-decay") return PolicyId::kFedCdpDecay;
  if (name == "fed-cdp-median" || name == "dssgd") {
    return R::failure("policy '" + name +
                      "' has order-dependent state and cannot be served "
                      "across worker processes");
  }
  return R::failure("unknown policy '" + name +
                    "' (non-private|fed-sdp|fed-cdp|fed-cdp-decay)");
}

std::vector<std::uint8_t> encode_hello(const HelloMsg& msg) {
  std::vector<std::uint8_t> out;
  append_pod(out, msg.worker_index);
  append_pod(out, msg.num_workers);
  return out;
}

Result<HelloMsg> decode_hello(const std::vector<std::uint8_t>& payload) {
  using R = Result<HelloMsg>;
  Reader r(payload);
  HelloMsg msg;
  if (!r.read(msg.worker_index) || !r.read(msg.num_workers)) {
    return R::failure("truncated hello");
  }
  if (r.remaining() != 0) return R::failure("trailing bytes in hello");
  if (msg.num_workers == 0 || msg.worker_index >= msg.num_workers) {
    return R::failure("hello worker_index out of range");
  }
  return msg;
}

std::vector<std::uint8_t> encode_descriptor(const ExperimentDescriptor& d) {
  std::vector<std::uint8_t> out;
  append_pod(out, d.bench_id);
  append_pod(out, d.scale);
  append_pod(out, static_cast<std::uint8_t>(d.policy));
  append_pod(out, d.total_clients);
  append_pod(out, d.clients_per_round);
  append_pod(out, d.rounds);
  append_pod(out, d.local_iterations);
  append_pod(out, d.prune_ratio);
  append_pod(out, d.clip);
  append_pod(out, d.sigma);
  append_pod(out, d.seed);
  return out;
}

Result<ExperimentDescriptor> validate_descriptor(ExperimentDescriptor d) {
  using R = Result<ExperimentDescriptor>;
  if (d.bench_id > static_cast<std::uint8_t>(data::BenchmarkId::kCancer)) {
    return R::failure("descriptor: unknown benchmark id");
  }
  if (d.scale > static_cast<std::uint8_t>(BenchScale::kPaper)) {
    return R::failure("descriptor: unknown scale");
  }
  if (static_cast<std::uint8_t>(d.policy) >
      static_cast<std::uint8_t>(PolicyId::kFedCdpDecay)) {
    return R::failure("descriptor: unknown policy id");
  }
  if (d.total_clients <= 0 || d.clients_per_round <= 0 ||
      d.clients_per_round > d.total_clients) {
    return R::failure("descriptor: implausible client counts");
  }
  if (d.rounds <= 0 || d.local_iterations <= 0) {
    return R::failure("descriptor: implausible round budget");
  }
  if (!(d.prune_ratio >= 0.0 && d.prune_ratio < 1.0)) {
    return R::failure("descriptor: implausible prune ratio");
  }
  return d;
}

Result<ExperimentDescriptor> decode_descriptor(
    const std::vector<std::uint8_t>& payload) {
  using R = Result<ExperimentDescriptor>;
  Reader r(payload);
  ExperimentDescriptor d;
  std::uint8_t policy = 0;
  if (!r.read(d.bench_id) || !r.read(d.scale) || !r.read(policy) ||
      !r.read(d.total_clients) || !r.read(d.clients_per_round) ||
      !r.read(d.rounds) || !r.read(d.local_iterations) ||
      !r.read(d.prune_ratio) || !r.read(d.clip) || !r.read(d.sigma) ||
      !r.read(d.seed)) {
    return R::failure("truncated descriptor");
  }
  if (r.remaining() != 0) return R::failure("trailing bytes in descriptor");
  d.policy = static_cast<PolicyId>(policy);
  return validate_descriptor(d);
}

std::vector<std::uint8_t> encode_train_request(const TrainRequestMsg& msg) {
  std::vector<std::uint8_t> out;
  append_pod(out, msg.round);
  append_pod(out, static_cast<std::uint32_t>(msg.client_ids.size()));
  for (std::int64_t id : msg.client_ids) append_pod(out, id);
  append_pod(out, static_cast<std::uint32_t>(msg.weights_blob.size()));
  out.insert(out.end(), msg.weights_blob.begin(), msg.weights_blob.end());
  // Optional trailing trace context. Without it the encoding is
  // byte-identical to the pre-tracing format — the compatibility
  // contract NetWire.TrainRequestEncodingWithoutTraceIsPrePr9 pins.
  if (msg.has_trace) {
    append_pod(out, msg.trace_hi);
    append_pod(out, msg.trace_lo);
    append_pod(out, msg.parent_span);
  }
  return out;
}

Result<TrainRequestMsg> decode_train_request(
    const std::vector<std::uint8_t>& payload) {
  using R = Result<TrainRequestMsg>;
  Reader r(payload);
  TrainRequestMsg msg;
  std::uint32_t count = 0;
  if (!r.read(msg.round) || !r.read(count)) {
    return R::failure("truncated train request");
  }
  if (count > kMaxClientsPerRequest) {
    return R::failure("implausible client count in train request");
  }
  msg.client_ids.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::int64_t id = 0;
    if (!r.read(id)) return R::failure("truncated train request");
    if (id < 0) return R::failure("negative client id in train request");
    msg.client_ids.push_back(id);
  }
  std::uint32_t blob_len = 0;
  if (!r.read(blob_len)) return R::failure("truncated train request");
  if (blob_len > kMaxBlobBytes) {
    return R::failure("implausible weights blob in train request");
  }
  if (!r.read_bytes(msg.weights_blob, blob_len)) {
    return R::failure("truncated train request");
  }
  // Optional trailing trace context: absent (old sender) or exactly
  // 24 bytes. Anything else is still a framing violation.
  if (r.remaining() != 0) {
    if (r.remaining() != 24 || !r.read(msg.trace_hi) ||
        !r.read(msg.trace_lo) || !r.read(msg.parent_span)) {
      return R::failure("trailing bytes in train request");
    }
    msg.has_trace = true;
  }
  if (r.remaining() != 0) {
    return R::failure("trailing bytes in train request");
  }
  return msg;
}

std::vector<std::uint8_t> encode_update(const UpdateMsg& msg) {
  std::vector<std::uint8_t> out;
  append_pod(out, msg.client_id);
  append_pod(out, msg.data_size);
  append_pod(out, static_cast<std::uint32_t>(msg.sealed.size()));
  out.insert(out.end(), msg.sealed.begin(), msg.sealed.end());
  return out;
}

Result<UpdateMsg> decode_update(const std::vector<std::uint8_t>& payload) {
  using R = Result<UpdateMsg>;
  Reader r(payload);
  UpdateMsg msg;
  std::uint32_t sealed_len = 0;
  if (!r.read(msg.client_id) || !r.read(msg.data_size) ||
      !r.read(sealed_len)) {
    return R::failure("truncated update message");
  }
  if (msg.client_id < 0) return R::failure("negative client id in update");
  if (msg.data_size < 0) return R::failure("negative data size in update");
  if (sealed_len > kMaxBlobBytes) {
    return R::failure("implausible sealed length in update");
  }
  if (!r.read_bytes(msg.sealed, sealed_len)) {
    return R::failure("truncated update message");
  }
  if (r.remaining() != 0) {
    return R::failure("trailing bytes in update message");
  }
  return msg;
}

std::vector<std::uint8_t> encode_train_error(const TrainErrorMsg& msg) {
  std::vector<std::uint8_t> out;
  append_pod(out, msg.client_id);
  append_pod(out, static_cast<std::uint32_t>(msg.message.size()));
  out.insert(out.end(), msg.message.begin(), msg.message.end());
  return out;
}

Result<TrainErrorMsg> decode_train_error(
    const std::vector<std::uint8_t>& payload) {
  using R = Result<TrainErrorMsg>;
  Reader r(payload);
  TrainErrorMsg msg;
  std::uint32_t len = 0;
  if (!r.read(msg.client_id) || !r.read(len)) {
    return R::failure("truncated train error");
  }
  if (len > kMaxStringBytes) {
    return R::failure("implausible message length in train error");
  }
  if (!r.read_string(msg.message, len)) {
    return R::failure("truncated train error");
  }
  if (r.remaining() != 0) return R::failure("trailing bytes in train error");
  return msg;
}

std::unique_ptr<core::PrivacyPolicy> make_policy(
    const ExperimentDescriptor& d) {
  switch (d.policy) {
    case PolicyId::kNonPrivate:
      return core::make_non_private();
    case PolicyId::kFedSdp:
      return core::make_fed_sdp(d.clip, d.sigma);
    case PolicyId::kFedCdp:
      return core::make_fed_cdp(d.clip, d.sigma);
    case PolicyId::kFedCdpDecay:
      return core::make_fed_cdp_decay(d.rounds, data::kDecayClipStart,
                                      data::kDecayClipEnd, d.sigma);
  }
  return core::make_non_private();
}

}  // namespace fedcl::net
