#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fedcl::net {

namespace {

// Disables Nagle: round messages are latency-sensitive request/reply
// pairs, and the big weight frames fill segments on their own.
void tune_socket(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kClosed:
      return "closed";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kError:
      return "error";
  }
  return "unknown";
}

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConn> TcpConn::connect(const std::string& host, int port,
                                 int timeout_ms) {
  using R = Result<TcpConn>;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return R::failure("invalid address '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return R::failure(std::string("socket: ") + std::strerror(errno));
  // Non-blocking connect so the timeout is ours, not the kernel's.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return R::failure("connect " + host + ":" + std::to_string(port) + ": " +
                      why);
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return R::failure("connect " + host + ":" + std::to_string(port) +
                        ": timeout");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return R::failure("connect " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; every read polls first
  tune_socket(fd);
  return TcpConn(fd);
}

bool TcpConn::send_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (k < 0 && errno == EINTR) continue;
    if (k <= 0) return false;
    sent += static_cast<std::size_t>(k);
  }
  return true;
}

IoStatus TcpConn::recv_exact(void* dst, std::size_t n, int timeout_ms) {
  auto* p = static_cast<std::uint8_t*>(dst);
  std::size_t got = 0;
  while (got < n) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    const ssize_t k = ::recv(fd_, p + got, n - got, 0);
    if (k < 0 && errno == EINTR) continue;
    if (k < 0) return IoStatus::kError;
    if (k == 0) return IoStatus::kClosed;
    got += static_cast<std::size_t>(k);
  }
  return IoStatus::kOk;
}

IoStatus TcpConn::recv_some(void* dst, std::size_t cap, std::size_t* got,
                            int timeout_ms) {
  *got = 0;
  for (;;) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    const ssize_t k = ::recv(fd_, dst, cap, 0);
    if (k < 0 && errno == EINTR) continue;
    if (k < 0) return IoStatus::kError;
    if (k == 0) return IoStatus::kClosed;
    *got = static_cast<std::size_t>(k);
    return IoStatus::kOk;
  }
}

bool TcpConn::readable(int timeout_ms) const {
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::bind(int port, int backlog) {
  using R = Result<TcpListener>;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return R::failure(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return R::failure("bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return R::failure("listen: " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return R::failure("getsockname: " + why);
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

TcpConn TcpListener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) return TcpConn();
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return TcpConn();
  tune_socket(fd);
  return TcpConn(fd);
}

}  // namespace fedcl::net
