// Dependency-free TCP primitives for the multi-process serving path.
//
// Thin RAII wrappers over POSIX sockets, grown out of the
// `common/metrics_http` I/O plumbing: poll-based timeouts everywhere
// (no blocking call without a deadline), MSG_NOSIGNAL sends, and
// explicit status codes instead of errno spelunking at the call sites.
// All listeners bind the loopback interface by default — the serving
// path is a local multi-process deployment, not an internet service;
// transport *security* is SecureChannel's job one layer up (see
// docs/PROTOCOL.md §1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace fedcl::net {

// Outcome of a timed I/O step.
enum class IoStatus {
  kOk,       // the requested bytes moved
  kClosed,   // orderly shutdown by the peer
  kTimeout,  // deadline expired first
  kError,    // socket error (errno-level)
};

const char* io_status_name(IoStatus status);

// One connected TCP stream. Move-only; the destructor closes the fd.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  // Connects to host:port within timeout_ms (non-blocking connect +
  // poll). Fails with a reason, never throws.
  static Result<TcpConn> connect(const std::string& host, int port,
                                 int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  // Writes all n bytes (looping over partial sends). False on any
  // error; EPIPE is an error, not a signal (MSG_NOSIGNAL).
  bool send_all(const void* data, std::size_t n);

  // Reads exactly n bytes within timeout_ms, polling between chunks.
  // kTimeout leaves previously read bytes in dst (the caller treats a
  // partial message as a protocol error and closes).
  IoStatus recv_exact(void* dst, std::size_t n, int timeout_ms);

  // Reads up to cap bytes once data is available; *got = 0 with kOk
  // never happens (0 bytes means kClosed).
  IoStatus recv_some(void* dst, std::size_t cap, std::size_t* got,
                     int timeout_ms);

  // True when at least one byte is readable within timeout_ms.
  bool readable(int timeout_ms) const;

 private:
  int fd_ = -1;
};

// A listening socket on 127.0.0.1. Move-only.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:port (0 picks an ephemeral port, resolved in
  // port()) and listens.
  static Result<TcpListener> bind(int port, int backlog = 16);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int port() const { return port_; }
  void close();

  // Accepts one pending connection, waiting at most timeout_ms.
  // Returns an invalid conn when nothing arrived in time.
  TcpConn accept(int timeout_ms);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace fedcl::net
