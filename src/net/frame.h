// Wire framing for the serving path — the normative spec lives in
// docs/PROTOCOL.md §2; this header is its implementation.
//
// Every message is one frame: a fixed 12-byte little-endian header
// (magic "FCL1", version, message type, reserved, payload length)
// followed by `payload_len` payload bytes. Framing errors are typed so
// the server can ledger them per reason (bad magic vs. oversized vs.
// truncated) instead of collapsing everything into "I/O failed".
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.h"

namespace fedcl::net {

// "FCL1" read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x314C4346;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
// Default admission cap on one frame's payload. A model broadcast for
// the paper-scale benchmarks stays well under this; anything larger is
// a protocol violation, not a workload.
inline constexpr std::size_t kDefaultMaxPayload = 64u << 20;  // 64 MiB

// Message types (docs/PROTOCOL.md §3). The numeric values are wire
// format — never renumber.
enum class MsgType : std::uint8_t {
  kHello = 1,         // client -> server: worker_index, num_workers
  kWelcome = 2,       // server -> client: resolved experiment descriptor
  kTrainRequest = 3,  // server -> client: round, client ids, global weights
  kUpdate = 4,        // client -> server: one sealed client update
  kTrainError = 5,    // client -> server: per-client failure report
  kBusy = 6,          // server -> client: admission refused; close follows
  kBye = 7,           // either direction: orderly end of session
};

const char* msg_type_name(MsgType type);

// Outcome of reading one frame. The first four mirror IoStatus; the
// rest are protocol violations detected in the header.
enum class FrameStatus {
  kOk,
  kClosed,      // peer closed between frames (orderly when idle)
  kTimeout,     // header or payload did not arrive in time
  kIo,          // socket error
  kBadMagic,    // first four bytes are not "FCL1"
  kBadVersion,  // unsupported protocol version
  kBadType,     // message type outside the known range
  kOversized,   // payload_len above the admission cap
};

const char* frame_status_name(FrameStatus status);

// Header byte 6 is a capability-flags byte (byte 7 stays reserved
// zero). Flags ride on Hello (client advertises) and Welcome (server
// echoes what it will use); receivers MUST ignore unknown bits, which
// is what makes the tracing extension version-compatible — a pre-flags
// peer wrote 0 here and ignored whatever it read (PROTOCOL.md §2).
inline constexpr std::uint8_t kFrameFlagTraceContext = 0x01;

struct Frame {
  MsgType type = MsgType::kBye;
  std::uint8_t flags = 0;  // header byte 6; 0 from pre-flags peers
  std::vector<std::uint8_t> payload;
};

// Sends one frame (header + payload). False on any socket error.
bool write_frame(TcpConn& conn, MsgType type,
                 const std::uint8_t* payload, std::size_t payload_len,
                 std::uint8_t flags = 0);
bool write_frame(TcpConn& conn, MsgType type,
                 const std::vector<std::uint8_t>& payload,
                 std::uint8_t flags = 0);

// Reads one frame within timeout_ms, enforcing `max_payload` before
// allocating anything. On kOk, `out` holds the message; on any other
// status `out` is unspecified and the connection should be closed (the
// stream is no longer framed).
FrameStatus read_frame(TcpConn& conn, Frame& out,
                       std::size_t max_payload = kDefaultMaxPayload,
                       int timeout_ms = 30000);

}  // namespace fedcl::net
