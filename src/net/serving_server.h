// Multi-process federated serving: the server half.
//
// ServingServer is the socket-facing sibling of fl::run_experiment. It
// binds a loopback TCP port, admits exactly `num_workers` fedcl_client
// processes (everyone else gets Busy — that refusal is the admission
// control the load-gen bench hammers), ships each the resolved
// ExperimentDescriptor, and then drives the same round engine the
// in-process trainer runs — with the train phase replaced by
// TrainRequest/Update frames over real connections.
//
// Determinism contract (docs/PROTOCOL.md §5): in the synchronous
// engine, with no faults, every RNG stream the round consumes
// (sampling, client training, aggregation noise) is forked by label
// from the shared seed, updates are re-assembled in cohort order
// before aggregation, and weights travel as exact f32 bytes — so the
// final model state is BITWISE identical to fl::run_experiment at the
// same seed and configuration. The asynchronous engine instead offers
// arriving updates straight into the streaming AsyncAggregator,
// tolerates workers running rounds behind (staleness decay), and
// withholds dispatches from workers more than `max_inflight_rounds`
// behind — backpressure for overlapping rounds; its fold order follows
// real arrival order, so it trades the bitwise guarantee for overlap,
// exactly the determinism boundary DESIGN.md §5 states for the
// in-process async engine across thread counts.
//
// Real network events reuse the fault-disposition ledger: a recv
// deadline miss is an injected straggler that expired, a disconnect an
// injected crash that expired, a malformed frame or unopenable payload
// a decode rejection — so chaos-soak invariants and telemetry carry
// over unchanged (docs/PROTOCOL.md §6).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "fl/async_aggregator.h"
#include "fl/fault_injection.h"
#include "fl/update_screening.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"

namespace fedcl::net {

struct ServingOptions {
  int port = 0;         // 0 = ephemeral (resolved via port())
  int num_workers = 2;  // admitted connections; the rest get Busy
  // Deadline for the full worker roster to connect and handshake.
  int accept_timeout_ms = 30000;
  // Per-frame receive deadline within a round; a worker that misses it
  // is a straggler (sync: fail-stop; async: staleness budget applies).
  int io_timeout_ms = 20000;
  std::size_t max_frame_bytes = kDefaultMaxPayload;

  // Server-side experiment knobs not part of the wire descriptor
  // (they do not affect what workers compute).
  std::int64_t eval_every = 0;  // <= 0: final round only
  std::int64_t min_reporting = 1;
  std::int64_t reduced_min_reporting = 0;
  double server_momentum = 0.0;
  bool weight_by_data_size = false;
  fl::ScreeningConfig screening;

  // Asynchronous engine (overlapping rounds).
  bool async_mode = false;
  fl::AsyncAggregatorConfig async;
  // Backpressure window: a worker with this many rounds outstanding is
  // not dispatched to; its cohort slots expire as stragglers.
  int max_inflight_rounds = 2;
  // How long one async round waits for its own updates before moving
  // on and letting them arrive stale.
  int async_round_wait_ms = 5000;
};

struct ServingReport {
  bool ok = false;
  std::string error;  // set when !ok

  double final_accuracy = 0.0;
  tensor::list::TensorList final_weights;
  std::int64_t rounds = 0;
  std::int64_t completed_rounds = 0;
  std::int64_t dropped_rounds = 0;
  std::int64_t reduced_quorum_rounds = 0;
  std::int64_t async_applies = 0;
  std::int64_t updates_accepted = 0;
  std::int64_t updates_rejected = 0;
  // Aggregated fault-disposition ledger (network events mapped onto
  // the same taxonomy the in-process engines use).
  fl::RoundFailureStats failures;
  // Admission control: connections refused with Busy (roster full,
  // bad handshake) and frames dropped for framing violations.
  std::int64_t busy_rejected = 0;
  std::int64_t frames_rejected = 0;
  // Per-round wall-clock, for the bench's p99.
  std::vector<double> round_ms;
};

class ServingServer {
 public:
  // Validates the descriptor and binds the listener. Fails (never
  // throws) on an invalid descriptor or an unbindable port.
  static Result<std::unique_ptr<ServingServer>> create(
      ExperimentDescriptor descriptor, ServingOptions options);

  ~ServingServer();
  ServingServer(const ServingServer&) = delete;
  ServingServer& operator=(const ServingServer&) = delete;

  int port() const { return listener_.port(); }
  const ExperimentDescriptor& descriptor() const { return descriptor_; }

  // Blocks until the run completes (or fails to start). Admission of
  // surplus connections keeps running for the whole call.
  ServingReport run();

 private:
  ServingServer(ExperimentDescriptor descriptor, ServingOptions options,
                TcpListener listener);

  ExperimentDescriptor descriptor_;
  ServingOptions options_;
  TcpListener listener_;
};

}  // namespace fedcl::net
