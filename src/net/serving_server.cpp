#include "net/serving_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/protocol.h"
#include "fl/server.h"
#include "fl/virtual_client.h"
#include "nn/grad_utils.h"
#include "nn/model_zoo.h"

namespace fedcl::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// One admitted worker connection plus (async engine) its outstanding
// dispatches: the backpressure window is the deque length.
struct WorkerSlot {
  TcpConn conn;
  bool alive = false;
  // Capability flags the worker advertised on its Hello frame. The
  // trace-context field is appended to TrainRequests only when
  // kFrameFlagTraceContext is set here — an old worker's decoder
  // rejects trailing bytes, so the server must not volunteer them.
  std::uint8_t flags = 0;
  struct Outstanding {
    std::int64_t round = 0;
    std::unordered_set<std::int64_t> remaining;
  };
  std::deque<Outstanding> outstanding;

  std::size_t outstanding_clients() const {
    std::size_t n = 0;
    for (const auto& o : outstanding) n += o.remaining.size();
    return n;
  }
};

}  // namespace

ServingServer::ServingServer(ExperimentDescriptor descriptor,
                             ServingOptions options, TcpListener listener)
    : descriptor_(descriptor),
      options_(options),
      listener_(std::move(listener)) {}

ServingServer::~ServingServer() = default;

Result<std::unique_ptr<ServingServer>> ServingServer::create(
    ExperimentDescriptor descriptor, ServingOptions options) {
  using R = Result<std::unique_ptr<ServingServer>>;
  Result<ExperimentDescriptor> valid = validate_descriptor(descriptor);
  if (!valid.ok()) return R::failure(valid.error());
  if (options.num_workers <= 0) {
    return R::failure("num_workers must be positive");
  }
  Result<TcpListener> listener = TcpListener::bind(options.port);
  if (!listener.ok()) return R::failure(listener.error());
  return std::unique_ptr<ServingServer>(new ServingServer(
      valid.take(), options, listener.take()));
}

ServingReport ServingServer::run() {
  const ExperimentDescriptor& d = descriptor_;
  telemetry::Registry& reg = telemetry::global_registry();
  reg.reset();

  ServingReport report;
  report.rounds = d.rounds;

  // -------- experiment state, from the descriptor alone (the workers
  // reconstruct theirs from the identical Welcome bytes) --------
  const data::BenchmarkConfig bench = data::benchmark_config(
      static_cast<data::BenchmarkId>(d.bench_id),
      static_cast<BenchScale>(d.scale));
  Rng root(d.seed);
  Rng data_rng = root.fork("train-data");
  Rng val_rng = root.fork("val-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");
  Rng round_rng = root.fork("rounds");
  data::Dataset val = data::generate_synthetic(bench.val_spec, val_rng);
  // The server derives data-size aggregation weights from its own
  // virtualized provider — a pure function of (seed, client_id) over
  // the same descriptor the workers got — instead of trusting the
  // worker-reported data_size field, so a compromised worker cannot
  // inflate its own weight (PROTOCOL.md threat model). The wire field
  // stays for observability and pre-hardening compatibility.
  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(bench.train_spec, data_rng));
  data::PartitionSpec part = bench.partition;
  part.num_clients = d.total_clients;
  const fl::LocalTrainConfig local{
      .local_iterations = d.local_iterations,
      .batch_size = bench.batch_size,
      .learning_rate = bench.learning_rate,
      .lr_decay_per_round = bench.lr_decay_per_round};
  const fl::VirtualClientProvider provider(train, part, part_rng, local,
                                           /*faults=*/{}, d.seed);
  std::shared_ptr<nn::Sequential> model =
      nn::build_model(bench.model, model_rng);
  const dp::ParamGroups groups = fl::to_param_groups(model->layer_groups());
  std::unique_ptr<core::PrivacyPolicy> policy = make_policy(d);

  // -------- admission: roster handshake + standing Busy refusals ----
  const std::vector<std::uint8_t> welcome = encode_descriptor(d);
  std::mutex roster_mutex;
  std::condition_variable roster_cv;
  std::vector<WorkerSlot> workers(
      static_cast<std::size_t>(options_.num_workers));
  int registered = 0;
  bool roster_closed = false;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> busy_rejected{0};
  std::atomic<std::int64_t> frames_rejected{0};

  auto reject_frame = [&](const char* reason) {
    ++frames_rejected;
    reg.counter("fl.net.frames_rejected_total", {{"reason", reason}}).add(1);
  };

  std::thread accept_thread([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      TcpConn conn = listener_.accept(50);
      if (!conn.valid()) continue;
      Frame frame;
      // A connection that cannot produce a well-formed Hello promptly
      // is screened out here — this is the surface the malformed-frame
      // tests and the load-gen churn probes hit.
      const FrameStatus st =
          read_frame(conn, frame, options_.max_frame_bytes, 2000);
      if (st != FrameStatus::kOk) {
        reject_frame(frame_status_name(st));
        continue;
      }
      if (frame.type != MsgType::kHello) {
        reject_frame("unexpected-type");
        continue;
      }
      Result<HelloMsg> hello = decode_hello(frame.payload);
      bool admitted = false;
      if (hello.ok() &&
          hello.value().num_workers ==
              static_cast<std::uint32_t>(options_.num_workers)) {
        std::lock_guard<std::mutex> lock(roster_mutex);
        WorkerSlot& slot = workers[hello.value().worker_index];
        // Echo back the capability bits this server understands and
        // will use — currently just the trace-context flag.
        const std::uint8_t caps =
            frame.flags & kFrameFlagTraceContext;
        if (!roster_closed && !slot.alive &&
            write_frame(conn, MsgType::kWelcome, welcome, caps)) {
          slot.conn = std::move(conn);
          slot.alive = true;
          slot.flags = caps;
          ++registered;
          admitted = true;
          reg.counter("fl.net.connections_accepted_total").add(1);
          roster_cv.notify_all();
        }
      }
      if (!admitted) {
        ++busy_rejected;
        reg.counter("fl.net.connections_rejected_total").add(1);
        static const char kBusyReason[] = "server at capacity";
        write_frame(conn, MsgType::kBusy,
                    reinterpret_cast<const std::uint8_t*>(kBusyReason),
                    sizeof(kBusyReason) - 1);
      }
    }
  });

  auto finish = [&](ServingReport&& r) {
    stop.store(true, std::memory_order_relaxed);
    accept_thread.join();
    for (WorkerSlot& w : workers) {
      if (w.alive) write_frame(w.conn, MsgType::kBye, nullptr, 0);
    }
    r.busy_rejected = busy_rejected.load();
    r.frames_rejected = frames_rejected.load();
    reg.flush_sinks();
    return std::move(r);
  };

  {
    std::unique_lock<std::mutex> lock(roster_mutex);
    if (!roster_cv.wait_for(
            lock, std::chrono::milliseconds(options_.accept_timeout_ms),
            [&] { return registered == options_.num_workers; })) {
      report.error = "worker roster incomplete: " +
                     std::to_string(registered) + "/" +
                     std::to_string(options_.num_workers) +
                     " workers connected within " +
                     std::to_string(options_.accept_timeout_ms) + " ms";
      return finish(std::move(report));
    }
    roster_closed = true;
  }
  FEDCL_LOG(Info) << "fedcl_server: roster complete ("
                  << options_.num_workers << " workers), starting "
                  << d.rounds << " rounds";

  // -------- shared round-loop plumbing ------------------------------
  auto kill_worker = [&](WorkerSlot& w, const char* why) {
    if (!w.alive) return;
    w.alive = false;
    w.conn.close();
    if (std::strcmp(why, "timeout") == 0) {
      reg.counter("fl.net.timeouts_total").add(1);
    } else {
      reg.counter("fl.net.disconnects_total").add(1);
    }
    FEDCL_LOG(Warn) << "fedcl_server: worker lost (" << why << ")";
  };

  // A deadline miss is an injected straggler that expired; a lost
  // connection an injected crash that expired — the same disposition
  // ledger the in-process engines keep (see fault_injection.h).
  auto expire_straggler = [&](fl::RoundFailureStats& stats, std::size_t n) {
    stats.injected_straggler += static_cast<std::int64_t>(n);
    stats.fault_expired += static_cast<std::int64_t>(n);
  };
  auto expire_crash = [&](fl::RoundFailureStats& stats, std::size_t n) {
    stats.injected_crash += static_cast<std::int64_t>(n);
    stats.fault_expired += static_cast<std::int64_t>(n);
  };

  auto record_round_counters = [&](const fl::RoundFailureStats& stats) {
    auto count_fault = [&](const char* type, std::int64_t n) {
      if (n > 0) {
        reg.counter("fl.faults.injected_total", {{"type", type}}).add(n);
      }
    };
    count_fault("crash", stats.injected_crash);
    count_fault("straggler", stats.injected_straggler);
    if (stats.rejected_decode > 0) {
      reg.counter("fl.transport.rejected_decode_total")
          .add(stats.rejected_decode);
    }
    if (stats.fault_expired > 0) {
      reg.counter("fl.retry.expired_total").add(stats.fault_expired);
    }
  };

  // Opens and deserializes one UpdateMsg through the per-client channel
  // (docs/PROTOCOL.md §4). nullopt = decode rejection, already tallied.
  auto open_update = [&](UpdateMsg msg, std::size_t worker,
                         std::int64_t round, fl::RoundFailureStats& stats)
      -> std::optional<fl::ClientUpdate> {
    telemetry::SpanTimer screen_span(
        reg, "fl.net.screen", {{"worker", std::to_string(worker)}}, round);
    fl::SecureChannel channel(
        fl::client_channel_key(d.seed, msg.client_id));
    Result<std::vector<std::uint8_t>> opened =
        channel.open(std::move(msg.sealed));
    if (!opened.ok()) {
      ++stats.rejected_decode;
      return std::nullopt;
    }
    Result<fl::ClientUpdate> decoded =
        fl::deserialize_update(fl::ByteSpan(opened.value()));
    if (!decoded.ok()) {
      ++stats.rejected_decode;
      return std::nullopt;
    }
    return decoded.take();
  };

  const Clock::time_point run_start = Clock::now();

  if (!options_.async_mode) {
    // ================= synchronous (bitwise-parity) engine ==========
    fl::Server server(model->weights(),
                      {.server_momentum = options_.server_momentum,
                       .screening = options_.screening,
                       .min_reporting = options_.min_reporting,
                       .reduced_min_reporting =
                           options_.reduced_min_reporting});

    for (std::int64_t t = 0; t < d.rounds; ++t) {
      const Clock::time_point round_start = Clock::now();
      // Every process derives the same per-round trace id from (seed,
      // round), so worker-side spans land in the same trace without a
      // coordination round-trip; the server's round span is the root.
      telemetry::TraceScope trace(telemetry::round_trace_root(d.seed, t));
      telemetry::SpanTimer round_span(reg, "fl.round", {}, t);
      fl::RoundFailureStats stats;

      Rng sample_rng =
          round_rng.fork("sample", static_cast<std::uint64_t>(t));
      const std::vector<std::size_t> chosen = server.sample_clients(
          static_cast<std::size_t>(d.total_clients),
          static_cast<std::size_t>(d.clients_per_round), sample_rng);

      // Cohort slots, so updates re-assemble in sampling order no
      // matter which worker answers first — the order the in-process
      // deliver phase consumes them in.
      std::unordered_map<std::int64_t, std::size_t> slot_of;
      for (std::size_t i = 0; i < chosen.size(); ++i) {
        slot_of[static_cast<std::int64_t>(chosen[i])] = i;
      }
      std::vector<std::optional<std::pair<fl::ClientUpdate, double>>> got(
          chosen.size());

      std::vector<std::vector<std::int64_t>> ids_per_worker(workers.size());
      for (std::size_t ci : chosen) {
        ids_per_worker[ci % workers.size()].push_back(
            static_cast<std::int64_t>(ci));
      }
      const std::vector<std::uint8_t> weights_blob =
          fl::serialize_tensor_list(server.weights());

      {
        telemetry::SpanTimer dispatch_span(
            reg, "fl.phase", {{"phase", "dispatch"}}, t);
        const telemetry::TraceContext rctx = round_span.context();
        for (std::size_t w = 0; w < workers.size(); ++w) {
          if (ids_per_worker[w].empty()) continue;
          if (!workers[w].alive) {
            expire_crash(stats, ids_per_worker[w].size());
            continue;
          }
          TrainRequestMsg req;
          req.round = t;
          req.client_ids = ids_per_worker[w];
          req.weights_blob = weights_blob;
          if ((workers[w].flags & kFrameFlagTraceContext) && rctx.valid()) {
            req.has_trace = true;
            req.trace_hi = rctx.trace_hi;
            req.trace_lo = rctx.trace_lo;
            req.parent_span = rctx.span_id;
          }
          if (!write_frame(workers[w].conn, MsgType::kTrainRequest,
                           encode_train_request(req))) {
            kill_worker(workers[w], "send failed");
            expire_crash(stats, ids_per_worker[w].size());
            continue;
          }
          reg.counter("fl.net.frames_sent_total").add(1);
        }
      }

      // Collect worker by worker: replies queue in each socket while
      // the others compute, so serial reads lose no concurrency.
      for (std::size_t w = 0; w < workers.size(); ++w) {
        if (ids_per_worker[w].empty() || !workers[w].alive) continue;
        telemetry::SpanTimer recv_span(
            reg, "fl.net.recv", {{"worker", std::to_string(w)}}, t);
        std::unordered_set<std::int64_t> pending(
            ids_per_worker[w].begin(), ids_per_worker[w].end());
        while (!pending.empty()) {
          Frame frame;
          const FrameStatus st =
              read_frame(workers[w].conn, frame, options_.max_frame_bytes,
                         options_.io_timeout_ms);
          if (st == FrameStatus::kTimeout) {
            // Sync engine is fail-stop on the deadline: the round
            // cannot wait longer, and a desynchronized reply stream is
            // unusable afterwards.
            expire_straggler(stats, pending.size());
            kill_worker(workers[w], "timeout");
            break;
          }
          if (st != FrameStatus::kOk) {
            reject_frame(frame_status_name(st));
            expire_crash(stats, pending.size());
            kill_worker(workers[w], "disconnect");
            break;
          }
          reg.counter("fl.net.frames_received_total").add(1);
          if (frame.type == MsgType::kUpdate) {
            Result<UpdateMsg> decoded = decode_update(frame.payload);
            if (!decoded.ok() ||
                pending.count(decoded.value().client_id) == 0) {
              reject_frame("bad-payload");
              expire_crash(stats, pending.size());
              kill_worker(workers[w], "protocol violation");
              break;
            }
            UpdateMsg msg = decoded.take();
            pending.erase(msg.client_id);
            // Server-derived, never the wire-reported size.
            const double weight =
                static_cast<double>(provider.data_size(msg.client_id));
            const std::size_t slot = slot_of[msg.client_id];
            if (std::optional<fl::ClientUpdate> u =
                    open_update(std::move(msg), w, t, stats)) {
              got[slot] = std::make_pair(std::move(*u), weight);
            }
          } else if (frame.type == MsgType::kTrainError) {
            Result<TrainErrorMsg> err = decode_train_error(frame.payload);
            if (!err.ok() || pending.count(err.value().client_id) == 0) {
              reject_frame("bad-payload");
              expire_crash(stats, pending.size());
              kill_worker(workers[w], "protocol violation");
              break;
            }
            FEDCL_LOG(Warn) << "fedcl_server: client "
                            << err.value().client_id
                            << " failed: " << err.value().message;
            pending.erase(err.value().client_id);
            expire_crash(stats, 1);
          } else {
            reject_frame("unexpected-type");
            expire_crash(stats, pending.size());
            kill_worker(workers[w], "protocol violation");
            break;
          }
        }
      }

      std::vector<fl::ClientUpdate> updates;
      std::vector<double> update_weights;
      for (auto& g : got) {
        if (!g.has_value()) continue;
        updates.push_back(std::move(g->first));
        update_weights.push_back(g->second);
      }

      bool applied = false;
      std::int64_t round_accepted = 0;
      if (!updates.empty()) {
        telemetry::SpanTimer aggregate_span(
            reg, "fl.phase", {{"phase", "aggregate"}}, t);
        Rng agg_rng =
            round_rng.fork("aggregate", static_cast<std::uint64_t>(t));
        fl::AggregateOutcome outcome = server.aggregate(
            std::move(updates), *policy, groups, agg_rng,
            options_.weight_by_data_size ? &update_weights : nullptr);
        stats.rejected_shape += outcome.screening.rejected_shape;
        stats.rejected_non_finite += outcome.screening.rejected_non_finite;
        stats.rejected_norm_outlier +=
            outcome.screening.rejected_norm_outlier;
        stats.rejected_stale += outcome.screening.rejected_stale;
        round_accepted = outcome.screening.accepted;
        applied = outcome.applied;
        if (outcome.tier == fl::DegradationTier::kReducedQuorum) {
          ++stats.reduced_quorum_rounds;
          ++report.reduced_quorum_rounds;
          reg.counter("fl.round.degraded_total",
                      {{"tier", fl::degradation_tier_name(outcome.tier)}})
              .add(1);
          reg.record_point("fl.round.noise_widening", t,
                           outcome.noise_widening);
        }
      }

      reg.record_point("fl.round.accepted", t,
                       static_cast<double>(round_accepted));
      reg.record_point("fl.round.rejected", t,
                       static_cast<double>(stats.rejected_total()));
      record_round_counters(stats);

      if (!applied) {
        server.skip_round();
        ++report.dropped_rounds;
        ++stats.quorum_missed;
        reg.counter("fl.round.quorum_missed_total").add(1);
      } else {
        const bool eval_now = (options_.eval_every > 0 &&
                               (t + 1) % options_.eval_every == 0) ||
                              t + 1 == d.rounds;
        if (eval_now) {
          telemetry::SpanTimer eval_span(reg, "fl.phase",
                                         {{"phase", "eval"}}, t);
          model->set_weights(server.weights());
          const double acc =
              nn::evaluate_accuracy(*model, val.features(), val.labels());
          reg.record_point("fl.round.accuracy", t, acc);
          FEDCL_LOG(Info) << "fedcl_server: round " << (t + 1) << "/"
                          << d.rounds << " acc=" << acc;
        }
      }
      report.updates_accepted += round_accepted;
      report.updates_rejected += stats.rejected_total();
      report.failures.accumulate(stats);
      report.round_ms.push_back(ms_since(round_start));
    }

    model->set_weights(server.weights());
    report.final_weights = tensor::list::clone(server.weights());
  } else {
    // ============ asynchronous (overlapping rounds) engine ==========
    fl::AsyncAggregatorConfig async_cfg = options_.async;
    if (async_cfg.min_to_apply <= 0) {
      async_cfg.min_to_apply =
          std::max<std::int64_t>(1, d.clients_per_round / 2);
    }
    async_cfg.screening = options_.screening;
    fl::AsyncAggregator agg(model->weights(), async_cfg, *policy, groups,
                            root.fork("async-aggregate"));

    // Processes one received frame for worker `w`. Returns false when
    // the worker was killed (caller stops reading it).
    auto process_frame = [&](WorkerSlot& w, Frame frame, std::int64_t now,
                             fl::RoundFailureStats& stats,
                             std::int64_t& accepted,
                             std::int64_t& rejected) -> bool {
      auto fail = [&](const char* reason, const char* why) {
        reject_frame(reason);
        expire_crash(stats, w.outstanding_clients());
        w.outstanding.clear();
        kill_worker(w, why);
        return false;
      };
      reg.counter("fl.net.frames_received_total").add(1);
      std::int64_t client_id = -1;
      std::optional<UpdateMsg> update_msg;
      if (frame.type == MsgType::kUpdate) {
        Result<UpdateMsg> decoded = decode_update(frame.payload);
        if (!decoded.ok()) return fail("bad-payload", "protocol violation");
        update_msg = decoded.take();
        client_id = update_msg->client_id;
      } else if (frame.type == MsgType::kTrainError) {
        Result<TrainErrorMsg> err = decode_train_error(frame.payload);
        if (!err.ok()) return fail("bad-payload", "protocol violation");
        client_id = err.value().client_id;
      } else {
        return fail("unexpected-type", "protocol violation");
      }
      // Workers answer their requests in order, so the client is in
      // the oldest outstanding entries first.
      bool matched = false;
      for (auto it = w.outstanding.begin(); it != w.outstanding.end();
           ++it) {
        if (it->remaining.erase(client_id) > 0) {
          matched = true;
          if (it->remaining.empty()) w.outstanding.erase(it);
          break;
        }
      }
      if (!matched) return fail("bad-payload", "protocol violation");
      if (!update_msg.has_value()) {
        expire_crash(stats, 1);  // TrainError: this client never reports
        return true;
      }
      // Server-derived, never the wire-reported size.
      const double weight =
          options_.weight_by_data_size
              ? static_cast<double>(provider.data_size(update_msg->client_id))
              : 1.0;
      std::optional<fl::ClientUpdate> update = open_update(
          std::move(*update_msg),
          static_cast<std::size_t>(&w - workers.data()), now, stats);
      if (!update.has_value()) {
        ++rejected;
        return true;
      }
      fl::AsyncAggregator::OfferResult res =
          agg.offer(std::move(*update), now, weight);
      if (res.accepted) {
        ++accepted;
        if (res.staleness > 0) {
          // A late arrival is a straggler fault absorbed via the
          // staleness decay — injected and resolved in one step, so
          // the disposition bijection still balances.
          ++stats.injected_straggler;
          ++stats.fault_accepted_stale;
        }
      } else {
        ++rejected;
        if (res.reject.has_value()) {
          switch (*res.reject) {
            case fl::RejectReason::kShapeMismatch:
              ++stats.rejected_shape;
              break;
            case fl::RejectReason::kNonFinite:
              ++stats.rejected_non_finite;
              break;
            case fl::RejectReason::kNormOutlier:
              ++stats.rejected_norm_outlier;
              break;
            case fl::RejectReason::kStaleRound:
              ++stats.rejected_stale;
              break;
          }
        }
      }
      return true;
    };

    auto drain_worker = [&](WorkerSlot& w, std::int64_t now,
                            fl::RoundFailureStats& stats,
                            std::int64_t& accepted, std::int64_t& rejected) {
      if (!(w.alive && !w.outstanding.empty() && w.conn.readable(0))) {
        return;  // nothing queued: no empty fl.net.recv span
      }
      telemetry::SpanTimer recv_span(
          reg, "fl.net.recv",
          {{"worker",
            std::to_string(static_cast<std::size_t>(&w - workers.data()))}},
          now);
      while (w.alive && !w.outstanding.empty() && w.conn.readable(0)) {
        Frame frame;
        const FrameStatus st = read_frame(
            w.conn, frame, options_.max_frame_bytes, options_.io_timeout_ms);
        if (st != FrameStatus::kOk) {
          reject_frame(frame_status_name(st));
          expire_crash(stats, w.outstanding_clients());
          w.outstanding.clear();
          kill_worker(w, st == FrameStatus::kTimeout ? "timeout"
                                                     : "disconnect");
          return;
        }
        if (!process_frame(w, std::move(frame), now, stats, accepted,
                           rejected)) {
          return;
        }
      }
    };

    for (std::int64_t t = 0; t < d.rounds; ++t) {
      const Clock::time_point round_start = Clock::now();
      telemetry::TraceScope trace(telemetry::round_trace_root(d.seed, t));
      telemetry::SpanTimer round_span(reg, "fl.round", {}, t);
      fl::RoundFailureStats stats;
      const std::int64_t applies_before = agg.applies();
      std::int64_t round_accepted = 0;
      std::int64_t round_rejected = 0;

      // Phase 0: fold in whatever already arrived (late updates from
      // earlier rounds enter staleness-weighted).
      for (WorkerSlot& w : workers) {
        drain_worker(w, t, stats, round_accepted, round_rejected);
      }
      // Expire dispatches past the staleness horizon: even if the
      // update arrived now, screening would reject it.
      for (WorkerSlot& w : workers) {
        while (!w.outstanding.empty() &&
               w.outstanding.front().round + async_cfg.max_staleness < t) {
          expire_straggler(stats, w.outstanding.front().remaining.size());
          w.outstanding.pop_front();
        }
      }

      // Phase 1: sample and dispatch, with backpressure — a worker
      // already `max_inflight_rounds` behind gets nothing new; its
      // cohort slots expire as stragglers rather than queueing without
      // bound.
      {
        telemetry::SpanTimer dispatch_span(
            reg, "fl.phase", {{"phase", "dispatch"}}, t);
        const telemetry::TraceContext rctx = round_span.context();
        Rng sample_rng =
            round_rng.fork("sample", static_cast<std::uint64_t>(t));
        const std::vector<std::size_t> chosen =
            sample_rng.sample_without_replacement(
                static_cast<std::size_t>(d.total_clients),
                static_cast<std::size_t>(d.clients_per_round));
        std::vector<std::vector<std::int64_t>> ids_per_worker(
            workers.size());
        for (std::size_t ci : chosen) {
          ids_per_worker[ci % workers.size()].push_back(
              static_cast<std::int64_t>(ci));
        }
        const std::vector<std::uint8_t> weights_blob =
            fl::serialize_tensor_list(agg.weights_snapshot());
        for (std::size_t w = 0; w < workers.size(); ++w) {
          if (ids_per_worker[w].empty()) continue;
          if (!workers[w].alive) {
            expire_crash(stats, ids_per_worker[w].size());
            continue;
          }
          if (static_cast<int>(workers[w].outstanding.size()) >=
              options_.max_inflight_rounds) {
            reg.counter("fl.net.backpressure_withheld_total")
                .add(static_cast<std::int64_t>(ids_per_worker[w].size()));
            expire_straggler(stats, ids_per_worker[w].size());
            continue;
          }
          TrainRequestMsg req;
          req.round = t;
          req.client_ids = ids_per_worker[w];
          req.weights_blob = weights_blob;
          if ((workers[w].flags & kFrameFlagTraceContext) && rctx.valid()) {
            req.has_trace = true;
            req.trace_hi = rctx.trace_hi;
            req.trace_lo = rctx.trace_lo;
            req.parent_span = rctx.span_id;
          }
          if (!write_frame(workers[w].conn, MsgType::kTrainRequest,
                           encode_train_request(req))) {
            expire_crash(stats, ids_per_worker[w].size() +
                                    workers[w].outstanding_clients());
            workers[w].outstanding.clear();
            kill_worker(workers[w], "send failed");
            continue;
          }
          reg.counter("fl.net.frames_sent_total").add(1);
          WorkerSlot::Outstanding o;
          o.round = t;
          o.remaining.insert(ids_per_worker[w].begin(),
                             ids_per_worker[w].end());
          workers[w].outstanding.push_back(std::move(o));
        }
      }

      // Phase 2: collection window. Wait (bounded) for this round's
      // own updates; whatever misses the window stays outstanding and
      // arrives stale in a later round.
      const Clock::time_point window_start = Clock::now();
      for (;;) {
        bool this_round_pending = false;
        for (const WorkerSlot& w : workers) {
          for (const auto& o : w.outstanding) {
            if (o.round == t && !o.remaining.empty()) {
              this_round_pending = true;
              break;
            }
          }
          if (this_round_pending) break;
        }
        if (!this_round_pending) break;
        if (ms_since(window_start) >= options_.async_round_wait_ms) break;
        bool any_read = false;
        for (WorkerSlot& w : workers) {
          if (!w.alive || w.outstanding.empty()) continue;
          if (w.conn.readable(10)) {
            any_read = true;
            drain_worker(w, t, stats, round_accepted, round_rejected);
          }
        }
        if (!any_read) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }

      // End of round: a round that never tripped the threshold folds
      // its partial buffer in — the reduced-quorum tier.
      bool applied = agg.applies() > applies_before;
      if (!applied && agg.buffered() > 0) {
        const double widening = static_cast<double>(agg.min_to_apply()) /
                                static_cast<double>(agg.buffered());
        agg.flush();
        applied = true;
        ++stats.reduced_quorum_rounds;
        ++report.reduced_quorum_rounds;
        reg.counter("fl.round.degraded_total",
                    {{"tier", fl::degradation_tier_name(
                                  fl::DegradationTier::kReducedQuorum)}})
            .add(1);
        reg.record_point("fl.round.noise_widening", t, widening);
      }

      reg.record_point("fl.round.accepted", t,
                       static_cast<double>(round_accepted));
      reg.record_point("fl.round.rejected", t,
                       static_cast<double>(round_rejected));
      record_round_counters(stats);

      if (!applied) {
        ++report.dropped_rounds;
        ++stats.quorum_missed;
        reg.counter("fl.round.quorum_missed_total").add(1);
      } else {
        const bool eval_now = (options_.eval_every > 0 &&
                               (t + 1) % options_.eval_every == 0) ||
                              t + 1 == d.rounds;
        if (eval_now) {
          telemetry::SpanTimer eval_span(reg, "fl.phase",
                                         {{"phase", "eval"}}, t);
          model->set_weights(agg.weights_snapshot());
          const double acc =
              nn::evaluate_accuracy(*model, val.features(), val.labels());
          reg.record_point("fl.round.accuracy", t, acc);
          FEDCL_LOG(Info) << "fedcl_server: async round " << (t + 1) << "/"
                          << d.rounds << " acc=" << acc;
        }
      }
      report.updates_accepted += round_accepted;
      report.updates_rejected += round_rejected;
      report.failures.accumulate(stats);
      report.round_ms.push_back(ms_since(round_start));
    }

    // End of run: one final grace window for stragglers, then expire
    // the rest and drain the buffer.
    fl::RoundFailureStats drain_stats;
    std::int64_t drain_accepted = 0, drain_rejected = 0;
    const Clock::time_point drain_start = Clock::now();
    for (;;) {
      bool any_outstanding = false;
      for (WorkerSlot& w : workers) {
        if (w.alive && !w.outstanding.empty()) any_outstanding = true;
      }
      if (!any_outstanding ||
          ms_since(drain_start) >= options_.async_round_wait_ms) {
        break;
      }
      for (WorkerSlot& w : workers) {
        if (w.alive && !w.outstanding.empty() && w.conn.readable(10)) {
          drain_worker(w, d.rounds - 1, drain_stats, drain_accepted,
                       drain_rejected);
        }
      }
    }
    for (WorkerSlot& w : workers) {
      for (const auto& o : w.outstanding) {
        expire_straggler(drain_stats, o.remaining.size());
      }
      w.outstanding.clear();
    }
    record_round_counters(drain_stats);
    report.failures.accumulate(drain_stats);
    report.updates_accepted += drain_accepted;
    report.updates_rejected += drain_rejected;
    agg.flush();
    report.async_applies = agg.applies();
    report.final_weights = agg.weights_snapshot();
    model->set_weights(report.final_weights);
  }

  report.completed_rounds = d.rounds - report.dropped_rounds;
  report.final_accuracy =
      nn::evaluate_accuracy(*model, val.features(), val.labels());
  reg.gauge("fl.net.run_duration_ms").set(ms_since(run_start));
  report.ok = true;
  return finish(std::move(report));
}

}  // namespace fedcl::net
