#include "net/client_worker.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/benchmarks.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/protocol.h"
#include "fl/virtual_client.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "nn/model_zoo.h"

namespace fedcl::net {

Result<WorkerReport> run_worker(const WorkerConfig& config) {
  using R = Result<WorkerReport>;
  if (config.num_workers <= 0 || config.worker_index < 0 ||
      config.worker_index >= config.num_workers) {
    return R::failure("worker_index " + std::to_string(config.worker_index) +
                      " out of range for " +
                      std::to_string(config.num_workers) + " workers");
  }

  Result<TcpConn> connected =
      TcpConn::connect(config.host, config.port, config.connect_timeout_ms);
  if (!connected.ok()) return R::failure(connected.error());
  TcpConn conn = connected.take();

  HelloMsg hello;
  hello.worker_index = static_cast<std::uint32_t>(config.worker_index);
  hello.num_workers = static_cast<std::uint32_t>(config.num_workers);
  // Advertise the trace-context capability on the Hello frame: a
  // pre-tracing server reads the flags byte as reserved and ignores
  // it, a tracing server starts appending the optional trace field to
  // our TrainRequests (PROTOCOL.md §2, §3.4).
  if (!write_frame(conn, MsgType::kHello, encode_hello(hello),
                   kFrameFlagTraceContext)) {
    return R::failure("failed to send hello");
  }

  Frame frame;
  FrameStatus st =
      read_frame(conn, frame, kDefaultMaxPayload, config.connect_timeout_ms);
  if (st != FrameStatus::kOk) {
    return R::failure(std::string("handshake failed: ") +
                      frame_status_name(st));
  }
  if (frame.type == MsgType::kBusy) {
    return R::failure("admission refused: " +
                      std::string(frame.payload.begin(),
                                  frame.payload.end()));
  }
  if (frame.type != MsgType::kWelcome) {
    return R::failure(std::string("expected welcome, got ") +
                      msg_type_name(frame.type));
  }
  Result<ExperimentDescriptor> decoded = decode_descriptor(frame.payload);
  if (!decoded.ok()) {
    return R::failure("bad welcome descriptor: " + decoded.error());
  }
  const ExperimentDescriptor d = decoded.take();

  // ---- rebuild the client-side experiment from the descriptor: the
  // same forked streams the in-process trainer consumes, so shards,
  // model init, and per-round training are bit-identical ----
  const data::BenchmarkConfig bench = data::benchmark_config(
      static_cast<data::BenchmarkId>(d.bench_id),
      static_cast<BenchScale>(d.scale));
  Rng root(d.seed);
  Rng data_rng = root.fork("train-data");
  Rng part_rng = root.fork("partition");
  Rng model_rng = root.fork("model");
  Rng round_rng = root.fork("rounds");

  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(bench.train_spec, data_rng));
  data::PartitionSpec part = bench.partition;
  part.num_clients = d.total_clients;

  const fl::LocalTrainConfig local{
      .local_iterations = d.local_iterations,
      .batch_size = bench.batch_size,
      .learning_rate = bench.learning_rate,
      .lr_decay_per_round = bench.lr_decay_per_round};
  // Virtualized hosting: this worker owns every client id with
  // id % num_workers == worker_index, but materializes a client only
  // when a round asks for it. Startup is O(dataset) instead of
  // O(total_clients), and the provider synthesizes the exact shard
  // bytes the eager partition produced (fl/virtual_client.h), so the
  // three-way serving parity pins are untouched.
  const fl::VirtualClientProvider provider(train, part, part_rng, local,
                                           /*faults=*/{}, d.seed);
  const auto hosts = [&](std::int64_t ci) {
    return ci >= 0 && ci < d.total_clients &&
           ci % static_cast<std::int64_t>(config.num_workers) ==
               static_cast<std::int64_t>(config.worker_index);
  };
  std::int64_t hosted_count = 0;
  for (std::int64_t ci = config.worker_index; ci < d.total_clients;
       ci += config.num_workers) {
    ++hosted_count;
  }

  std::shared_ptr<nn::Sequential> model =
      nn::build_model(bench.model, model_rng);
  std::unique_ptr<core::PrivacyPolicy> policy = make_policy(d);

  FEDCL_LOG(Info) << "fedcl_client: worker " << config.worker_index << "/"
                  << config.num_workers << " hosting " << hosted_count
                  << " of " << d.total_clients
                  << " clients (virtualized) on " << bench.name;

  telemetry::Registry& reg = telemetry::global_registry();
  const std::string worker_label = std::to_string(config.worker_index);

  WorkerReport report;
  for (;;) {
    st = read_frame(conn, frame, kDefaultMaxPayload, config.io_timeout_ms);
    if (st == FrameStatus::kClosed || st == FrameStatus::kTimeout) {
      return R::failure(std::string("server went away: ") +
                        frame_status_name(st));
    }
    if (st != FrameStatus::kOk) {
      return R::failure(std::string("framing error: ") +
                        frame_status_name(st));
    }
    if (frame.type == MsgType::kBye) break;
    if (frame.type != MsgType::kTrainRequest) {
      return R::failure(std::string("unexpected frame: ") +
                        msg_type_name(frame.type));
    }
    Result<TrainRequestMsg> request = decode_train_request(frame.payload);
    if (!request.ok()) {
      return R::failure("bad train request: " + request.error());
    }
    TrainRequestMsg req = request.take();
    Result<fl::TensorList> weights =
        fl::deserialize_tensor_list(fl::ByteSpan(req.weights_blob));
    if (!weights.ok()) {
      return R::failure("bad global weights: " + weights.error());
    }
    const fl::TensorList global_weights = weights.take();

    // Adopt the server's round trace: our spans parent under the
    // server-side fl.round span so the merged Chrome trace shows one
    // tree per round across processes. `remote` marks the parent id as
    // living in another process's event stream.
    std::optional<telemetry::TraceScope> adopt;
    if (req.has_trace) {
      adopt.emplace(telemetry::TraceContext{req.trace_hi, req.trace_lo,
                                            req.parent_span,
                                            /*remote=*/true});
    }
    telemetry::SpanTimer request_span(
        reg, "fl.client.round", {{"worker", worker_label}}, req.round);

    for (std::int64_t ci : req.client_ids) {
      if (!hosts(ci)) {
        TrainErrorMsg err;
        err.client_id = ci;
        err.message = "client not hosted by worker " +
                      std::to_string(config.worker_index);
        if (!write_frame(conn, MsgType::kTrainError,
                         encode_train_error(err))) {
          return R::failure("failed to send train error");
        }
        continue;
      }
      // Materialized on demand, bitwise identical on every request.
      const fl::Client client = provider.client(ci);
      // The same per-(round, client) stream the in-process trainer
      // forks — the label discipline is the parity guarantee.
      Rng crng =
          fl::VirtualClientProvider::training_stream(round_rng, req.round, ci);
      fl::ClientRoundOutcome outcome = [&] {
        telemetry::SpanTimer train_span(reg, "fl.client.phase",
                                        {{"phase", "local_train"}},
                                        req.round);
        return client.run_round(*model, global_weights, *policy,
                                req.round, crng);
      }();
      fl::SecureChannel channel(fl::client_channel_key(d.seed, ci));
      UpdateMsg msg;
      {
        telemetry::SpanTimer serialize_span(reg, "fl.client.phase",
                                            {{"phase", "serialize"}},
                                            req.round);
        if (d.prune_ratio > 0.0) {
          fl::prune_smallest(outcome.update.delta, d.prune_ratio);
        }
        msg.client_id = ci;
        msg.data_size = static_cast<std::int64_t>(client.data().size());
        msg.sealed = channel.seal(fl::serialize_update(outcome.update));
      }
      telemetry::SpanTimer upload_span(reg, "fl.client.phase",
                                       {{"phase", "upload"}}, req.round);
      if (!write_frame(conn, MsgType::kUpdate, encode_update(msg))) {
        return R::failure("failed to send update");
      }
      ++report.clients_trained;
    }
    ++report.rounds_served;
  }
  return report;
}

}  // namespace fedcl::net
