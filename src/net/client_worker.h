// Multi-process federated serving: the worker half.
//
// run_worker connects to a ServingServer, introduces itself with
// Hello, and rebuilds the entire client-side experiment state — the
// synthetic training data, the non-IID partition, its hosted Client
// objects, the scratch model, and the privacy policy — from the
// Welcome descriptor alone (client `c` is hosted by worker
// `c % num_workers`). It then serves TrainRequest frames until Bye:
// each request carries the round and the global weights; the worker
// trains each named client from its (round, client)-forked RNG stream
// and replies with one sealed Update frame per client, in request
// order. Because every RNG stream is forked by label from the shared
// seed, the updates are bitwise identical to the ones the in-process
// trainer would produce (docs/PROTOCOL.md §5).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace fedcl::net {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  int worker_index = 0;
  int num_workers = 1;
  // Connect deadline; also bounds waiting for the Welcome.
  int connect_timeout_ms = 10000;
  // Per-frame receive deadline while idle between rounds. The server
  // drives the cadence, so this is the "server went away" detector.
  int io_timeout_ms = 60000;
};

struct WorkerReport {
  std::int64_t rounds_served = 0;    // TrainRequest frames handled
  std::int64_t clients_trained = 0;  // Update frames sent
};

// Blocks until the server says Bye (success), refuses admission with
// Busy, or the connection fails. Never throws on network input.
Result<WorkerReport> run_worker(const WorkerConfig& config);

}  // namespace fedcl::net
