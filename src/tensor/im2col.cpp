#include "tensor/im2col.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace fedcl::tensor {

namespace {

// Work threshold (total floats moved) below which the batch loop stays
// serial; small unfoldings are dominated by pool handoff latency.
constexpr std::int64_t kParallelFloats = 1 << 15;

// Unfolds one image. For each (output row, kh) the valid kw range
// [kw_lo, kw_hi) maps to one contiguous span of the NHWC source row,
// so the body is clamped memset / memcpy / memset instead of per-
// element bounds checks.
// Row segments of at most this many floats are copied with inline
// loops: at conv1-like shapes (in_c=1, kernel 5 -> 5-float segments)
// the libc memset/memcpy call overhead costs more than the move.
constexpr std::int64_t kInlineSegFloats = 16;

void im2col_image(const float* img, float* cols, const ConvSpec& spec) {
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  const std::int64_t hw_stride = spec.in_w * spec.in_c;
  const std::int64_t row_seg = spec.kernel_w * spec.in_c;
  const bool inline_seg = row_seg <= kInlineSegFloats;
  for (std::int64_t y = 0; y < oh; ++y) {
    const std::int64_t ys = y * spec.stride - spec.pad;
    for (std::int64_t xo = 0; xo < ow; ++xo) {
      float* row = cols + (y * ow + xo) * patch;
      const std::int64_t xs = xo * spec.stride - spec.pad;
      const std::int64_t kw_lo = std::max<std::int64_t>(0, -xs);
      const std::int64_t kw_hi =
          std::min(spec.kernel_w, spec.in_w - xs);
      const std::int64_t lo = kw_lo * spec.in_c;
      const std::int64_t hi = kw_hi * spec.in_c;
      const float* col_base = img + xs * spec.in_c;
      for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
        float* seg = row + kh * row_seg;
        const std::int64_t yy = ys + kh;
        if (yy < 0 || yy >= spec.in_h || kw_lo >= kw_hi) {
          if (inline_seg) {
            for (std::int64_t i = 0; i < row_seg; ++i) seg[i] = 0.0f;
          } else {
            std::memset(seg, 0, static_cast<std::size_t>(row_seg) *
                                    sizeof(float));
          }
          continue;
        }
        const float* src = col_base + yy * hw_stride;
        if (inline_seg) {
          std::int64_t i = 0;
          for (; i < lo; ++i) seg[i] = 0.0f;
          for (; i < hi; ++i) seg[i] = src[i];
          for (; i < row_seg; ++i) seg[i] = 0.0f;
          continue;
        }
        if (lo > 0)
          std::memset(seg, 0, static_cast<std::size_t>(lo) * sizeof(float));
        std::memcpy(seg + lo, src + lo,
                    static_cast<std::size_t>(hi - lo) * sizeof(float));
        if (hi < row_seg)
          std::memset(seg + hi, 0,
                      static_cast<std::size_t>(row_seg - hi) * sizeof(float));
      }
    }
  }
}

// Folds one image's unfolded gradient back, span-adds in the same
// (y, xo, kh, kw, c) order as the naive triple loop — col2im output is
// therefore bitwise independent of the blocking.
FEDCL_KERNEL_CLONES
void span_add(float* __restrict dst, const float* __restrict src,
              std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void col2im_image(const float* cols, float* img, const ConvSpec& spec) {
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  const std::int64_t hw_stride = spec.in_w * spec.in_c;
  const std::int64_t row_seg = spec.kernel_w * spec.in_c;
  for (std::int64_t y = 0; y < oh; ++y) {
    const std::int64_t ys = y * spec.stride - spec.pad;
    for (std::int64_t xo = 0; xo < ow; ++xo) {
      const float* row = cols + (y * ow + xo) * patch;
      const std::int64_t xs = xo * spec.stride - spec.pad;
      const std::int64_t kw_lo = std::max<std::int64_t>(0, -xs);
      const std::int64_t kw_hi =
          std::min(spec.kernel_w, spec.in_w - xs);
      if (kw_lo >= kw_hi) continue;
      const std::int64_t lo = kw_lo * spec.in_c;
      const std::int64_t hi = kw_hi * spec.in_c;
      for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
        const std::int64_t yy = ys + kh;
        if (yy < 0 || yy >= spec.in_h) continue;
        span_add(img + yy * hw_stride + xs * spec.in_c + lo,
                 row + kh * row_seg + lo, hi - lo);
      }
    }
  }
}

void for_each_image(std::int64_t n, std::int64_t floats_per_image,
                    const std::function<void(std::int64_t)>& body) {
  ThreadPool& pool = compute_pool();
  if (n * floats_per_image < kParallelFloats || pool.size() <= 1) {
    for (std::int64_t b = 0; b < n; ++b) body(b);
    return;
  }
  pool.parallel_for_chunks(static_cast<std::size_t>(n), /*grain=*/1,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t b = begin; b < end; ++b)
                               body(static_cast<std::int64_t>(b));
                           });
}

}  // namespace

void ConvSpec::validate() const {
  FEDCL_CHECK_GT(in_h, 0);
  FEDCL_CHECK_GT(in_w, 0);
  FEDCL_CHECK_GT(in_c, 0);
  FEDCL_CHECK_GT(kernel_h, 0);
  FEDCL_CHECK_GT(kernel_w, 0);
  FEDCL_CHECK_GT(stride, 0);
  FEDCL_CHECK_GE(pad, 0);
  FEDCL_CHECK_GT(out_h(), 0);
  FEDCL_CHECK_GT(out_w(), 0);
}

Tensor im2col(const Tensor& x, const ConvSpec& spec) {
  spec.validate();
  FEDCL_CHECK_EQ(x.ndim(), 4u);
  const std::int64_t n = x.dim(0);
  FEDCL_CHECK_EQ(x.dim(1), spec.in_h);
  FEDCL_CHECK_EQ(x.dim(2), spec.in_w);
  FEDCL_CHECK_EQ(x.dim(3), spec.in_c);

  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  const std::int64_t per_image = oh * ow * patch;
  Tensor cols({n * oh * ow, patch});
  const float* px = x.data();
  float* pc = cols.data();
  const std::int64_t img_stride = spec.in_h * spec.in_w * spec.in_c;
  for_each_image(n, per_image, [&](std::int64_t b) {
    im2col_image(px + b * img_stride, pc + b * per_image, spec);
  });
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvSpec& spec, std::int64_t n) {
  spec.validate();
  FEDCL_CHECK_EQ(cols.ndim(), 2u);
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  FEDCL_CHECK_EQ(cols.dim(0), n * oh * ow);
  FEDCL_CHECK_EQ(cols.dim(1), patch);

  const std::int64_t per_image = oh * ow * patch;
  Tensor x({n, spec.in_h, spec.in_w, spec.in_c});
  const float* pc = cols.data();
  float* px = x.data();
  const std::int64_t img_stride = spec.in_h * spec.in_w * spec.in_c;
  for_each_image(n, per_image, [&](std::int64_t b) {
    col2im_image(pc + b * per_image, px + b * img_stride, spec);
  });
  return x;
}

Tensor conv_input_grad(const Tensor& delta, const Tensor& w,
                       const ConvSpec& spec, std::int64_t n) {
  spec.validate();
  FEDCL_CHECK_EQ(delta.ndim(), 2u);
  FEDCL_CHECK_EQ(w.ndim(), 2u);
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  const std::int64_t oc = w.dim(1);
  FEDCL_CHECK_EQ(delta.dim(0), n * oh * ow);
  FEDCL_CHECK_EQ(delta.dim(1), oc);
  FEDCL_CHECK_EQ(w.dim(0), patch);

  // w [patch, oc] transposed once up front so every per-image tile is
  // a plain NN matmul with ascending-oc accumulation.
  std::vector<float> wt(static_cast<std::size_t>(oc) * patch);
  const float* pw = w.data();
  for (std::int64_t p = 0; p < patch; ++p)
    for (std::int64_t c = 0; c < oc; ++c) wt[c * patch + p] = pw[p * oc + c];

  Tensor x({n, spec.in_h, spec.in_w, spec.in_c});
  const float* pd = delta.data();
  float* px = x.data();
  const std::int64_t rows = oh * ow;
  const std::int64_t img_stride = spec.in_h * spec.in_w * spec.in_c;
  ThreadPool& pool = compute_pool();
  const bool parallel =
      n > 1 && n * rows * oc * patch >= (1 << 18) && pool.size() > 1;
  auto image = [&](std::int64_t b, std::vector<float>& scratch) {
    std::memset(scratch.data(), 0,
                static_cast<std::size_t>(rows) * patch * sizeof(float));
    matmul_nn_into(pd + b * rows * oc, wt.data(), scratch.data(), rows, oc,
                   patch);
    col2im_image(scratch.data(), px + b * img_stride, spec);
  };
  if (!parallel) {
    std::vector<float> scratch(static_cast<std::size_t>(rows) * patch);
    for (std::int64_t b = 0; b < n; ++b) image(b, scratch);
    return x;
  }
  pool.parallel_for_chunks(static_cast<std::size_t>(n), /*grain=*/1,
                           [&](std::size_t begin, std::size_t end) {
                             std::vector<float> scratch(
                                 static_cast<std::size_t>(rows) * patch);
                             for (std::size_t b = begin; b < end; ++b)
                               image(static_cast<std::int64_t>(b), scratch);
                           });
  return x;
}

}  // namespace fedcl::tensor
