#include "tensor/im2col.h"

#include "common/error.h"

namespace fedcl::tensor {

void ConvSpec::validate() const {
  FEDCL_CHECK_GT(in_h, 0);
  FEDCL_CHECK_GT(in_w, 0);
  FEDCL_CHECK_GT(in_c, 0);
  FEDCL_CHECK_GT(kernel_h, 0);
  FEDCL_CHECK_GT(kernel_w, 0);
  FEDCL_CHECK_GT(stride, 0);
  FEDCL_CHECK_GE(pad, 0);
  FEDCL_CHECK_GT(out_h(), 0);
  FEDCL_CHECK_GT(out_w(), 0);
}

Tensor im2col(const Tensor& x, const ConvSpec& spec) {
  spec.validate();
  FEDCL_CHECK_EQ(x.ndim(), 4u);
  const std::int64_t n = x.dim(0);
  FEDCL_CHECK_EQ(x.dim(1), spec.in_h);
  FEDCL_CHECK_EQ(x.dim(2), spec.in_w);
  FEDCL_CHECK_EQ(x.dim(3), spec.in_c);

  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  Tensor cols({n * oh * ow, patch});
  const float* px = x.data();
  float* pc = cols.data();

  const std::int64_t hw_stride = spec.in_w * spec.in_c;
  for (std::int64_t b = 0; b < n; ++b) {
    const float* img = px + b * spec.in_h * hw_stride;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        float* row = pc + ((b * oh + y) * ow + xo) * patch;
        const std::int64_t ys = y * spec.stride - spec.pad;
        const std::int64_t xs = xo * spec.stride - spec.pad;
        std::int64_t k = 0;
        for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
          const std::int64_t yy = ys + kh;
          for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw) {
            const std::int64_t xx = xs + kw;
            if (yy >= 0 && yy < spec.in_h && xx >= 0 && xx < spec.in_w) {
              const float* src = img + yy * hw_stride + xx * spec.in_c;
              for (std::int64_t c = 0; c < spec.in_c; ++c) row[k++] = src[c];
            } else {
              for (std::int64_t c = 0; c < spec.in_c; ++c) row[k++] = 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, const ConvSpec& spec, std::int64_t n) {
  spec.validate();
  FEDCL_CHECK_EQ(cols.ndim(), 2u);
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  FEDCL_CHECK_EQ(cols.dim(0), n * oh * ow);
  FEDCL_CHECK_EQ(cols.dim(1), patch);

  Tensor x({n, spec.in_h, spec.in_w, spec.in_c});
  const float* pc = cols.data();
  float* px = x.data();

  const std::int64_t hw_stride = spec.in_w * spec.in_c;
  for (std::int64_t b = 0; b < n; ++b) {
    float* img = px + b * spec.in_h * hw_stride;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        const float* row = pc + ((b * oh + y) * ow + xo) * patch;
        const std::int64_t ys = y * spec.stride - spec.pad;
        const std::int64_t xs = xo * spec.stride - spec.pad;
        std::int64_t k = 0;
        for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
          const std::int64_t yy = ys + kh;
          for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw) {
            const std::int64_t xx = xs + kw;
            if (yy >= 0 && yy < spec.in_h && xx >= 0 && xx < spec.in_w) {
              float* dst = img + yy * hw_stride + xx * spec.in_c;
              for (std::int64_t c = 0; c < spec.in_c; ++c) dst[c] += row[k++];
            } else {
              k += spec.in_c;
            }
          }
        }
      }
    }
  }
  return x;
}

}  // namespace fedcl::tensor
