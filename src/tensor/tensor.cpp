#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::tensor {

namespace {

std::shared_ptr<float[]> alloc_storage(std::int64_t n) {
  FEDCL_CHECK_GE(n, 0);
  // Value-initialized => zero-filled.
  return std::shared_ptr<float[]>(new float[static_cast<std::size_t>(n)]());
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FEDCL_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << shape_str(a.shape()) << " vs "
      << shape_str(b.shape());
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name, F f) {
  check_same_shape(a, b, name);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(alloc_storage(numel_)) {
  for (std::int64_t d : shape_) FEDCL_CHECK_GE(d, 0);
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  FEDCL_CHECK_EQ(t.numel(), static_cast<std::int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::scalar(float value) { return full({1}, value); }

std::int64_t Tensor::dim(std::size_t i) const {
  FEDCL_CHECK_LT(i, shape_.size());
  return shape_[i];
}

float* Tensor::data() {
  FEDCL_CHECK(defined());
  return data_.get();
}

const float* Tensor::data() const {
  FEDCL_CHECK(defined());
  return data_.get();
}

float& Tensor::at(std::int64_t i) {
  FEDCL_CHECK(i >= 0 && i < numel_) << "index " << i << " numel " << numel_;
  return data()[i];
}

float Tensor::at(std::int64_t i) const {
  FEDCL_CHECK(i >= 0 && i < numel_) << "index " << i << " numel " << numel_;
  return data()[i];
}

float Tensor::item() const {
  FEDCL_CHECK_EQ(numel_, 1);
  return data()[0];
}

std::vector<float> Tensor::to_vector() const {
  FEDCL_CHECK(defined());
  return std::vector<float>(data(), data() + numel_);
}

Tensor Tensor::reshape(Shape shape) const {
  FEDCL_CHECK(defined());
  FEDCL_CHECK_EQ(shape_numel(shape), numel_);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = numel_;
  t.data_ = data_;  // shared storage
  return t;
}

Tensor Tensor::clone() const {
  FEDCL_CHECK(defined());
  Tensor t(shape_);
  std::memcpy(t.data(), data(), sizeof(float) * static_cast<std::size_t>(numel_));
  return t;
}

Tensor& Tensor::fill_(float value) {
  std::fill(data(), data() + numel_, value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other, float alpha) {
  check_same_shape(*this, other, "add_");
  float* p = data();
  const float* q = other.data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] += alpha * q[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] *= s;
  return *this;
}

Tensor& Tensor::add_gaussian_noise_(Rng& rng, float stddev) {
  FEDCL_CHECK_GE(stddev, 0.0f);
  if (stddev == 0.0f) return *this;
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i)
    p[i] += static_cast<float>(rng.normal(0.0, stddev));
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  FEDCL_CHECK_LE(lo, hi);
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] = std::clamp(p[i], lo, hi);
  return *this;
}

float Tensor::sum() const {
  const float* p = data();
  double s = 0.0;
  for (std::int64_t i = 0; i < numel_; ++i) s += p[i];
  return static_cast<float>(s);
}

float Tensor::l2_norm() const {
  const float* p = data();
  double s = 0.0;
  for (std::int64_t i = 0; i < numel_; ++i)
    s += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  return static_cast<float>(std::sqrt(s));
}

float Tensor::max_abs() const {
  const float* p = data();
  float m = 0.0f;
  for (std::int64_t i = 0; i < numel_; ++i) m = std::max(m, std::abs(p[i]));
  return m;
}

std::string Tensor::debug_string(std::int64_t max_entries) const {
  std::ostringstream os;
  os << "Tensor" << shape_str(shape_) << " {";
  if (defined()) {
    std::int64_t n = std::min(numel_, max_entries);
    for (std::int64_t i = 0; i < n; ++i) {
      if (i) os << ", ";
      os << data()[i];
    }
    if (numel_ > n) os << ", ...";
  }
  os << "}";
  return os.str();
}

// ---- free functions ----

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; });
}
Tensor pow_scalar(const Tensor& a, float p) {
  return unary_op(a, [p](float x) { return std::pow(x, p); });
}

Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_op(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary_op(a, [](float x) { return std::sqrt(x); });
}
Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor step_mask(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}
Tensor sigmoid(const Tensor& a) {
  return unary_op(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh(const Tensor& a) {
  return unary_op(a, [](float x) { return std::tanh(x); });
}
Tensor softplus(const Tensor& a) {
  return unary_op(a, [](float x) {
    // log(1+e^x) = max(x,0) + log1p(e^{-|x|}) avoids overflow.
    return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
  });
}
Tensor leaky_relu(const Tensor& a, float slope) {
  return unary_op(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}
Tensor abs(const Tensor& a) {
  return unary_op(a, [](float x) { return std::abs(x); });
}
Tensor sign(const Tensor& a) {
  return unary_op(a, [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FEDCL_CHECK_EQ(a.ndim(), 2u);
  FEDCL_CHECK_EQ(b.ndim(), 2u);
  FEDCL_CHECK_EQ(a.dim(1), b.dim(0));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // ikj loop order: streams over b and out rows, cache friendly.
  for (std::int64_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  FEDCL_CHECK_EQ(a.ndim(), 2u);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  return out;
}

float dot(const Tensor& a, const Tensor& b) {
  FEDCL_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(pa[i]) * static_cast<double>(pb[i]);
  return static_cast<float>(s);
}

Tensor row_sum(const Tensor& x) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  Tensor out({n, 1});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < c; ++j) s += px[i * c + j];
    po[i] = static_cast<float>(s);
  }
  return out;
}

Tensor row_max(const Tensor& x) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FEDCL_CHECK_GT(c, 0);
  Tensor out({n, 1});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float m = px[i * c];
    for (std::int64_t j = 1; j < c; ++j) m = std::max(m, px[i * c + j]);
    po[i] = m;
  }
  return out;
}

Tensor broadcast_col(const Tensor& x, std::int64_t c) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  FEDCL_CHECK_EQ(x.dim(1), 1);
  const std::int64_t n = x.dim(0);
  Tensor out({n, c});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[i * c + j] = px[i];
  return out;
}

Tensor col_sum(const Tensor& x) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  Tensor out({c});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[j] += px[i * c + j];
  return out;
}

Tensor broadcast_row(const Tensor& x, std::int64_t n) {
  FEDCL_CHECK_EQ(x.ndim(), 1u);
  const std::int64_t c = x.dim(0);
  Tensor out({n, c});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[i * c + j] = px[j];
  return out;
}

Tensor expand_scalar(const Tensor& x, const Shape& shape) {
  FEDCL_CHECK_EQ(x.numel(), 1);
  return Tensor::full(shape, x.item());
}

Tensor sum_all(const Tensor& x) { return Tensor::scalar(x.sum()); }

Tensor pick(const Tensor& x, const std::vector<std::int64_t>& idx) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(idx.size()), n);
  Tensor out({n, 1});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    FEDCL_CHECK(idx[i] >= 0 && idx[i] < c) << "label " << idx[i];
    po[i] = px[i * c + idx[i]];
  }
  return out;
}

Tensor scatter(const Tensor& s, const std::vector<std::int64_t>& idx,
               std::int64_t c) {
  FEDCL_CHECK_EQ(s.ndim(), 2u);
  FEDCL_CHECK_EQ(s.dim(1), 1);
  const std::int64_t n = s.dim(0);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(idx.size()), n);
  Tensor out({n, c});
  const float* ps = s.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    FEDCL_CHECK(idx[i] >= 0 && idx[i] < c) << "label " << idx[i];
    po[i * c + idx[i]] = ps[i];
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    float tol = atol + rtol * std::abs(pb[i]);
    if (std::abs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace fedcl::tensor
