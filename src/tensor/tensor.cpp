#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace fedcl::tensor {

namespace {

// Large blocks are recycled through a per-thread free list. The
// batched per-example engine allocates multi-megabyte intermediates
// (im2col unfoldings, per-example gradient rows) on every local
// iteration; glibc serves blocks of that size with mmap/munmap, so
// without recycling each reuse pays a page-fault sweep over freshly
// mapped memory. Blocks below the threshold stay with plain new[] —
// the allocator already recycles those well.
constexpr std::int64_t kBlockCacheMinFloats = 1 << 14;  // 64 KiB
constexpr std::size_t kBlockCacheMaxBytes = std::size_t{64} << 20;

struct BlockCache {
  std::unordered_map<std::int64_t, std::vector<float*>> free_by_size;
  std::size_t bytes = 0;
  ~BlockCache() {
    for (auto& [size, blocks] : free_by_size)
      for (float* p : blocks) delete[] p;
  }
};

BlockCache& block_cache() {
  thread_local BlockCache cache;
  return cache;
}

std::shared_ptr<float[]> alloc_storage(std::int64_t n) {
  FEDCL_CHECK_GE(n, 0);
  if (n >= kBlockCacheMinFloats) {
    const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(float);
    // The deleter may run on a different thread than the allocation;
    // each thread returns blocks to its own cache, which keeps both
    // sides lock-free.
    auto recycle = [n, bytes](float* p) {
      BlockCache& cache = block_cache();
      if (cache.bytes + bytes <= kBlockCacheMaxBytes) {
        cache.free_by_size[n].push_back(p);
        cache.bytes += bytes;
      } else {
        delete[] p;
      }
    };
    BlockCache& cache = block_cache();
    auto it = cache.free_by_size.find(n);
    if (it != cache.free_by_size.end() && !it->second.empty()) {
      float* p = it->second.back();
      it->second.pop_back();
      cache.bytes -= bytes;
      std::memset(p, 0, bytes);
      return std::shared_ptr<float[]>(p, recycle);
    }
    return std::shared_ptr<float[]>(new float[static_cast<std::size_t>(n)](),
                                    recycle);
  }
  // Value-initialized => zero-filled.
  return std::shared_ptr<float[]>(new float[static_cast<std::size_t>(n)]());
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FEDCL_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << shape_str(a.shape()) << " vs "
      << shape_str(b.shape());
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name, F f) {
  check_same_shape(a, b, name);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& a, F f) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i]);
  return out;
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(alloc_storage(numel_)) {
  for (std::int64_t d : shape_) FEDCL_CHECK_GE(d, 0);
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::from_vector(Shape shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  FEDCL_CHECK_EQ(t.numel(), static_cast<std::int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data());
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i)
    p[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::scalar(float value) { return full({1}, value); }

std::int64_t Tensor::dim(std::size_t i) const {
  FEDCL_CHECK_LT(i, shape_.size());
  return shape_[i];
}

float* Tensor::data() {
  FEDCL_CHECK(defined());
  return data_.get();
}

const float* Tensor::data() const {
  FEDCL_CHECK(defined());
  return data_.get();
}

float& Tensor::at(std::int64_t i) {
  FEDCL_CHECK(i >= 0 && i < numel_) << "index " << i << " numel " << numel_;
  return data()[i];
}

float Tensor::at(std::int64_t i) const {
  FEDCL_CHECK(i >= 0 && i < numel_) << "index " << i << " numel " << numel_;
  return data()[i];
}

float Tensor::item() const {
  FEDCL_CHECK_EQ(numel_, 1);
  return data()[0];
}

std::vector<float> Tensor::to_vector() const {
  FEDCL_CHECK(defined());
  return std::vector<float>(data(), data() + numel_);
}

Tensor Tensor::reshape(Shape shape) const {
  FEDCL_CHECK(defined());
  FEDCL_CHECK_EQ(shape_numel(shape), numel_);
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = numel_;
  t.data_ = data_;  // shared storage
  return t;
}

Tensor Tensor::clone() const {
  FEDCL_CHECK(defined());
  Tensor t(shape_);
  std::memcpy(t.data(), data(), sizeof(float) * static_cast<std::size_t>(numel_));
  return t;
}

Tensor& Tensor::fill_(float value) {
  std::fill(data(), data() + numel_, value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other, float alpha) {
  check_same_shape(*this, other, "add_");
  float* p = data();
  const float* q = other.data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] += alpha * q[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] *= s;
  return *this;
}

Tensor& Tensor::add_gaussian_noise_(Rng& rng, float stddev) {
  FEDCL_CHECK_GE(stddev, 0.0f);
  if (stddev == 0.0f) return *this;
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i)
    p[i] += static_cast<float>(rng.normal(0.0, stddev));
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  FEDCL_CHECK_LE(lo, hi);
  float* p = data();
  for (std::int64_t i = 0; i < numel_; ++i) p[i] = std::clamp(p[i], lo, hi);
  return *this;
}

float Tensor::sum() const {
  const float* p = data();
  double s = 0.0;
  for (std::int64_t i = 0; i < numel_; ++i) s += p[i];
  return static_cast<float>(s);
}

float Tensor::l2_norm() const {
  const float* p = data();
  double s = 0.0;
  for (std::int64_t i = 0; i < numel_; ++i)
    s += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  return static_cast<float>(std::sqrt(s));
}

float Tensor::max_abs() const {
  const float* p = data();
  float m = 0.0f;
  for (std::int64_t i = 0; i < numel_; ++i) m = std::max(m, std::abs(p[i]));
  return m;
}

std::string Tensor::debug_string(std::int64_t max_entries) const {
  std::ostringstream os;
  os << "Tensor" << shape_str(shape_) << " {";
  if (defined()) {
    std::int64_t n = std::min(numel_, max_entries);
    for (std::int64_t i = 0; i < n; ++i) {
      if (i) os << ", ";
      os << data()[i];
    }
    if (numel_ > n) os << ", ...";
  }
  os << "}";
  return os.str();
}

// ---- free functions ----

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; });
}
Tensor pow_scalar(const Tensor& a, float p) {
  return unary_op(a, [p](float x) { return std::pow(x, p); });
}

Tensor neg(const Tensor& a) {
  return unary_op(a, [](float x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_op(a, [](float x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary_op(a, [](float x) { return std::sqrt(x); });
}
Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor step_mask(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}
Tensor sigmoid(const Tensor& a) {
  return unary_op(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh(const Tensor& a) {
  return unary_op(a, [](float x) { return std::tanh(x); });
}
Tensor softplus(const Tensor& a) {
  return unary_op(a, [](float x) {
    // log(1+e^x) = max(x,0) + log1p(e^{-|x|}) avoids overflow.
    return std::max(x, 0.0f) + std::log1p(std::exp(-std::abs(x)));
  });
}
Tensor leaky_relu(const Tensor& a, float slope) {
  return unary_op(a, [slope](float x) { return x > 0.0f ? x : slope * x; });
}
Tensor abs(const Tensor& a) {
  return unary_op(a, [](float x) { return std::abs(x); });
}
Tensor sign(const Tensor& a) {
  return unary_op(a, [](float x) {
    return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
  });
}

namespace {

// Flop threshold (m*k*n) below which threading overhead dominates and
// the kernels stay serial.
constexpr std::int64_t kParallelFlops = 1 << 18;
// Output-row count at or above which matmul_nt packs B^T into a
// scratch buffer and reuses the NN kernel; below it the transpose
// cost is not amortized and the dot-product form wins.
constexpr std::int64_t kNtPackRows = 16;

// The NN/TN workers are register-tiled: 4 output rows x 8 columns of
// accumulators live in named vector variables for the whole k sweep,
// so each element has its own FMA chain and the 4x8 tile gives the
// core 32 independent chains to hide FMA latency behind (the previous
// one-chain-per-element saxpy form was latency-bound at roughly a
// fifth of this throughput on the narrow-N conv shapes).
//
// Accumulation order per output element is fixed (ascending k) in
// every path — vector body, scalar column tail, and single-row
// remainder all issue the same per-element multiply-add sequence — so
// results do not depend on how rows are partitioned across threads.
// FMA contraction may round intermediate products differently across
// the FEDCL_KERNEL_CLONES ISA levels (tensor/simd.h), which stays
// within the library-wide float tolerance.
typedef float vf8
    __attribute__((vector_size(32), aligned(4), may_alias));

// One output row of C = A B over columns [0, n): vf8 tiles then a
// scalar tail, ascending k. Also the row-remainder kernel, so every
// row runs identical arithmetic whether or not it sits in a 4-row
// block.
FEDCL_KERNEL_CLONES
void nn_one_row(const float* __restrict arow, const float* __restrict b,
                float* __restrict orow, std::int64_t k, std::int64_t n) {
  std::int64_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    vf8 c0 = {};
    for (std::int64_t kk = 0; kk < k; ++kk) {
      c0 += arow[kk] * *(const vf8*)(b + kk * n + j0);
    }
    *(vf8*)(orow + j0) += c0;
  }
  for (; j0 < n; ++j0) {
    float s = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) s += arow[kk] * b[kk * n + j0];
    orow[j0] += s;
  }
}

// Row-range worker for C[i0:i1) of C = A B.
FEDCL_KERNEL_CLONES
void matmul_nn_rows(const float* __restrict a, const float* __restrict b,
                    float* __restrict out, std::int64_t i0, std::int64_t i1,
                    std::int64_t k, std::int64_t n) {
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    std::int64_t j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) {
      vf8 c0 = {}, c1 = {}, c2 = {}, c3 = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const vf8 bv = *(const vf8*)(b + kk * n + j0);
        c0 += a0[kk] * bv;
        c1 += a1[kk] * bv;
        c2 += a2[kk] * bv;
        c3 += a3[kk] * bv;
      }
      *(vf8*)(out + (i + 0) * n + j0) += c0;
      *(vf8*)(out + (i + 1) * n + j0) += c1;
      *(vf8*)(out + (i + 2) * n + j0) += c2;
      *(vf8*)(out + (i + 3) * n + j0) += c3;
    }
    for (; j0 < n; ++j0) {
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float bv = b[kk * n + j0];
        s0 += a0[kk] * bv;
        s1 += a1[kk] * bv;
        s2 += a2[kk] * bv;
        s3 += a3[kk] * bv;
      }
      out[(i + 0) * n + j0] += s0;
      out[(i + 1) * n + j0] += s1;
      out[(i + 2) * n + j0] += s2;
      out[(i + 3) * n + j0] += s3;
    }
  }
  for (; i < i1; ++i) nn_one_row(a + i * k, b, out + i * n, k, n);
}

// One output row of C = A^T B (row i of C; A column i read with
// stride m), same tile/tail structure as nn_one_row.
FEDCL_KERNEL_CLONES
void tn_one_row(const float* __restrict a, const float* __restrict b,
                float* __restrict orow, std::int64_t i, std::int64_t k,
                std::int64_t m, std::int64_t n) {
  std::int64_t j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    vf8 c0 = {};
    for (std::int64_t kk = 0; kk < k; ++kk) {
      c0 += a[kk * m + i] * *(const vf8*)(b + kk * n + j0);
    }
    *(vf8*)(orow + j0) += c0;
  }
  for (; j0 < n; ++j0) {
    float s = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk)
      s += a[kk * m + i] * b[kk * n + j0];
    orow[j0] += s;
  }
}

// Row-range worker for C[i0:i1) of C = A^T B with A: [k,m] — the
// per-example conv dW shapes (small m*n, deep k) live here.
FEDCL_KERNEL_CLONES
void matmul_tn_rows(const float* __restrict a, const float* __restrict b,
                    float* __restrict out, std::int64_t i0, std::int64_t i1,
                    std::int64_t k, std::int64_t m, std::int64_t n) {
  std::int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    std::int64_t j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) {
      vf8 c0 = {}, c1 = {}, c2 = {}, c3 = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m + i;
        const vf8 bv = *(const vf8*)(b + kk * n + j0);
        c0 += arow[0] * bv;
        c1 += arow[1] * bv;
        c2 += arow[2] * bv;
        c3 += arow[3] * bv;
      }
      *(vf8*)(out + (i + 0) * n + j0) += c0;
      *(vf8*)(out + (i + 1) * n + j0) += c1;
      *(vf8*)(out + (i + 2) * n + j0) += c2;
      *(vf8*)(out + (i + 3) * n + j0) += c3;
    }
    for (; j0 < n; ++j0) {
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m + i;
        const float bv = b[kk * n + j0];
        s0 += arow[0] * bv;
        s1 += arow[1] * bv;
        s2 += arow[2] * bv;
        s3 += arow[3] * bv;
      }
      out[(i + 0) * n + j0] += s0;
      out[(i + 1) * n + j0] += s1;
      out[(i + 2) * n + j0] += s2;
      out[(i + 3) * n + j0] += s3;
    }
  }
  for (; i < i1; ++i) tn_one_row(a, b, out + i * n, i, k, m, n);
}

#if FEDCL_HAVE_V4_KERNELS
typedef float vf16
    __attribute__((vector_size(64), aligned(4), may_alias));

// AVX-512 widening of the same tile scheme: 8 rows x 16 columns of
// ZMM accumulators (the 4x8 tile leaves most of the wider register
// file idle). Per-element arithmetic is unchanged — ascending-k FMA —
// so this path is bitwise identical to the portable kernels and the
// fedcl_cpu_has_v4() branch only changes speed. Column tails drop to
// 8-wide then scalar; row tails delegate to the portable kernel.
FEDCL_KERNEL_V4
void matmul_nn_rows_v4(const float* __restrict a, const float* __restrict b,
                       float* __restrict out, std::int64_t i0,
                       std::int64_t i1, std::int64_t k, std::int64_t n) {
  std::int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    const float* ar[8];
    for (int r = 0; r < 8; ++r) ar[r] = a + (i + r) * k;
    std::int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      vf16 c0 = {}, c1 = {}, c2 = {}, c3 = {};
      vf16 c4 = {}, c5 = {}, c6 = {}, c7 = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const vf16 bv = *(const vf16*)(b + kk * n + j0);
        c0 += ar[0][kk] * bv;
        c1 += ar[1][kk] * bv;
        c2 += ar[2][kk] * bv;
        c3 += ar[3][kk] * bv;
        c4 += ar[4][kk] * bv;
        c5 += ar[5][kk] * bv;
        c6 += ar[6][kk] * bv;
        c7 += ar[7][kk] * bv;
      }
      *(vf16*)(out + (i + 0) * n + j0) += c0;
      *(vf16*)(out + (i + 1) * n + j0) += c1;
      *(vf16*)(out + (i + 2) * n + j0) += c2;
      *(vf16*)(out + (i + 3) * n + j0) += c3;
      *(vf16*)(out + (i + 4) * n + j0) += c4;
      *(vf16*)(out + (i + 5) * n + j0) += c5;
      *(vf16*)(out + (i + 6) * n + j0) += c6;
      *(vf16*)(out + (i + 7) * n + j0) += c7;
    }
    for (; j0 + 8 <= n; j0 += 8) {
      vf8 c0 = {}, c1 = {}, c2 = {}, c3 = {};
      vf8 c4 = {}, c5 = {}, c6 = {}, c7 = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const vf8 bv = *(const vf8*)(b + kk * n + j0);
        c0 += ar[0][kk] * bv;
        c1 += ar[1][kk] * bv;
        c2 += ar[2][kk] * bv;
        c3 += ar[3][kk] * bv;
        c4 += ar[4][kk] * bv;
        c5 += ar[5][kk] * bv;
        c6 += ar[6][kk] * bv;
        c7 += ar[7][kk] * bv;
      }
      *(vf8*)(out + (i + 0) * n + j0) += c0;
      *(vf8*)(out + (i + 1) * n + j0) += c1;
      *(vf8*)(out + (i + 2) * n + j0) += c2;
      *(vf8*)(out + (i + 3) * n + j0) += c3;
      *(vf8*)(out + (i + 4) * n + j0) += c4;
      *(vf8*)(out + (i + 5) * n + j0) += c5;
      *(vf8*)(out + (i + 6) * n + j0) += c6;
      *(vf8*)(out + (i + 7) * n + j0) += c7;
    }
    for (; j0 < n; ++j0) {
      float s[8] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float bv = b[kk * n + j0];
        for (int r = 0; r < 8; ++r) s[r] += ar[r][kk] * bv;
      }
      for (int r = 0; r < 8; ++r) out[(i + r) * n + j0] += s[r];
    }
  }
  if (i < i1) matmul_nn_rows(a, b, out, i, i1, k, n);
}

FEDCL_KERNEL_V4
void matmul_tn_rows_v4(const float* __restrict a, const float* __restrict b,
                       float* __restrict out, std::int64_t i0,
                       std::int64_t i1, std::int64_t k, std::int64_t m,
                       std::int64_t n) {
  std::int64_t i = i0;
  for (; i + 8 <= i1; i += 8) {
    std::int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      vf16 c0 = {}, c1 = {}, c2 = {}, c3 = {};
      vf16 c4 = {}, c5 = {}, c6 = {}, c7 = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m + i;
        const vf16 bv = *(const vf16*)(b + kk * n + j0);
        c0 += arow[0] * bv;
        c1 += arow[1] * bv;
        c2 += arow[2] * bv;
        c3 += arow[3] * bv;
        c4 += arow[4] * bv;
        c5 += arow[5] * bv;
        c6 += arow[6] * bv;
        c7 += arow[7] * bv;
      }
      *(vf16*)(out + (i + 0) * n + j0) += c0;
      *(vf16*)(out + (i + 1) * n + j0) += c1;
      *(vf16*)(out + (i + 2) * n + j0) += c2;
      *(vf16*)(out + (i + 3) * n + j0) += c3;
      *(vf16*)(out + (i + 4) * n + j0) += c4;
      *(vf16*)(out + (i + 5) * n + j0) += c5;
      *(vf16*)(out + (i + 6) * n + j0) += c6;
      *(vf16*)(out + (i + 7) * n + j0) += c7;
    }
    for (; j0 + 8 <= n; j0 += 8) {
      vf8 c0 = {}, c1 = {}, c2 = {}, c3 = {};
      vf8 c4 = {}, c5 = {}, c6 = {}, c7 = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m + i;
        const vf8 bv = *(const vf8*)(b + kk * n + j0);
        c0 += arow[0] * bv;
        c1 += arow[1] * bv;
        c2 += arow[2] * bv;
        c3 += arow[3] * bv;
        c4 += arow[4] * bv;
        c5 += arow[5] * bv;
        c6 += arow[6] * bv;
        c7 += arow[7] * bv;
      }
      *(vf8*)(out + (i + 0) * n + j0) += c0;
      *(vf8*)(out + (i + 1) * n + j0) += c1;
      *(vf8*)(out + (i + 2) * n + j0) += c2;
      *(vf8*)(out + (i + 3) * n + j0) += c3;
      *(vf8*)(out + (i + 4) * n + j0) += c4;
      *(vf8*)(out + (i + 5) * n + j0) += c5;
      *(vf8*)(out + (i + 6) * n + j0) += c6;
      *(vf8*)(out + (i + 7) * n + j0) += c7;
    }
    for (; j0 < n; ++j0) {
      float s[8] = {};
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* arow = a + kk * m + i;
        const float bv = b[kk * n + j0];
        for (int r = 0; r < 8; ++r) s[r] += arow[r] * bv;
      }
      for (int r = 0; r < 8; ++r) out[(i + r) * n + j0] += s[r];
    }
  }
  if (i < i1) matmul_tn_rows(a, b, out, i, i1, k, m, n);
}
#endif  // FEDCL_HAVE_V4_KERNELS

// ISA-dispatched row workers: same values on every path, wider tiles
// where the CPU has the registers for them.
void nn_rows(const float* a, const float* b, float* out, std::int64_t i0,
             std::int64_t i1, std::int64_t k, std::int64_t n) {
#if FEDCL_HAVE_V4_KERNELS
  if (fedcl_cpu_has_v4()) {
    matmul_nn_rows_v4(a, b, out, i0, i1, k, n);
    return;
  }
#endif
  matmul_nn_rows(a, b, out, i0, i1, k, n);
}

void tn_rows(const float* a, const float* b, float* out, std::int64_t i0,
             std::int64_t i1, std::int64_t k, std::int64_t m,
             std::int64_t n) {
#if FEDCL_HAVE_V4_KERNELS
  if (fedcl_cpu_has_v4()) {
    matmul_tn_rows_v4(a, b, out, i0, i1, k, m, n);
    return;
  }
#endif
  matmul_tn_rows(a, b, out, i0, i1, k, m, n);
}

// Row-range worker for C[i0:i1) of C = A B^T with B: [n,k]; both
// operands are traversed contiguously (dot products of rows). Serves
// small-m calls directly and is the fallback when packing B^T is not
// worth it.
void matmul_nt_rows(const float* a, const float* b, float* out,
                    std::int64_t i0, std::int64_t i1, std::int64_t k,
                    std::int64_t n) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      orow[j] += s;
    }
  }
}

// Packs B [n,k] as B^T [k,n] so NT calls with enough output rows run
// through the vector-friendly NN kernel instead of short dot
// products. The accumulation order per output element is ascending k
// either way.
std::vector<float> pack_transpose(const float* b, std::int64_t n,
                                  std::int64_t k) {
  std::vector<float> bt(static_cast<std::size_t>(k) * n);
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t kk = 0; kk < k; ++kk) bt[kk * n + j] = b[j * k + kk];
  return bt;
}

template <typename RowFn>
void dispatch_rows(std::int64_t m, std::int64_t k, std::int64_t n,
                   const RowFn& rows) {
  ThreadPool& pool = compute_pool();
  if (m * k * n < kParallelFlops || pool.size() <= 1) {
    rows(0, m);
    return;
  }
  pool.parallel_for_chunks(
      static_cast<std::size_t>(m), /*grain=*/8,
      [&](std::size_t begin, std::size_t end) {
        rows(static_cast<std::int64_t>(begin),
             static_cast<std::int64_t>(end));
      });
}

}  // namespace

void matmul_nn_into(const float* a, const float* b, float* out,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  nn_rows(a, b, out, 0, m, k, n);
}

void matmul_tn_into(const float* a, const float* b, float* out,
                    std::int64_t k, std::int64_t m, std::int64_t n) {
  tn_rows(a, b, out, 0, m, k, m, n);
}

void matmul_nt_into(const float* a, const float* b, float* out,
                    std::int64_t m, std::int64_t k, std::int64_t n) {
  if (m >= kNtPackRows) {
    const std::vector<float> bt = pack_transpose(b, n, k);
    nn_rows(a, bt.data(), out, 0, m, k, n);
    return;
  }
  matmul_nt_rows(a, b, out, 0, m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  FEDCL_CHECK_EQ(a.ndim(), 2u);
  FEDCL_CHECK_EQ(b.ndim(), 2u);
  FEDCL_CHECK_EQ(a.dim(1), b.dim(0));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  dispatch_rows(m, k, n, [&](std::int64_t i0, std::int64_t i1) {
    nn_rows(pa, pb, po, i0, i1, k, n);
  });
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  FEDCL_CHECK_EQ(a.ndim(), 2u);
  FEDCL_CHECK_EQ(b.ndim(), 2u);
  FEDCL_CHECK_EQ(a.dim(0), b.dim(0));
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  dispatch_rows(m, k, n, [&](std::int64_t i0, std::int64_t i1) {
    tn_rows(pa, pb, po, i0, i1, k, m, n);
  });
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  FEDCL_CHECK_EQ(a.ndim(), 2u);
  FEDCL_CHECK_EQ(b.ndim(), 2u);
  FEDCL_CHECK_EQ(a.dim(1), b.dim(1));
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (m >= kNtPackRows) {
    const std::vector<float> bt = pack_transpose(pb, n, k);
    const float* pbt = bt.data();
    dispatch_rows(m, k, n, [&](std::int64_t i0, std::int64_t i1) {
      nn_rows(pa, pbt, po, i0, i1, k, n);
    });
    return out;
  }
  dispatch_rows(m, k, n, [&](std::int64_t i0, std::int64_t i1) {
    matmul_nt_rows(pa, pb, po, i0, i1, k, n);
  });
  return out;
}

Tensor transpose2d(const Tensor& a) {
  FEDCL_CHECK_EQ(a.ndim(), 2u);
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  const float* pa = a.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
  return out;
}

float dot(const Tensor& a, const Tensor& b) {
  FEDCL_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(pa[i]) * static_cast<double>(pb[i]);
  return static_cast<float>(s);
}

Tensor row_sum(const Tensor& x) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  Tensor out({n, 1});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::int64_t j = 0; j < c; ++j) s += px[i * c + j];
    po[i] = static_cast<float>(s);
  }
  return out;
}

Tensor row_max(const Tensor& x) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FEDCL_CHECK_GT(c, 0);
  Tensor out({n, 1});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float m = px[i * c];
    for (std::int64_t j = 1; j < c; ++j) m = std::max(m, px[i * c + j]);
    po[i] = m;
  }
  return out;
}

Tensor broadcast_col(const Tensor& x, std::int64_t c) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  FEDCL_CHECK_EQ(x.dim(1), 1);
  const std::int64_t n = x.dim(0);
  Tensor out({n, c});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[i * c + j] = px[i];
  return out;
}

Tensor col_sum(const Tensor& x) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  Tensor out({c});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[j] += px[i * c + j];
  return out;
}

Tensor broadcast_row(const Tensor& x, std::int64_t n) {
  FEDCL_CHECK_EQ(x.ndim(), 1u);
  const std::int64_t c = x.dim(0);
  Tensor out({n, c});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < c; ++j) po[i * c + j] = px[j];
  return out;
}

Tensor expand_scalar(const Tensor& x, const Shape& shape) {
  FEDCL_CHECK_EQ(x.numel(), 1);
  return Tensor::full(shape, x.item());
}

Tensor sum_all(const Tensor& x) { return Tensor::scalar(x.sum()); }

Tensor pick(const Tensor& x, const std::vector<std::int64_t>& idx) {
  FEDCL_CHECK_EQ(x.ndim(), 2u);
  const std::int64_t n = x.dim(0), c = x.dim(1);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(idx.size()), n);
  Tensor out({n, 1});
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    FEDCL_CHECK(idx[i] >= 0 && idx[i] < c) << "label " << idx[i];
    po[i] = px[i * c + idx[i]];
  }
  return out;
}

Tensor scatter(const Tensor& s, const std::vector<std::int64_t>& idx,
               std::int64_t c) {
  FEDCL_CHECK_EQ(s.ndim(), 2u);
  FEDCL_CHECK_EQ(s.dim(1), 1);
  const std::int64_t n = s.dim(0);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(idx.size()), n);
  Tensor out({n, c});
  const float* ps = s.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    FEDCL_CHECK(idx[i] >= 0 && idx[i] < c) << "label " << idx[i];
    po[i * c + idx[i]] = ps[i];
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    float tol = atol + rtol * std::abs(pb[i]);
    if (std::abs(pa[i] - pb[i]) > tol) return false;
  }
  return true;
}

}  // namespace fedcl::tensor
