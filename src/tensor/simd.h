// Shared SIMD dispatch attribute for the hot tensor kernels.
//
// Kernels marked FEDCL_KERNEL_CLONES are compiled once per ISA level
// and dispatched at load time (GNU ifunc), so a generic build still
// uses AVX2/FMA or AVX-512 where the CPU has them; the baseline clone
// keeps the binary portable. Clones may contract multiply-adds into
// FMA differently, so only mark kernels whose results are either
// tolerance-checked or reached identically by every caller that must
// agree bitwise (the fused-sanitize rule: both sanitize hooks run the
// same kernel, so contraction cancels out of the comparison).
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define FEDCL_KERNEL_CLONES \
  __attribute__((target_clones("default", "arch=haswell", "arch=x86-64-v4")))
// For kernels whose best tile shape differs by ISA (wider registers
// want wider/taller tiles), clones are not enough: the clone mechanism
// recompiles one body, it cannot change the blocking. Such kernels
// provide an explicitly v4-targeted variant and branch on
// fedcl_cpu_has_v4() at the dispatch site. The variant must compute
// bitwise-identical per-element results (same ascending-k order, same
// contraction) so the branch never changes values, only speed.
#define FEDCL_KERNEL_V4 __attribute__((target("arch=x86-64-v4")))
#define FEDCL_HAVE_V4_KERNELS 1
inline bool fedcl_cpu_has_v4() {
  static const bool v = __builtin_cpu_supports("x86-64-v4") > 0;
  return v;
}
#else
#define FEDCL_KERNEL_CLONES
#define FEDCL_KERNEL_V4
#define FEDCL_HAVE_V4_KERNELS 0
#endif
