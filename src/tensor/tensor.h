// Dense float32 tensor with shared, contiguous storage.
//
// This is the numeric substrate under the autograd engine (autograd.h)
// and the DP machinery. Tensors are cheap to copy (storage is shared);
// clone() deep-copies. All math functions allocate a fresh result; the
// *_  suffixed members mutate in place and are used by the SGD
// optimizer and DP noise injection on detached buffers only.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace fedcl {
class Rng;
}

namespace fedcl::tensor {

class Tensor {
 public:
  // Empty (undefined) tensor; defined() is false.
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor from_vector(Shape shape, std::vector<float> values);
  // i.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  // i.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f,
                        float hi = 1.0f);
  // 1-element tensor holding value.
  static Tensor scalar(float value);

  bool defined() const { return data_ != nullptr; }
  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return numel_; }
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t dim(std::size_t i) const;

  float* data();
  const float* data() const;
  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  // Scalar value of a 1-element tensor.
  float item() const;
  std::vector<float> to_vector() const;

  // Shares storage; numel must match.
  Tensor reshape(Shape shape) const;
  // Deep copy.
  Tensor clone() const;
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // ---- in-place mutation (storage must not be aliased into a live
  // autograd graph; callers operate on detached buffers) ----
  Tensor& fill_(float value);
  Tensor& add_(const Tensor& other, float alpha = 1.0f);  // this += alpha*other
  Tensor& scale_(float s);
  Tensor& add_gaussian_noise_(Rng& rng, float stddev);
  Tensor& clamp_(float lo, float hi);

  // ---- reductions over all elements ----
  float sum() const;
  float l2_norm() const;
  float max_abs() const;

  std::string debug_string(std::int64_t max_entries = 8) const;

 private:
  Shape shape_;
  std::int64_t numel_ = 0;
  std::shared_ptr<float[]> data_;
};

// ---- elementwise binary (same shape) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- elementwise with scalar ----
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor pow_scalar(const Tensor& a, float p);

// ---- elementwise unary ----
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor relu(const Tensor& a);
// 1 where a > 0 else 0 (the ReLU mask).
Tensor step_mask(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor tanh(const Tensor& a);
// log(1 + e^a), numerically stable.
Tensor softplus(const Tensor& a);
// a where a > 0 else slope * a.
Tensor leaky_relu(const Tensor& a, float slope);
Tensor abs(const Tensor& a);
// -1 / 0 / +1 per element.
Tensor sign(const Tensor& a);

// ---- linear algebra ----
// Matrix products use a cache-blocked kernel and, for large shapes,
// split output rows across the shared compute pool. Each output
// element is accumulated by exactly one thread in ascending-k order,
// so results are bitwise identical for any thread count.
// a: [M,K], b: [K,N] -> [M,N]
Tensor matmul(const Tensor& a, const Tensor& b);
// a: [K,M], b: [K,N] -> a^T b [M,N], without materializing a^T.
Tensor matmul_tn(const Tensor& a, const Tensor& b);
// a: [M,K], b: [N,K] -> a b^T [M,N], without materializing b^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Raw serial kernels over contiguous row-major buffers, accumulating
// into out (callers zero-initialize). The per-example gradient engine
// runs them on per-example sub-matrix slices of a batch buffer.
void matmul_nn_into(const float* a, const float* b, float* out,
                    std::int64_t m, std::int64_t k, std::int64_t n);
// a: [K,M] column-addressed -> out += a^T b, out: [M,N].
void matmul_tn_into(const float* a, const float* b, float* out,
                    std::int64_t k, std::int64_t m, std::int64_t n);
// b: [N,K] -> out += a b^T, out: [M,N].
void matmul_nt_into(const float* a, const float* b, float* out,
                    std::int64_t m, std::int64_t k, std::int64_t n);

// a: [M,N] -> [N,M]
Tensor transpose2d(const Tensor& a);
float dot(const Tensor& a, const Tensor& b);

// ---- structured reductions / broadcasts used by autograd vjps ----
// x: [N,C] -> [N,1]
Tensor row_sum(const Tensor& x);
// x: [N,C] -> [N,1], maximum per row
Tensor row_max(const Tensor& x);
// x: [N,1] -> [N,C] (repeat each row value C times)
Tensor broadcast_col(const Tensor& x, std::int64_t c);
// x: [N,C] -> [C] (sum over rows)
Tensor col_sum(const Tensor& x);
// x: [C] -> [N,C]
Tensor broadcast_row(const Tensor& x, std::int64_t n);
// x: [1] -> given shape (repeat scalar)
Tensor expand_scalar(const Tensor& x, const Shape& shape);
// all-elements sum -> [1]
Tensor sum_all(const Tensor& x);
// x: [N,C], idx: size-N labels -> [N,1] with x[i, idx[i]]
Tensor pick(const Tensor& x, const std::vector<std::int64_t>& idx);
// s: [N,1], idx -> [N,C] zeros with s[i] at column idx[i]
Tensor scatter(const Tensor& s, const std::vector<std::int64_t>& idx,
               std::int64_t c);

bool allclose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace fedcl::tensor
