// Differentiable operations on Var.
//
// Every op's VJP is itself written with these ops, so gradients are
// differentiable graphs when backward(create_graph=true) is used.
// Shape contracts mirror the raw tensor functions in tensor.h.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/autograd.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace fedcl::tensor::ops {

// Constant leaf (requires_grad = false).
Var constant(Tensor value);
Var constant_scalar(float value);

// ---- elementwise binary (same shape) ----
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);

// ---- scalar variants ----
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);
// Elementwise power with a constant exponent. Inputs must be positive
// for non-integer p (follows std::pow semantics).
Var pow_scalar(const Var& a, float p);

// ---- unary ----
Var neg(const Var& a);
Var exp(const Var& a);
Var log(const Var& a);
// Elementwise square root (inputs must be positive).
Var sqrt(const Var& a);
Var relu(const Var& a);
Var sigmoid(const Var& a);
Var tanh(const Var& a);
Var softplus(const Var& a);
Var leaky_relu(const Var& a, float slope);
Var abs(const Var& a);
Var square(const Var& a);

// ---- linear algebra ----
Var matmul(const Var& a, const Var& b);
// a: [K,M], b: [K,N] -> a^T b. Transpose-aware: no transposed copy is
// materialized, and the VJPs of all three matmul variants are written
// in terms of each other, so backward passes stay copy-free too.
Var matmul_tn(const Var& a, const Var& b);
// a: [M,K], b: [N,K] -> a b^T.
Var matmul_nt(const Var& a, const Var& b);
Var transpose(const Var& a);

// ---- shape ----
Var reshape(const Var& a, Shape shape);

// ---- reductions / broadcasts ----
Var sum_all(const Var& a);                        // -> [1]
Var expand_scalar(const Var& a, Shape shape);     // [1] -> shape
Var row_sum(const Var& a);                        // [N,C] -> [N,1]
Var broadcast_col(const Var& a, std::int64_t c);  // [N,1] -> [N,C]
Var col_sum(const Var& a);                        // [N,C] -> [C]
Var broadcast_row(const Var& a, std::int64_t n);  // [C] -> [N,C]
// x[N,C] + row vector b[C]
Var add_rowvec(const Var& x, const Var& b);
// Per-row max as a *constant* (used for numerically stable logsumexp;
// the max shift cancels analytically, so detaching it is exact).
Var row_max_detached(const Var& a);

// ---- indexing ----
Var pick(const Var& x, std::vector<std::int64_t> idx);  // [N,C] -> [N,1]
Var scatter(const Var& s, std::vector<std::int64_t> idx,
            std::int64_t c);  // [N,1] -> [N,C]
// Flat gather: out[i] = x.flat[idx[i]] -> [idx.size()]. Adjoint of
// scatter_flat; indices may repeat (max-pooling ties).
Var gather_flat(const Var& x, std::vector<std::int64_t> idx);
// Flat scatter-add into a zero tensor of `shape`:
// out.flat[idx[i]] += s.flat[i].
Var scatter_flat(const Var& s, std::vector<std::int64_t> idx, Shape shape);

// ---- convolution support ----
Var im2col(const Var& x, const ConvSpec& spec);
Var col2im(const Var& cols, const ConvSpec& spec, std::int64_t n);

// ---- composites ----
// Sum of squares of all elements: sum_all(square(a)).
Var l2_norm_squared(const Var& a);
// Mean over all elements.
Var mean_all(const Var& a);

}  // namespace fedcl::tensor::ops
