#include "tensor/autograd.h"

#include <unordered_set>

#include "common/error.h"
#include "tensor/ops.h"

namespace fedcl::tensor {

namespace {
thread_local bool g_grad_mode = true;
}  // namespace

bool grad_mode_enabled() { return g_grad_mode; }

namespace detail {

Node::~Node() {
  // Clearing the VJP closure first is safe and shallow: its captured
  // Vars duplicate references the parents vector still holds, so no
  // node is released yet.
  vjp = nullptr;
  // Steal sole-owned parent nodes into an explicit worklist and retire
  // them one at a time. Each popped node has its own links severed the
  // same way before it is released, so the implicit recursive unwind
  // (this node -> parents -> their parents -> ...) never happens and
  // stack use stays constant regardless of graph depth.
  std::vector<std::shared_ptr<Node>> pending;
  auto steal_parents = [&pending](std::vector<Var>& parents) {
    for (Var& p : parents) {
      if (p.node_ != nullptr && p.node_.use_count() == 1) {
        pending.push_back(std::move(p.node_));
      }
    }
    parents.clear();
  };
  steal_parents(parents);
  while (!pending.empty()) {
    std::shared_ptr<Node> n = std::move(pending.back());
    pending.pop_back();
    n->vjp = nullptr;
    steal_parents(n->parents);
    // n releases here with no remaining links: trivial destructor body.
  }
}

}  // namespace detail

GradModeGuard::GradModeGuard(bool enabled) : previous_(g_grad_mode) {
  g_grad_mode = enabled;
}

GradModeGuard::~GradModeGuard() { g_grad_mode = previous_; }

Var::Var(Tensor value, bool requires_grad)
    : node_(std::make_shared<detail::Node>()) {
  FEDCL_CHECK(value.defined()) << "Var from undefined tensor";
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Var Var::make_op(Tensor value, std::vector<Var> parents,
                 std::function<std::vector<Var>(const Var&)> vjp,
                 const char* op) {
  bool needs = false;
  if (g_grad_mode) {
    for (const Var& p : parents) {
      FEDCL_CHECK(p.defined()) << "undefined parent for op " << op;
      needs = needs || p.requires_grad();
    }
  }
  if (!needs) {
    // Truncate the graph: constant result, no recorded parents.
    return Var(std::move(value), /*requires_grad=*/false);
  }
  Var v;
  v.node_ = std::make_shared<detail::Node>();
  v.node_->value = std::move(value);
  v.node_->requires_grad = true;
  v.node_->parents = std::move(parents);
  v.node_->vjp = std::move(vjp);
  v.node_->op = op;
  return v;
}

const Tensor& Var::value() const {
  FEDCL_CHECK(defined()) << "value() on undefined Var";
  return node_->value;
}

bool Var::requires_grad() const { return defined() && node_->requires_grad; }

const char* Var::op_name() const {
  FEDCL_CHECK(defined());
  return node_->op;
}

bool Var::is_leaf() const {
  FEDCL_CHECK(defined());
  return node_->parents.empty() && !node_->vjp;
}

Var Var::detach() const {
  FEDCL_CHECK(defined());
  return Var(node_->value, /*requires_grad=*/false);
}

void Var::set_value(Tensor value) {
  FEDCL_CHECK(defined());
  FEDCL_CHECK(is_leaf()) << "set_value on interior node " << node_->op;
  FEDCL_CHECK(value.shape() == node_->value.shape())
      << "set_value shape mismatch";
  node_->value = std::move(value);
}

bool Gradients::contains(const Var& v) const {
  return v.defined() && grads_.count(v.node()) > 0;
}

Var Gradients::of(const Var& v) const {
  FEDCL_CHECK(v.defined());
  auto it = grads_.find(v.node());
  FEDCL_CHECK(it != grads_.end())
      << "no gradient recorded for node op=" << v.op_name()
      << " (not reachable from backward root or requires_grad=false)";
  return it->second;
}

namespace {

// Post-order (parents before node) over the requires_grad subgraph.
std::vector<const detail::Node*> topo_order(const detail::Node* root) {
  std::vector<const detail::Node*> order;
  std::unordered_set<const detail::Node*> visited;
  // Explicit stack DFS; frames carry the next parent index to explore.
  struct Frame {
    const detail::Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      const Var& p = f.node->parents[f.next_parent++];
      const detail::Node* pn = p.node();
      if (pn->requires_grad && visited.insert(pn).second) {
        stack.push_back({pn, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  return order;  // parents first, root last
}

}  // namespace

Gradients backward(const Var& root, bool create_graph) {
  FEDCL_CHECK(root.defined());
  FEDCL_CHECK(root.requires_grad())
      << "backward root does not require grad";
  FEDCL_CHECK_EQ(root.numel(), 1);

  Gradients out;
  auto& grads = out.grads_;

  GradModeGuard guard(create_graph);
  grads[root.node()] = Var(Tensor::ones(root.shape()));

  std::vector<const detail::Node*> order = topo_order(root.node());
  // Reverse topological: root first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const detail::Node* node = *it;
    auto git = grads.find(node);
    if (git == grads.end()) continue;  // unreachable from root's gradient
    if (!node->vjp) continue;          // leaf
    std::vector<Var> parent_grads = node->vjp(git->second);
    FEDCL_CHECK_EQ(parent_grads.size(), node->parents.size());
    for (std::size_t i = 0; i < node->parents.size(); ++i) {
      const Var& p = node->parents[i];
      if (!p.requires_grad()) continue;
      const Var& g = parent_grads[i];
      FEDCL_CHECK(g.defined())
          << "vjp of " << node->op << " returned no grad for parent " << i;
      FEDCL_CHECK(g.value().shape() == p.value().shape())
          << "vjp of " << node->op << ": grad shape "
          << shape_str(g.value().shape()) << " vs parent "
          << shape_str(p.value().shape());
      auto pit = grads.find(p.node());
      if (pit == grads.end()) {
        grads[p.node()] = g;
      } else {
        pit->second = ops::add(pit->second, g);
      }
    }
    // Interior gradients are not part of the public result; dropping
    // them here bounds memory. Leaves (parameters, inputs) stay.
    if (!node->parents.empty() && node != root.node()) grads.erase(node);
  }

  // The root's own gradient (ones) is rarely useful; keep it for
  // completeness only when the root is a leaf.
  if (!root.is_leaf()) grads.erase(root.node());
  return out;
}

}  // namespace fedcl::tensor
