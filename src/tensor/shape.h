// Shape type shared by tensor and autograd code.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace fedcl::tensor {

using Shape = std::vector<std::int64_t>;

inline std::int64_t shape_numel(const Shape& s) {
  std::int64_t n = 1;
  for (std::int64_t d : s) n *= d;
  return n;
}

inline std::string shape_str(const Shape& s) {
  std::string out = "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(s[i]);
  }
  out += "]";
  return out;
}

}  // namespace fedcl::tensor
