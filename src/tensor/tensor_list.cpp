#include "tensor/tensor_list.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::tensor::list {

TensorList zeros_like(const TensorList& a) {
  TensorList out;
  out.reserve(a.size());
  for (const Tensor& t : a) out.emplace_back(t.shape());
  return out;
}

TensorList clone(const TensorList& a) {
  TensorList out;
  out.reserve(a.size());
  for (const Tensor& t : a) out.push_back(t.clone());
  return out;
}

void add_(TensorList& a, const TensorList& b, float alpha) {
  FEDCL_CHECK_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i].add_(b[i], alpha);
}

void scale_(TensorList& a, float s) {
  for (Tensor& t : a) t.scale_(s);
}

void add_gaussian_noise_(TensorList& a, Rng& rng, float stddev) {
  for (Tensor& t : a) t.add_gaussian_noise_(rng, stddev);
}

double l2_norm(const TensorList& a) {
  double s = 0.0;
  for (const Tensor& t : a) {
    double n = t.l2_norm();
    s += n * n;
  }
  return std::sqrt(s);
}

double l2_norm_subset(const TensorList& a,
                      const std::vector<std::size_t>& idx) {
  double s = 0.0;
  for (std::size_t i : idx) {
    FEDCL_CHECK_LT(i, a.size());
    double n = a[i].l2_norm();
    s += n * n;
  }
  return std::sqrt(s);
}

std::int64_t total_numel(const TensorList& a) {
  std::int64_t n = 0;
  for (const Tensor& t : a) n += t.numel();
  return n;
}

Tensor flatten(const TensorList& a) {
  Tensor out({total_numel(a)});
  float* p = out.data();
  for (const Tensor& t : a) {
    std::memcpy(p, t.data(), sizeof(float) * static_cast<std::size_t>(t.numel()));
    p += t.numel();
  }
  return out;
}

TensorList unflatten(const Tensor& flat, const std::vector<Shape>& shapes) {
  TensorList out;
  out.reserve(shapes.size());
  const float* p = flat.data();
  std::int64_t consumed = 0;
  for (const Shape& s : shapes) {
    Tensor t(s);
    std::memcpy(t.data(), p + consumed,
                sizeof(float) * static_cast<std::size_t>(t.numel()));
    consumed += t.numel();
    out.push_back(std::move(t));
  }
  FEDCL_CHECK_EQ(consumed, flat.numel());
  return out;
}

std::vector<Shape> shapes_of(const TensorList& a) {
  std::vector<Shape> out;
  out.reserve(a.size());
  for (const Tensor& t : a) out.push_back(t.shape());
  return out;
}

TensorList PerExampleGrads::example(std::int64_t j) const {
  FEDCL_CHECK(j >= 0 && j < batch) << "example " << j << " batch " << batch;
  TensorList out;
  out.reserve(rows.size());
  for (std::size_t p = 0; p < rows.size(); ++p) {
    Tensor t(shapes[p]);
    const std::int64_t width = t.numel();
    std::memcpy(t.data(), rows[p].data() + j * width,
                sizeof(float) * static_cast<std::size_t>(width));
    out.push_back(std::move(t));
  }
  return out;
}

void PerExampleGrads::set_example(std::int64_t j, const TensorList& grads) {
  FEDCL_CHECK(j >= 0 && j < batch) << "example " << j << " batch " << batch;
  FEDCL_CHECK_EQ(grads.size(), rows.size());
  for (std::size_t p = 0; p < rows.size(); ++p) {
    const std::int64_t width = grads[p].numel();
    FEDCL_CHECK_EQ(width, rows[p].numel() / batch);
    std::memcpy(rows[p].data() + j * width, grads[p].data(),
                sizeof(float) * static_cast<std::size_t>(width));
  }
}

TensorList PerExampleGrads::mean() const {
  FEDCL_CHECK_GT(batch, 0);
  TensorList out;
  out.reserve(rows.size());
  const float inv = 1.0f / static_cast<float>(batch);
  for (std::size_t p = 0; p < rows.size(); ++p) {
    Tensor t(shapes[p]);
    const std::int64_t width = t.numel();
    const float* src = rows[p].data();
    float* dst = t.data();
    for (std::int64_t j = 0; j < batch; ++j) {
      const float* row = src + j * width;
      for (std::int64_t i = 0; i < width; ++i) dst[i] += row[i];
    }
    for (std::int64_t i = 0; i < width; ++i) dst[i] *= inv;
    out.push_back(std::move(t));
  }
  return out;
}

double PerExampleGrads::example_l2_norm(std::int64_t j) const {
  FEDCL_CHECK(j >= 0 && j < batch) << "example " << j << " batch " << batch;
  double s = 0.0;
  for (std::size_t p = 0; p < rows.size(); ++p) {
    const std::int64_t width = rows[p].numel() / batch;
    const float* row = rows[p].data() + j * width;
    for (std::int64_t i = 0; i < width; ++i)
      s += static_cast<double>(row[i]) * static_cast<double>(row[i]);
  }
  return std::sqrt(s);
}

PerExampleGrads make_per_example(std::int64_t batch,
                                 std::vector<Shape> shapes) {
  FEDCL_CHECK_GT(batch, 0);
  PerExampleGrads out;
  out.batch = batch;
  out.shapes = std::move(shapes);
  out.rows.reserve(out.shapes.size());
  for (const Shape& s : out.shapes) {
    out.rows.emplace_back(Shape{batch, shape_numel(s)});
  }
  return out;
}

bool allclose(const TensorList& a, const TensorList& b, float atol,
              float rtol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!tensor::allclose(a[i], b[i], atol, rtol)) return false;
  }
  return true;
}

}  // namespace fedcl::tensor::list
