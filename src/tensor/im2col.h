// im2col / col2im for NHWC convolution.
//
// im2col and col2im are mutually adjoint linear maps, so conv2d built
// as im2col + matmul is automatically twice differentiable — which the
// gradient-leakage reconstruction attack relies on.
//
// Both directions run a blocked fast path: in NHWC the kw range of one
// (output row, kh) pair is a single contiguous span of kernel_w * in_c
// floats in the source image, so the per-element bounds checks of the
// naive triple loop collapse into one clamped memcpy/memset (im2col)
// or one vectorized span add (col2im) per (row, kh). Images are
// independent, so both directions parallelize over the batch with
// bitwise-stable results (per-image work is serial and identical to
// the single-threaded order).
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace fedcl::tensor {

struct ConvSpec {
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t in_c = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
  // Number of columns in the unfolded matrix.
  std::int64_t patch_size() const { return kernel_h * kernel_w * in_c; }
  void validate() const;
};

// x: [N, H, W, C] (NHWC) -> [N * OH * OW, KH*KW*C].
// Row r = ((n * OH + oh) * OW + ow); within a row, elements are laid out
// (kh, kw, c), matching an NHWC weight tensor reshaped to
// [KH*KW*C, OC].
Tensor im2col(const Tensor& x, const ConvSpec& spec);

// Adjoint of im2col: cols [N*OH*OW, KH*KW*C] -> [N, H, W, C], with
// overlapping patches accumulated.
Tensor col2im(const Tensor& cols, const ConvSpec& spec, std::int64_t n);

// Fused conv input gradient: col2im(delta @ w^T) without materializing
// the [N*OH*OW, KH*KW*C] unfolded gradient. delta is the output
// gradient flattened to [N*OH*OW, OC]; w is the conv weight reshaped
// to [KH*KW*C, OC]. Each image's patch-gradient tile is computed into
// a scratch buffer and scattered immediately, so the working set is
// one image instead of the whole batch. Parallel over images with a
// fixed per-image accumulation order, so results are independent of
// thread count.
Tensor conv_input_grad(const Tensor& delta, const Tensor& w,
                       const ConvSpec& spec, std::int64_t n);

}  // namespace fedcl::tensor
