// im2col / col2im for NHWC convolution.
//
// im2col and col2im are mutually adjoint linear maps, so conv2d built
// as im2col + matmul is automatically twice differentiable — which the
// gradient-leakage reconstruction attack relies on.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace fedcl::tensor {

struct ConvSpec {
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t in_c = 0;
  std::int64_t kernel_h = 0;
  std::int64_t kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
  // Number of columns in the unfolded matrix.
  std::int64_t patch_size() const { return kernel_h * kernel_w * in_c; }
  void validate() const;
};

// x: [N, H, W, C] (NHWC) -> [N * OH * OW, KH*KW*C].
// Row r = ((n * OH + oh) * OW + ow); within a row, elements are laid out
// (kh, kw, c), matching an NHWC weight tensor reshaped to
// [KH*KW*C, OC].
Tensor im2col(const Tensor& x, const ConvSpec& spec);

// Adjoint of im2col: cols [N*OH*OW, KH*KW*C] -> [N, H, W, C], with
// overlapping patches accumulated.
Tensor col2im(const Tensor& cols, const ConvSpec& spec, std::int64_t n);

}  // namespace fedcl::tensor
