#include "tensor/ops.h"

#include <utility>

#include "common/error.h"

// Naming convention inside VJP lambdas: `g` is the upstream gradient of
// the op's output. Each lambda returns one gradient per parent, in
// parent order. Ops that need their own output for the derivative
// (exp, sigmoid, tanh) recompute it from the parent instead of
// capturing the output Var — capturing the output would create a
// shared_ptr cycle node -> vjp -> node.

namespace fedcl::tensor::ops {

namespace t = fedcl::tensor;

Var constant(Tensor value) { return Var(std::move(value), false); }

Var constant_scalar(float value) { return constant(Tensor::scalar(value)); }

Var add(const Var& a, const Var& b) {
  return Var::make_op(
      t::add(a.value(), b.value()), {a, b},
      [](const Var& g) -> std::vector<Var> { return {g, g}; }, "add");
}

Var sub(const Var& a, const Var& b) {
  return Var::make_op(
      t::sub(a.value(), b.value()), {a, b},
      [](const Var& g) -> std::vector<Var> { return {g, neg(g)}; }, "sub");
}

Var mul(const Var& a, const Var& b) {
  return Var::make_op(
      t::mul(a.value(), b.value()), {a, b},
      [a, b](const Var& g) -> std::vector<Var> {
        return {mul(g, b), mul(g, a)};
      },
      "mul");
}

Var div(const Var& a, const Var& b) {
  return Var::make_op(
      t::div(a.value(), b.value()), {a, b},
      [a, b](const Var& g) -> std::vector<Var> {
        Var ga = div(g, b);
        Var gb = neg(div(mul(g, a), mul(b, b)));
        return {ga, gb};
      },
      "div");
}

Var add_scalar(const Var& a, float s) {
  return Var::make_op(
      t::add_scalar(a.value(), s), {a},
      [](const Var& g) -> std::vector<Var> { return {g}; }, "add_scalar");
}

Var mul_scalar(const Var& a, float s) {
  return Var::make_op(
      t::mul_scalar(a.value(), s), {a},
      [s](const Var& g) -> std::vector<Var> { return {mul_scalar(g, s)}; },
      "mul_scalar");
}

Var pow_scalar(const Var& a, float p) {
  return Var::make_op(
      t::pow_scalar(a.value(), p), {a},
      [a, p](const Var& g) -> std::vector<Var> {
        // d/da a^p = p * a^(p-1)
        return {mul(g, mul_scalar(pow_scalar(a, p - 1.0f), p))};
      },
      "pow_scalar");
}

Var neg(const Var& a) {
  return Var::make_op(
      t::neg(a.value()), {a},
      [](const Var& g) -> std::vector<Var> { return {neg(g)}; }, "neg");
}

Var exp(const Var& a) {
  return Var::make_op(
      t::exp(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> { return {mul(g, exp(a))}; },
      "exp");
}

Var log(const Var& a) {
  return Var::make_op(
      t::log(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> { return {div(g, a)}; }, "log");
}

Var sqrt(const Var& a) {
  return Var::make_op(
      t::sqrt(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> {
        // d/da sqrt(a) = 1 / (2 sqrt(a)), recomputed from the parent.
        return {div(g, mul_scalar(sqrt(a), 2.0f))};
      },
      "sqrt");
}

Var relu(const Var& a) {
  return Var::make_op(
      t::relu(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> {
        // The 0/1 mask is piecewise constant; treating it as a constant
        // is the exact a.e. derivative and keeps double-backward sane.
        Var mask = constant(t::step_mask(a.value()));
        return {mul(g, mask)};
      },
      "relu");
}

Var sigmoid(const Var& a) {
  return Var::make_op(
      t::sigmoid(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> {
        Var s = sigmoid(a);
        Var one = constant(Tensor::ones(a.value().shape()));
        return {mul(g, mul(s, sub(one, s)))};
      },
      "sigmoid");
}

Var tanh(const Var& a) {
  return Var::make_op(
      t::tanh(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> {
        Var th = tanh(a);
        Var one = constant(Tensor::ones(a.value().shape()));
        return {mul(g, sub(one, mul(th, th)))};
      },
      "tanh");
}

Var softplus(const Var& a) {
  return Var::make_op(
      t::softplus(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> {
        // d/dx log(1+e^x) = sigmoid(x).
        return {mul(g, sigmoid(a))};
      },
      "softplus");
}

Var leaky_relu(const Var& a, float slope) {
  return Var::make_op(
      t::leaky_relu(a.value(), slope), {a},
      [a, slope](const Var& g) -> std::vector<Var> {
        // Piecewise-constant derivative mask: 1 above 0, slope below.
        Tensor mask = t::step_mask(a.value());
        float* p = mask.data();
        for (std::int64_t i = 0; i < mask.numel(); ++i) {
          if (p[i] == 0.0f) p[i] = slope;
        }
        return {mul(g, constant(std::move(mask)))};
      },
      "leaky_relu");
}

Var abs(const Var& a) {
  return Var::make_op(
      t::abs(a.value()), {a},
      [a](const Var& g) -> std::vector<Var> {
        // sign(x) is the a.e. derivative (constant under double
        // backward, like the relu mask).
        return {mul(g, constant(t::sign(a.value())))};
      },
      "abs");
}

Var square(const Var& a) { return mul(a, a); }

Var matmul(const Var& a, const Var& b) {
  return Var::make_op(
      t::matmul(a.value(), b.value()), {a, b},
      [a, b](const Var& g) -> std::vector<Var> {
        Var ga = matmul_nt(g, b);   // g b^T
        Var gb = matmul_tn(a, g);   // a^T g
        return {ga, gb};
      },
      "matmul");
}

Var matmul_tn(const Var& a, const Var& b) {
  return Var::make_op(
      t::matmul_tn(a.value(), b.value()), {a, b},
      [a, b](const Var& g) -> std::vector<Var> {
        Var ga = matmul_nt(b, g);   // b g^T -> [K,M]
        Var gb = matmul(a, g);      // a g   -> [K,N]
        return {ga, gb};
      },
      "matmul_tn");
}

Var matmul_nt(const Var& a, const Var& b) {
  return Var::make_op(
      t::matmul_nt(a.value(), b.value()), {a, b},
      [a, b](const Var& g) -> std::vector<Var> {
        Var ga = matmul(g, b);      // g b   -> [M,K]
        Var gb = matmul_tn(g, a);   // g^T a -> [N,K]
        return {ga, gb};
      },
      "matmul_nt");
}

Var transpose(const Var& a) {
  return Var::make_op(
      t::transpose2d(a.value()), {a},
      [](const Var& g) -> std::vector<Var> { return {transpose(g)}; },
      "transpose");
}

Var reshape(const Var& a, Shape shape) {
  Shape original = a.value().shape();
  return Var::make_op(
      a.value().reshape(std::move(shape)), {a},
      [original](const Var& g) -> std::vector<Var> {
        return {reshape(g, original)};
      },
      "reshape");
}

Var sum_all(const Var& a) {
  Shape original = a.value().shape();
  return Var::make_op(
      t::sum_all(a.value()), {a},
      [original](const Var& g) -> std::vector<Var> {
        return {expand_scalar(g, original)};
      },
      "sum_all");
}

Var expand_scalar(const Var& a, Shape shape) {
  FEDCL_CHECK_EQ(a.numel(), 1);
  return Var::make_op(
      t::expand_scalar(a.value(), shape), {a},
      [](const Var& g) -> std::vector<Var> { return {sum_all(g)}; },
      "expand_scalar");
}

Var row_sum(const Var& a) {
  const std::int64_t c = a.value().dim(1);
  return Var::make_op(
      t::row_sum(a.value()), {a},
      [c](const Var& g) -> std::vector<Var> { return {broadcast_col(g, c)}; },
      "row_sum");
}

Var broadcast_col(const Var& a, std::int64_t c) {
  return Var::make_op(
      t::broadcast_col(a.value(), c), {a},
      [](const Var& g) -> std::vector<Var> { return {row_sum(g)}; },
      "broadcast_col");
}

Var col_sum(const Var& a) {
  const std::int64_t n = a.value().dim(0);
  return Var::make_op(
      t::col_sum(a.value()), {a},
      [n](const Var& g) -> std::vector<Var> { return {broadcast_row(g, n)}; },
      "col_sum");
}

Var broadcast_row(const Var& a, std::int64_t n) {
  return Var::make_op(
      t::broadcast_row(a.value(), n), {a},
      [](const Var& g) -> std::vector<Var> { return {col_sum(g)}; },
      "broadcast_row");
}

Var add_rowvec(const Var& x, const Var& b) {
  FEDCL_CHECK_EQ(x.value().ndim(), 2u);
  FEDCL_CHECK_EQ(b.value().ndim(), 1u);
  FEDCL_CHECK_EQ(x.value().dim(1), b.value().dim(0));
  const std::int64_t n = x.value().dim(0);
  Tensor out = t::add(x.value(), t::broadcast_row(b.value(), n));
  return Var::make_op(
      std::move(out), {x, b},
      [](const Var& g) -> std::vector<Var> { return {g, col_sum(g)}; },
      "add_rowvec");
}

Var row_max_detached(const Var& a) {
  return constant(t::row_max(a.value()));
}

Var pick(const Var& x, std::vector<std::int64_t> idx) {
  const std::int64_t c = x.value().dim(1);
  auto idx_copy = idx;
  return Var::make_op(
      t::pick(x.value(), idx), {x},
      [idx_copy, c](const Var& g) -> std::vector<Var> {
        return {scatter(g, idx_copy, c)};
      },
      "pick");
}

Var scatter(const Var& s, std::vector<std::int64_t> idx, std::int64_t c) {
  auto idx_copy = idx;
  return Var::make_op(
      t::scatter(s.value(), idx, c), {s},
      [idx_copy](const Var& g) -> std::vector<Var> {
        return {pick(g, idx_copy)};
      },
      "scatter");
}

Var gather_flat(const Var& x, std::vector<std::int64_t> idx) {
  Tensor out({static_cast<std::int64_t>(idx.size())});
  const float* src = x.value().data();
  const std::int64_t n = x.value().numel();
  float* dst = out.data();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    FEDCL_CHECK(idx[i] >= 0 && idx[i] < n) << "gather index " << idx[i];
    dst[i] = src[idx[i]];
  }
  Shape xshape = x.value().shape();
  auto idx_copy = idx;
  return Var::make_op(
      std::move(out), {x},
      [idx_copy, xshape](const Var& g) -> std::vector<Var> {
        return {scatter_flat(g, idx_copy, xshape)};
      },
      "gather_flat");
}

Var scatter_flat(const Var& s, std::vector<std::int64_t> idx, Shape shape) {
  FEDCL_CHECK_EQ(s.value().numel(),
                 static_cast<std::int64_t>(idx.size()));
  Tensor out(shape);
  const float* src = s.value().data();
  float* dst = out.data();
  const std::int64_t n = out.numel();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    FEDCL_CHECK(idx[i] >= 0 && idx[i] < n) << "scatter index " << idx[i];
    dst[idx[i]] += src[i];
  }
  auto idx_copy = idx;
  Shape s_shape = s.value().shape();
  return Var::make_op(
      std::move(out), {s},
      [idx_copy, s_shape](const Var& g) -> std::vector<Var> {
        return {reshape(gather_flat(g, idx_copy), s_shape)};
      },
      "scatter_flat");
}

Var im2col(const Var& x, const ConvSpec& spec) {
  const std::int64_t n = x.value().dim(0);
  return Var::make_op(
      t::im2col(x.value(), spec), {x},
      [spec, n](const Var& g) -> std::vector<Var> {
        return {col2im(g, spec, n)};
      },
      "im2col");
}

Var col2im(const Var& cols, const ConvSpec& spec, std::int64_t n) {
  return Var::make_op(
      t::col2im(cols.value(), spec, n), {cols},
      [spec](const Var& g) -> std::vector<Var> { return {im2col(g, spec)}; },
      "col2im");
}

Var l2_norm_squared(const Var& a) { return sum_all(square(a)); }

Var mean_all(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  return mul_scalar(sum_all(a), inv);
}

}  // namespace fedcl::tensor::ops
