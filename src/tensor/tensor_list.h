// Helpers over ordered lists of tensors (one list entry per model
// parameter). Model updates, gradients and DP sanitization all operate
// on such lists.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fedcl {
class Rng;
}

namespace fedcl::tensor::list {

using TensorList = std::vector<Tensor>;

TensorList zeros_like(const TensorList& a);
TensorList clone(const TensorList& a);
// a += alpha * b (elementwise per entry; shapes must match).
void add_(TensorList& a, const TensorList& b, float alpha = 1.0f);
void scale_(TensorList& a, float s);
void add_gaussian_noise_(TensorList& a, Rng& rng, float stddev);
// L2 norm over the concatenation of all entries.
double l2_norm(const TensorList& a);
double l2_norm_subset(const TensorList& a, const std::vector<std::size_t>& idx);
std::int64_t total_numel(const TensorList& a);

// Concatenate all entries into one flat [total] tensor.
Tensor flatten(const TensorList& a);
// Inverse of flatten given the original shapes.
TensorList unflatten(const Tensor& flat, const std::vector<Shape>& shapes);
std::vector<Shape> shapes_of(const TensorList& a);

bool allclose(const TensorList& a, const TensorList& b, float atol = 1e-5f,
              float rtol = 1e-4f);

// Batched per-example gradients: for each model parameter p, rows[p]
// is a [B, numel(p)] matrix whose row j is example j's gradient of
// that parameter, flattened. This is the layout the batched Fed-CDP
// path works in — per-example clipping and noising operate on rows in
// place, so no per-example TensorList is ever materialized.
struct PerExampleGrads {
  std::int64_t batch = 0;
  // Original parameter shapes (row r of rows[p] reshapes to shapes[p]).
  std::vector<Shape> shapes;
  TensorList rows;

  bool empty() const { return rows.empty(); }
  // Example j's gradient as a TensorList in the original shapes (copy).
  TensorList example(std::int64_t j) const;
  // Overwrites example j's rows from a TensorList in original shapes.
  void set_example(std::int64_t j, const TensorList& grads);
  // Mean over examples, in the original parameter shapes.
  TensorList mean() const;
  // L2 norm of example j's gradient across all parameters.
  double example_l2_norm(std::int64_t j) const;
};

// Zero-initialized batched layout for the given parameter shapes.
PerExampleGrads make_per_example(std::int64_t batch,
                                 std::vector<Shape> shapes);

}  // namespace fedcl::tensor::list
