// Helpers over ordered lists of tensors (one list entry per model
// parameter). Model updates, gradients and DP sanitization all operate
// on such lists.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace fedcl {
class Rng;
}

namespace fedcl::tensor::list {

using TensorList = std::vector<Tensor>;

TensorList zeros_like(const TensorList& a);
TensorList clone(const TensorList& a);
// a += alpha * b (elementwise per entry; shapes must match).
void add_(TensorList& a, const TensorList& b, float alpha = 1.0f);
void scale_(TensorList& a, float s);
void add_gaussian_noise_(TensorList& a, Rng& rng, float stddev);
// L2 norm over the concatenation of all entries.
double l2_norm(const TensorList& a);
double l2_norm_subset(const TensorList& a, const std::vector<std::size_t>& idx);
std::int64_t total_numel(const TensorList& a);

// Concatenate all entries into one flat [total] tensor.
Tensor flatten(const TensorList& a);
// Inverse of flatten given the original shapes.
TensorList unflatten(const Tensor& flat, const std::vector<Shape>& shapes);
std::vector<Shape> shapes_of(const TensorList& a);

bool allclose(const TensorList& a, const TensorList& b, float atol = 1e-5f,
              float rtol = 1e-4f);

}  // namespace fedcl::tensor::list
