// Define-by-run reverse-mode automatic differentiation with support for
// higher-order gradients.
//
// Design notes:
//  - A Var is a shared handle to a Node holding the forward value, the
//    parent Vars and a VJP (vector-Jacobian product) callback.
//  - Every VJP is implemented *in terms of other ops* (ops.h), so
//    running backward(root, create_graph=true) produces gradients that
//    are themselves differentiable graphs. The gradient-leakage
//    reconstruction attack differentiates the training gradient w.r.t.
//    the input this way.
//  - Gradients are returned in an external Gradients map rather than
//    stored on nodes. This avoids shared_ptr cycles (a node's gradient
//    graph usually references the node's parents, sometimes the node
//    itself) and makes successive backward passes independent.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace fedcl::tensor {

class Var;

namespace detail {

struct Node {
  // Iterative teardown: releasing a deep op chain through the implicit
  // destructor would recurse once per node (Var -> shared_ptr<Node> ->
  // parents -> Var ...) and overflow the stack around 20k ops.
  ~Node();

  Tensor value;
  bool requires_grad = false;
  std::vector<Var> parents;
  // Maps the upstream gradient to per-parent gradient contributions.
  // Entries for parents that do not require grad may be undefined Vars.
  std::function<std::vector<Var>(const Var&)> vjp;
  const char* op = "leaf";
};

}  // namespace detail

// Whether newly created ops record the graph (thread-local).
bool grad_mode_enabled();

// RAII switch of the grad mode, used by backward() and user code that
// wants inference-only forward passes.
class GradModeGuard {
 public:
  explicit GradModeGuard(bool enabled);
  ~GradModeGuard();
  GradModeGuard(const GradModeGuard&) = delete;
  GradModeGuard& operator=(const GradModeGuard&) = delete;

 private:
  bool previous_;
};

class Var {
 public:
  // Undefined handle.
  Var() = default;
  // Leaf holding a value. requires_grad leaves are the roots gradients
  // are reported for (parameters, attacked inputs).
  explicit Var(Tensor value, bool requires_grad = false);

  // Interior node; used by ops.
  static Var make_op(Tensor value, std::vector<Var> parents,
                     std::function<std::vector<Var>(const Var&)> vjp,
                     const char* op);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  const Shape& shape() const { return value().shape(); }
  std::int64_t numel() const { return value().numel(); }
  bool requires_grad() const;
  const char* op_name() const;
  bool is_leaf() const;

  // A leaf Var sharing this value but detached from the graph.
  Var detach() const;

  // In-place update of a *leaf* value (optimizer step). Rejected for
  // interior nodes because it would silently corrupt recorded graphs.
  void set_value(Tensor value);

  const detail::Node* node() const { return node_.get(); }

 private:
  friend struct detail::Node;  // iterative graph teardown steals node_
  std::shared_ptr<detail::Node> node_;
};

// Result of a backward pass: gradient per reachable requires_grad node.
class Gradients {
 public:
  bool contains(const Var& v) const;
  // Gradient of the backward root w.r.t. v; FEDCL_CHECK-fails when the
  // node was not reached (use contains() to probe).
  Var of(const Var& v) const;
  std::size_t size() const { return grads_.size(); }

 private:
  friend Gradients backward(const Var& root, bool create_graph);
  std::unordered_map<const detail::Node*, Var> grads_;
};

// Reverse-mode sweep from a scalar root (numel == 1, requires_grad).
// With create_graph=true the returned gradients are differentiable
// graphs; otherwise they are constants.
Gradients backward(const Var& root, bool create_graph = false);

}  // namespace fedcl::tensor
