// The Gaussian mechanism (Definition 2): additive noise
// N(0, sigma^2 * S^2) calibrated to sensitivity S.
#pragma once

#include "tensor/tensor_list.h"

namespace fedcl {
class Rng;
}

namespace fedcl::dp {

using tensor::Tensor;
using tensor::list::TensorList;

class GaussianMechanism {
 public:
  // noise_scale is the paper's sigma; sensitivity is S (set to the
  // clipping bound C in both Fed-SDP and Fed-CDP).
  GaussianMechanism(double noise_scale, double sensitivity);

  double noise_scale() const { return noise_scale_; }
  double sensitivity() const { return sensitivity_; }
  double noise_stddev() const { return noise_scale_ * sensitivity_; }

  // Adds N(0, (sigma*S)^2) i.i.d. to every coordinate.
  void sanitize(TensorList& update, Rng& rng) const;
  void sanitize(Tensor& update, Rng& rng) const;
  // Batched per-example layout: noise is drawn example-major (example
  // j's parameters in order), the same stream order as calling
  // sanitize on each example's TensorList in turn.
  void sanitize_per_example(tensor::list::PerExampleGrads& grads,
                            Rng& rng) const;

  // The minimal sigma that makes one application (epsilon, delta)-DP
  // per Definition 2 / Lemma 1 (valid for 0 < epsilon < 1).
  static double sigma_for(double epsilon, double delta);

 private:
  double noise_scale_;
  double sensitivity_;
};

}  // namespace fedcl::dp
