// The Gaussian mechanism (Definition 2): additive noise
// N(0, sigma^2 * S^2) calibrated to sensitivity S.
#pragma once

#include "tensor/tensor_list.h"

namespace fedcl {
class Rng;
}

namespace fedcl::dp {

using tensor::Tensor;
using tensor::list::TensorList;

// Which generator the per-example sanitizers draw Gaussian noise from.
//
// kCounter (default): Philox counter-based noise (common/philox.h).
//   Each per-example sanitize consumes exactly ONE 64-bit key from the
//   caller's Rng; every noise element is then a pure function of
//   (key, param index, element index), so the fill parallelizes over
//   examples and threads with bitwise-stable results.
// kStream: the legacy sequential SplitMix64 stream (one rng.normal()
//   per element, example-major). Kept behind this flag for one release
//   so pre-migration baselines can be regenerated deliberately; the
//   two modes produce different (equally calibrated) noise values.
//
// Selected once at startup from FEDCL_NOISE_MODE ("counter"/"philox"
// vs "stream"); set_noise_mode overrides it for tests and benches.
enum class NoiseMode { kCounter, kStream };
NoiseMode noise_mode();
void set_noise_mode(NoiseMode mode);

class GaussianMechanism {
 public:
  // noise_scale is the paper's sigma; sensitivity is S (set to the
  // clipping bound C in both Fed-SDP and Fed-CDP).
  GaussianMechanism(double noise_scale, double sensitivity);

  double noise_scale() const { return noise_scale_; }
  double sensitivity() const { return sensitivity_; }
  double noise_stddev() const { return noise_scale_ * sensitivity_; }

  // Adds N(0, (sigma*S)^2) i.i.d. to every coordinate. Always uses the
  // sequential stream: client-update noise is one draw per element once
  // per round, far off the hot path.
  void sanitize(TensorList& update, Rng& rng) const;
  void sanitize(Tensor& update, Rng& rng) const;
  // One example's gradient on the per-example hot path. In counter
  // mode draws a single 64-bit key from `rng` and fills Philox noise
  // (stream id = param index); in stream mode identical to sanitize().
  void sanitize_example(TensorList& grad, Rng& rng) const;
  // Batched per-example layout. Counter mode: one key per example,
  // drawn in ascending example order (the same draws as calling
  // sanitize_example per example), then an order-free parallel fill.
  // Stream mode: noise drawn example-major from the sequential stream,
  // matching the per-example loop. Both modes are bitwise identical to
  // their per-example loop.
  void sanitize_per_example(tensor::list::PerExampleGrads& grads,
                            Rng& rng) const;

  // The minimal sigma that makes one application (epsilon, delta)-DP
  // per Definition 2 / Lemma 1 (valid for 0 < epsilon < 1).
  static double sigma_for(double epsilon, double delta);

 private:
  double noise_scale_;
  double sensitivity_;
};

}  // namespace fedcl::dp
