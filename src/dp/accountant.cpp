#include "dp/accountant.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"

namespace fedcl::dp {

namespace {

// log(n choose k) via lgamma.
double log_binom(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

double logsumexp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

MomentsAccountant::MomentsAccountant(double sampling_rate, double noise_scale,
                                     int max_order)
    : q_(sampling_rate), sigma_(noise_scale), max_order_(max_order) {
  FEDCL_CHECK(q_ >= 0.0 && q_ <= 1.0) << "q " << q_;
  FEDCL_CHECK_GT(sigma_, 0.0);
  FEDCL_CHECK_GE(max_order_, 2);
}

bool MomentsAccountant::sampling_condition_ok() const {
  return q_ < 1.0 / (16.0 * sigma_);
}

double MomentsAccountant::rdp_one_step(int alpha) const {
  FEDCL_CHECK_GE(alpha, 2);
  if (q_ == 0.0) return 0.0;
  if (q_ == 1.0) {
    // Plain Gaussian mechanism: RDP(alpha) = alpha / (2 sigma^2).
    return alpha / (2.0 * sigma_ * sigma_);
  }
  // Mironov et al. (2019) integer-order upper bound for sampled
  // Gaussian:  (1/(alpha-1)) * log sum_{k=0..alpha} C(alpha,k)
  //            (1-q)^{alpha-k} q^k exp(k(k-1)/(2 sigma^2)).
  std::vector<double> terms;
  terms.reserve(alpha + 1);
  const double log_q = std::log(q_);
  const double log_1mq = std::log1p(-q_);
  for (int k = 0; k <= alpha; ++k) {
    const double t = log_binom(alpha, k) + (alpha - k) * log_1mq +
                     k * log_q + k * (k - 1) / (2.0 * sigma_ * sigma_);
    terms.push_back(t);
  }
  const double log_moment = logsumexp(terms);
  return std::max(0.0, log_moment / (alpha - 1));
}

std::pair<double, int> MomentsAccountant::epsilon_with_order(
    std::int64_t steps, double delta, RdpConversion conversion) const {
  FEDCL_CHECK_GE(steps, 0);
  FEDCL_CHECK(delta > 0.0 && delta < 1.0) << "delta " << delta;
  if (steps == 0 || q_ == 0.0) return {0.0, 2};
  double best_eps = std::numeric_limits<double>::infinity();
  int best_order = 2;
  const double log_inv_delta = std::log(1.0 / delta);
  for (int alpha = 2; alpha <= max_order_; ++alpha) {
    const double rdp = rdp_one_step(alpha) * static_cast<double>(steps);
    double eps = 0.0;
    switch (conversion) {
      case RdpConversion::kClassic:
        eps = rdp + log_inv_delta / (alpha - 1);
        break;
      case RdpConversion::kImproved:
        eps = rdp + std::log((alpha - 1.0) / alpha) +
              (log_inv_delta - std::log(static_cast<double>(alpha))) /
                  (alpha - 1);
        break;
    }
    if (eps < best_eps) {
      best_eps = eps;
      best_order = alpha;
    }
  }
  return {std::max(0.0, best_eps), best_order};
}

double MomentsAccountant::epsilon(std::int64_t steps, double delta,
                                  RdpConversion conversion) const {
  return epsilon_with_order(steps, delta, conversion).first;
}

std::vector<double> MomentsAccountant::epsilon_series(
    std::int64_t steps_per_unit, std::int64_t units, double delta,
    RdpConversion conversion) const {
  FEDCL_CHECK_GE(steps_per_unit, 0);
  FEDCL_CHECK_GE(units, 0);
  FEDCL_CHECK(delta > 0.0 && delta < 1.0) << "delta " << delta;
  std::vector<double> series(static_cast<std::size_t>(units), 0.0);
  if (units == 0 || steps_per_unit == 0 || q_ == 0.0) return series;
  // One-step RDP per order, computed once; composition is linear in
  // steps, so each unit's epsilon below reproduces epsilon_with_order
  // term for term (same expressions, same rounding).
  std::vector<double> rdp_one(static_cast<std::size_t>(max_order_ + 1), 0.0);
  for (int alpha = 2; alpha <= max_order_; ++alpha) {
    rdp_one[static_cast<std::size_t>(alpha)] = rdp_one_step(alpha);
  }
  const double log_inv_delta = std::log(1.0 / delta);
  for (std::int64_t t = 0; t < units; ++t) {
    const std::int64_t steps = (t + 1) * steps_per_unit;
    double best_eps = std::numeric_limits<double>::infinity();
    for (int alpha = 2; alpha <= max_order_; ++alpha) {
      const double rdp = rdp_one[static_cast<std::size_t>(alpha)] *
                         static_cast<double>(steps);
      double eps = 0.0;
      switch (conversion) {
        case RdpConversion::kClassic:
          eps = rdp + log_inv_delta / (alpha - 1);
          break;
        case RdpConversion::kImproved:
          eps = rdp + std::log((alpha - 1.0) / alpha) +
                (log_inv_delta - std::log(static_cast<double>(alpha))) /
                    (alpha - 1);
          break;
      }
      best_eps = std::min(best_eps, eps);
    }
    series[static_cast<std::size_t>(t)] = std::max(0.0, best_eps);
  }
  return series;
}

double abadi_bound_epsilon(double q, double sigma, std::int64_t steps,
                           double delta, double c2) {
  FEDCL_CHECK(q >= 0.0 && q <= 1.0);
  FEDCL_CHECK_GT(sigma, 0.0);
  FEDCL_CHECK_GE(steps, 0);
  FEDCL_CHECK(delta > 0.0 && delta < 1.0);
  FEDCL_CHECK_GT(c2, 0.0);
  return c2 * q *
         std::sqrt(static_cast<double>(steps) * std::log(1.0 / delta)) /
         sigma;
}

double basic_composition_epsilon(double q, double sigma, std::int64_t steps,
                                 double delta) {
  FEDCL_CHECK_GT(steps, 0);
  FEDCL_CHECK(delta > 0.0 && delta < 1.0);
  // Budget half of delta to the per-step mechanisms, half to slack.
  const double per_step_delta = delta / (2.0 * static_cast<double>(steps));
  // Lemma 1 inverted: eps' = sqrt(2 log(1.25/delta')) / sigma.
  const double eps_step =
      std::sqrt(2.0 * std::log(1.25 / per_step_delta)) / sigma;
  auto [amplified_eps, amplified_delta] =
      amplify_by_subsampling(eps_step, per_step_delta, q);
  (void)amplified_delta;
  return amplified_eps * static_cast<double>(steps);
}

std::pair<double, double> amplify_by_subsampling(double epsilon, double delta,
                                                 double q) {
  FEDCL_CHECK(q >= 0.0 && q <= 1.0);
  FEDCL_CHECK_GE(epsilon, 0.0);
  // Definition 3: (log(1 + q(e^eps - 1)), q delta).
  return {std::log1p(q * (std::exp(epsilon) - 1.0)), q * delta};
}

}  // namespace fedcl::dp
