#include "dp/gaussian.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::dp {

GaussianMechanism::GaussianMechanism(double noise_scale, double sensitivity)
    : noise_scale_(noise_scale), sensitivity_(sensitivity) {
  FEDCL_CHECK_GE(noise_scale, 0.0);
  FEDCL_CHECK_GT(sensitivity, 0.0);
}

void GaussianMechanism::sanitize(TensorList& update, Rng& rng) const {
  tensor::list::add_gaussian_noise_(update, rng,
                                    static_cast<float>(noise_stddev()));
}

void GaussianMechanism::sanitize(Tensor& update, Rng& rng) const {
  update.add_gaussian_noise_(rng, static_cast<float>(noise_stddev()));
}

void GaussianMechanism::sanitize_per_example(
    tensor::list::PerExampleGrads& grads, Rng& rng) const {
  const float stddev = static_cast<float>(noise_stddev());
  if (stddev == 0.0f) return;
  for (std::int64_t j = 0; j < grads.batch; ++j) {
    for (Tensor& rows : grads.rows) {
      const std::int64_t width = rows.numel() / grads.batch;
      float* row = rows.data() + j * width;
      for (std::int64_t i = 0; i < width; ++i)
        row[i] += static_cast<float>(rng.normal(0.0, stddev));
    }
  }
}

double GaussianMechanism::sigma_for(double epsilon, double delta) {
  FEDCL_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon " << epsilon;
  FEDCL_CHECK(delta > 0.0 && delta < 1.0) << "delta " << delta;
  return std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

}  // namespace fedcl::dp
