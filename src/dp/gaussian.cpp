#include "dp/gaussian.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/philox.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace fedcl::dp {

namespace {

NoiseMode noise_mode_from_env() {
  const char* env = std::getenv("FEDCL_NOISE_MODE");
  if (env != nullptr && std::strcmp(env, "stream") == 0) {
    return NoiseMode::kStream;
  }
  return NoiseMode::kCounter;
}

std::atomic<NoiseMode>& noise_mode_storage() {
  static std::atomic<NoiseMode> mode{noise_mode_from_env()};
  return mode;
}

}  // namespace

NoiseMode noise_mode() { return noise_mode_storage().load(); }

void set_noise_mode(NoiseMode mode) { noise_mode_storage().store(mode); }

GaussianMechanism::GaussianMechanism(double noise_scale, double sensitivity)
    : noise_scale_(noise_scale), sensitivity_(sensitivity) {
  FEDCL_CHECK_GE(noise_scale, 0.0);
  FEDCL_CHECK_GT(sensitivity, 0.0);
}

void GaussianMechanism::sanitize(TensorList& update, Rng& rng) const {
  tensor::list::add_gaussian_noise_(update, rng,
                                    static_cast<float>(noise_stddev()));
}

void GaussianMechanism::sanitize(Tensor& update, Rng& rng) const {
  update.add_gaussian_noise_(rng, static_cast<float>(noise_stddev()));
}

void GaussianMechanism::sanitize_example(TensorList& grad, Rng& rng) const {
  if (noise_mode() == NoiseMode::kStream) {
    sanitize(grad, rng);
    return;
  }
  const double stddev = noise_stddev();
  if (stddev == 0.0) return;
  const CounterNoise noise(rng.next_u64());
  for (std::size_t p = 0; p < grad.size(); ++p) {
    noise.add_scaled(grad[p].data(), grad[p].numel(),
                     static_cast<std::uint64_t>(p), stddev);
  }
}

void GaussianMechanism::sanitize_per_example(
    tensor::list::PerExampleGrads& grads, Rng& rng) const {
  const double stddev = noise_stddev();
  if (stddev == 0.0) return;
  if (noise_mode() == NoiseMode::kStream) {
    const float fstddev = static_cast<float>(stddev);
    for (std::int64_t j = 0; j < grads.batch; ++j) {
      for (Tensor& rows : grads.rows) {
        const std::int64_t width = rows.numel() / grads.batch;
        float* row = rows.data() + j * width;
        for (std::int64_t i = 0; i < width; ++i)
          row[i] += static_cast<float>(rng.normal(0.0, fstddev));
      }
    }
    return;
  }
  // Counter mode: the only serial work is one key draw per example;
  // the fill itself is a pure function of (key, param, element) and
  // parallelizes over examples with bitwise-stable results.
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(grads.batch));
  for (auto& k : keys) k = rng.next_u64();
  ThreadPool& pool = compute_pool();
  pool.parallel_for_chunks(
      static_cast<std::size_t>(grads.batch), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          const CounterNoise noise(keys[j]);
          for (std::size_t p = 0; p < grads.rows.size(); ++p) {
            Tensor& rows = grads.rows[p];
            const std::int64_t width = rows.numel() / grads.batch;
            noise.add_scaled(rows.data() + static_cast<std::int64_t>(j) * width,
                             width, static_cast<std::uint64_t>(p), stddev);
          }
        }
      });
}

double GaussianMechanism::sigma_for(double epsilon, double delta) {
  FEDCL_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon " << epsilon;
  FEDCL_CHECK(delta > 0.0 && delta < 1.0) << "delta " << delta;
  return std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

}  // namespace fedcl::dp
