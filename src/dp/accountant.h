// Privacy accounting for the subsampled Gaussian mechanism.
//
// Three accountants are provided:
//  1. MomentsAccountant — Renyi-DP of the subsampled Gaussian at
//     integer orders (the Mironov et al. upper bound, the same
//     computation behind TF-Privacy's compute_dp_sgd_privacy that the
//     paper cites for Definition 5), converted to (epsilon, delta).
//  2. abadi_bound_epsilon — the closed form of the paper's Equation 2,
//     epsilon = c2 * q * sqrt(T log(1/delta)) / sigma. The paper's
//     Table VI values match this form with c2 ~= 1.5 (see
//     EXPERIMENTS.md).
//  3. basic_composition_epsilon — naive per-step Gaussian mechanism +
//     linear composition (Definitions 2 and 4), as a baseline showing
//     why the moments accountant matters.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace fedcl::dp {

// RDP -> (epsilon, delta) conversion rule.
enum class RdpConversion {
  // eps = rdp(alpha) + log(1/delta)/(alpha-1) — the classic bound the
  // moments accountant literature (and the paper) uses.
  kClassic,
  // Canonne-Kamath-Steinke refinement:
  // eps = rdp(alpha) + log((alpha-1)/alpha) - (log delta + log alpha)/(alpha-1).
  kImproved,
};

class MomentsAccountant {
 public:
  // q: sampling rate (Definition 5: B*Kt/N at instance level, Kt/K at
  // client level). sigma: noise scale. max_order: largest Renyi order
  // examined for the epsilon conversion.
  MomentsAccountant(double sampling_rate, double noise_scale,
                    int max_order = 256);

  double sampling_rate() const { return q_; }
  double noise_scale() const { return sigma_; }

  // Definition 5's applicability condition q < 1/(16 sigma).
  bool sampling_condition_ok() const;

  // Renyi-DP of one subsampled Gaussian step at integer order alpha
  // (alpha >= 2).
  double rdp_one_step(int alpha) const;

  // (epsilon, best order) after `steps` compositions at this delta.
  std::pair<double, int> epsilon_with_order(
      std::int64_t steps, double delta,
      RdpConversion conversion = RdpConversion::kClassic) const;
  double epsilon(std::int64_t steps, double delta,
                 RdpConversion conversion = RdpConversion::kClassic) const;

  // Cumulative epsilon after 1..units composition units of
  // `steps_per_unit` steps each — element t equals
  // epsilon((t+1) * steps_per_unit, delta) exactly, but the per-order
  // RDP is computed once instead of per unit. This is the per-round
  // privacy-budget series the trainer's telemetry records (RDP is
  // linear in steps, so precomputing one step per order is lossless).
  std::vector<double> epsilon_series(
      std::int64_t steps_per_unit, std::int64_t units, double delta,
      RdpConversion conversion = RdpConversion::kClassic) const;

 private:
  double q_;
  double sigma_;
  int max_order_;
};

// Paper Equation 2 closed form. c2 defaults to 1.5, the constant that
// reproduces the paper's reported Table VI budgets (see EXPERIMENTS.md).
double abadi_bound_epsilon(double q, double sigma, std::int64_t steps,
                           double delta, double c2 = 1.5);

// Naive baseline: per-step (eps', delta/steps) Gaussian mechanism
// composed linearly, with subsampling amplification applied per step.
double basic_composition_epsilon(double q, double sigma, std::int64_t steps,
                                 double delta);

// Definition 3: privacy amplification by subsampling applied to a
// single mechanism's (epsilon, delta).
std::pair<double, double> amplify_by_subsampling(double epsilon, double delta,
                                                 double q);

}  // namespace fedcl::dp
