#include "dp/clipping.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace fedcl::dp {

ParamGroups single_group(std::size_t param_count) {
  ParamGroups groups(1);
  for (std::size_t i = 0; i < param_count; ++i) groups[0].push_back(i);
  return groups;
}

std::vector<double> clip_per_layer(TensorList& grads,
                                   const ParamGroups& groups, double bound) {
  FEDCL_CHECK_GT(bound, 0.0);
  std::vector<double> norms;
  norms.reserve(groups.size());
  for (const auto& group : groups) {
    const double norm = tensor::list::l2_norm_subset(grads, group);
    norms.push_back(norm);
    // scale = 1 / max(1, norm / C): preserves updates within the bound.
    if (norm > bound) {
      const float scale = static_cast<float>(bound / norm);
      for (std::size_t i : group) grads[i].scale_(scale);
    }
  }
  return norms;
}

std::vector<double> clip_per_example_per_layer(
    tensor::list::PerExampleGrads& grads, const ParamGroups& groups,
    double bound) {
  FEDCL_CHECK_GT(bound, 0.0);
  const std::int64_t batch = grads.batch;
  std::vector<double> norms;
  norms.reserve(static_cast<std::size_t>(batch) * groups.size());
  for (std::int64_t j = 0; j < batch; ++j) {
    for (const auto& group : groups) {
      // Mirror l2_norm_subset bit for bit: per-tensor norm first
      // (rounded through float exactly like Tensor::l2_norm), then the
      // joint norm of the group, in the same accumulation order as the
      // sliced path.
      double joint = 0.0;
      for (std::size_t p : group) {
        FEDCL_CHECK_LT(p, grads.rows.size());
        const std::int64_t width = grads.rows[p].numel() / batch;
        const float* row = grads.rows[p].data() + j * width;
        double s = 0.0;
        for (std::int64_t i = 0; i < width; ++i)
          s += static_cast<double>(row[i]) * static_cast<double>(row[i]);
        const double tensor_norm =
            static_cast<double>(static_cast<float>(std::sqrt(s)));
        joint += tensor_norm * tensor_norm;
      }
      const double norm = std::sqrt(joint);
      norms.push_back(norm);
      if (norm > bound) {
        const float scale = static_cast<float>(bound / norm);
        for (std::size_t p : group) {
          const std::int64_t width = grads.rows[p].numel() / batch;
          float* row = grads.rows[p].data() + j * width;
          for (std::int64_t i = 0; i < width; ++i) row[i] *= scale;
        }
      }
    }
  }
  return norms;
}

double clip_global(TensorList& grads, double bound) {
  FEDCL_CHECK_GT(bound, 0.0);
  const double norm = tensor::list::l2_norm(grads);
  if (norm > bound) {
    tensor::list::scale_(grads, static_cast<float>(bound / norm));
  }
  return norm;
}

ClippingSchedule ClippingSchedule::constant(double c) {
  FEDCL_CHECK_GT(c, 0.0);
  ClippingSchedule s;
  s.kind_ = Kind::kConstant;
  s.c0_ = c;
  return s;
}

ClippingSchedule ClippingSchedule::linear(double c0, double c1,
                                          std::int64_t total_rounds) {
  FEDCL_CHECK_GT(c0, 0.0);
  FEDCL_CHECK_GT(c1, 0.0);
  FEDCL_CHECK_GT(total_rounds, 0);
  ClippingSchedule s;
  s.kind_ = Kind::kLinear;
  s.c0_ = c0;
  s.c1_ = c1;
  s.span_ = total_rounds;
  return s;
}

ClippingSchedule ClippingSchedule::exponential(double c0, double rate) {
  FEDCL_CHECK_GT(c0, 0.0);
  FEDCL_CHECK(rate > 0.0 && rate <= 1.0) << "rate " << rate;
  ClippingSchedule s;
  s.kind_ = Kind::kExponential;
  s.c0_ = c0;
  s.rate_ = rate;
  return s;
}

ClippingSchedule ClippingSchedule::step(double c0, double factor,
                                        std::int64_t every) {
  FEDCL_CHECK_GT(c0, 0.0);
  FEDCL_CHECK(factor > 0.0 && factor <= 1.0) << "factor " << factor;
  FEDCL_CHECK_GT(every, 0);
  ClippingSchedule s;
  s.kind_ = Kind::kStep;
  s.c0_ = c0;
  s.rate_ = factor;
  s.span_ = every;
  return s;
}

double ClippingSchedule::bound_at(std::int64_t round) const {
  FEDCL_CHECK_GE(round, 0);
  switch (kind_) {
    case Kind::kConstant:
      return c0_;
    case Kind::kLinear: {
      if (round >= span_ - 1) return c1_;
      const double frac =
          static_cast<double>(round) / static_cast<double>(span_ - 1);
      return c0_ + (c1_ - c0_) * frac;
    }
    case Kind::kExponential:
      return c0_ * std::pow(rate_, static_cast<double>(round));
    case Kind::kStep:
      return c0_ * std::pow(rate_, static_cast<double>(round / span_));
  }
  return c0_;
}

std::string ClippingSchedule::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kConstant:
      os << "constant(C=" << c0_ << ")";
      break;
    case Kind::kLinear:
      os << "linear(" << c0_ << "->" << c1_ << " over " << span_ << ")";
      break;
    case Kind::kExponential:
      os << "exponential(C0=" << c0_ << ", rate=" << rate_ << ")";
      break;
    case Kind::kStep:
      os << "step(C0=" << c0_ << ", x" << rate_ << " every " << span_ << ")";
      break;
  }
  return os.str();
}

}  // namespace fedcl::dp
