// Median-norm estimation for adaptive clipping.
//
// The paper (Section IV, "Choosing Clipping Strategy C") suggests
// using the median norm of the original updates as the clipping bound
// instead of a preset constant. This estimator tracks a sliding window
// of observed norms and reports their median; the adaptive Fed-CDP
// policy (core/adaptive_policy.h) queries it each sanitization.
#pragma once

#include <cstddef>
#include <deque>

namespace fedcl::dp {

class MedianNormEstimator {
 public:
  // window: number of most recent observations retained.
  explicit MedianNormEstimator(std::size_t window = 256);

  void observe(double norm);
  std::size_t count() const { return window_.size(); }
  bool ready() const { return !window_.empty(); }
  // Median of the retained observations; FEDCL_CHECK-fails when empty.
  double median() const;

 private:
  std::size_t capacity_;
  std::deque<double> window_;
};

}  // namespace fedcl::dp
