#include "dp/fused_sanitize.h"

#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace fedcl::dp {

namespace {

// Shared per-example kernel: per-param clip scales resolved from the
// group norms, then one fused traversal per tensor. `norms` points at
// this example's groups.size() entries.
void scale_noise_impl(const ExampleView& ex, const ParamGroups& groups,
                      const double* norms, double bound, double stddev,
                      const CounterNoise& noise) {
  // scale == 1.0f for unclipped params: x * 1.0f is exact, so the fused
  // loop below stays branch-free without perturbing unclipped values.
  std::vector<float> scales(ex.size(), 1.0f);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const double norm = norms[g];
    if (norm > bound) {
      const float scale = static_cast<float>(bound / norm);
      for (std::size_t p : groups[g]) {
        FEDCL_CHECK_LT(p, ex.size());
        scales[p] = scale;
      }
    }
  }
  for (std::size_t p = 0; p < ex.size(); ++p) {
    float* d = ex[p].data;
    const std::int64_t n = ex[p].numel;
    const float s = scales[p];
    if (stddev == 0.0) {
      if (s != 1.0f) {
        for (std::int64_t i = 0; i < n; ++i) d[i] *= s;
      }
      continue;
    }
    const std::uint64_t stream = static_cast<std::uint64_t>(p);
    double z0, z1;
    const std::int64_t even = n & ~static_cast<std::int64_t>(1);
    for (std::int64_t i = 0; i < even; i += 2) {
      noise.normal_pair(stream, static_cast<std::uint64_t>(i) >> 1, &z0, &z1);
      d[i] = d[i] * s + static_cast<float>(stddev * z0);
      d[i + 1] = d[i + 1] * s + static_cast<float>(stddev * z1);
    }
    if (n & 1) {
      noise.normal_pair(stream, static_cast<std::uint64_t>(even) >> 1, &z0,
                        &z1);
      d[even] = d[even] * s + static_cast<float>(stddev * z0);
    }
  }
}

}  // namespace

ExampleView view_of(TensorList& grad) {
  ExampleView ex;
  ex.reserve(grad.size());
  for (std::size_t p = 0; p < grad.size(); ++p) {
    ex.push_back(ParamSpan{grad[p].data(), grad[p].numel()});
  }
  return ex;
}

ExampleView view_of_example(tensor::list::PerExampleGrads& grads,
                            std::int64_t j) {
  ExampleView ex;
  ex.reserve(grads.rows.size());
  for (auto& rows : grads.rows) {
    const std::int64_t width = rows.numel() / grads.batch;
    ex.push_back(ParamSpan{rows.data() + j * width, width});
  }
  return ex;
}

std::vector<double> group_norms(const ExampleView& ex,
                                const ParamGroups& groups) {
  std::vector<double> norms;
  norms.reserve(groups.size());
  for (const auto& group : groups) {
    // Same accumulation order as l2_norm_subset / the sliced path:
    // per-tensor sum of squares rounded through float, joint sqrt last.
    double joint = 0.0;
    for (std::size_t p : group) {
      FEDCL_CHECK_LT(p, ex.size());
      const float* d = ex[p].data;
      double s = 0.0;
      for (std::int64_t i = 0; i < ex[p].numel; ++i)
        s += static_cast<double>(d[i]) * static_cast<double>(d[i]);
      const double tensor_norm =
          static_cast<double>(static_cast<float>(std::sqrt(s)));
      joint += tensor_norm * tensor_norm;
    }
    norms.push_back(std::sqrt(joint));
  }
  return norms;
}

void scale_noise(const ExampleView& ex, const ParamGroups& groups,
                 const std::vector<double>& norms, double bound, double stddev,
                 const CounterNoise& noise) {
  FEDCL_CHECK_EQ(norms.size(), groups.size());
  scale_noise_impl(ex, groups, norms.data(), bound, stddev, noise);
}

std::vector<double> batch_group_norms(tensor::list::PerExampleGrads& grads,
                                      const ParamGroups& groups,
                                      ThreadPool* pool) {
  const std::int64_t batch = grads.batch;
  std::vector<double> norms(static_cast<std::size_t>(batch) * groups.size());
  ThreadPool& p = pool != nullptr ? *pool : compute_pool();
  p.parallel_for_chunks(
      static_cast<std::size_t>(batch), 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          const ExampleView ex =
              view_of_example(grads, static_cast<std::int64_t>(j));
          const std::vector<double> ex_norms = group_norms(ex, groups);
          for (std::size_t g = 0; g < groups.size(); ++g)
            norms[j * groups.size() + g] = ex_norms[g];
        }
      });
  return norms;
}

void batch_scale_noise(tensor::list::PerExampleGrads& grads,
                       const ParamGroups& groups,
                       const std::vector<double>& norms,
                       const std::vector<double>& bounds,
                       const std::vector<double>& stddevs,
                       const std::vector<std::uint64_t>& keys,
                       ThreadPool* pool) {
  const std::size_t batch = static_cast<std::size_t>(grads.batch);
  FEDCL_CHECK_EQ(norms.size(), batch * groups.size());
  FEDCL_CHECK_EQ(bounds.size(), batch);
  FEDCL_CHECK_EQ(stddevs.size(), batch);
  FEDCL_CHECK_EQ(keys.size(), batch);
  ThreadPool& p = pool != nullptr ? *pool : compute_pool();
  p.parallel_for_chunks(batch, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      const ExampleView ex =
          view_of_example(grads, static_cast<std::int64_t>(j));
      const CounterNoise noise(keys[j]);
      scale_noise_impl(ex, groups, norms.data() + j * groups.size(),
                       bounds[j], stddevs[j], noise);
    }
  });
}

}  // namespace fedcl::dp
