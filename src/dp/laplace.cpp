#include "dp/laplace.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::dp {

LaplaceMechanism::LaplaceMechanism(double epsilon, double l1_sensitivity)
    : epsilon_(epsilon), sensitivity_(l1_sensitivity) {
  FEDCL_CHECK_GT(epsilon, 0.0);
  FEDCL_CHECK_GT(l1_sensitivity, 0.0);
}

double LaplaceMechanism::sample(Rng& rng, double b) {
  FEDCL_CHECK_GT(b, 0.0);
  // Inverse CDF: u in (-1/2, 1/2), x = -b * sign(u) * ln(1 - 2|u|).
  const double u = rng.uniform() - 0.5;
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -b * sign * std::log(1.0 - 2.0 * std::abs(u));
}

void LaplaceMechanism::sanitize(tensor::Tensor& update, Rng& rng) const {
  const double b = scale();
  float* p = update.data();
  for (std::int64_t i = 0; i < update.numel(); ++i) {
    p[i] += static_cast<float>(sample(rng, b));
  }
}

void LaplaceMechanism::sanitize(tensor::list::TensorList& update,
                                Rng& rng) const {
  for (auto& t : update) sanitize(t, rng);
}

}  // namespace fedcl::dp
