#include "dp/adaptive_clipping.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace fedcl::dp {

MedianNormEstimator::MedianNormEstimator(std::size_t window)
    : capacity_(window) {
  FEDCL_CHECK_GT(window, 0u);
}

void MedianNormEstimator::observe(double norm) {
  FEDCL_CHECK_GE(norm, 0.0);
  window_.push_back(norm);
  if (window_.size() > capacity_) window_.pop_front();
}

double MedianNormEstimator::median() const {
  FEDCL_CHECK(ready()) << "median of zero observations";
  std::vector<double> sorted(window_.begin(), window_.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace fedcl::dp
