// L2-norm clipping of gradient updates plus the clipping-bound
// schedules behind Fed-CDP(decay).
//
// Grouping follows the paper's Algorithms 1 and 2: each model layer m
// (weight + bias of one parameterized layer) is clipped independently
// to the bound C. Groups are expressed as parameter-index lists so
// this module does not depend on the nn layer types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor_list.h"

namespace fedcl::dp {

using tensor::list::TensorList;
using ParamGroups = std::vector<std::vector<std::size_t>>;

// Treats all parameters as a single group.
ParamGroups single_group(std::size_t param_count);

// Scales each group so its joint L2 norm is at most `bound`
// (no-op for groups already within the bound): Algorithm 2 line 10.
// Returns the pre-clip norm of each group.
std::vector<double> clip_per_layer(TensorList& grads,
                                   const ParamGroups& groups, double bound);

// Clips the concatenation of all tensors as one vector.
double clip_global(TensorList& grads, double bound);

// Per-example, per-group clipping on the batched layout: for every
// example j and every group, example j's slice of the group is scaled
// so its joint L2 norm is at most `bound`. Norms are accumulated in
// the same order as clip_per_layer on a sliced-out example (group
// params in order, elements in order, per-tensor sqrt), so the result
// is bitwise identical to the per-example loop it replaces. Returns
// the pre-clip norms, example-major: norms[j * groups.size() + g].
std::vector<double> clip_per_example_per_layer(
    tensor::list::PerExampleGrads& grads, const ParamGroups& groups,
    double bound);

// Clipping-bound schedule over federated rounds. Fed-CDP uses
// kConstant; Fed-CDP(decay) uses kLinear (paper: C=6 -> C=2 over T
// rounds). Exponential and step decay are provided for the ablation
// bench.
class ClippingSchedule {
 public:
  static ClippingSchedule constant(double c);
  // c0 at round 0 decaying linearly to c1 at round total_rounds-1.
  static ClippingSchedule linear(double c0, double c1,
                                 std::int64_t total_rounds);
  // c0 * rate^round (0 < rate <= 1).
  static ClippingSchedule exponential(double c0, double rate);
  // c0 scaled by `factor` every `every` rounds.
  static ClippingSchedule step(double c0, double factor, std::int64_t every);

  double bound_at(std::int64_t round) const;
  std::string describe() const;

 private:
  enum class Kind { kConstant, kLinear, kExponential, kStep };
  Kind kind_ = Kind::kConstant;
  double c0_ = 1.0;
  double c1_ = 1.0;
  double rate_ = 1.0;
  std::int64_t span_ = 1;
};

}  // namespace fedcl::dp
