// Fused per-example clip+noise for the batched Fed-CDP hot path.
//
// The legacy sanitizer traversed every [B, numel] per-example gradient
// row three times — norm accumulation, clip scaling, and a separate
// serial add-noise pass whose sequential RNG stream pinned the whole
// thing to one thread. This module restructures it into two passes,
// both parallel over examples:
//
//   1. group_norms / batch_group_norms — read-only norm pass, same
//      per-tensor float-rounded accumulation as l2_norm_subset, so the
//      clip decisions match the sliced path bit for bit;
//   2. scale_noise / batch_scale_noise — ONE read-modify-write
//      traversal that applies the clip scale AND the Philox Gaussian
//      noise to each element in the same instruction stream, halving
//      the memory traffic of the old scale-then-noise pair.
//
// Both the single-example hook and the batched hook run the SAME
// per-example kernels over a ParamSpan view, which is what keeps
// `sanitize_per_example_batch` bitwise identical to a loop of
// `sanitize_per_example` calls (the invariant PerExamplePolicy tests
// assert) without constraining the traversal order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/philox.h"
#include "dp/clipping.h"
#include "tensor/tensor_list.h"

namespace fedcl {
class ThreadPool;
}

namespace fedcl::dp {

// Raw view of one example's gradient: pointer + element count per
// parameter tensor, in model parameter order.
struct ParamSpan {
  float* data = nullptr;
  std::int64_t numel = 0;
};
using ExampleView = std::vector<ParamSpan>;

ExampleView view_of(TensorList& grad);
ExampleView view_of_example(tensor::list::PerExampleGrads& grads,
                            std::int64_t j);

// Pre-clip joint L2 norm of each group (per-tensor sums rounded
// through float exactly like Tensor::l2_norm, then the joint sqrt).
std::vector<double> group_norms(const ExampleView& ex,
                                const ParamGroups& groups);

// Fused clip-scale + Philox-noise pass over one example. Groups whose
// norm exceeds `bound` are scaled by bound/norm; every element then
// receives N(0, stddev^2) noise keyed by (noise.key(), param index,
// element index). One traversal, order-free.
void scale_noise(const ExampleView& ex, const ParamGroups& groups,
                 const std::vector<double>& norms, double bound, double stddev,
                 const CounterNoise& noise);

// Batched forms over the [B, numel] layout, parallelized over examples
// on `pool` (nullptr: the process compute pool). Results are bitwise
// independent of pool size and example visit order. norms / bounds /
// stddevs / keys are example-major: norms[j * groups.size() + g],
// bounds[j], stddevs[j], keys[j] (per-example entries support the
// adaptive policy, whose bound moves between examples).
std::vector<double> batch_group_norms(tensor::list::PerExampleGrads& grads,
                                      const ParamGroups& groups,
                                      ThreadPool* pool = nullptr);

void batch_scale_noise(tensor::list::PerExampleGrads& grads,
                       const ParamGroups& groups,
                       const std::vector<double>& norms,
                       const std::vector<double>& bounds,
                       const std::vector<double>& stddevs,
                       const std::vector<std::uint64_t>& keys,
                       ThreadPool* pool = nullptr);

}  // namespace fedcl::dp
