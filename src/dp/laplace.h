// The Laplace mechanism — the classic epsilon-DP alternative to the
// Gaussian mechanism. Included for completeness of the DP substrate
// (pure epsilon-DP, L1 sensitivity) and used by tests and the privacy
// planner to contrast mechanisms.
#pragma once

#include "tensor/tensor_list.h"

namespace fedcl {
class Rng;
}

namespace fedcl::dp {

class LaplaceMechanism {
 public:
  // Noise scale b = l1_sensitivity / epsilon gives pure epsilon-DP.
  LaplaceMechanism(double epsilon, double l1_sensitivity);

  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }
  double scale() const { return sensitivity_ / epsilon_; }

  void sanitize(tensor::list::TensorList& update, Rng& rng) const;
  void sanitize(tensor::Tensor& update, Rng& rng) const;

  // One Laplace(0, b) draw.
  static double sample(Rng& rng, double b);

 private:
  double epsilon_;
  double sensitivity_;
};

}  // namespace fedcl::dp
