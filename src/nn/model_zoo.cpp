#include "nn/model_zoo.h"

#include "common/error.h"
#include "common/rng.h"

namespace fedcl::nn {

std::int64_t ModelSpec::input_numel() const {
  if (kind == Kind::kImageCnn) return height * width * channels;
  return in_features;
}

std::shared_ptr<Sequential> build_image_cnn(const ModelSpec& spec, Rng& rng) {
  FEDCL_CHECK(spec.kind == ModelSpec::Kind::kImageCnn);
  FEDCL_CHECK_GT(spec.classes, 1);
  FEDCL_CHECK_GT(spec.height, 0);
  FEDCL_CHECK_GT(spec.width, 0);
  FEDCL_CHECK_GT(spec.channels, 0);
  FEDCL_CHECK_EQ(spec.height % 4, 0) << "two 2x2 pools need H % 4 == 0";
  FEDCL_CHECK_EQ(spec.width % 4, 0) << "two 2x2 pools need W % 4 == 0";

  auto model = std::make_shared<Sequential>();
  model->emplace<InputScale>(-0.5f, 2.0f);
  model->emplace<Conv2d>(spec.channels, spec.conv1_channels, /*kernel=*/5,
                         /*stride=*/1, /*pad=*/2, rng);
  model->emplace<ActivationLayer>(spec.activation);
  model->emplace<AvgPool2d>(2);
  model->emplace<Conv2d>(spec.conv1_channels, spec.conv2_channels, 5, 1, 2,
                         rng);
  model->emplace<ActivationLayer>(spec.activation);
  model->emplace<AvgPool2d>(2);
  model->emplace<Flatten>();
  const std::int64_t fc_in =
      (spec.height / 4) * (spec.width / 4) * spec.conv2_channels;
  model->emplace<Linear>(fc_in, spec.classes, rng);
  return model;
}

std::shared_ptr<Sequential> build_mlp(const ModelSpec& spec, Rng& rng) {
  FEDCL_CHECK(spec.kind == ModelSpec::Kind::kMlp);
  FEDCL_CHECK_GT(spec.in_features, 0);
  FEDCL_CHECK_GT(spec.classes, 1);
  auto model = std::make_shared<Sequential>();
  model->emplace<Linear>(spec.in_features, spec.hidden1, rng);
  model->emplace<ActivationLayer>(spec.activation);
  model->emplace<Linear>(spec.hidden1, spec.hidden2, rng);
  model->emplace<ActivationLayer>(spec.activation);
  model->emplace<Linear>(spec.hidden2, spec.classes, rng);
  return model;
}

std::shared_ptr<Sequential> build_model(const ModelSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case ModelSpec::Kind::kImageCnn:
      return build_image_cnn(spec, rng);
    case ModelSpec::Kind::kMlp:
      return build_mlp(spec, rng);
  }
  FEDCL_CHECK(false) << "unknown model kind";
  return nullptr;
}

}  // namespace fedcl::nn
