// Batched per-example gradient engine (the Goodfellow trick).
//
// Fed-CDP (Algorithm 2) needs every example's own parameter gradient,
// not just the batch mean. The naive implementation runs B separate
// forward/backward graphs per local iteration. This engine runs ONE
// batched forward and ONE batched backward and recovers each example's
// weight gradients per layer from the cached input activations and
// output deltas:
//
//   Dense:  grad_W[j] = a_j^T delta_j            (outer product)
//   Conv:   grad_W[j] = cols_j^T delta_j         (im2col column slice)
//
// The loss is seeded with each example's own softmax-cross-entropy
// gradient (softmax(z) - onehot, no 1/B), and since no layer mixes
// rows across the batch dimension, the batched backward delta restricted
// to example j IS that example's delta — so the outer products above
// are exact, not approximations. Results match the sliced reference
// to float rounding (~1e-6 relative).
//
// Gradients come back in the [B, numel] row layout of PerExampleGrads,
// which the DP policies clip and noise in place without materializing
// B TensorLists.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor_list.h"

namespace fedcl::nn {

using tensor::Tensor;

// Which implementation per_example_gradients dispatches to.
//  kAuto    — batched when the model is supported, sliced otherwise.
//  kBatched — always batched (checks support).
//  kSliced  — always the B-graph reference path (bench baseline).
enum class PerExampleMode { kAuto, kBatched, kSliced };

void set_per_example_mode(PerExampleMode mode);
PerExampleMode per_example_mode();

// True when every layer of the model is one the batched engine knows
// how to differentiate (Linear, Conv2d, AvgPool2d, MaxPool2d, Dropout,
// Flatten, InputScale, activations).
bool per_example_supported(const Sequential& model);

// Batched engine: one forward + one backward over the whole batch.
// x: [B, ...], labels: size B. Returns one [B, numel(p)] row matrix
// per model parameter, in Sequential::parameters() order. out_loss,
// when non-null, receives the mean cross-entropy loss.
tensor::list::PerExampleGrads compute_per_example_gradients(
    Sequential& model, const Tensor& x,
    const std::vector<std::int64_t>& labels, double* out_loss = nullptr);

// Reference implementation: B single-example autograd graphs — the
// exact computation the engine replaces. Kept for parity tests and as
// the bench baseline.
tensor::list::PerExampleGrads compute_per_example_gradients_sliced(
    Sequential& model, const Tensor& x,
    const std::vector<std::int64_t>& labels, double* out_loss = nullptr);

// Dispatches between the two according to per_example_mode().
tensor::list::PerExampleGrads per_example_gradients(
    Sequential& model, const Tensor& x,
    const std::vector<std::int64_t>& labels, double* out_loss = nullptr);

}  // namespace fedcl::nn
