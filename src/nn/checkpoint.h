// Model weight checkpointing: a small versioned binary format so
// trained global models can be saved, reloaded and shipped between
// processes.
#pragma once

#include <string>

#include "tensor/tensor_list.h"

namespace fedcl::nn {

// Writes the tensor list to `path` (overwrites). Throws fedcl::Error
// on I/O failure.
void save_weights(const std::string& path,
                  const tensor::list::TensorList& weights);

// Reads a checkpoint written by save_weights. Validates magic,
// version and length framing.
tensor::list::TensorList load_weights(const std::string& path);

}  // namespace fedcl::nn
