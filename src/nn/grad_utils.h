// Gradient computation and per-layer norm helpers shared by the FL
// training loop, the DP policies and the leakage attack surface.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "tensor/autograd.h"
#include "tensor/tensor_list.h"

namespace fedcl::nn {

using tensor::Gradients;
using tensor::Tensor;

// Mean cross-entropy gradients for a batch, detached from the graph.
// Returns one tensor per model parameter (Sequential::parameters()
// order). out_loss, when non-null, receives the batch loss value.
TensorList compute_gradients(const Sequential& model, const Tensor& x,
                             const std::vector<std::int64_t>& labels,
                             double* out_loss = nullptr);

// Same but keeps the graph (create_graph) and returns gradient Vars —
// what the reconstruction attack differentiates through.
std::vector<Var> compute_gradient_vars(const Sequential& model, const Var& x,
                                       const std::vector<std::int64_t>& labels);

// L2 norm of the gradient slice belonging to each layer group
// (Algorithm 2 line 9: one norm per layer m).
std::vector<double> per_layer_l2_norms(const TensorList& grads,
                                       const std::vector<LayerGroup>& groups);

// Evaluates classification accuracy of the model over a dataset given
// as (x, labels), batched to bound peak memory. No graph is recorded.
double evaluate_accuracy(const Sequential& model, const Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         std::int64_t batch = 64);

}  // namespace fedcl::nn
