#include "nn/layers.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace fedcl::nn {

namespace o = tensor::ops;
using tensor::ConvSpec;
using tensor::Shape;
using tensor::Tensor;

namespace {

// Xavier/Glorot uniform initialization for a [fan_in, fan_out] matrix.
Tensor xavier_uniform(Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                      Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -limit, limit);
}

}  // namespace

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(xavier_uniform({in_features, out_features}, in_features,
                             out_features, rng),
              /*requires_grad=*/true),
      bias_(Tensor::zeros({out_features}), /*requires_grad=*/true),
      name_("linear(" + std::to_string(in_features) + "->" +
            std::to_string(out_features) + ")") {
  FEDCL_CHECK_GT(in_features, 0);
  FEDCL_CHECK_GT(out_features, 0);
}

Var Linear::forward(const Var& x) {
  FEDCL_CHECK_EQ(x.value().ndim(), 2u);
  FEDCL_CHECK_EQ(x.value().dim(1), in_features_)
      << "Linear input width mismatch for " << name_;
  return o::add_rowvec(o::matmul(x, weight_), bias_);
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      name_("conv(" + std::to_string(in_channels) + "->" +
            std::to_string(out_channels) + ",k" + std::to_string(kernel) +
            ")") {
  FEDCL_CHECK_GT(in_channels, 0);
  FEDCL_CHECK_GT(out_channels, 0);
  FEDCL_CHECK_GT(kernel, 0);
  const std::int64_t patch = kernel * kernel * in_channels;
  const std::int64_t fan_in = patch;
  const std::int64_t fan_out = kernel * kernel * out_channels;
  weight_ = Var(xavier_uniform({patch, out_channels}, fan_in, fan_out, rng),
                /*requires_grad=*/true);
  bias_ = Var(Tensor::zeros({out_channels}), /*requires_grad=*/true);
}

Var Conv2d::forward(const Var& x) {
  FEDCL_CHECK_EQ(x.value().ndim(), 4u) << "Conv2d expects NHWC";
  FEDCL_CHECK_EQ(x.value().dim(3), in_channels_)
      << "Conv2d channel mismatch for " << name_;
  const std::int64_t n = x.value().dim(0);
  ConvSpec spec{.in_h = x.value().dim(1),
                .in_w = x.value().dim(2),
                .in_c = in_channels_,
                .kernel_h = kernel_,
                .kernel_w = kernel_,
                .stride = stride_,
                .pad = pad_};
  spec.validate();
  Var cols = o::im2col(x, spec);
  Var y = o::add_rowvec(o::matmul(cols, weight_), bias_);
  return o::reshape(y, {n, spec.out_h(), spec.out_w(), out_channels_});
}

AvgPool2d::AvgPool2d(std::int64_t kernel) : kernel_(kernel) {
  FEDCL_CHECK_GT(kernel, 0);
}

Var AvgPool2d::forward(const Var& x) {
  FEDCL_CHECK_EQ(x.value().ndim(), 4u) << "AvgPool2d expects NHWC";
  const std::int64_t n = x.value().dim(0);
  const std::int64_t c = x.value().dim(3);
  ConvSpec spec{.in_h = x.value().dim(1),
                .in_w = x.value().dim(2),
                .in_c = c,
                .kernel_h = kernel_,
                .kernel_w = kernel_,
                .stride = kernel_,
                .pad = 0};
  spec.validate();
  auto it = pool_matrices_.find(c);
  if (it == pool_matrices_.end()) {
    // P[(kh*KW + kw)*C + ch, ch] = 1/(k*k): channel-wise mean.
    Tensor p({spec.patch_size(), c});
    const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
    for (std::int64_t k = 0; k < kernel_ * kernel_; ++k) {
      for (std::int64_t ch = 0; ch < c; ++ch) {
        p.at((k * c + ch) * c + ch) = inv;
      }
    }
    it = pool_matrices_.emplace(c, o::constant(std::move(p))).first;
  }
  Var cols = o::im2col(x, spec);
  Var y = o::matmul(cols, it->second);
  return o::reshape(y, {n, spec.out_h(), spec.out_w(), c});
}

MaxPool2d::MaxPool2d(std::int64_t kernel) : kernel_(kernel) {
  FEDCL_CHECK_GT(kernel, 0);
}

Var MaxPool2d::forward(const Var& x) {
  FEDCL_CHECK_EQ(x.value().ndim(), 4u) << "MaxPool2d expects NHWC";
  const std::int64_t n = x.value().dim(0), h = x.value().dim(1),
                     w = x.value().dim(2), c = x.value().dim(3);
  FEDCL_CHECK_EQ(h % kernel_, 0);
  FEDCL_CHECK_EQ(w % kernel_, 0);
  const std::int64_t oh = h / kernel_, ow = w / kernel_;
  // Argmax flat index per output cell; the routing is fixed for this
  // forward, making the op a gather.
  std::vector<std::int64_t> argmax;
  argmax.reserve(static_cast<std::size_t>(n * oh * ow * c));
  const float* p = x.value().data();
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
          std::int64_t best = -1;
          float best_value = 0.0f;
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t flat =
                  ((b * h + y * kernel_ + ky) * w + xo * kernel_ + kx) * c +
                  ch;
              if (best < 0 || p[flat] > best_value) {
                best = flat;
                best_value = p[flat];
              }
            }
          }
          argmax.push_back(best);
        }
      }
    }
  }
  Var flat = o::gather_flat(o::reshape(x, {x.value().numel()}),
                            std::move(argmax));
  return o::reshape(flat, {n, oh, ow, c});
}

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  FEDCL_CHECK(p >= 0.0 && p < 1.0) << "dropout p " << p;
}

Tensor Dropout::sample_mask(const tensor::Shape& shape) {
  Tensor mask(shape);
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  float* m = mask.data();
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng_.bernoulli(p_) ? 0.0f : keep_scale;
  }
  return mask;
}

Var Dropout::forward(const Var& x) {
  if (!training_ || p_ == 0.0) return x;
  return o::mul(x, o::constant(sample_mask(x.value().shape())));
}

Var Flatten::forward(const Var& x) {
  const auto& s = x.value().shape();
  FEDCL_CHECK_GE(s.size(), 2u);
  std::int64_t rest = 1;
  for (std::size_t i = 1; i < s.size(); ++i) rest *= s[i];
  return o::reshape(x, {s[0], rest});
}

Var InputScale::forward(const Var& x) {
  return o::mul_scalar(o::add_scalar(x, shift_), scale_);
}

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

Var ActivationLayer::forward(const Var& x) {
  switch (kind_) {
    case Activation::kRelu:
      return o::relu(x);
    case Activation::kSigmoid:
      return o::sigmoid(x);
    case Activation::kTanh:
      return o::tanh(x);
  }
  FEDCL_CHECK(false) << "unknown activation";
  return x;  // unreachable
}

}  // namespace fedcl::nn
