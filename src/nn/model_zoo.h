// Model builders matching the paper's experimental setup:
//  - images: CNN with two convolutional layers and one fully-connected
//    layer (Section VII),
//  - attribute data: fully-connected model with two hidden layers.
#pragma once

#include <cstdint>
#include <memory>

#include "nn/layer.h"
#include "nn/layers.h"

namespace fedcl {
class Rng;
}

namespace fedcl::nn {

struct ModelSpec {
  enum class Kind { kImageCnn, kMlp };
  Kind kind = Kind::kMlp;
  // Image inputs (NHWC).
  std::int64_t height = 0;
  std::int64_t width = 0;
  std::int64_t channels = 0;
  // Flat inputs.
  std::int64_t in_features = 0;
  std::int64_t classes = 0;
  Activation activation = Activation::kRelu;
  // CNN channel widths.
  std::int64_t conv1_channels = 8;
  std::int64_t conv2_channels = 16;
  // MLP hidden widths.
  std::int64_t hidden1 = 64;
  std::int64_t hidden2 = 32;

  // Expected input feature count (H*W*C for images, in_features else).
  std::int64_t input_numel() const;
};

// Conv(5x5, pad 2) -> act -> AvgPool(2) -> Conv(5x5, pad 2) -> act ->
// AvgPool(2) -> Flatten -> Linear(classes). Requires height and width
// divisible by 4.
std::shared_ptr<Sequential> build_image_cnn(const ModelSpec& spec, Rng& rng);

// Linear(h1) -> act -> Linear(h2) -> act -> Linear(classes).
std::shared_ptr<Sequential> build_mlp(const ModelSpec& spec, Rng& rng);

// Dispatches on spec.kind.
std::shared_ptr<Sequential> build_model(const ModelSpec& spec, Rng& rng);

}  // namespace fedcl::nn
