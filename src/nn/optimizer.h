// SGD optimizer operating on a model's parameter Vars with externally
// supplied gradients.
//
// Gradients arrive as raw TensorLists (not Vars) because the DP
// policies sanitize them numerically (clip + noise) outside the graph
// before the descent step — exactly Algorithm 2 lines 13-15.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "tensor/tensor_list.h"

namespace fedcl::nn {

class SgdOptimizer {
 public:
  // momentum == 0 gives plain SGD (the paper's setting).
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

  // params[i] -= lr * grads[i] (with optional momentum buffers).
  void step(std::vector<Var>& params, const TensorList& grads);

 private:
  double lr_;
  double momentum_;
  TensorList velocity_;  // lazily sized on first step
};

// Adam (Kingma & Ba). Provided for completeness of the training
// substrate; the paper's experiments use plain SGD.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);

  double learning_rate() const { return lr_; }
  std::int64_t step_count() const { return steps_; }

  void step(std::vector<Var>& params, const TensorList& grads);

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::int64_t steps_ = 0;
  TensorList m_;  // first-moment estimates
  TensorList v_;  // second-moment estimates
};

}  // namespace fedcl::nn
