#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace fedcl::nn {

namespace o = tensor::ops;

Var softmax_cross_entropy(const Var& logits,
                          const std::vector<std::int64_t>& labels) {
  FEDCL_CHECK_EQ(logits.value().ndim(), 2u);
  const std::int64_t n = logits.value().dim(0);
  const std::int64_t c = logits.value().dim(1);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(labels.size()), n);
  // Numerically stable log-softmax; the detached row max cancels in the
  // gradient so detaching is exact.
  Var m = o::row_max_detached(logits);
  Var z = o::sub(logits, o::broadcast_col(m, c));
  Var lse = o::log(o::row_sum(o::exp(z)));
  Var logp = o::sub(z, o::broadcast_col(lse, c));
  Var picked = o::pick(logp, labels);
  return o::mul_scalar(o::sum_all(picked), -1.0f / static_cast<float>(n));
}

Var mse(const Var& a, const Var& b) {
  FEDCL_CHECK(a.value().shape() == b.value().shape());
  Var d = o::sub(a, b);
  return o::mean_all(o::square(d));
}

Tensor softmax(const Tensor& logits) {
  FEDCL_CHECK_EQ(logits.ndim(), 2u);
  const std::int64_t c = logits.dim(1);
  Tensor shifted =
      tensor::sub(logits, tensor::broadcast_col(tensor::row_max(logits), c));
  Tensor e = tensor::exp(shifted);
  Tensor denom = tensor::broadcast_col(tensor::row_sum(e), c);
  return tensor::div(e, denom);
}

std::vector<std::int64_t> predict(const Tensor& logits) {
  FEDCL_CHECK_EQ(logits.ndim(), 2u);
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  const float* p = logits.data();
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = p + i * c;
    out[static_cast<std::size_t>(i)] =
        std::max_element(row, row + c) - row;
  }
  return out;
}

double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& labels) {
  std::vector<std::int64_t> pred = predict(logits);
  FEDCL_CHECK_EQ(pred.size(), labels.size());
  FEDCL_CHECK(!labels.empty());
  std::size_t hit = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++hit;
  return static_cast<double>(hit) / static_cast<double>(pred.size());
}

}  // namespace fedcl::nn
