#include "nn/per_example.h"

#include <atomic>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/thread_pool.h"
#include "nn/grad_utils.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "tensor/im2col.h"

namespace fedcl::nn {

namespace t = fedcl::tensor;
using tensor::ConvSpec;
using tensor::Shape;
using tensor::list::PerExampleGrads;

namespace {

std::atomic<PerExampleMode> g_mode{PerExampleMode::kAuto};

enum class NodeKind {
  kLinear,
  kConv,
  kAvgPool,
  kMaxPool,
  kDropout,
  kFlatten,
  kInputScale,
  kActivation,
  kUnsupported,
};

NodeKind classify(const Layer& layer) {
  if (dynamic_cast<const Linear*>(&layer) != nullptr) return NodeKind::kLinear;
  if (dynamic_cast<const Conv2d*>(&layer) != nullptr) return NodeKind::kConv;
  if (dynamic_cast<const AvgPool2d*>(&layer) != nullptr)
    return NodeKind::kAvgPool;
  if (dynamic_cast<const MaxPool2d*>(&layer) != nullptr)
    return NodeKind::kMaxPool;
  if (dynamic_cast<const Dropout*>(&layer) != nullptr)
    return NodeKind::kDropout;
  if (dynamic_cast<const Flatten*>(&layer) != nullptr)
    return NodeKind::kFlatten;
  if (dynamic_cast<const InputScale*>(&layer) != nullptr)
    return NodeKind::kInputScale;
  if (dynamic_cast<const ActivationLayer*>(&layer) != nullptr)
    return NodeKind::kActivation;
  return NodeKind::kUnsupported;
}

// One forward step's cached state — exactly what its backward needs.
struct TapeNode {
  NodeKind kind = NodeKind::kUnsupported;
  Layer* layer = nullptr;            // borrowed from the model
  std::size_t weight_index = 0;      // param index of W (Linear/Conv)
  Shape in_shape;                    // input shape (pool/flatten dX)
  Tensor input;                      // Linear: input activations
  Tensor output;                     // Activation: f(x) for f'
  Tensor cols;                       // Conv: im2col of the input
  Tensor mask;                       // Dropout mask (undefined in eval)
  std::vector<std::int64_t> argmax;  // MaxPool routing
  ConvSpec spec;                     // Conv geometry
};

void add_bias_rows_(Tensor& y, const Tensor& bias) {
  const std::int64_t c = bias.numel();
  const std::int64_t rows = y.numel() / c;
  float* p = y.data();
  const float* b = bias.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < c; ++j) p[r * c + j] += b[j];
  }
}

// Raw-tensor forward over the model, recording the tape. Mirrors each
// layer's autograd forward (same op order) so values agree to float
// rounding.
Tensor forward_with_tape(Sequential& model, const Tensor& x,
                         std::vector<TapeNode>& tape) {
  tape.clear();
  tape.reserve(model.layer_count());
  Tensor h = x;
  std::size_t param_index = 0;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Layer& layer = model.layer(i);
    TapeNode node;
    node.kind = classify(layer);
    node.layer = &layer;
    node.in_shape = h.shape();
    switch (node.kind) {
      case NodeKind::kLinear: {
        auto& lin = static_cast<Linear&>(layer);
        FEDCL_CHECK_EQ(h.ndim(), 2u);
        FEDCL_CHECK_EQ(h.dim(1), lin.in_features());
        node.weight_index = param_index;
        param_index += 2;
        node.input = h;
        Tensor y = t::matmul(h, lin.parameters()[0].value());
        add_bias_rows_(y, lin.parameters()[1].value());
        h = y;
        break;
      }
      case NodeKind::kConv: {
        auto& conv = static_cast<Conv2d&>(layer);
        FEDCL_CHECK_EQ(h.ndim(), 4u);
        FEDCL_CHECK_EQ(h.dim(3), conv.in_channels());
        const std::int64_t n = h.dim(0);
        node.spec = ConvSpec{.in_h = h.dim(1),
                             .in_w = h.dim(2),
                             .in_c = conv.in_channels(),
                             .kernel_h = conv.kernel(),
                             .kernel_w = conv.kernel(),
                             .stride = conv.stride(),
                             .pad = conv.pad()};
        node.spec.validate();
        node.weight_index = param_index;
        param_index += 2;
        node.cols = t::im2col(h, node.spec);
        Tensor y = t::matmul(node.cols, conv.parameters()[0].value());
        add_bias_rows_(y, conv.parameters()[1].value());
        h = y.reshape({n, node.spec.out_h(), node.spec.out_w(),
                       conv.out_channels()});
        break;
      }
      case NodeKind::kAvgPool: {
        const auto& pool = static_cast<const AvgPool2d&>(layer);
        FEDCL_CHECK_EQ(h.ndim(), 4u);
        const std::int64_t n = h.dim(0), ih = h.dim(1), iw = h.dim(2),
                           c = h.dim(3), k = pool.kernel();
        const std::int64_t oh = (ih - k) / k + 1, ow = (iw - k) / k + 1;
        const float inv = 1.0f / static_cast<float>(k * k);
        Tensor y({n, oh, ow, c});
        const float* src = h.data();
        float* dst = y.data();
        // Channel-contiguous accumulation into the zero-initialized
        // output: per output element the (ky, kx) term order matches
        // the scalar loop, so values are unchanged; images are
        // independent, so the batch loop parallelizes.
        compute_pool().parallel_for_chunks(
            static_cast<std::size_t>(n), 1,
            [&](std::size_t nb, std::size_t ne) {
              for (std::size_t b = nb; b < ne; ++b) {
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                  for (std::int64_t ox = 0; ox < ow; ++ox) {
                    float* out_row =
                        dst + ((static_cast<std::int64_t>(b) * oh + oy) * ow +
                               ox) *
                                  c;
                    for (std::int64_t ky = 0; ky < k; ++ky) {
                      const float* in_row =
                          src + ((static_cast<std::int64_t>(b) * ih +
                                  oy * k + ky) *
                                     iw +
                                 ox * k) *
                                    c;
                      for (std::int64_t kx = 0; kx < k; ++kx) {
                        for (std::int64_t ch = 0; ch < c; ++ch)
                          out_row[ch] += in_row[kx * c + ch] * inv;
                      }
                    }
                  }
                }
              }
            });
        h = y;
        break;
      }
      case NodeKind::kMaxPool: {
        const auto& pool = static_cast<const MaxPool2d&>(layer);
        FEDCL_CHECK_EQ(h.ndim(), 4u);
        const std::int64_t n = h.dim(0), ih = h.dim(1), iw = h.dim(2),
                           c = h.dim(3), k = pool.kernel();
        FEDCL_CHECK_EQ(ih % k, 0);
        FEDCL_CHECK_EQ(iw % k, 0);
        const std::int64_t oh = ih / k, ow = iw / k;
        Tensor y({n, oh, ow, c});
        node.argmax.resize(static_cast<std::size_t>(n * oh * ow * c));
        const float* src = h.data();
        float* dst = y.data();
        std::int64_t* am = node.argmax.data();
        // Running channel-contiguous max: window position (0, 0) seeds
        // the per-channel best, later (ky, kx) replace only on strict
        // improvement — the same first-wins tie behaviour as the
        // scalar argmax scan, in the same visit order.
        compute_pool().parallel_for_chunks(
            static_cast<std::size_t>(n), 1,
            [&](std::size_t nb, std::size_t ne) {
              for (std::size_t b = nb; b < ne; ++b) {
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                  for (std::int64_t ox = 0; ox < ow; ++ox) {
                    const std::int64_t out_base =
                        ((static_cast<std::int64_t>(b) * oh + oy) * ow + ox) *
                        c;
                    float* out_row = dst + out_base;
                    std::int64_t* am_row = am + out_base;
                    for (std::int64_t ky = 0; ky < k; ++ky) {
                      const std::int64_t in_base =
                          ((static_cast<std::int64_t>(b) * ih + oy * k + ky) *
                               iw +
                           ox * k) *
                          c;
                      for (std::int64_t kx = 0; kx < k; ++kx) {
                        const float* in_row = src + in_base + kx * c;
                        if (ky == 0 && kx == 0) {
                          for (std::int64_t ch = 0; ch < c; ++ch) {
                            out_row[ch] = in_row[ch];
                            am_row[ch] = in_base + ch;
                          }
                          continue;
                        }
                        for (std::int64_t ch = 0; ch < c; ++ch) {
                          if (in_row[ch] > out_row[ch]) {
                            out_row[ch] = in_row[ch];
                            am_row[ch] = in_base + kx * c + ch;
                          }
                        }
                      }
                    }
                  }
                }
              }
            });
        h = y;
        break;
      }
      case NodeKind::kDropout: {
        auto& drop = static_cast<Dropout&>(layer);
        if (drop.training() && drop.p() > 0.0) {
          node.mask = drop.sample_mask(h.shape());
          h = t::mul(h, node.mask);
        }
        break;
      }
      case NodeKind::kFlatten: {
        FEDCL_CHECK_GE(h.ndim(), 2u);
        std::int64_t rest = 1;
        for (std::size_t d = 1; d < h.ndim(); ++d) rest *= h.dim(d);
        h = h.reshape({h.dim(0), rest});
        break;
      }
      case NodeKind::kInputScale: {
        const auto& scale = static_cast<const InputScale&>(layer);
        h = t::mul_scalar(t::add_scalar(h, scale.shift()), scale.scale());
        break;
      }
      case NodeKind::kActivation: {
        const auto& act = static_cast<const ActivationLayer&>(layer);
        switch (act.kind()) {
          case Activation::kRelu:
            h = t::relu(h);
            break;
          case Activation::kSigmoid:
            h = t::sigmoid(h);
            break;
          case Activation::kTanh:
            h = t::tanh(h);
            break;
        }
        node.output = h;
        break;
      }
      case NodeKind::kUnsupported:
        FEDCL_CHECK(false) << "per-example engine: unsupported layer "
                           << layer.name();
    }
    tape.push_back(std::move(node));
  }
  FEDCL_CHECK_EQ(param_index, model.parameter_count());
  return h;
}

}  // namespace

void set_per_example_mode(PerExampleMode mode) { g_mode.store(mode); }

PerExampleMode per_example_mode() { return g_mode.load(); }

bool per_example_supported(const Sequential& model) {
  if (model.layer_count() == 0) return false;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (classify(model.layer(i)) == NodeKind::kUnsupported) return false;
  }
  return true;
}

PerExampleGrads compute_per_example_gradients(
    Sequential& model, const Tensor& x,
    const std::vector<std::int64_t>& labels, double* out_loss) {
  const std::int64_t batch = x.dim(0);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(labels.size()), batch);

  std::vector<TapeNode> tape;
  const Tensor logits = forward_with_tape(model, x, tape);
  FEDCL_CHECK_EQ(logits.ndim(), 2u);
  const std::int64_t classes = logits.dim(1);

  // Seed: each example's OWN loss gradient, softmax(z_j) - onehot(y_j).
  // No 1/B — row j of every downstream delta is then d(loss_j)/d(.).
  Tensor delta = softmax(logits);
  if (out_loss != nullptr) {
    double total = 0.0;
    for (std::int64_t j = 0; j < batch; ++j) {
      const float p = delta.at(j * classes + labels[static_cast<std::size_t>(j)]);
      total += -std::log(static_cast<double>(p) + 1e-30);
    }
    *out_loss = total / static_cast<double>(batch);
  }
  for (std::int64_t j = 0; j < batch; ++j) {
    delta.at(j * classes + labels[static_cast<std::size_t>(j)]) -= 1.0f;
  }

  std::vector<Shape> shapes;
  shapes.reserve(model.parameter_count());
  for (const auto& p : model.parameters()) shapes.push_back(p.value().shape());
  PerExampleGrads grads = t::list::make_per_example(batch, std::move(shapes));

  ThreadPool& pool = compute_pool();
  for (std::size_t i = tape.size(); i-- > 0;) {
    TapeNode& node = tape[i];
    const bool need_dx = i > 0;
    switch (node.kind) {
      case NodeKind::kLinear: {
        const auto& lin = static_cast<const Linear&>(*node.layer);
        const std::int64_t in = lin.in_features(), out = lin.out_features();
        Tensor& dw = grads.rows[node.weight_index];
        Tensor& db = grads.rows[node.weight_index + 1];
        const float* a = node.input.data();
        const float* d = delta.data();
        float* dw_p = dw.data();
        float* db_p = db.data();
        pool.parallel_for_chunks(
            static_cast<std::size_t>(batch), 1,
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t j = begin; j < end; ++j) {
                // grad_W[j] = a_j^T delta_j: a 1-deep matmul_tn is
                // exactly the outer product, accumulated into the
                // zero-initialized row.
                t::matmul_tn_into(a + j * in, d + j * out,
                                  dw_p + j * static_cast<std::size_t>(in * out),
                                  /*k=*/1, in, out);
                std::memcpy(db_p + j * out, d + j * out,
                            sizeof(float) * static_cast<std::size_t>(out));
              }
            });
        if (need_dx) {
          delta = t::matmul_nt(delta, lin.parameters()[0].value());
        }
        break;
      }
      case NodeKind::kConv: {
        const auto& conv = static_cast<const Conv2d&>(*node.layer);
        const std::int64_t patches = node.spec.out_h() * node.spec.out_w();
        const std::int64_t width = node.spec.patch_size();
        const std::int64_t oc = conv.out_channels();
        Tensor& dw = grads.rows[node.weight_index];
        Tensor& db = grads.rows[node.weight_index + 1];
        const float* cols = node.cols.data();
        const float* d = delta.data();
        float* dw_p = dw.data();
        float* db_p = db.data();
        pool.parallel_for_chunks(
            static_cast<std::size_t>(batch), 1,
            [&](std::size_t begin, std::size_t end) {
              for (std::size_t j = begin; j < end; ++j) {
                // grad_W[j] = cols_j^T delta_j over this example's
                // patches-deep im2col slice.
                t::matmul_tn_into(
                    cols + j * static_cast<std::size_t>(patches * width),
                    d + j * static_cast<std::size_t>(patches * oc),
                    dw_p + j * static_cast<std::size_t>(width * oc),
                    patches, width, oc);
                float* db_row = db_p + j * oc;
                const float* d_row =
                    d + j * static_cast<std::size_t>(patches * oc);
                for (std::int64_t p = 0; p < patches; ++p) {
                  for (std::int64_t o = 0; o < oc; ++o) {
                    db_row[o] += d_row[p * oc + o];
                  }
                }
              }
            });
        if (need_dx) {
          // Fused: each image's patch-gradient tile is matmul'd into a
          // scratch buffer and scattered straight back with col2im —
          // the full [batch*patches, width] unfolded gradient never
          // materializes (tensor/im2col.h).
          Tensor d2 = delta.reshape({batch * patches, oc});
          delta = t::conv_input_grad(d2, conv.parameters()[0].value(),
                                     node.spec, batch);
        }
        break;
      }
      case NodeKind::kAvgPool: {
        if (!need_dx) break;
        const std::int64_t n = node.in_shape[0], ih = node.in_shape[1],
                           iw = node.in_shape[2], c = node.in_shape[3];
        const auto& layer_pool = static_cast<const AvgPool2d&>(*node.layer);
        const std::int64_t k = layer_pool.kernel();
        const std::int64_t oh = (ih - k) / k + 1, ow = (iw - k) / k + 1;
        const float inv = 1.0f / static_cast<float>(k * k);
        Tensor dx(node.in_shape);
        float* dst = dx.data();
        const float* src = delta.data();
        // Pool windows tile the input, so each input element receives
        // exactly one src*inv contribution; images are independent and
        // the channel-contiguous spread vectorizes.
        pool.parallel_for_chunks(
            static_cast<std::size_t>(n), 1,
            [&](std::size_t nb, std::size_t ne) {
              for (std::size_t b = nb; b < ne; ++b) {
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                  for (std::int64_t ox = 0; ox < ow; ++ox) {
                    const float* g_row =
                        src + ((static_cast<std::int64_t>(b) * oh + oy) * ow +
                               ox) *
                                  c;
                    for (std::int64_t ky = 0; ky < k; ++ky) {
                      float* d_row =
                          dst + ((static_cast<std::int64_t>(b) * ih +
                                  oy * k + ky) *
                                     iw +
                                 ox * k) *
                                    c;
                      for (std::int64_t kx = 0; kx < k; ++kx) {
                        for (std::int64_t ch = 0; ch < c; ++ch)
                          d_row[kx * c + ch] += g_row[ch] * inv;
                      }
                    }
                  }
                }
              }
            });
        delta = dx;
        break;
      }
      case NodeKind::kMaxPool: {
        if (!need_dx) break;
        Tensor dx(node.in_shape);
        float* dst = dx.data();
        const float* src = delta.data();
        // argmax targets of image b stay inside image b, so the
        // scatter parallelizes over the batch.
        const std::int64_t per_image =
            static_cast<std::int64_t>(node.argmax.size()) / node.in_shape[0];
        pool.parallel_for_chunks(
            static_cast<std::size_t>(node.in_shape[0]), 1,
            [&](std::size_t nb, std::size_t ne) {
              for (std::size_t idx = nb * per_image; idx < ne * per_image;
                   ++idx) {
                dst[node.argmax[idx]] += src[idx];
              }
            });
        delta = dx;
        break;
      }
      case NodeKind::kDropout: {
        if (need_dx && node.mask.defined()) {
          delta = t::mul(delta, node.mask);
        }
        break;
      }
      case NodeKind::kFlatten: {
        if (need_dx) delta = delta.reshape(node.in_shape);
        break;
      }
      case NodeKind::kInputScale: {
        if (need_dx) {
          const auto& scale = static_cast<const InputScale&>(*node.layer);
          delta = t::mul_scalar(delta, scale.scale());
        }
        break;
      }
      case NodeKind::kActivation: {
        if (!need_dx) break;
        const auto& act = static_cast<const ActivationLayer&>(*node.layer);
        Tensor dx(delta.shape());
        const float* d = delta.data();
        const float* y = node.output.data();
        float* o = dx.data();
        switch (act.kind()) {
          case Activation::kRelu:
            for (std::int64_t e = 0; e < dx.numel(); ++e)
              o[e] = y[e] > 0.0f ? d[e] : 0.0f;
            break;
          case Activation::kSigmoid:
            for (std::int64_t e = 0; e < dx.numel(); ++e)
              o[e] = d[e] * y[e] * (1.0f - y[e]);
            break;
          case Activation::kTanh:
            for (std::int64_t e = 0; e < dx.numel(); ++e)
              o[e] = d[e] * (1.0f - y[e] * y[e]);
            break;
        }
        delta = dx;
        break;
      }
      case NodeKind::kUnsupported:
        FEDCL_CHECK(false) << "unreachable";
    }
  }
  return grads;
}

PerExampleGrads compute_per_example_gradients_sliced(
    Sequential& model, const Tensor& x,
    const std::vector<std::int64_t>& labels, double* out_loss) {
  const std::int64_t batch = x.dim(0);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(labels.size()), batch);
  FEDCL_CHECK_GT(batch, 0);
  const std::int64_t row = x.numel() / batch;

  std::vector<Shape> shapes;
  shapes.reserve(model.parameter_count());
  for (const auto& p : model.parameters()) shapes.push_back(p.value().shape());
  PerExampleGrads grads = t::list::make_per_example(batch, std::move(shapes));

  Shape ex_shape = x.shape();
  ex_shape[0] = 1;
  Tensor ex(ex_shape);
  double total_loss = 0.0;
  for (std::int64_t j = 0; j < batch; ++j) {
    std::memcpy(ex.data(), x.data() + j * row,
                sizeof(float) * static_cast<std::size_t>(row));
    double loss = 0.0;
    TensorList grad = compute_gradients(
        model, ex, {labels[static_cast<std::size_t>(j)]}, &loss);
    total_loss += loss;
    grads.set_example(j, grad);
  }
  if (out_loss != nullptr) *out_loss = total_loss / static_cast<double>(batch);
  return grads;
}

PerExampleGrads per_example_gradients(Sequential& model, const Tensor& x,
                                      const std::vector<std::int64_t>& labels,
                                      double* out_loss) {
  switch (g_mode.load()) {
    case PerExampleMode::kSliced:
      return compute_per_example_gradients_sliced(model, x, labels, out_loss);
    case PerExampleMode::kBatched:
      return compute_per_example_gradients(model, x, labels, out_loss);
    case PerExampleMode::kAuto:
      break;
  }
  if (per_example_supported(model)) {
    return compute_per_example_gradients(model, x, labels, out_loss);
  }
  return compute_per_example_gradients_sliced(model, x, labels, out_loss);
}

}  // namespace fedcl::nn
