#include "nn/metrics.h"

#include <sstream>

#include "common/error.h"
#include "nn/loss.h"

namespace fedcl::nn {

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  FEDCL_CHECK_GT(num_classes, 1);
}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t predicted) {
  FEDCL_CHECK(truth >= 0 && truth < classes_) << "label " << truth;
  FEDCL_CHECK(predicted >= 0 && predicted < classes_)
      << "prediction " << predicted;
  ++counts_[static_cast<std::size_t>(truth * classes_ + predicted)];
  ++total_;
}

void ConfusionMatrix::add_batch(const tensor::Tensor& logits,
                                const std::vector<std::int64_t>& labels) {
  std::vector<std::int64_t> preds = predict(logits);
  FEDCL_CHECK_EQ(preds.size(), labels.size());
  for (std::size_t i = 0; i < preds.size(); ++i) add(labels[i], preds[i]);
}

std::int64_t ConfusionMatrix::count(std::int64_t truth,
                                    std::int64_t predicted) const {
  FEDCL_CHECK(truth >= 0 && truth < classes_);
  FEDCL_CHECK(predicted >= 0 && predicted < classes_);
  return counts_[static_cast<std::size_t>(truth * classes_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t hits = 0;
  for (std::int64_t c = 0; c < classes_; ++c) hits += count(c, c);
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::int64_t cls) const {
  std::int64_t predicted_cls = 0;
  for (std::int64_t t = 0; t < classes_; ++t) predicted_cls += count(t, cls);
  if (predicted_cls == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) /
         static_cast<double>(predicted_cls);
}

double ConfusionMatrix::recall(std::int64_t cls) const {
  std::int64_t actual_cls = 0;
  for (std::int64_t p = 0; p < classes_; ++p) actual_cls += count(cls, p);
  if (actual_cls == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) /
         static_cast<double>(actual_cls);
}

double ConfusionMatrix::f1(std::int64_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::int64_t c = 0; c < classes_; ++c) sum += f1(c);
  return sum / static_cast<double>(classes_);
}

std::string ConfusionMatrix::render() const {
  std::ostringstream os;
  os << "confusion matrix (rows: truth, cols: predicted)\n";
  for (std::int64_t t = 0; t < classes_; ++t) {
    for (std::int64_t p = 0; p < classes_; ++p) {
      os << count(t, p) << (p + 1 == classes_ ? '\n' : '\t');
    }
  }
  return os.str();
}

}  // namespace fedcl::nn
