#include "nn/optimizer.h"


#include <cmath>

#include "common/error.h"

namespace fedcl::nn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : lr_(learning_rate), momentum_(momentum) {
  FEDCL_CHECK_GT(learning_rate, 0.0);
  FEDCL_CHECK(momentum >= 0.0 && momentum < 1.0) << "momentum " << momentum;
}

void SgdOptimizer::set_learning_rate(double lr) {
  FEDCL_CHECK_GT(lr, 0.0);
  lr_ = lr;
}

void SgdOptimizer::step(std::vector<Var>& params, const TensorList& grads) {
  FEDCL_CHECK_EQ(params.size(), grads.size());
  if (momentum_ > 0.0 && velocity_.empty()) {
    velocity_ = tensor::list::zeros_like(grads);
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    FEDCL_CHECK(params[i].value().shape() == grads[i].shape())
        << "grad shape mismatch at param " << i;
    tensor::Tensor updated = params[i].value().clone();
    if (momentum_ > 0.0) {
      velocity_[i].scale_(static_cast<float>(momentum_));
      velocity_[i].add_(grads[i], 1.0f);
      updated.add_(velocity_[i], static_cast<float>(-lr_));
    } else {
      updated.add_(grads[i], static_cast<float>(-lr_));
    }
    params[i].set_value(std::move(updated));
  }
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1,
                             double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  FEDCL_CHECK_GT(learning_rate, 0.0);
  FEDCL_CHECK(beta1 >= 0.0 && beta1 < 1.0) << "beta1 " << beta1;
  FEDCL_CHECK(beta2 >= 0.0 && beta2 < 1.0) << "beta2 " << beta2;
  FEDCL_CHECK_GT(epsilon, 0.0);
}

void AdamOptimizer::step(std::vector<Var>& params, const TensorList& grads) {
  FEDCL_CHECK_EQ(params.size(), grads.size());
  if (m_.empty()) {
    m_ = tensor::list::zeros_like(grads);
    v_ = tensor::list::zeros_like(grads);
  }
  ++steps_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(steps_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(steps_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    FEDCL_CHECK(params[i].value().shape() == grads[i].shape())
        << "grad shape mismatch at param " << i;
    tensor::Tensor updated = params[i].value().clone();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const float* g = grads[i].data();
    float* w = updated.data();
    for (std::int64_t j = 0; j < grads[i].numel(); ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g[j]);
      v[j] = static_cast<float>(beta2_ * v[j] +
                                (1.0 - beta2_) * g[j] * g[j]);
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      w[j] -= static_cast<float>(lr_ * m_hat /
                                 (std::sqrt(v_hat) + epsilon_));
    }
    params[i].set_value(std::move(updated));
  }
}

}  // namespace fedcl::nn
