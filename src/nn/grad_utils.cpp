#include "nn/grad_utils.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "nn/loss.h"

namespace fedcl::nn {

TensorList compute_gradients(const Sequential& model, const Tensor& x,
                             const std::vector<std::int64_t>& labels,
                             double* out_loss) {
  Var input(x, /*requires_grad=*/false);
  Var logits = model.forward(input);
  Var loss = softmax_cross_entropy(logits, labels);
  if (out_loss != nullptr) *out_loss = loss.value().item();
  Gradients grads = tensor::backward(loss, /*create_graph=*/false);
  TensorList out;
  out.reserve(model.parameters().size());
  for (const Var& p : model.parameters()) {
    FEDCL_CHECK(grads.contains(p)) << "parameter unreached in backward";
    out.push_back(grads.of(p).value().clone());
  }
  return out;
}

std::vector<Var> compute_gradient_vars(
    const Sequential& model, const Var& x,
    const std::vector<std::int64_t>& labels) {
  Var logits = model.forward(x);
  Var loss = softmax_cross_entropy(logits, labels);
  Gradients grads = tensor::backward(loss, /*create_graph=*/true);
  std::vector<Var> out;
  out.reserve(model.parameters().size());
  for (const Var& p : model.parameters()) {
    FEDCL_CHECK(grads.contains(p)) << "parameter unreached in backward";
    out.push_back(grads.of(p));
  }
  return out;
}

std::vector<double> per_layer_l2_norms(const TensorList& grads,
                                       const std::vector<LayerGroup>& groups) {
  std::vector<double> out;
  out.reserve(groups.size());
  for (const LayerGroup& g : groups) {
    out.push_back(tensor::list::l2_norm_subset(grads, g.param_indices));
  }
  return out;
}

double evaluate_accuracy(const Sequential& model, const Tensor& x,
                         const std::vector<std::int64_t>& labels,
                         std::int64_t batch) {
  FEDCL_CHECK_GT(batch, 0);
  const std::int64_t n = x.dim(0);
  FEDCL_CHECK_EQ(static_cast<std::int64_t>(labels.size()), n);
  FEDCL_CHECK_GT(n, 0);
  const std::int64_t row = x.numel() / n;
  tensor::GradModeGuard no_grad(false);
  std::size_t hits = 0;
  // One scratch chunk reused across iterations; only the final partial
  // chunk (if any) triggers a second allocation.
  tensor::Shape bshape = x.shape();
  Tensor bx;
  for (std::int64_t start = 0; start < n; start += batch) {
    const std::int64_t count = std::min(batch, n - start);
    if (!bx.defined() || bx.dim(0) != count) {
      bshape[0] = count;
      bx = Tensor(bshape);
    }
    std::memcpy(bx.data(), x.data() + start * row,
                sizeof(float) * static_cast<std::size_t>(count * row));
    Var logits = model.forward(Var(bx, false));
    std::vector<std::int64_t> pred = predict(logits.value());
    for (std::int64_t i = 0; i < count; ++i) {
      if (pred[static_cast<std::size_t>(i)] ==
          labels[static_cast<std::size_t>(start + i)])
        ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace fedcl::nn
