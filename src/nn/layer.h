// Layer interface and the Sequential container that forms a model.
//
// A "layer" here matches the paper's per-layer clipping granularity
// (Algorithm 2 lines 7-12): each parameterized layer contributes one
// clip group m in 1..M, covering its weight and bias together.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/autograd.h"
#include "tensor/tensor_list.h"

namespace fedcl::nn {

using tensor::Var;
using tensor::list::TensorList;

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Var forward(const Var& x) = 0;
  // Trainable parameters in a stable order; empty for stateless layers.
  virtual std::vector<Var> parameters() const { return {}; }
  virtual std::string name() const = 0;
  // Train/eval mode switch; only stochastic layers (Dropout) care.
  virtual void set_training(bool /*training*/) {}
};

// Parameter indices belonging to one clip group (one model layer m).
struct LayerGroup {
  std::string name;
  std::vector<std::size_t> param_indices;
};

// A feed-forward stack of layers — the only model topology the paper's
// benchmarks need (CNN with 2 conv + 1 fc; MLP with 2 hidden layers).
class Sequential {
 public:
  Sequential() = default;

  Sequential& add(std::shared_ptr<Layer> layer);
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_shared<L>(std::forward<Args>(args)...));
  }

  Var forward(const Var& x) const;

  std::size_t layer_count() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const;
  // Mutable access for components that drive layers directly (the
  // batched per-example engine consumes Dropout's mask stream).
  Layer& layer(std::size_t i);

  // All trainable parameters, ordered by layer.
  const std::vector<Var>& parameters() const { return params_; }
  // One group per *parameterized* layer (M groups for an M-layer model).
  const std::vector<LayerGroup>& layer_groups() const { return groups_; }
  std::size_t parameter_count() const { return params_.size(); }
  std::int64_t parameter_numel() const;

  // Deep copies of the parameter values (a model snapshot).
  TensorList weights() const;
  // Installs weights (shapes must match) — used to sync the global
  // model into clients each round.
  void set_weights(const TensorList& w);

  // Propagates train/eval mode to all layers (Dropout etc.).
  void set_training(bool training);
  bool training() const { return training_; }

 private:
  std::vector<std::shared_ptr<Layer>> layers_;
  std::vector<Var> params_;
  std::vector<LayerGroup> groups_;
  bool training_ = true;
};

}  // namespace fedcl::nn
