// Classification metrics beyond plain accuracy: confusion matrix,
// per-class precision/recall and macro-F1 — used by examples and
// benches to inspect what DP noise costs each class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace fedcl::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  // Accumulates one (true label, predicted label) observation.
  void add(std::int64_t truth, std::int64_t predicted);
  // Accumulates a batch from logits.
  void add_batch(const tensor::Tensor& logits,
                 const std::vector<std::int64_t>& labels);

  std::int64_t num_classes() const { return classes_; }
  std::int64_t total() const { return total_; }
  std::int64_t count(std::int64_t truth, std::int64_t predicted) const;

  double accuracy() const;
  // Precision/recall/F1 of one class (0 when the denominator is 0).
  double precision(std::int64_t cls) const;
  double recall(std::int64_t cls) const;
  double f1(std::int64_t cls) const;
  // Unweighted mean of per-class F1.
  double macro_f1() const;

  std::string render() const;

 private:
  std::int64_t classes_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> counts_;  // [truth * classes + predicted]
};

}  // namespace fedcl::nn
