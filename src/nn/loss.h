// Loss functions and classification metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/autograd.h"

namespace fedcl::nn {

using tensor::Tensor;
using tensor::Var;

// Mean softmax cross-entropy over the batch. logits: [N,C]. Composed
// from differentiable primitives, so it supports double backward.
Var softmax_cross_entropy(const Var& logits, const std::vector<std::int64_t>& labels);

// Mean squared error between two same-shape Vars.
Var mse(const Var& a, const Var& b);

// Row-wise softmax probabilities (raw tensor, no graph).
Tensor softmax(const Tensor& logits);

// Argmax class per row.
std::vector<std::int64_t> predict(const Tensor& logits);

// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace fedcl::nn
