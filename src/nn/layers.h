// Concrete layers: Linear, Conv2d (NHWC, im2col), AvgPool2d, Flatten
// and elementwise activations.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/im2col.h"

namespace fedcl::nn {

// Fully connected: x[N,in] -> x W + b, W:[in,out], b:[out].
class Linear : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);
  Var forward(const Var& x) override;
  std::vector<Var> parameters() const override { return {weight_, bias_}; }
  std::string name() const override { return name_; }
  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Var weight_;
  Var bias_;
  std::string name_;
};

// 2-D convolution on NHWC input. Weight is stored unfolded as
// [kernel*kernel*in_c, out_c] so forward is im2col + matmul, which
// keeps conv twice differentiable for the leakage attack.
class Conv2d : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad,
         Rng& rng);
  Var forward(const Var& x) override;
  std::vector<Var> parameters() const override { return {weight_, bias_}; }
  std::string name() const override { return name_; }
  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  Var weight_;
  Var bias_;
  std::string name_;
};

// Average pooling with kernel == stride, expressed as im2col followed
// by a constant pooling matrix (linear, hence trivially twice
// differentiable).
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::int64_t kernel);
  Var forward(const Var& x) override;
  std::string name() const override { return "avgpool"; }
  std::int64_t kernel() const { return kernel_; }

 private:
  std::int64_t kernel_;
  // Pool matrices cached per channel count.
  std::unordered_map<std::int64_t, Var> pool_matrices_;
};

// Max pooling with kernel == stride on NHWC input. The argmax routing
// is recorded per forward, so the backward is a fixed gather/scatter
// pair — linear, hence double-backward safe (like the relu mask).
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::int64_t kernel);
  Var forward(const Var& x) override;
  std::string name() const override { return "maxpool"; }
  std::int64_t kernel() const { return kernel_; }

 private:
  std::int64_t kernel_;
};

// Inverted dropout: during training each activation is zeroed with
// probability p and survivors are scaled by 1/(1-p); identity in eval
// mode. The mask randomness comes from an internal seeded stream, so
// runs stay reproducible.
class Dropout : public Layer {
 public:
  Dropout(double p, std::uint64_t seed);
  Var forward(const Var& x) override;
  std::string name() const override { return "dropout"; }
  void set_training(bool training) override { training_ = training; }
  bool training() const { return training_; }
  double p() const { return p_; }
  // Draws the next inverted-dropout mask (0 or 1/(1-p) per element)
  // from the layer's seeded stream. forward() and the batched
  // per-example engine both consume masks through here, so either path
  // advances the same stream.
  tensor::Tensor sample_mask(const tensor::Shape& shape);

 private:
  double p_;
  bool training_ = true;
  Rng rng_;
};

// [N,H,W,C] -> [N, H*W*C].
class Flatten : public Layer {
 public:
  Var forward(const Var& x) override;
  std::string name() const override { return "flatten"; }
};

// Fixed affine input transform y = (x + shift) * scale. Used to center
// [0,1] image inputs to [-1,1], which removes the large common-mode
// component that slows early training. Stateless (no parameters).
class InputScale : public Layer {
 public:
  InputScale(float shift, float scale) : shift_(shift), scale_(scale) {}
  Var forward(const Var& x) override;
  std::string name() const override { return "input_scale"; }
  float shift() const { return shift_; }
  float scale() const { return scale_; }

 private:
  float shift_;
  float scale_;
};

enum class Activation { kRelu, kSigmoid, kTanh };

const char* activation_name(Activation a);

class ActivationLayer : public Layer {
 public:
  explicit ActivationLayer(Activation kind) : kind_(kind) {}
  Var forward(const Var& x) override;
  std::string name() const override { return activation_name(kind_); }
  Activation kind() const { return kind_; }

 private:
  Activation kind_;
};

}  // namespace fedcl::nn
