#include "nn/layer.h"

#include "common/error.h"

namespace fedcl::nn {

Sequential& Sequential::add(std::shared_ptr<Layer> layer) {
  FEDCL_CHECK(layer != nullptr);
  std::vector<Var> ps = layer->parameters();
  if (!ps.empty()) {
    LayerGroup group;
    group.name = layer->name();
    for (Var& p : ps) {
      FEDCL_CHECK(p.requires_grad()) << "layer parameter must require grad";
      group.param_indices.push_back(params_.size());
      params_.push_back(p);
    }
    groups_.push_back(std::move(group));
  }
  layers_.push_back(std::move(layer));
  return *this;
}

Var Sequential::forward(const Var& x) const {
  FEDCL_CHECK(!layers_.empty()) << "forward on empty model";
  Var h = x;
  for (const auto& layer : layers_) h = layer->forward(h);
  return h;
}

const Layer& Sequential::layer(std::size_t i) const {
  FEDCL_CHECK_LT(i, layers_.size());
  return *layers_[i];
}

Layer& Sequential::layer(std::size_t i) {
  FEDCL_CHECK_LT(i, layers_.size());
  return *layers_[i];
}

std::int64_t Sequential::parameter_numel() const {
  std::int64_t n = 0;
  for (const Var& p : params_) n += p.numel();
  return n;
}

TensorList Sequential::weights() const {
  TensorList out;
  out.reserve(params_.size());
  for (const Var& p : params_) out.push_back(p.value().clone());
  return out;
}

void Sequential::set_training(bool training) {
  training_ = training;
  for (auto& layer : layers_) layer->set_training(training);
}

void Sequential::set_weights(const TensorList& w) {
  FEDCL_CHECK_EQ(w.size(), params_.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    params_[i].set_value(w[i].clone());
  }
}

}  // namespace fedcl::nn
