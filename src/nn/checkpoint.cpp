#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/error.h"

namespace fedcl::nn {

namespace {

constexpr std::uint32_t kMagic = 0xFEDC1CA1;
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  FEDCL_CHECK_EQ(std::fwrite(&v, sizeof(T), 1, f), 1u);
}

template <typename T>
T read_pod(std::FILE* f) {
  T v;
  FEDCL_CHECK_EQ(std::fread(&v, sizeof(T), 1, f), 1u);
  return v;
}

}  // namespace

void save_weights(const std::string& path,
                  const tensor::list::TensorList& weights) {
  File f(std::fopen(path.c_str(), "wb"));
  FEDCL_CHECK(f != nullptr) << "cannot open " << path << " for writing";
  write_pod(f.get(), kMagic);
  write_pod(f.get(), kVersion);
  write_pod(f.get(), static_cast<std::uint32_t>(weights.size()));
  for (const auto& t : weights) {
    FEDCL_CHECK(t.defined());
    write_pod(f.get(), static_cast<std::uint32_t>(t.ndim()));
    for (std::size_t d = 0; d < t.ndim(); ++d) {
      write_pod(f.get(), static_cast<std::int64_t>(t.dim(d)));
    }
    const std::size_t n = static_cast<std::size_t>(t.numel());
    FEDCL_CHECK_EQ(std::fwrite(t.data(), sizeof(float), n, f.get()), n);
  }
}

tensor::list::TensorList load_weights(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  FEDCL_CHECK(f != nullptr) << "cannot open " << path;
  FEDCL_CHECK_EQ(read_pod<std::uint32_t>(f.get()), kMagic)
      << "not a fedcl checkpoint: " << path;
  FEDCL_CHECK_EQ(read_pod<std::uint32_t>(f.get()), kVersion)
      << "unsupported checkpoint version";
  const auto count = read_pod<std::uint32_t>(f.get());
  tensor::list::TensorList weights;
  weights.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto ndim = read_pod<std::uint32_t>(f.get());
    FEDCL_CHECK_LE(ndim, 8u) << "implausible tensor rank";
    tensor::Shape shape;
    for (std::uint32_t d = 0; d < ndim; ++d) {
      shape.push_back(read_pod<std::int64_t>(f.get()));
    }
    tensor::Tensor t(shape);
    const std::size_t n = static_cast<std::size_t>(t.numel());
    FEDCL_CHECK_EQ(std::fread(t.data(), sizeof(float), n, f.get()), n)
        << "truncated checkpoint";
    weights.push_back(std::move(t));
  }
  // No trailing garbage.
  char probe;
  FEDCL_CHECK_EQ(std::fread(&probe, 1, 1, f.get()), 0u)
      << "trailing bytes in checkpoint";
  return weights;
}

}  // namespace fedcl::nn
