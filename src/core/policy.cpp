#include "core/policy.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/philox.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "dp/fused_sanitize.h"

namespace fedcl::core {

namespace {

// Folds one sanitize call's clip decisions into the global telemetry
// counters. Pure counter arithmetic — never touches the RNG — so
// telemetry cannot perturb the policies' noise streams.
void count_clipped_groups(const std::string& policy,
                          const std::vector<double>& norms, double bound) {
  std::int64_t clipped = 0;
  for (double norm : norms) {
    if (norm > bound) ++clipped;
  }
  auto& registry = telemetry::global_registry();
  const telemetry::Labels labels{{"policy", policy}};
  registry.counter("dp.clip.groups_total", labels)
      .add(static_cast<std::int64_t>(norms.size()));
  registry.counter("dp.clip.groups_clipped_total", labels).add(clipped);
}

}  // namespace

void PrivacyPolicy::sanitize_per_example(TensorList&, const ParamGroups&,
                                         std::int64_t, Rng&) const {}

void PrivacyPolicy::sanitize_per_example_batch(
    tensor::list::PerExampleGrads& grads, const ParamGroups& groups,
    std::int64_t round, Rng& rng) const {
  // Generic fallback: round-trip each example through the per-example
  // hook. Subclasses with a hot batched path override this.
  for (std::int64_t j = 0; j < grads.batch; ++j) {
    TensorList grad = grads.example(j);
    sanitize_per_example(grad, groups, round, rng);
    grads.set_example(j, grad);
  }
}

void PrivacyPolicy::sanitize_client_update(TensorList&, const ParamGroups&,
                                           std::int64_t, Rng&) const {}

void PrivacyPolicy::sanitize_at_server(TensorList&, const ParamGroups&,
                                       std::int64_t, Rng&) const {}

FedSdpPolicy::FedSdpPolicy(double clipping_bound, double noise_scale,
                           bool noise_at_server)
    : clip_(clipping_bound),
      mechanism_(noise_scale, clipping_bound),
      noise_at_server_(noise_at_server) {
  FEDCL_CHECK_GT(clipping_bound, 0.0);
}

void FedSdpPolicy::sanitize_client_update(TensorList& update,
                                          const ParamGroups& groups,
                                          std::int64_t /*round*/,
                                          Rng& rng) const {
  // Algorithm 1 lines 6-11: clip the per-client update layer by layer.
  const std::vector<double> norms = dp::clip_per_layer(update, groups, clip_);
  bool any_clipped = false;
  for (double norm : norms) any_clipped = any_clipped || norm > clip_;
  auto& registry = telemetry::global_registry();
  const telemetry::Labels labels{{"policy", name()}};
  registry.counter("dp.clip.updates_total", labels).add(1);
  registry.counter("dp.clip.updates_clipped_total", labels)
      .add(any_clipped ? 1 : 0);
  if (!noise_at_server_) {
    // Line 13 executed at the client: noise before the update leaves
    // the device, protecting both type-0 and type-1 observation points.
    mechanism_.sanitize(update, rng);
  }
}

void FedSdpPolicy::sanitize_at_server(TensorList& update,
                                      const ParamGroups& /*groups*/,
                                      std::int64_t /*round*/,
                                      Rng& rng) const {
  if (noise_at_server_) {
    mechanism_.sanitize(update, rng);
  }
}

const char* clip_granularity_name(ClipGranularity g) {
  switch (g) {
    case ClipGranularity::kPerLayer:
      return "per-layer";
    case ClipGranularity::kPerParameter:
      return "per-parameter";
    case ClipGranularity::kGlobal:
      return "global";
  }
  return "?";
}

ParamGroups effective_groups(ClipGranularity granularity,
                             const ParamGroups& layer_groups,
                             std::size_t param_count) {
  switch (granularity) {
    case ClipGranularity::kPerLayer:
      return layer_groups;
    case ClipGranularity::kPerParameter: {
      ParamGroups out;
      out.reserve(param_count);
      for (std::size_t i = 0; i < param_count; ++i) out.push_back({i});
      return out;
    }
    case ClipGranularity::kGlobal:
      return dp::single_group(param_count);
  }
  return layer_groups;
}

FedCdpPolicy::FedCdpPolicy(double clipping_bound, double noise_scale)
    : schedule_(dp::ClippingSchedule::constant(clipping_bound)),
      sigma_(noise_scale),
      decay_label_(false) {
  FEDCL_CHECK_GE(noise_scale, 0.0);
}

FedCdpPolicy::FedCdpPolicy(dp::ClippingSchedule schedule, double noise_scale,
                           bool decay_label, ClipGranularity granularity)
    : schedule_(schedule),
      sigma_(noise_scale),
      decay_label_(decay_label),
      granularity_(granularity) {
  FEDCL_CHECK_GE(noise_scale, 0.0);
}

std::string FedCdpPolicy::name() const {
  return decay_label_ ? "Fed-CDP(decay)" : "Fed-CDP";
}

double FedCdpPolicy::clipping_bound_at(std::int64_t round) const {
  return schedule_.bound_at(round);
}

void FedCdpPolicy::sanitize_per_example(TensorList& grad,
                                        const ParamGroups& groups,
                                        std::int64_t round, Rng& rng) const {
  // Algorithm 2 lines 9-12: per-layer clip of this example's gradient,
  // then line 14's Gaussian noise with S <- C(round). The noise is
  // added to every example's gradient (inside the batch sum).
  const double c = schedule_.bound_at(round);
  const ParamGroups clip_groups =
      effective_groups(granularity_, groups, grad.size());
  if (dp::noise_mode() == dp::NoiseMode::kStream) {
    const std::vector<double> norms = dp::clip_per_layer(grad, clip_groups, c);
    count_clipped_groups(name(), norms, c);
    dp::GaussianMechanism mechanism(sigma_, c);
    mechanism.sanitize(grad, rng);
    return;
  }
  // Counter mode: one fused clip+noise traversal (dp/fused_sanitize.h),
  // the same kernel the batched hook runs per example — which is what
  // keeps the two hooks bitwise interchangeable.
  const dp::ExampleView ex = dp::view_of(grad);
  const std::vector<double> norms = dp::group_norms(ex, clip_groups);
  count_clipped_groups(name(), norms, c);
  const CounterNoise noise(rng.next_u64());
  dp::scale_noise(ex, clip_groups, norms, c, sigma_ * c, noise);
}

void FedCdpPolicy::sanitize_per_example_batch(
    tensor::list::PerExampleGrads& grads, const ParamGroups& groups,
    std::int64_t round, Rng& rng) const {
  const double c = schedule_.bound_at(round);
  const ParamGroups clip_groups =
      effective_groups(granularity_, groups, grads.rows.size());
  if (dp::noise_mode() == dp::NoiseMode::kStream) {
    // Batched Algorithm 2 lines 9-14: one pass clips every example's
    // per-layer slice in place, then noise is drawn example-major — the
    // exact stream order of the per-example loop this replaces.
    const std::vector<double> norms =
        dp::clip_per_example_per_layer(grads, clip_groups, c);
    count_clipped_groups(name(), norms, c);
    dp::GaussianMechanism mechanism(sigma_, c);
    mechanism.sanitize_per_example(grads, rng);
    return;
  }
  // Counter mode: parallel norm pass, serial per-example key draws
  // (matching the draws a loop of sanitize_per_example calls would
  // make), then the parallel fused scale+noise pass.
  const std::size_t batch = static_cast<std::size_t>(grads.batch);
  const std::vector<double> norms = dp::batch_group_norms(grads, clip_groups);
  count_clipped_groups(name(), norms, c);
  std::vector<std::uint64_t> keys(batch);
  for (auto& k : keys) k = rng.next_u64();
  const std::vector<double> bounds(batch, c);
  const std::vector<double> stddevs(batch, sigma_ * c);
  dp::batch_scale_noise(grads, clip_groups, norms, bounds, stddevs, keys);
}

FedCdpAdaptivePolicy::FedCdpAdaptivePolicy(double initial_bound,
                                           double noise_scale,
                                           std::size_t window)
    : initial_bound_(initial_bound),
      sigma_(noise_scale),
      estimator_(window) {
  FEDCL_CHECK_GT(initial_bound, 0.0);
  FEDCL_CHECK_GE(noise_scale, 0.0);
}

double FedCdpAdaptivePolicy::current_bound() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return estimator_.ready() ? estimator_.median() : initial_bound_;
}

void FedCdpAdaptivePolicy::sanitize_per_example(TensorList& grad,
                                                const ParamGroups& groups,
                                                std::int64_t /*round*/,
                                                Rng& rng) const {
  double bound = initial_bound_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (estimator_.ready()) bound = estimator_.median();
  }
  std::vector<double> norms;
  if (dp::noise_mode() == dp::NoiseMode::kStream) {
    // Clip at the current median-of-norms bound...
    norms = dp::clip_per_layer(grad, groups, bound);
    count_clipped_groups(name(), norms, bound);
    dp::GaussianMechanism mechanism(sigma_, bound);
    mechanism.sanitize(grad, rng);
  } else {
    const dp::ExampleView ex = dp::view_of(grad);
    norms = dp::group_norms(ex, groups);
    count_clipped_groups(name(), norms, bound);
    const CounterNoise noise(rng.next_u64());
    dp::scale_noise(ex, groups, norms, bound, sigma_ * bound, noise);
  }
  // ...then fold this example's pre-clip norms into the estimator for
  // subsequent sanitizations.
  std::lock_guard<std::mutex> lock(mutex_);
  for (double norm : norms) {
    if (norm > 0.0) estimator_.observe(norm);
  }
}

void FedCdpAdaptivePolicy::sanitize_per_example_batch(
    tensor::list::PerExampleGrads& grads, const ParamGroups& groups,
    std::int64_t /*round*/, Rng& rng) const {
  // The estimator may move between examples (each example's pre-clip
  // norms are folded in before the next example is clipped), but the
  // pre-clip norms themselves only depend on example j's own slice —
  // so the norm pass can run in parallel up front, leaving only the
  // estimator walk (and in stream mode, the noise draws) serial.
  const std::int64_t batch = grads.batch;
  std::int64_t groups_seen = 0;
  std::int64_t groups_clipped = 0;
  if (dp::noise_mode() == dp::NoiseMode::kCounter) {
    const std::vector<double> norms = dp::batch_group_norms(grads, groups);
    std::vector<double> bounds(static_cast<std::size_t>(batch));
    std::vector<double> stddevs(static_cast<std::size_t>(batch));
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(batch));
    // Serial walk reproducing the per-example order: read the bound,
    // draw the example's noise key, fold its norms into the estimator.
    for (std::size_t j = 0; j < static_cast<std::size_t>(batch); ++j) {
      double bound = initial_bound_;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (estimator_.ready()) bound = estimator_.median();
      }
      bounds[j] = bound;
      stddevs[j] = sigma_ * bound;
      keys[j] = rng.next_u64();
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t g = 0; g < groups.size(); ++g) {
        const double norm = norms[j * groups.size() + g];
        ++groups_seen;
        if (norm > bound) ++groups_clipped;
        if (norm > 0.0) estimator_.observe(norm);
      }
    }
    dp::batch_scale_noise(grads, groups, norms, bounds, stddevs, keys);
    auto& registry = telemetry::global_registry();
    const telemetry::Labels labels{{"policy", name()}};
    registry.counter("dp.clip.groups_total", labels).add(groups_seen);
    registry.counter("dp.clip.groups_clipped_total", labels)
        .add(groups_clipped);
    return;
  }
  for (std::int64_t j = 0; j < batch; ++j) {
    double bound = initial_bound_;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (estimator_.ready()) bound = estimator_.median();
    }
    std::vector<double> norms;
    norms.reserve(groups.size());
    for (const auto& group : groups) {
      double joint = 0.0;
      for (std::size_t p : group) {
        const std::int64_t width = grads.rows[p].numel() / batch;
        const float* row = grads.rows[p].data() + j * width;
        double s = 0.0;
        for (std::int64_t i = 0; i < width; ++i)
          s += static_cast<double>(row[i]) * static_cast<double>(row[i]);
        // Rounded through float exactly like Tensor::l2_norm, so the
        // bound comparison matches the sliced path bit for bit.
        const double tensor_norm =
            static_cast<double>(static_cast<float>(std::sqrt(s)));
        joint += tensor_norm * tensor_norm;
      }
      const double norm = std::sqrt(joint);
      norms.push_back(norm);
      ++groups_seen;
      if (norm > bound) {
        ++groups_clipped;
        const float scale = static_cast<float>(bound / norm);
        for (std::size_t p : group) {
          const std::int64_t width = grads.rows[p].numel() / batch;
          float* row = grads.rows[p].data() + j * width;
          for (std::int64_t i = 0; i < width; ++i) row[i] *= scale;
        }
      }
    }
    const float stddev = static_cast<float>(sigma_ * bound);
    if (stddev > 0.0f) {
      for (tensor::Tensor& rows : grads.rows) {
        const std::int64_t width = rows.numel() / batch;
        float* row = rows.data() + j * width;
        for (std::int64_t i = 0; i < width; ++i)
          row[i] += static_cast<float>(rng.normal(0.0, stddev));
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (double norm : norms) {
      if (norm > 0.0) estimator_.observe(norm);
    }
  }
  auto& registry = telemetry::global_registry();
  const telemetry::Labels labels{{"policy", name()}};
  registry.counter("dp.clip.groups_total", labels).add(groups_seen);
  registry.counter("dp.clip.groups_clipped_total", labels).add(groups_clipped);
}

std::unique_ptr<PrivacyPolicy> make_non_private() {
  return std::make_unique<NonPrivatePolicy>();
}

std::unique_ptr<FedSdpPolicy> make_fed_sdp(double c, double sigma) {
  return std::make_unique<FedSdpPolicy>(c, sigma);
}

std::unique_ptr<FedCdpPolicy> make_fed_cdp(double c, double sigma) {
  return std::make_unique<FedCdpPolicy>(c, sigma);
}

std::unique_ptr<FedCdpPolicy> make_fed_cdp_decay(std::int64_t total_rounds,
                                                 double c_start, double c_end,
                                                 double sigma) {
  return std::make_unique<FedCdpPolicy>(
      dp::ClippingSchedule::linear(c_start, c_end, total_rounds), sigma,
      /*decay_label=*/true);
}

}  // namespace fedcl::core
