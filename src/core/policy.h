// Privacy policies for federated learning — the paper's core subject.
//
// A PrivacyPolicy hooks into the three places a defense can act:
//  - per-example gradients during local training (Algorithm 2,
//    lines 9-14: Fed-CDP clips per layer and adds Gaussian noise to
//    every example's gradient before batch averaging),
//  - the per-client round update before it is shared (Algorithm 1:
//    Fed-SDP clips the update; the noise can be added here when the
//    client runs the DP module),
//  - the received updates at the server (Algorithm 1 server-side
//    variant: noise added at the server, which protects type-0 but
//    not type-1 leakage).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "dp/adaptive_clipping.h"
#include "dp/clipping.h"
#include "dp/gaussian.h"
#include "tensor/tensor_list.h"

namespace fedcl {
class Rng;
}

namespace fedcl::core {

using dp::ParamGroups;
using tensor::list::TensorList;

class PrivacyPolicy {
 public:
  virtual ~PrivacyPolicy() = default;
  virtual std::string name() const = 0;

  // True when local training must process gradients per example
  // (Fed-CDP); false lets the client use the cheaper batched backward
  // (non-private, Fed-SDP).
  virtual bool needs_per_example_gradients() const { return false; }

  // True when the policy carries mutable cross-client state whose
  // result depends on observation order (e.g. the median-norm
  // estimator). The trainer serializes client execution for such
  // policies to keep runs bit-reproducible.
  virtual bool order_dependent() const { return false; }

  // Hook 1: sanitize one example's gradient during local training.
  virtual void sanitize_per_example(TensorList& grad,
                                    const ParamGroups& groups,
                                    std::int64_t round, Rng& rng) const;

  // Hook 1, batched form: sanitize every example of a local iteration
  // in the [B, numel] per-parameter layout the batched gradient engine
  // produces. The default loops over examples through
  // sanitize_per_example (correct for any subclass); Fed-CDP overrides
  // it with an in-place batched clip+noise that draws from `rng` in
  // the same example-major order, so both forms consume identical
  // noise streams.
  virtual void sanitize_per_example_batch(
      tensor::list::PerExampleGrads& grads, const ParamGroups& groups,
      std::int64_t round, Rng& rng) const;

  // Hook 2: sanitize the client's round update before sharing.
  virtual void sanitize_client_update(TensorList& update,
                                      const ParamGroups& groups,
                                      std::int64_t round, Rng& rng) const;

  // Hook 3: sanitize one received update at the server, before
  // aggregation.
  virtual void sanitize_at_server(TensorList& update,
                                  const ParamGroups& groups,
                                  std::int64_t round, Rng& rng) const;
};

// Baseline: no defense anywhere.
class NonPrivatePolicy final : public PrivacyPolicy {
 public:
  std::string name() const override { return "non-private"; }
};

// Fed-SDP (Algorithm 1): per-client clipping + Gaussian noise on the
// shared round update. noise_at_server selects the server-side
// variant, which the paper notes is vulnerable to type-1 leakage.
class FedSdpPolicy final : public PrivacyPolicy {
 public:
  FedSdpPolicy(double clipping_bound, double noise_scale,
               bool noise_at_server = false);
  std::string name() const override { return "Fed-SDP"; }

  void sanitize_client_update(TensorList& update, const ParamGroups& groups,
                              std::int64_t round, Rng& rng) const override;
  void sanitize_at_server(TensorList& update, const ParamGroups& groups,
                          std::int64_t round, Rng& rng) const override;
  double clipping_bound() const { return clip_; }
  double noise_scale() const { return mechanism_.noise_scale(); }
  bool noise_at_server() const { return noise_at_server_; }

 private:
  double clip_;
  dp::GaussianMechanism mechanism_;
  bool noise_at_server_;
};

// Granularity at which the clipping bound applies. The paper's
// Algorithm 2 clips per layer (one L2 norm per layer m); the other
// granularities support the ablation bench.
enum class ClipGranularity {
  kPerLayer,      // weight+bias of each layer jointly (the paper)
  kPerParameter,  // every parameter tensor independently
  kGlobal,        // the whole gradient as one vector
};

const char* clip_granularity_name(ClipGranularity g);

// Builds the effective clip groups for a granularity given the model's
// per-layer groups.
ParamGroups effective_groups(ClipGranularity granularity,
                             const ParamGroups& layer_groups,
                             std::size_t param_count);

// Fed-CDP (Algorithm 2): per-example, per-layer clipping + Gaussian
// noise at every local iteration. A ClippingSchedule makes this the
// same class implement Fed-CDP (constant C) and Fed-CDP(decay)
// (linearly decaying C); the sensitivity S tracks C(t) so the noise
// variance decays with the bound, as Section VI prescribes.
class FedCdpPolicy final : public PrivacyPolicy {
 public:
  // Fed-CDP with constant clipping bound.
  FedCdpPolicy(double clipping_bound, double noise_scale);
  // Fed-CDP with an arbitrary schedule; `decay_label` switches the
  // reported name to "Fed-CDP(decay)".
  FedCdpPolicy(dp::ClippingSchedule schedule, double noise_scale,
               bool decay_label,
               ClipGranularity granularity = ClipGranularity::kPerLayer);

  std::string name() const override;
  bool needs_per_example_gradients() const override { return true; }

  void sanitize_per_example(TensorList& grad, const ParamGroups& groups,
                            std::int64_t round, Rng& rng) const override;
  void sanitize_per_example_batch(tensor::list::PerExampleGrads& grads,
                                  const ParamGroups& groups,
                                  std::int64_t round,
                                  Rng& rng) const override;

  double clipping_bound_at(std::int64_t round) const;
  double noise_scale() const { return sigma_; }
  const dp::ClippingSchedule& schedule() const { return schedule_; }
  ClipGranularity granularity() const { return granularity_; }

 private:
  dp::ClippingSchedule schedule_;
  double sigma_;
  bool decay_label_;
  ClipGranularity granularity_ = ClipGranularity::kPerLayer;
};

// Fed-CDP with the paper's median-norm adaptive clipping strategy
// (Section IV, "Choosing Clipping Strategy C"): the bound tracks the
// median of recently observed per-layer gradient norms instead of a
// preset constant.
class FedCdpAdaptivePolicy final : public PrivacyPolicy {
 public:
  // initial_bound is used until enough norms have been observed.
  FedCdpAdaptivePolicy(double initial_bound, double noise_scale,
                       std::size_t window = 256);

  std::string name() const override { return "Fed-CDP(median)"; }
  bool needs_per_example_gradients() const override { return true; }
  bool order_dependent() const override { return true; }

  void sanitize_per_example(TensorList& grad, const ParamGroups& groups,
                            std::int64_t round, Rng& rng) const override;
  void sanitize_per_example_batch(tensor::list::PerExampleGrads& grads,
                                  const ParamGroups& groups,
                                  std::int64_t round,
                                  Rng& rng) const override;

  // Bound the next sanitization will use.
  double current_bound() const;
  double noise_scale() const { return sigma_; }

 private:
  double initial_bound_;
  double sigma_;
  // Mutable: observing norms is bookkeeping, not part of the policy's
  // logical state. Guarded for concurrent clients.
  mutable std::mutex mutex_;
  mutable dp::MedianNormEstimator estimator_;
};

// Convenience factories with the paper's defaults (C=4, sigma=6;
// decay C: 6 -> 2 over the given total rounds).
std::unique_ptr<PrivacyPolicy> make_non_private();
std::unique_ptr<FedSdpPolicy> make_fed_sdp(double c = 4.0, double sigma = 6.0);
std::unique_ptr<FedCdpPolicy> make_fed_cdp(double c = 4.0, double sigma = 6.0);
std::unique_ptr<FedCdpPolicy> make_fed_cdp_decay(std::int64_t total_rounds,
                                                 double c_start = 6.0,
                                                 double c_end = 2.0,
                                                 double sigma = 6.0);

}  // namespace fedcl::core
