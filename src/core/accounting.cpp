#include "core/accounting.h"

#include "common/error.h"
#include "dp/accountant.h"

namespace fedcl::core {

PrivacyReport account_privacy(const FlPrivacySetup& setup) {
  FEDCL_CHECK_GT(setup.total_examples, 0);
  FEDCL_CHECK_GT(setup.batch_size, 0);
  FEDCL_CHECK_GT(setup.clients_per_round, 0);
  FEDCL_CHECK_GE(setup.total_clients, setup.clients_per_round);
  FEDCL_CHECK_GT(setup.local_iterations, 0);
  FEDCL_CHECK_GT(setup.rounds, 0);
  FEDCL_CHECK_GT(setup.noise_scale, 0.0);

  PrivacyReport report;
  report.instance_q =
      static_cast<double>(setup.batch_size * setup.clients_per_round) /
      static_cast<double>(setup.total_examples);
  report.client_q = static_cast<double>(setup.clients_per_round) /
                    static_cast<double>(setup.total_clients);
  FEDCL_CHECK_LE(report.instance_q, 1.0)
      << "B*Kt exceeds the global dataset size";
  report.instance_steps = setup.rounds * setup.local_iterations;
  report.client_steps = setup.rounds;

  dp::MomentsAccountant instance_acc(report.instance_q, setup.noise_scale);
  dp::MomentsAccountant client_acc(report.client_q, setup.noise_scale);
  report.sampling_condition_ok = instance_acc.sampling_condition_ok();

  report.fed_cdp_instance_epsilon =
      instance_acc.epsilon(report.instance_steps, setup.delta);
  // Billboard lemma: the client-level joint-DP budget equals the
  // instance-level budget of the released global model.
  report.fed_cdp_client_epsilon = report.fed_cdp_instance_epsilon;
  report.fed_sdp_client_epsilon =
      client_acc.epsilon(report.client_steps, setup.delta);

  report.fed_cdp_instance_epsilon_closed_form = dp::abadi_bound_epsilon(
      report.instance_q, setup.noise_scale, report.instance_steps,
      setup.delta);
  report.fed_sdp_client_epsilon_closed_form = dp::abadi_bound_epsilon(
      report.client_q, setup.noise_scale, report.client_steps, setup.delta);
  return report;
}

PrivacyRoundSeries epsilon_round_series(const FlPrivacySetup& setup) {
  FEDCL_CHECK_GT(setup.total_examples, 0);
  FEDCL_CHECK_GT(setup.batch_size, 0);
  FEDCL_CHECK_GT(setup.clients_per_round, 0);
  FEDCL_CHECK_GE(setup.total_clients, setup.clients_per_round);
  FEDCL_CHECK_GT(setup.local_iterations, 0);
  FEDCL_CHECK_GT(setup.rounds, 0);
  FEDCL_CHECK_GT(setup.noise_scale, 0.0);

  const double instance_q =
      static_cast<double>(setup.batch_size * setup.clients_per_round) /
      static_cast<double>(setup.total_examples);
  const double client_q = static_cast<double>(setup.clients_per_round) /
                          static_cast<double>(setup.total_clients);
  FEDCL_CHECK_LE(instance_q, 1.0) << "B*Kt exceeds the global dataset size";

  dp::MomentsAccountant instance_acc(instance_q, setup.noise_scale);
  dp::MomentsAccountant client_acc(client_q, setup.noise_scale);

  PrivacyRoundSeries series;
  series.instance_epsilon = instance_acc.epsilon_series(
      setup.local_iterations, setup.rounds, setup.delta);
  series.client_epsilon =
      client_acc.epsilon_series(1, setup.rounds, setup.delta);
  return series;
}

}  // namespace fedcl::core
