// Bridges federated-learning parameters to the privacy accountant —
// the computation behind the paper's Table VI and Section V analysis.
//
// Instance level (Fed-CDP): by Proposition 1, the per-round local
// sampling across Kt clients behaves as one global sample of size
// B*Kt, so q = B*Kt/N and one accounting step is charged per local
// iteration (steps = T * L).
// Client level (Fed-SDP): q = Kt/K with one step per round
// (steps = T); the number of local iterations L does not change the
// accounting. Fed-CDP inherits its client-level guarantee from the
// instance level via the Billboard lemma (joint DP).
#pragma once

#include <cstdint>
#include <vector>

namespace fedcl::core {

struct FlPrivacySetup {
  std::int64_t total_examples = 0;    // N, across all clients
  std::int64_t batch_size = 1;        // B
  std::int64_t clients_per_round = 1; // Kt
  std::int64_t total_clients = 1;     // K
  std::int64_t local_iterations = 1;  // L
  std::int64_t rounds = 1;            // T
  double noise_scale = 6.0;           // sigma
  double delta = 1e-5;
};

struct PrivacyReport {
  // Sampling rates.
  double instance_q = 0.0;  // B*Kt/N
  double client_q = 0.0;    // Kt/K
  // Accounting steps.
  std::int64_t instance_steps = 0;  // T*L
  std::int64_t client_steps = 0;    // T
  // Moments-accountant budgets.
  double fed_cdp_instance_epsilon = 0.0;
  double fed_cdp_client_epsilon = 0.0;  // == instance (Billboard lemma)
  double fed_sdp_client_epsilon = 0.0;
  // Paper Equation 2 closed-form counterparts (c2 = 1.5).
  double fed_cdp_instance_epsilon_closed_form = 0.0;
  double fed_sdp_client_epsilon_closed_form = 0.0;
  // Definition 5 applicability q < 1/(16 sigma) at instance level.
  bool sampling_condition_ok = false;
  // Fed-SDP offers no instance-level guarantee ("not supported" in
  // Table VI); kept explicit for the bench output.
  static constexpr bool fed_sdp_supports_instance_level = false;
};

PrivacyReport account_privacy(const FlPrivacySetup& setup);

// Cumulative privacy budget round by round: element t is the budget
// spent after rounds 1..t+1. The values are bitwise identical to
// calling account_privacy with rounds = t+1 (the accountant's RDP is
// linear in steps), but computed in one pass — this is what the
// trainer's dp.epsilon telemetry series records each round.
struct PrivacyRoundSeries {
  std::vector<double> instance_epsilon;  // Fed-CDP, q = B*Kt/N, L steps/round
  std::vector<double> client_epsilon;    // Fed-SDP, q = Kt/K, 1 step/round
};

PrivacyRoundSeries epsilon_round_series(const FlPrivacySetup& setup);

}  // namespace fedcl::core
