#include <gtest/gtest.h>

#include <cmath>

#include "attack/lbfgs.h"
#include "attack/leakage_eval.h"
#include "attack/reconstruction.h"
#include "attack/seed_init.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "data/synthetic.h"
#include "nn/grad_utils.h"
#include "nn/model_zoo.h"

namespace fedcl::attack {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ---- L-BFGS ----

TEST(Lbfgs, MinimizesQuadratic) {
  // f(x) = sum (x_i - i)^2, minimum at x_i = i.
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    double loss = 0;
    g.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      loss += d * d;
      g[i] = 2 * d;
    }
    return loss;
  };
  std::vector<double> x(5, 10.0);
  LbfgsOptions opts;
  LbfgsResult result = lbfgs_minimize(x, f, opts);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.final_loss, 1e-10);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], static_cast<double>(i), 1e-5);
  }
}

TEST(Lbfgs, MinimizesRosenbrock) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    const double a = 1.0, b = 100.0;
    g.resize(2);
    const double d1 = x[1] - x[0] * x[0];
    double loss = (a - x[0]) * (a - x[0]) + b * d1 * d1;
    g[0] = -2 * (a - x[0]) - 4 * b * d1 * x[0];
    g[1] = 2 * b * d1;
    return loss;
  };
  std::vector<double> x = {-1.2, 1.0};
  LbfgsOptions opts;
  opts.max_iterations = 500;
  LbfgsResult result = lbfgs_minimize(x, f, opts);
  EXPECT_LT(result.final_loss, 1e-6);
  EXPECT_NEAR(x[0], 1.0, 1e-2);
  EXPECT_NEAR(x[1], 1.0, 1e-2);
}

TEST(Lbfgs, CallbackCanStopEarly) {
  // cosh is smooth but needs many iterations from far away, so the
  // callback fires before convergence.
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    g = {std::sinh(x[0])};
    return std::cosh(x[0]);
  };
  std::vector<double> x = {8.0};
  LbfgsOptions opts;
  int calls = 0;
  LbfgsResult result = lbfgs_minimize(
      x, f, opts, [&](int, const std::vector<double>&, double) {
        return ++calls >= 2;
      });
  EXPECT_TRUE(result.stopped_by_callback);
  EXPECT_EQ(calls, 2);
}

TEST(Lbfgs, IterationBudgetRespected) {
  // Slow zig-zag objective cannot converge in 3 iterations.
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    g.resize(x.size());
    double loss = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      loss += std::cosh(x[i]);
      g[i] = std::sinh(x[i]);
    }
    return loss;
  };
  std::vector<double> x(4, 3.0);
  LbfgsOptions opts;
  opts.max_iterations = 3;
  LbfgsResult result = lbfgs_minimize(x, f, opts);
  EXPECT_LE(result.iterations, 3);
  EXPECT_THROW(lbfgs_minimize(x, f, LbfgsOptions{.max_iterations = 0}),
               Error);
}

// ---- seeds ----

TEST(SeedInit, ShapesAndRanges) {
  Rng rng(1);
  for (SeedInit init : {SeedInit::kPatternedRandom, SeedInit::kUniformRandom,
                        SeedInit::kConstant}) {
    Tensor s = make_attack_seed({2, 8, 8, 3}, init, rng);
    EXPECT_EQ(s.shape(), (Shape{2, 8, 8, 3}));
    for (std::int64_t i = 0; i < s.numel(); ++i) {
      EXPECT_GE(s.at(i), 0.0f);
      EXPECT_LE(s.at(i), 1.0f);
    }
  }
  EXPECT_STREQ(seed_init_name(SeedInit::kPatternedRandom),
               "patterned-random");
}

TEST(SeedInit, PatternedTiles) {
  Rng rng(2);
  Tensor s = make_attack_seed({1, 8, 8, 1}, SeedInit::kPatternedRandom, rng);
  // 4x4 patch tiled: (y, x) == (y+4, x+4).
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_FLOAT_EQ(s.at(y * 8 + x), s.at((y + 4) * 8 + (x + 4)));
    }
  }
}

TEST(SeedInit, FlatPatternPeriodic) {
  Rng rng(3);
  Tensor s = make_attack_seed({1, 40}, SeedInit::kPatternedRandom, rng);
  EXPECT_FLOAT_EQ(s.at(0), s.at(16));
  EXPECT_FLOAT_EQ(s.at(5), s.at(21));
}

TEST(SeedInit, ConstantIsHalf) {
  Rng rng(4);
  Tensor s = make_attack_seed({3}, SeedInit::kConstant, rng);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(s.at(i), 0.5f);
}

// ---- reconstruction ----

struct AttackFixture {
  std::shared_ptr<nn::Sequential> model;
  data::Batch example;
  TensorList true_gradient;

  explicit AttackFixture(nn::Activation act = nn::Activation::kSigmoid) {
    Rng rng(5);
    data::SyntheticSpec spec{.example_shape = {8, 8, 1},
                             .classes = 4,
                             .count = 8};
    Rng drng = rng.fork("d");
    data::Dataset ds = data::generate_synthetic(spec, drng);
    nn::ModelSpec ms{.kind = nn::ModelSpec::Kind::kImageCnn,
                     .height = 8,
                     .width = 8,
                     .channels = 1,
                     .classes = 4,
                     .activation = act,
                     .conv1_channels = 4,
                     .conv2_channels = 8};
    Rng mrng = rng.fork("m");
    model = nn::build_model(ms, mrng);
    example = ds.example(0);
    true_gradient =
        nn::compute_gradients(*model, example.x, example.labels);
  }
};

TEST(Reconstruction, RecoversInputFromCleanGradient) {
  AttackFixture fx;
  AttackConfig config;
  config.max_iterations = 200;
  GradientReconstructionAttack attack(fx.model, config);
  AttackResult result = attack.run(fx.true_gradient, fx.example.x.shape(),
                                   fx.example.labels, fx.example.x);
  EXPECT_TRUE(result.success);
  EXPECT_LT(result.reconstruction_distance, 0.1);
  EXPECT_LT(result.iterations, 200);
  EXPECT_TRUE(result.reconstruction.defined());
  EXPECT_TRUE(result.ground_truth.defined());
}

TEST(Reconstruction, FailsUnderFedCdpNoise) {
  AttackFixture fx;
  // Sanitize the observed gradient the way Fed-CDP does.
  core::FedCdpPolicy policy(/*clipping_bound=*/1.0, /*noise_scale=*/1.0);
  TensorList observed = tensor::list::clone(fx.true_gradient);
  Rng rng(6);
  policy.sanitize_per_example(observed, dp::single_group(observed.size()), 0,
                              rng);
  AttackConfig config;
  config.max_iterations = 60;  // keep the test fast; failure is robust
  GradientReconstructionAttack attack(fx.model, config);
  AttackResult result = attack.run(observed, fx.example.x.shape(),
                                   fx.example.labels, fx.example.x);
  EXPECT_FALSE(result.success);
  EXPECT_GT(result.reconstruction_distance, 0.3);
  EXPECT_EQ(result.iterations, 60);  // failed attacks charged full budget
}

TEST(Reconstruction, LabelInference) {
  AttackFixture fx;
  EXPECT_EQ(GradientReconstructionAttack::infer_label(fx.true_gradient),
            fx.example.labels[0]);
}

TEST(Reconstruction, ValidatesInputs) {
  AttackFixture fx;
  GradientReconstructionAttack attack(fx.model, AttackConfig{});
  TensorList short_grads(fx.true_gradient.begin(),
                         fx.true_gradient.end() - 1);
  EXPECT_THROW(attack.run(short_grads, fx.example.x.shape(),
                          fx.example.labels, fx.example.x),
               Error);
  EXPECT_THROW(attack.run(fx.true_gradient, {1, 4, 4, 1},
                          fx.example.labels, fx.example.x),
               Error);
}

// ---- end-to-end leakage evaluation ----

data::BenchmarkConfig attack_bench() {
  data::BenchmarkConfig bench =
      data::benchmark_config(data::BenchmarkId::kMnist, BenchScale::kSmoke);
  // Smooth activations make the gradient-matching landscape tractable,
  // as in the DLG/CPL attack literature.
  bench.model.activation = nn::Activation::kSigmoid;
  bench.batch_size = 1;
  return bench;
}

TEST(LeakageEval, NonPrivateLeaksEverywhere) {
  LeakageExperimentConfig config;
  config.bench = attack_bench();
  config.clients = 2;
  config.attack.max_iterations = 150;
  core::NonPrivatePolicy policy;
  LeakageReport report = evaluate_leakage(config, policy);
  EXPECT_TRUE(report.type2.any_success);
  EXPECT_TRUE(report.type01.any_success);
  EXPECT_LT(report.type2.mean_distance, 0.25);
  EXPECT_EQ(report.type2.per_client.size(), 2u);
}

TEST(LeakageEval, FedCdpStopsType2) {
  LeakageExperimentConfig config;
  config.bench = attack_bench();
  config.clients = 1;
  config.attack.max_iterations = 60;
  core::FedCdpPolicy policy(4.0, 0.5);
  LeakageReport report = evaluate_leakage(config, policy);
  EXPECT_FALSE(report.type2.any_success);
  EXPECT_FALSE(report.type01.any_success);
  EXPECT_GT(report.type2.mean_distance, 0.3);
}

TEST(LeakageEval, FedSdpVulnerableToType2Only) {
  LeakageExperimentConfig config;
  config.bench = attack_bench();
  config.clients = 1;
  config.attack.max_iterations = 150;
  core::FedSdpPolicy policy(4.0, 0.5);
  LeakageReport report = evaluate_leakage(config, policy);
  // The paper's key observation: Fed-SDP protects the shared update
  // (type-0/1) but leaves per-example gradients (type-2) exposed.
  EXPECT_TRUE(report.type2.any_success);
  EXPECT_FALSE(report.type01.any_success);
}

TEST(LeakageEval, AsciiImageRendering) {
  Tensor img = Tensor::zeros({2, 2, 1});
  img.at(3) = 1.0f;
  std::string art = ascii_image(img);
  // Two rows of two double-width cells.
  EXPECT_EQ(art, "    \n  @@\n");
  EXPECT_THROW(ascii_image(Tensor::zeros({3})), Error);
}

}  // namespace
}  // namespace fedcl::attack
