// Fault injection, update screening, and graceful degradation of the
// round engine: a faulty or malicious client costs the round at most
// its own update; the experiment always completes every round.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/fault_injection.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "fl/update_screening.h"

namespace fedcl::fl {
namespace {

using tensor::Tensor;

// ---- fault plan ----

TEST(FaultPlan, DeterministicAndOrderIndependent) {
  FaultInjectionConfig cfg;
  cfg.fault_rate = 0.5;
  FaultPlan plan(cfg, 42);
  // Same (round, client) always draws the same fault, in any order.
  const FaultType a = plan.fault_for(3, 7);
  EXPECT_EQ(plan.fault_for(9, 1), plan.fault_for(9, 1));
  EXPECT_EQ(plan.fault_for(3, 7), a);
  FaultPlan same(cfg, 42);
  EXPECT_EQ(same.fault_for(3, 7), a);
}

TEST(FaultPlan, ZeroRateNeverFires) {
  FaultPlan plan({}, 1);
  for (std::int64_t t = 0; t < 20; ++t) {
    for (std::int64_t c = 0; c < 20; ++c) {
      EXPECT_EQ(plan.fault_for(t, c), FaultType::kNone);
    }
  }
}

TEST(FaultPlan, FullRateAlwaysFires) {
  FaultInjectionConfig cfg;
  cfg.fault_rate = 1.0;
  FaultPlan plan(cfg, 7);
  for (std::int64_t t = 0; t < 10; ++t) {
    for (std::int64_t c = 0; c < 10; ++c) {
      EXPECT_NE(plan.fault_for(t, c), FaultType::kNone);
    }
  }
}

TEST(FaultPlan, MixWeightsSelectTypes) {
  FaultInjectionConfig cfg;
  cfg.fault_rate = 1.0;
  cfg.crash_weight = 1.0;
  cfg.straggler_weight = 0.0;
  cfg.corrupt_weight = 0.0;
  cfg.bit_flip_weight = 0.0;
  cfg.stale_round_weight = 0.0;
  FaultPlan plan(cfg, 13);
  for (std::int64_t c = 0; c < 50; ++c) {
    EXPECT_EQ(plan.fault_for(0, c), FaultType::kCrash);
  }
}

TEST(FaultPlan, RateApproximatelyRespected) {
  FaultInjectionConfig cfg;
  cfg.fault_rate = 0.2;
  FaultPlan plan(cfg, 99);
  int fired = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (plan.fault_for(i / 100, i % 100) != FaultType::kNone) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.2, 0.03);
}

TEST(FaultPlan, Validation) {
  FaultInjectionConfig bad;
  bad.fault_rate = 1.5;
  EXPECT_THROW(FaultPlan(bad, 0), Error);
  bad.fault_rate = 0.5;
  bad.crash_weight = bad.straggler_weight = bad.corrupt_weight =
      bad.bit_flip_weight = bad.stale_round_weight = 0.0;
  EXPECT_THROW(FaultPlan(bad, 0), Error);
}

// ---- fault mutators ----

TEST(FaultMutators, CorruptDeltaAlwaysPoisons) {
  Rng rng(5);
  TensorList delta = {Tensor::ones({16}), Tensor::ones({4, 4})};
  corrupt_delta(delta, rng);
  bool non_finite = false;
  for (const auto& t : delta) {
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      if (!std::isfinite(t.data()[i])) non_finite = true;
    }
  }
  EXPECT_TRUE(non_finite);
}

TEST(FaultMutators, FlipRandomBitsChangesBuffer) {
  Rng rng(6);
  std::vector<std::uint8_t> bytes(64, 0xAA);
  const auto original = bytes;
  flip_random_bits(bytes, rng, 3);
  EXPECT_NE(bytes, original);
  EXPECT_EQ(bytes.size(), original.size());
}

// ---- update screening ----

std::vector<tensor::Shape> expected_shapes() { return {{2}, {3}}; }

ClientUpdate good_update(std::int64_t id, std::int64_t round,
                         float scale = 1.0f) {
  ClientUpdate u;
  u.client_id = id;
  u.round = round;
  u.delta = {Tensor::full({2}, scale), Tensor::full({3}, scale)};
  return u;
}

TEST(UpdateScreening, AcceptsValidRejectsEachReason) {
  UpdateScreener screener({.norm_outlier_factor = 0.0});
  std::vector<ClientUpdate> updates;
  updates.push_back(good_update(0, 5));
  updates.push_back(good_update(1, 4));  // stale
  ClientUpdate wrong_shape = good_update(2, 5);
  wrong_shape.delta.pop_back();
  updates.push_back(std::move(wrong_shape));
  ClientUpdate poisoned = good_update(3, 5);
  poisoned.delta[0].data()[1] = std::numeric_limits<float>::quiet_NaN();
  updates.push_back(std::move(poisoned));

  ScreeningReport report;
  auto accepted =
      screener.screen(std::move(updates), expected_shapes(), 5, report);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].client_id, 0);
  EXPECT_EQ(report.accepted, 1);
  EXPECT_EQ(report.rejected_stale, 1);
  EXPECT_EQ(report.rejected_shape, 1);
  EXPECT_EQ(report.rejected_non_finite, 1);
  EXPECT_EQ(report.rejected_total(), 3);
}

TEST(UpdateScreening, RelativeNormOutlierAgainstMedian) {
  UpdateScreener screener({.norm_outlier_factor = 10.0});
  std::vector<ClientUpdate> updates;
  updates.push_back(good_update(0, 0, 1.0f));
  updates.push_back(good_update(1, 0, 1.1f));
  updates.push_back(good_update(2, 0, 0.9f));
  updates.push_back(good_update(3, 0, 1000.0f));  // 1000x the median
  ScreeningReport report;
  auto accepted =
      screener.screen(std::move(updates), expected_shapes(), 0, report);
  EXPECT_EQ(accepted.size(), 3u);
  EXPECT_EQ(report.rejected_norm_outlier, 1);
  for (const auto& u : accepted) EXPECT_NE(u.client_id, 3);
}

TEST(UpdateScreening, RelativeCheckNeedsThreeCandidates) {
  UpdateScreener screener({.norm_outlier_factor = 2.0});
  std::vector<ClientUpdate> updates;
  updates.push_back(good_update(0, 0, 1.0f));
  updates.push_back(good_update(1, 0, 100.0f));
  ScreeningReport report;
  auto accepted =
      screener.screen(std::move(updates), expected_shapes(), 0, report);
  // Two candidates: no median to trust, both kept.
  EXPECT_EQ(accepted.size(), 2u);
}

TEST(UpdateScreening, AbsoluteNormCap) {
  UpdateScreener screener({.max_update_norm = 1.0});
  std::vector<ClientUpdate> updates;
  updates.push_back(good_update(0, 0, 0.1f));
  updates.push_back(good_update(1, 0, 50.0f));
  ScreeningReport report;
  auto accepted =
      screener.screen(std::move(updates), expected_shapes(), 0, report);
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].client_id, 0);
  EXPECT_EQ(report.rejected_norm_outlier, 1);
}

TEST(UpdateScreening, WeightsFilteredInLockstep) {
  UpdateScreener screener;
  std::vector<ClientUpdate> updates;
  updates.push_back(good_update(0, 0));
  updates.push_back(good_update(1, 9));  // stale
  updates.push_back(good_update(2, 0));
  std::vector<double> weights = {10.0, 20.0, 30.0};
  ScreeningReport report;
  auto accepted = screener.screen(std::move(updates), expected_shapes(), 0,
                                  report, &weights);
  ASSERT_EQ(accepted.size(), 2u);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 10.0);
  EXPECT_DOUBLE_EQ(weights[1], 30.0);
}

// ---- server graceful degradation ----

TEST(Server, AggregateScreensMixedBatch) {
  Server server({Tensor::zeros({2})});
  core::NonPrivatePolicy policy;
  Rng rng(21);
  std::vector<ClientUpdate> updates(3);
  updates[0] = {0, 0, {Tensor::from_vector({2}, {2, 4})}};
  updates[1] = {1, 7, {Tensor::from_vector({2}, {100, 100})}};  // stale
  updates[2] = {2, 0, {Tensor::from_vector({2}, {4, 0})}};
  ScreeningReport report =
      server.aggregate(std::move(updates), policy, {{0}}, rng).screening;
  EXPECT_EQ(report.accepted, 2);
  EXPECT_EQ(report.rejected_stale, 1);
  // Mean of the two valid updates only.
  EXPECT_FLOAT_EQ(server.weights()[0].at(0), 3.0f);
  EXPECT_FLOAT_EQ(server.weights()[0].at(1), 2.0f);
  EXPECT_EQ(server.round(), 1);
}

TEST(Server, QuorumMissLeavesModelUntouched) {
  Server server({Tensor::ones({2})}, {.min_reporting = 2});
  core::NonPrivatePolicy policy;
  Rng rng(22);
  std::vector<ClientUpdate> updates(2);
  updates[0] = {0, 0, {Tensor::full({2}, 5.0f)}};
  ClientUpdate bad = {1, 0, {Tensor::full({2}, 9.0f)}};
  bad.delta[0].data()[0] = std::numeric_limits<float>::infinity();
  updates[1] = std::move(bad);
  ScreeningReport report =
      server.aggregate(std::move(updates), policy, {{0}}, rng).screening;
  EXPECT_EQ(report.accepted, 1);
  EXPECT_EQ(report.rejected_non_finite, 1);
  EXPECT_FLOAT_EQ(server.weights()[0].at(0), 1.0f);  // untouched
  EXPECT_EQ(server.round(), 0);                      // not advanced
}

TEST(Server, EmptyBatchIsAQuorumMissNotAnAbort) {
  Server server({Tensor::ones({1})});
  core::NonPrivatePolicy policy;
  Rng rng(23);
  ScreeningReport report =
      server.aggregate({}, policy, {{0}}, rng).screening;
  EXPECT_EQ(report.accepted, 0);
  EXPECT_EQ(server.round(), 0);
}

// ---- trainer under injected faults ----

FlExperimentConfig faulty_config() {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 8;
  config.clients_per_round = 4;
  config.rounds = 6;
  config.seed = 31;
  return config;
}

TEST(TrainerFaults, MixedFaultsCompleteAllRoundsWithExactAccounting) {
  FlExperimentConfig config = faulty_config();
  config.faults.fault_rate = 0.3;  // all five types in the mix
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);

  ASSERT_EQ(result.history.size(), 6u);
  EXPECT_EQ(result.completed_rounds + result.dropped_rounds, 6);
  EXPECT_GE(result.final_accuracy, 0.0);

  const RoundFailureStats& f = result.total_failures;
  EXPECT_GT(f.injected_total(), 0);  // rate 0.3 over 24+ draws
  // Every injected fault is accounted for in exactly one handled
  // counter (no natural dropout, norm screening off).
  EXPECT_EQ(f.handled_total(), f.injected_total());
  // Bit flips surface as decode rejections, corruption as non-finite,
  // replays as stale.
  EXPECT_EQ(f.rejected_decode, f.injected_bit_flip);
  EXPECT_EQ(f.rejected_non_finite, f.injected_corrupt);
  EXPECT_EQ(f.rejected_stale, f.injected_stale);
  EXPECT_EQ(f.rejected_shape, 0);

  // The aggregate equals the sum of the per-round records.
  RoundFailureStats per_round_sum;
  for (const auto& r : result.history) {
    per_round_sum.accumulate(r.failures);
  }
  EXPECT_EQ(per_round_sum.injected_total(), f.injected_total());
  EXPECT_EQ(per_round_sum.rejected_total(), f.rejected_total());
  EXPECT_EQ(per_round_sum.quorum_missed, result.dropped_rounds);
}

TEST(TrainerFaults, DeterministicForSeedUnderFaults) {
  FlExperimentConfig config = faulty_config();
  config.faults.fault_rate = 0.25;
  core::NonPrivatePolicy policy;
  FlRunResult a = run_experiment(config, policy);
  FlRunResult b = run_experiment(config, policy);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_failures.injected_total(),
            b.total_failures.injected_total());
  EXPECT_EQ(a.total_failures.rejected_total(),
            b.total_failures.rejected_total());
  EXPECT_EQ(a.dropped_rounds, b.dropped_rounds);
}

TEST(TrainerFaults, AllClientsCrashingSkipsEveryRoundGracefully) {
  FlExperimentConfig config = faulty_config();
  config.faults.fault_rate = 1.0;
  config.faults.straggler_weight = 0.0;
  config.faults.corrupt_weight = 0.0;
  config.faults.bit_flip_weight = 0.0;
  config.faults.stale_round_weight = 0.0;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);

  // Nothing aggregates, yet every round is recorded and the run ends
  // with a usable (initial) model.
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_EQ(result.dropped_rounds, 6);
  EXPECT_EQ(result.completed_rounds, 0);
  EXPECT_EQ(result.total_failures.quorum_missed, 6);
  EXPECT_FALSE(std::isnan(result.final_accuracy));
  EXPECT_GE(result.final_accuracy, 0.0);
  // Retry sampled replacements each round (4 transient failures, 4
  // spare clients), which also crashed.
  EXPECT_EQ(result.total_failures.retried_clients, 6 * 4);
  EXPECT_EQ(result.total_failures.injected_crash, 6 * 8);
  for (const auto& r : result.history) {
    EXPECT_TRUE(std::isnan(r.accuracy));
    EXPECT_EQ(r.failures.quorum_missed, 1);
  }
}

TEST(TrainerFaults, RetryDisabledLeavesPoolUntouched) {
  FlExperimentConfig config = faulty_config();
  config.faults.fault_rate = 1.0;
  config.faults.straggler_weight = 0.0;
  config.faults.corrupt_weight = 0.0;
  config.faults.bit_flip_weight = 0.0;
  config.faults.stale_round_weight = 0.0;
  config.retry_failed_clients = false;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_EQ(result.total_failures.retried_clients, 0);
  EXPECT_EQ(result.total_failures.injected_crash, 6 * 4);
  EXPECT_EQ(result.dropped_rounds, 6);
}

TEST(TrainerFaults, QuorumAboveDeliveryDropsRounds) {
  FlExperimentConfig config = faulty_config();
  config.min_reporting = config.clients_per_round + 1;  // unreachable
  config.retry_failed_clients = false;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_EQ(result.dropped_rounds, 6);
  EXPECT_EQ(result.total_failures.quorum_missed, 6);
  EXPECT_FALSE(std::isnan(result.final_accuracy));
}

TEST(TrainerFaults, DropoutAndQuorumAccountingStayConsistent) {
  // Heavy natural dropout + crash faults: dropped_rounds, per-round
  // quorum stats, and history length must stay mutually consistent.
  FlExperimentConfig config = faulty_config();
  config.client_dropout = 0.6;
  config.faults.fault_rate = 0.3;
  config.eval_every = 1;  // applied rounds always record an accuracy
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);

  ASSERT_EQ(result.history.size(), 6u);
  std::int64_t skipped = 0;
  for (const auto& r : result.history) {
    if (std::isnan(r.accuracy) || r.failures.quorum_missed > 0) {
      EXPECT_EQ(r.failures.quorum_missed, std::isnan(r.accuracy) ? 1 : 0);
    }
    skipped += r.failures.quorum_missed;
  }
  EXPECT_EQ(skipped, result.dropped_rounds);
  EXPECT_EQ(result.completed_rounds + result.dropped_rounds, 6);
  EXPECT_GT(result.total_failures.dropouts, 0);
  EXPECT_FALSE(std::isnan(result.final_accuracy));
}

TEST(TrainerFaults, NormScreeningSurvivesTraining) {
  // Norm screening enabled on an honest run: nothing should be
  // rejected, accuracy unaffected.
  FlExperimentConfig config = faulty_config();
  config.screening.norm_outlier_factor = 25.0;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_EQ(result.total_failures.rejected_total(), 0);
  EXPECT_EQ(result.dropped_rounds, 0);
  EXPECT_GE(result.final_accuracy, 0.0);
}

TEST(TrainerFaults, ValidatesMinReporting) {
  FlExperimentConfig config = faulty_config();
  config.min_reporting = 0;
  core::NonPrivatePolicy policy;
  EXPECT_THROW(run_experiment(config, policy), Error);
}

}  // namespace
}  // namespace fedcl::fl
