#include <gtest/gtest.h>

#include <algorithm>

#include "attack/reconstruction.h"
#include "common/error.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/grad_utils.h"
#include "nn/model_zoo.h"

namespace fedcl::attack {
namespace {

using tensor::Tensor;

struct VariantFixture {
  std::shared_ptr<nn::Sequential> model;
  data::Batch example;
  data::Batch batch;
  TensorList example_gradient;
  TensorList batch_gradient;

  VariantFixture() {
    Rng rng(41);
    data::SyntheticSpec spec{.example_shape = {8, 8, 1},
                             .classes = 6,
                             .count = 12};
    Rng drng = rng.fork("d");
    data::Dataset ds = data::generate_synthetic(spec, drng);
    nn::ModelSpec ms{.kind = nn::ModelSpec::Kind::kImageCnn,
                     .height = 8,
                     .width = 8,
                     .channels = 1,
                     .classes = 6,
                     .activation = nn::Activation::kSigmoid,
                     .conv1_channels = 4,
                     .conv2_channels = 8};
    Rng mrng = rng.fork("m");
    model = nn::build_model(ms, mrng);
    example = ds.example(0);
    // Batch of 3 with distinct labels {0,1,2} (balanced generation).
    batch = ds.gather({0, 1, 2});
    example_gradient =
        nn::compute_gradients(*model, example.x, example.labels);
    batch_gradient = nn::compute_gradients(*model, batch.x, batch.labels);
  }
};

TEST(CosineAttack, RecoversInput) {
  VariantFixture fx;
  AttackConfig config;
  config.objective = AttackObjective::kCosine;
  config.max_iterations = 250;
  GradientReconstructionAttack attack(fx.model, config);
  AttackResult result = attack.run(fx.example_gradient,
                                   fx.example.x.shape(), fx.example.labels,
                                   fx.example.x);
  EXPECT_TRUE(result.success);
  EXPECT_LT(result.reconstruction_distance, 0.2);
}

TEST(CosineAttack, TvPriorStillRecovers) {
  VariantFixture fx;
  AttackConfig config;
  config.objective = AttackObjective::kCosine;
  config.tv_weight = 1e-4;
  config.max_iterations = 250;
  GradientReconstructionAttack attack(fx.model, config);
  AttackResult result = attack.run(fx.example_gradient,
                                   fx.example.x.shape(), fx.example.labels,
                                   fx.example.x);
  EXPECT_TRUE(result.success);
}

TEST(CosineAttack, ScaleInvariance) {
  // Cosine matching is invariant to the observed gradient's scale —
  // the attack succeeds even when the observation was rescaled (e.g.
  // an update seen through an unknown learning rate), where L2 fails.
  VariantFixture fx;
  TensorList scaled = tensor::list::clone(fx.example_gradient);
  tensor::list::scale_(scaled, 37.5f);
  AttackConfig config;
  config.objective = AttackObjective::kCosine;
  config.max_iterations = 250;
  GradientReconstructionAttack attack(fx.model, config);
  AttackResult result = attack.run(scaled, fx.example.x.shape(),
                                   fx.example.labels, fx.example.x);
  EXPECT_TRUE(result.success);
}

TEST(CosineAttack, ObjectiveNames) {
  EXPECT_STREQ(attack_objective_name(AttackObjective::kL2), "L2");
  EXPECT_STREQ(attack_objective_name(AttackObjective::kCosine), "cosine");
}

TEST(BatchLabels, RecoversDistinctLabels) {
  VariantFixture fx;
  std::vector<std::int64_t> inferred =
      GradientReconstructionAttack::infer_batch_labels(fx.batch_gradient,
                                                       3);
  std::vector<std::int64_t> expected = fx.batch.labels;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(inferred, expected);
}

TEST(BatchLabels, SingleExampleMatchesIdlg) {
  VariantFixture fx;
  std::vector<std::int64_t> inferred =
      GradientReconstructionAttack::infer_batch_labels(
          fx.example_gradient, 1);
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_EQ(inferred[0], GradientReconstructionAttack::infer_label(
                             fx.example_gradient));
}

TEST(BatchLabels, RepeatedLabelsFilledByMagnitude) {
  // Two copies of the same example: only one negative bias entry, so
  // the second slot is filled with the most negative class again.
  VariantFixture fx;
  data::Batch doubled;
  {
    tensor::Shape s = fx.example.x.shape();
    s[0] = 2;
    doubled.x = Tensor(s);
    const std::int64_t row = fx.example.x.numel();
    std::copy(fx.example.x.data(), fx.example.x.data() + row,
              doubled.x.data());
    std::copy(fx.example.x.data(), fx.example.x.data() + row,
              doubled.x.data() + row);
    doubled.labels = {fx.example.labels[0], fx.example.labels[0]};
  }
  TensorList grads =
      nn::compute_gradients(*fx.model, doubled.x, doubled.labels);
  std::vector<std::int64_t> inferred =
      GradientReconstructionAttack::infer_batch_labels(grads, 2);
  EXPECT_EQ(inferred,
            (std::vector<std::int64_t>{fx.example.labels[0],
                                       fx.example.labels[0]}));
}

TEST(BatchLabels, Validation) {
  VariantFixture fx;
  EXPECT_THROW(GradientReconstructionAttack::infer_batch_labels(
                   fx.example_gradient, 0),
               fedcl::Error);
  EXPECT_THROW(GradientReconstructionAttack::infer_batch_labels({}, 1),
               fedcl::Error);
}

TEST(TvPrior, RejectsNegativeWeight) {
  VariantFixture fx;
  AttackConfig config;
  config.tv_weight = -1.0;
  EXPECT_THROW(GradientReconstructionAttack(fx.model, config), fedcl::Error);
}

}  // namespace
}  // namespace fedcl::attack
