// The asynchronous round engine and its supporting layers: the
// deadline/retry/backoff policy, the streaming screen_one verdict, the
// bounded-memory FedBuff aggregator with staleness-decay weighting, the
// reduced-quorum degradation tier, and the async trainer mode —
// including its determinism contract on a serialized executor.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/async_aggregator.h"
#include "fl/retry_policy.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "fl/update_screening.h"

namespace fedcl::fl {
namespace {

using tensor::Tensor;

// ---- retry policy ----

TEST(RetryPolicy, TransientSetIsExactlyTheRedispatchableFaults) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.transient(FaultType::kCrash));
  EXPECT_TRUE(policy.transient(FaultType::kCorruptDelta));
  EXPECT_TRUE(policy.transient(FaultType::kBitFlip));
  EXPECT_FALSE(policy.transient(FaultType::kNone));
  EXPECT_FALSE(policy.transient(FaultType::kStraggler));
  EXPECT_FALSE(policy.transient(FaultType::kStaleRound));
}

TEST(RetryPolicy, BackoffIsExponentialWithBoundedJitter) {
  RetryPolicyConfig cfg;
  cfg.max_attempts = 5;
  cfg.base_backoff_ms = 10.0;
  cfg.backoff_multiplier = 2.0;
  cfg.jitter_frac = 0.25;
  RetryPolicy policy(cfg);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1, rng), 0.0);  // first dispatch
  for (int attempt = 2; attempt <= 5; ++attempt) {
    const double nominal = 10.0 * std::pow(2.0, attempt - 2);
    for (int rep = 0; rep < 50; ++rep) {
      const double b = policy.backoff_ms(attempt, rng);
      EXPECT_GE(b, nominal * 0.75);
      EXPECT_LE(b, nominal * 1.25);
    }
  }
}

TEST(RetryPolicy, StragglerLatencyBlowsThroughTheDeadline) {
  RetryPolicyConfig cfg;
  cfg.soft_deadline_ms = 100.0;
  cfg.base_latency_ms = 5.0;
  cfg.straggler_delay_ms = 400.0;
  RetryPolicy policy(cfg);
  Rng rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    const double healthy = policy.latency_ms(FaultType::kNone, rng);
    const double late = policy.latency_ms(FaultType::kStraggler, rng);
    EXPECT_LT(healthy, cfg.soft_deadline_ms);
    EXPECT_GT(late, cfg.soft_deadline_ms);
    EXPECT_GE(policy.rounds_late(late), 1);
  }
  EXPECT_EQ(policy.rounds_late(99.0), 0);
  EXPECT_EQ(policy.rounds_late(100.0), 0);
  EXPECT_EQ(policy.rounds_late(250.0), 2);
}

TEST(RetryPolicy, ConfigValidation) {
  RetryPolicyConfig bad;
  bad.max_attempts = 0;
  EXPECT_THROW(RetryPolicy{bad}, Error);
  bad = {};
  bad.soft_deadline_ms = 0.0;
  EXPECT_THROW(RetryPolicy{bad}, Error);
  bad = {};
  bad.jitter_frac = 1.0;
  EXPECT_THROW(RetryPolicy{bad}, Error);
}

TEST(FaultPlan, AttemptZeroMatchesLegacyStreamAndRetriesRedraw) {
  FaultInjectionConfig cfg;
  cfg.fault_rate = 0.7;
  FaultPlan plan(cfg, 99);
  bool any_differs = false;
  for (std::int64_t t = 0; t < 10; ++t) {
    for (std::int64_t c = 0; c < 10; ++c) {
      EXPECT_EQ(plan.fault_for_attempt(t, c, 0), plan.fault_for(t, c));
      // Retry draws are deterministic per attempt index...
      EXPECT_EQ(plan.fault_for_attempt(t, c, 1),
                plan.fault_for_attempt(t, c, 1));
      if (plan.fault_for_attempt(t, c, 1) != plan.fault_for_attempt(t, c, 0))
        any_differs = true;
    }
  }
  // ...but independent of the first-attempt stream.
  EXPECT_TRUE(any_differs);
}

// ---- streaming screen_one ----

std::vector<tensor::Shape> unit_shapes() { return {tensor::Shape({2})}; }

TEST(ScreenOne, ReturnsStalenessInsteadOfBareReject) {
  UpdateScreener screener;
  ScreeningReport report;
  ClientUpdate u{0, /*round=*/3, {Tensor::ones({2})}};
  ScreenVerdict v =
      screener.screen_one(u, unit_shapes(), /*current_round=*/5,
                          /*max_staleness=*/8, report);
  EXPECT_TRUE(v.accepted());
  EXPECT_EQ(v.staleness, 2);
  EXPECT_EQ(report.accepted, 1);
}

TEST(ScreenOne, MaxStalenessZeroReproducesSyncSemantics) {
  UpdateScreener screener;
  ScreeningReport report;
  ClientUpdate fresh{0, 5, {Tensor::ones({2})}};
  ClientUpdate stale{0, 4, {Tensor::ones({2})}};
  EXPECT_TRUE(
      screener.screen_one(fresh, unit_shapes(), 5, 0, report).accepted());
  ScreenVerdict v = screener.screen_one(stale, unit_shapes(), 5, 0, report);
  ASSERT_FALSE(v.accepted());
  EXPECT_EQ(*v.reject, RejectReason::kStaleRound);
  EXPECT_EQ(report.rejected_stale, 1);
}

TEST(ScreenOne, FutureRoundTagAlwaysRejects) {
  UpdateScreener screener;
  ScreeningReport report;
  ClientUpdate future{0, 9, {Tensor::ones({2})}};
  ScreenVerdict v = screener.screen_one(future, unit_shapes(), 5, 8, report);
  ASSERT_FALSE(v.accepted());
  EXPECT_EQ(*v.reject, RejectReason::kStaleRound);
  EXPECT_EQ(v.staleness, -4);
}

TEST(ScreenOne, StructuralAndFiniteChecksStillApply) {
  UpdateScreener screener;
  ScreeningReport report;
  ClientUpdate wrong_shape{0, 5, {Tensor::ones({3})}};
  EXPECT_EQ(*screener.screen_one(wrong_shape, unit_shapes(), 5, 8, report)
                 .reject,
            RejectReason::kShapeMismatch);
  ClientUpdate poisoned{0, 5, {Tensor::ones({2})}};
  poisoned.delta[0].data()[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(*screener.screen_one(poisoned, unit_shapes(), 5, 8, report)
                 .reject,
            RejectReason::kNonFinite);
  ScreeningConfig capped;
  capped.max_update_norm = 0.5;
  UpdateScreener strict(capped);
  ClientUpdate big{0, 5, {Tensor::ones({2})}};
  EXPECT_EQ(*strict.screen_one(big, unit_shapes(), 5, 8, report).reject,
            RejectReason::kNormOutlier);
}

// ---- async aggregator ----

AsyncAggregatorConfig agg_config(std::int64_t min_to_apply, double alpha = 1.0,
                                 std::int64_t max_staleness = 8) {
  AsyncAggregatorConfig cfg;
  cfg.min_to_apply = min_to_apply;
  cfg.staleness_alpha = alpha;
  cfg.max_staleness = max_staleness;
  return cfg;
}

ClientUpdate delta_update(std::int64_t round, float v0, float v1) {
  return {0, round, {Tensor::from_vector({2}, {v0, v1})}};
}

TEST(AsyncAggregator, AppliesExactlyAtTheMthOffer) {
  core::NonPrivatePolicy policy;
  dp::ParamGroups groups = {{0}};
  AsyncAggregator agg({Tensor::zeros({2})}, agg_config(2), policy, groups,
                      Rng(1));
  auto r1 = agg.offer(delta_update(0, 2.0f, 4.0f), 0, 1.0);
  EXPECT_TRUE(r1.accepted);
  EXPECT_FALSE(r1.applied);
  EXPECT_EQ(agg.buffered(), 1);
  EXPECT_EQ(agg.applies(), 0);
  auto r2 = agg.offer(delta_update(0, 4.0f, 0.0f), 0, 1.0);
  EXPECT_TRUE(r2.applied);
  EXPECT_EQ(agg.applies(), 1);
  EXPECT_EQ(agg.buffered(), 0);  // accumulator reset
  // Plain mean of the two fresh updates.
  TensorList w = agg.weights_snapshot();
  EXPECT_FLOAT_EQ(w[0].at(0), 3.0f);
  EXPECT_FLOAT_EQ(w[0].at(1), 2.0f);
}

TEST(AsyncAggregator, StaleUpdateEntersWithDecayWeight) {
  core::NonPrivatePolicy policy;
  dp::ParamGroups groups = {{0}};
  // alpha = 1: staleness 1 -> weight 1/2.
  AsyncAggregator agg({Tensor::zeros({2})}, agg_config(2, 1.0), policy,
                      groups, Rng(1));
  auto fresh = agg.offer(delta_update(3, 6.0f, 0.0f), 3, 1.0);
  EXPECT_EQ(fresh.staleness, 0);
  auto stale = agg.offer(delta_update(2, 12.0f, 3.0f), 3, 1.0);
  EXPECT_TRUE(stale.accepted);
  EXPECT_EQ(stale.staleness, 1);
  ASSERT_TRUE(stale.applied);
  // (1*6 + 0.5*12) / 1.5 = 8 ; (1*0 + 0.5*3) / 1.5 = 1.
  TensorList w = agg.weights_snapshot();
  EXPECT_FLOAT_EQ(w[0].at(0), 8.0f);
  EXPECT_FLOAT_EQ(w[0].at(1), 1.0f);
}

TEST(AsyncAggregator, TooStaleIsScreenedOut) {
  core::NonPrivatePolicy policy;
  dp::ParamGroups groups = {{0}};
  AsyncAggregator agg({Tensor::zeros({2})}, agg_config(1, 0.5, 2), policy,
                      groups, Rng(1));
  auto r = agg.offer(delta_update(0, 1.0f, 1.0f), /*now_round=*/5, 1.0);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(*r.reject, RejectReason::kStaleRound);
  EXPECT_EQ(agg.buffered(), 0);
}

TEST(AsyncAggregator, FlushAppliesAPartialBuffer) {
  core::NonPrivatePolicy policy;
  dp::ParamGroups groups = {{0}};
  AsyncAggregator agg({Tensor::zeros({2})}, agg_config(4), policy, groups,
                      Rng(1));
  EXPECT_FALSE(agg.flush());  // nothing buffered
  agg.offer(delta_update(0, 2.0f, 2.0f), 0, 1.0);
  EXPECT_TRUE(agg.flush());
  EXPECT_EQ(agg.applies(), 1);
  EXPECT_FLOAT_EQ(agg.weights_snapshot()[0].at(0), 2.0f);
}

TEST(AsyncAggregator, EmitsStalenessAndOccupancyTelemetry) {
  telemetry::Registry& registry = telemetry::global_registry();
  registry.reset();
  core::NonPrivatePolicy policy;
  dp::ParamGroups groups = {{0}};
  AsyncAggregator agg({Tensor::zeros({2})}, agg_config(2, 1.0), policy,
                      groups, Rng(1));
  agg.offer(delta_update(1, 1.0f, 0.0f), 2, 1.0);  // staleness 1
  telemetry::TelemetrySnapshot mid = registry.snapshot();
  EXPECT_EQ(mid.gauge_value("fl.async.buffer_occupancy"), 1.0);
  agg.offer(delta_update(2, 1.0f, 0.0f), 2, 1.0);  // triggers apply
  telemetry::TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("fl.async.stale_accepted_total"), 1);
  EXPECT_EQ(snap.counter_value("fl.async.applied_total",
                               {{"trigger", "quorum"}}),
            1);
  EXPECT_EQ(snap.gauge_value("fl.async.buffer_occupancy"), 0.0);
  EXPECT_NE(snap.find_histogram("fl.async.staleness"), nullptr);
}

// ---- reduced-quorum degradation tier (sync server) ----

TEST(Server, ReducedQuorumAppliesWithNoiseWideningSurfaced) {
  Server server({Tensor::zeros({2})},
                {.min_reporting = 3, .reduced_min_reporting = 1});
  core::NonPrivatePolicy policy;
  Rng rng(4);
  std::vector<ClientUpdate> updates(1);
  updates[0] = {0, 0, {Tensor::from_vector({2}, {3.0f, 9.0f})}};
  AggregateOutcome outcome =
      server.aggregate(std::move(updates), policy, {{0}}, rng);
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(outcome.tier, DegradationTier::kReducedQuorum);
  EXPECT_DOUBLE_EQ(outcome.noise_widening, 3.0);
  EXPECT_FLOAT_EQ(server.weights()[0].at(0), 3.0f);
  EXPECT_EQ(server.round(), 1);
}

TEST(Server, BelowReducedQuorumStillSkips) {
  Server server({Tensor::ones({1})},
                {.min_reporting = 3, .reduced_min_reporting = 2});
  core::NonPrivatePolicy policy;
  Rng rng(5);
  std::vector<ClientUpdate> updates(1);
  updates[0] = {0, 0, {Tensor::ones({1})}};
  AggregateOutcome outcome =
      server.aggregate(std::move(updates), policy, {{0}}, rng);
  EXPECT_FALSE(outcome.applied);
  EXPECT_EQ(outcome.tier, DegradationTier::kSkipRound);
  EXPECT_FLOAT_EQ(server.weights()[0].at(0), 1.0f);
  EXPECT_EQ(server.round(), 0);
}

TEST(Server, ReducedQuorumAboveFullQuorumRejected) {
  EXPECT_THROW(Server({Tensor::ones({1})},
                      {.min_reporting = 2, .reduced_min_reporting = 3}),
               Error);
}

// ---- async trainer mode ----

FlExperimentConfig async_config() {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 8;
  config.clients_per_round = 4;
  config.rounds = 6;
  config.seed = 77;
  config.async_mode = true;
  return config;
}

TEST(AsyncTrainer, FaultFreeRunAppliesEveryRound) {
  FlExperimentConfig config = async_config();
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_EQ(result.history.size(), 6u);
  EXPECT_EQ(result.dropped_rounds, 0);
  EXPECT_GE(result.async_applies, 6);
  EXPECT_TRUE(std::isfinite(result.final_accuracy));
  for (const auto& t : result.final_weights) {
    const float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p[i]));
    }
  }
}

TEST(AsyncTrainer, StragglersAreAbsorbedStaleNotDropped) {
  FlExperimentConfig config = async_config();
  config.rounds = 8;
  config.faults.fault_rate = 0.5;
  config.faults.crash_weight = 0.0;
  config.faults.straggler_weight = 1.0;
  config.faults.corrupt_weight = 0.0;
  config.faults.bit_flip_weight = 0.0;
  config.faults.stale_round_weight = 0.0;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_EQ(result.dropped_rounds, 0);
  EXPECT_GT(result.total_failures.injected_straggler, 0);
  // At least one straggler landed inside the horizon and was folded in
  // with a decay weight rather than rejected.
  EXPECT_GT(result.total_failures.fault_accepted_stale, 0);
  EXPECT_GT(
      result.telemetry.counter_value("fl.async.stale_accepted_total"), 0);
  EXPECT_EQ(result.total_failures.injected_total(),
            result.total_failures.faults_resolved_total());
}

TEST(AsyncTrainer, RetryBudgetRecoversCrashes) {
  FlExperimentConfig config = async_config();
  config.rounds = 8;
  config.retry.max_attempts = 3;
  config.faults.fault_rate = 0.6;
  config.faults.crash_weight = 1.0;
  config.faults.straggler_weight = 0.0;
  config.faults.corrupt_weight = 0.0;
  config.faults.bit_flip_weight = 0.0;
  config.faults.stale_round_weight = 0.0;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_GT(result.total_failures.retry_attempts, 0);
  EXPECT_GT(result.total_failures.fault_retried, 0);
  EXPECT_EQ(result.total_failures.injected_total(),
            result.total_failures.faults_resolved_total());
  EXPECT_GT(result.telemetry.counter_value("fl.retry.attempts_total"), 0);
}

// The determinism contract: with a serialized executor
// (parallel_clients = false) the async engine consumes every RNG
// stream in client order, so a fixed seed reproduces the final weights
// bit for bit. Across different thread counts the fold order of the
// shared accumulator — and therefore float rounding — may differ; that
// boundary is documented in DESIGN.md, not papered over here.
TEST(AsyncTrainer, SerializedExecutorIsBitwiseReproducible) {
  FlExperimentConfig config = async_config();
  config.rounds = 5;
  config.parallel_clients = false;
  config.retry.max_attempts = 2;
  config.faults.fault_rate = 0.4;
  core::NonPrivatePolicy policy;
  FlRunResult a = run_experiment(config, policy);
  FlRunResult b = run_experiment(config, policy);
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (std::size_t i = 0; i < a.final_weights.size(); ++i) {
    const Tensor& ta = a.final_weights[i];
    const Tensor& tb = b.final_weights[i];
    ASSERT_EQ(ta.numel(), tb.numel());
    for (std::int64_t j = 0; j < ta.numel(); ++j) {
      ASSERT_EQ(ta.data()[j], tb.data()[j])
          << "weights diverged at tensor " << i << " element " << j;
    }
  }
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.async_applies, b.async_applies);
}

TEST(SyncTrainer, DefaultsAreBitwiseIdenticalToLegacyEngine) {
  // The retry/degradation layers default off; a default-config sync run
  // must produce exactly the same weights as before this feature — this
  // guards the config plumbing (an accidentally-on retry path would
  // change RNG consumption and show up here as a weight diff).
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 8;
  config.clients_per_round = 4;
  config.rounds = 4;
  config.seed = 31;
  config.faults.fault_rate = 0.3;
  core::NonPrivatePolicy policy;
  FlRunResult a = run_experiment(config, policy);
  config.retry.max_attempts = 1;  // explicit default
  config.reduced_min_reporting = 0;
  FlRunResult b = run_experiment(config, policy);
  for (std::size_t i = 0; i < a.final_weights.size(); ++i) {
    for (std::int64_t j = 0; j < a.final_weights[i].numel(); ++j) {
      ASSERT_EQ(a.final_weights[i].data()[j], b.final_weights[i].data()[j]);
    }
  }
}

}  // namespace
}  // namespace fedcl::fl
