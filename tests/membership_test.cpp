#include <gtest/gtest.h>

#include "attack/membership.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/grad_utils.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"

namespace fedcl::attack {
namespace {

struct MembershipFixture {
  std::shared_ptr<nn::Sequential> model;
  data::Batch members;
  data::Batch nonmembers;

  MembershipFixture() {
    Rng rng(31);
    data::SyntheticSpec spec{.example_shape = {12},
                             .classes = 2,
                             .count = 64,
                             .noise = 1.2f,  // hard task => memorization gap
                             .clamp01 = false};
    Rng drng = rng.fork("d");
    data::Dataset train = data::generate_synthetic(spec, drng);
    Rng vrng = rng.fork("v");
    data::Dataset holdout = data::generate_synthetic(spec, vrng);
    nn::ModelSpec ms{.kind = nn::ModelSpec::Kind::kMlp,
                     .in_features = 12,
                     .classes = 2,
                     .hidden1 = 32,
                     .hidden2 = 32};
    Rng mrng = rng.fork("m");
    model = nn::build_model(ms, mrng);
    std::vector<std::int64_t> all(64);
    for (int i = 0; i < 64; ++i) all[i] = i;
    members = train.gather(all);
    nonmembers = holdout.gather(all);
    // Random labels: the model can only *memorize* them, so an
    // overfit model is guaranteed a member/non-member loss gap while
    // an untrained model has none.
    Rng lrng = rng.fork("labels");
    for (auto& l : members.labels) l = static_cast<std::int64_t>(
        lrng.uniform_int(2));
    for (auto& l : nonmembers.labels) l = static_cast<std::int64_t>(
        lrng.uniform_int(2));
  }

  void overfit(int epochs) {
    auto params = model->parameters();
    nn::SgdOptimizer opt(0.5);
    for (int e = 0; e < epochs; ++e) {
      nn::TensorList g =
          nn::compute_gradients(*model, members.x, members.labels);
      opt.step(params, g);
    }
  }
};

TEST(Membership, PerExampleLossesPositiveAndSized) {
  MembershipFixture fx;
  std::vector<double> losses = per_example_losses(*fx.model, fx.members);
  EXPECT_EQ(losses.size(), 64u);
  for (double l : losses) EXPECT_GT(l, 0.0);
}

TEST(Membership, UntrainedModelHasNoAdvantage) {
  MembershipFixture fx;
  MembershipResult r =
      evaluate_membership(*fx.model, fx.members, fx.nonmembers);
  // Random-init model: member and non-member losses indistinguishable.
  EXPECT_LT(r.advantage, 0.35);
  EXPECT_NEAR(r.auc, 0.5, 0.2);
}

TEST(Membership, OverfitModelLeaksMembership) {
  MembershipFixture fx;
  fx.overfit(300);
  MembershipResult r =
      evaluate_membership(*fx.model, fx.members, fx.nonmembers);
  EXPECT_LT(r.member_mean_loss, r.nonmember_mean_loss);
  EXPECT_GT(r.attack_accuracy, 0.65);
  EXPECT_GT(r.auc, 0.65);
  EXPECT_NEAR(r.advantage, 2.0 * (r.attack_accuracy - 0.5), 1e-12);
}

TEST(Membership, BalancesUnequalBatches) {
  MembershipFixture fx;
  data::Batch few;
  {
    tensor::Shape s = fx.nonmembers.x.shape();
    s[0] = 8;
    few.x = tensor::Tensor(s);
    std::copy(fx.nonmembers.x.data(), fx.nonmembers.x.data() + 8 * 12,
              few.x.data());
    few.labels.assign(fx.nonmembers.labels.begin(),
                      fx.nonmembers.labels.begin() + 8);
  }
  MembershipResult r = evaluate_membership(*fx.model, fx.members, few);
  EXPECT_GE(r.attack_accuracy, 0.5);
  EXPECT_LE(r.attack_accuracy, 1.0);
}

}  // namespace
}  // namespace fedcl::attack
