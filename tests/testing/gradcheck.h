// Finite-difference gradient checking helpers shared by tests.
#pragma once

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace fedcl::testing {

using tensor::Gradients;
using tensor::Tensor;
using tensor::Var;

// Checks d f / d inputs[i] (backward) against central finite
// differences for a scalar-valued f. Inputs should avoid kinks (e.g.
// relu at 0) — finite differences are meaningless there.
inline void expect_gradcheck(
    const std::function<Var(const std::vector<Var>&)>& f,
    const std::vector<Tensor>& inputs, float eps = 1e-2f, float atol = 6e-3f,
    float rtol = 6e-2f) {
  // Analytic gradients.
  std::vector<Var> vars;
  vars.reserve(inputs.size());
  for (const Tensor& t : inputs) vars.emplace_back(t.clone(), true);
  Var out = f(vars);
  ASSERT_EQ(out.numel(), 1) << "gradcheck target must be scalar";
  Gradients grads = tensor::backward(out);

  for (std::size_t vi = 0; vi < vars.size(); ++vi) {
    ASSERT_TRUE(grads.contains(vars[vi])) << "input " << vi << " unreached";
    Tensor analytic = grads.of(vars[vi]).value();
    Tensor perturbed = inputs[vi].clone();
    std::vector<Var> probe = vars;
    for (std::int64_t j = 0; j < perturbed.numel(); ++j) {
      const float orig = perturbed.at(j);
      perturbed.at(j) = orig + eps;
      probe[vi] = Var(perturbed.clone(), false);
      const float up = f(probe).value().item();
      perturbed.at(j) = orig - eps;
      probe[vi] = Var(perturbed.clone(), false);
      const float down = f(probe).value().item();
      perturbed.at(j) = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic.at(j);
      const float tol = atol + rtol * std::abs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "input " << vi << " element " << j;
    }
    probe[vi] = vars[vi];
  }
}

}  // namespace fedcl::testing
