// Fast-vs-naive kernel checking helpers shared by tests.
//
// Each optimized kernel (blocked matmul, span-based im2col/col2im, the
// fused DP sanitizer) is checked against a deliberately naive
// reference: straight loops, double accumulation where the reference
// is numerical, and the exact float order where the comparison must be
// bitwise. Inputs come from seeded per-op RNG fills so every shape in
// a sweep exercises different data.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace fedcl::testing {

using tensor::ConvSpec;
using tensor::Shape;
using tensor::Tensor;

// Seeded standard-normal fill; one fresh Rng per op keeps checks
// independent of evaluation order in a sweep.
inline Tensor rng_fill(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(shape, rng);
}

// C = A B in double precision, naive triple loop.
inline std::vector<double> naive_matmul_nn(const float* a, const float* b,
                                           std::int64_t m, std::int64_t k,
                                           std::int64_t n) {
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t kk = 0; kk < k; ++kk)
      for (std::int64_t j = 0; j < n; ++j)
        c[i * n + j] += static_cast<double>(a[i * k + kk]) *
                        static_cast<double>(b[kk * n + j]);
  return c;
}

// C = A^T B, A: [k, m].
inline std::vector<double> naive_matmul_tn(const float* a, const float* b,
                                           std::int64_t k, std::int64_t m,
                                           std::int64_t n) {
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (std::int64_t kk = 0; kk < k; ++kk)
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j)
        c[i * n + j] += static_cast<double>(a[kk * m + i]) *
                        static_cast<double>(b[kk * n + j]);
  return c;
}

// C = A B^T, B: [n, k].
inline std::vector<double> naive_matmul_nt(const float* a, const float* b,
                                           std::int64_t m, std::int64_t k,
                                           std::int64_t n) {
  std::vector<double> c(static_cast<std::size_t>(m) * n, 0.0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t kk = 0; kk < k; ++kk)
        c[i * n + j] += static_cast<double>(a[i * k + kk]) *
                        static_cast<double>(b[j * k + kk]);
  return c;
}

// Float kernels accumulate k terms in single precision; bound the
// comparison by a k-scaled tolerance around the double reference.
inline void expect_matmul_close(const Tensor& got,
                                const std::vector<double>& ref,
                                std::int64_t k, const char* what) {
  ASSERT_EQ(static_cast<std::size_t>(got.numel()), ref.size()) << what;
  const double tol = 1e-5 * std::sqrt(static_cast<double>(k)) + 1e-6;
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const double scale = std::max(1.0, std::abs(ref[static_cast<std::size_t>(i)]));
    EXPECT_NEAR(got.at(i), ref[static_cast<std::size_t>(i)], tol * scale)
        << what << " element " << i;
  }
}

// The original per-element im2col, kept verbatim as the reference for
// the span-based fast path (which must match it bitwise — it moves the
// same floats, just in larger pieces).
inline Tensor naive_im2col(const Tensor& x, const ConvSpec& spec) {
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  Tensor cols({n * oh * ow, patch});
  const float* px = x.data();
  float* pc = cols.data();
  const std::int64_t hw_stride = spec.in_w * spec.in_c;
  for (std::int64_t b = 0; b < n; ++b) {
    const float* img = px + b * spec.in_h * hw_stride;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        float* row = pc + ((b * oh + y) * ow + xo) * patch;
        const std::int64_t ys = y * spec.stride - spec.pad;
        const std::int64_t xs = xo * spec.stride - spec.pad;
        std::int64_t k = 0;
        for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
          const std::int64_t yy = ys + kh;
          for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw) {
            const std::int64_t xx = xs + kw;
            if (yy >= 0 && yy < spec.in_h && xx >= 0 && xx < spec.in_w) {
              const float* src = img + yy * hw_stride + xx * spec.in_c;
              for (std::int64_t c = 0; c < spec.in_c; ++c) row[k++] = src[c];
            } else {
              for (std::int64_t c = 0; c < spec.in_c; ++c) row[k++] = 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

// The original per-element col2im (adjoint scatter), same role.
inline Tensor naive_col2im(const Tensor& cols, const ConvSpec& spec,
                           std::int64_t n) {
  const std::int64_t oh = spec.out_h(), ow = spec.out_w();
  const std::int64_t patch = spec.patch_size();
  Tensor x({n, spec.in_h, spec.in_w, spec.in_c});
  const float* pc = cols.data();
  float* px = x.data();
  const std::int64_t hw_stride = spec.in_w * spec.in_c;
  for (std::int64_t b = 0; b < n; ++b) {
    float* img = px + b * spec.in_h * hw_stride;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        const float* row = pc + ((b * oh + y) * ow + xo) * patch;
        const std::int64_t ys = y * spec.stride - spec.pad;
        const std::int64_t xs = xo * spec.stride - spec.pad;
        std::int64_t k = 0;
        for (std::int64_t kh = 0; kh < spec.kernel_h; ++kh) {
          const std::int64_t yy = ys + kh;
          for (std::int64_t kw = 0; kw < spec.kernel_w; ++kw) {
            const std::int64_t xx = xs + kw;
            if (yy >= 0 && yy < spec.in_h && xx >= 0 && xx < spec.in_w) {
              float* dst = img + yy * hw_stride + xx * spec.in_c;
              for (std::int64_t c = 0; c < spec.in_c; ++c) dst[c] += row[k++];
            } else {
              k += spec.in_c;
            }
          }
        }
      }
    }
  }
  return x;
}

}  // namespace fedcl::testing
