#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/dssgd.h"
#include "fl/protocol.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "nn/grad_utils.h"
#include "nn/model_zoo.h"

namespace fedcl::fl {
namespace {

using tensor::Tensor;

// ---- protocol ----

TEST(Protocol, SerializeRoundTrip) {
  ClientUpdate u;
  u.client_id = 42;
  u.round = 7;
  Rng rng(1);
  u.delta = {Tensor::randn({3, 4}, rng), Tensor::randn({5}, rng)};
  Result<ClientUpdate> result = deserialize_update(serialize_update(u));
  ASSERT_TRUE(result.ok());
  ClientUpdate back = result.take();
  EXPECT_EQ(back.client_id, 42);
  EXPECT_EQ(back.round, 7);
  ASSERT_EQ(back.delta.size(), 2u);
  EXPECT_TRUE(tensor::list::allclose(back.delta, u.delta));
}

TEST(Protocol, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> junk(10, 0xAB);
  EXPECT_FALSE(deserialize_update(junk).ok());
  ClientUpdate u;
  u.delta = {Tensor::ones({4})};
  auto bytes = serialize_update(u);
  bytes.pop_back();
  Result<ClientUpdate> truncated = deserialize_update(bytes);
  EXPECT_FALSE(truncated.ok());
  EXPECT_FALSE(truncated.error().empty());
}

TEST(SecureChannel, SealOpenRoundTrip) {
  SecureChannel channel(0xDEADBEEF);
  std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5, 200, 0, 9};
  auto sealed = channel.seal(msg);
  EXPECT_NE(sealed, msg);  // actually transformed
  auto opened = channel.open(sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), msg);
}

TEST(SecureChannel, DetectsTampering) {
  SecureChannel channel(0x1234);
  auto sealed = channel.seal({9, 9, 9, 9});
  sealed[1] ^= 0x01;
  EXPECT_FALSE(channel.open(sealed).ok());
}

TEST(SecureChannel, WrongKeyFails) {
  SecureChannel alice(1), eve(2);
  auto sealed = alice.seal({1, 2, 3});
  EXPECT_FALSE(eve.open(sealed).ok());
}

TEST(SecureChannel, EndToEndWithUpdates) {
  ClientUpdate u;
  u.client_id = 3;
  u.round = 0;
  u.delta = {Tensor::full({6}, 1.5f)};
  SecureChannel channel(77);
  ClientUpdate received =
      deserialize_update(
          channel.open(channel.seal(serialize_update(u))).take())
          .take();
  EXPECT_TRUE(tensor::list::allclose(received.delta, u.delta));
}

// ---- compression ----

TEST(Compression, PrunesExactFraction) {
  TensorList u = {Tensor::from_vector({4}, {4, -1, 3, -2}),
                  Tensor::from_vector({4}, {0.5f, -5, 1.5f, 2.5f})};
  const std::int64_t kept = prune_smallest(u, 0.5);
  EXPECT_EQ(kept, 4);
  EXPECT_NEAR(sparsity(u), 0.5, 1e-9);
  // Largest magnitudes survive: 4, 3(|3|>2.5? values: 4,3,5,2.5 kept)
  EXPECT_FLOAT_EQ(u[0].at(0), 4.0f);
  EXPECT_FLOAT_EQ(u[0].at(2), 3.0f);
  EXPECT_FLOAT_EQ(u[1].at(1), -5.0f);
  EXPECT_FLOAT_EQ(u[1].at(3), 2.5f);
  EXPECT_FLOAT_EQ(u[0].at(1), 0.0f);
  EXPECT_FLOAT_EQ(u[1].at(0), 0.0f);
}

TEST(Compression, ZeroAndFullRatio) {
  TensorList u = {Tensor::ones({8})};
  EXPECT_EQ(prune_smallest(u, 0.0), 8);
  EXPECT_NEAR(sparsity(u), 0.0, 1e-12);
  prune_smallest(u, 1.0);
  EXPECT_NEAR(sparsity(u), 1.0, 1e-12);
  EXPECT_THROW(prune_smallest(u, 1.5), Error);
}

TEST(Compression, TiesResolvedExactly) {
  // All-equal magnitudes: ties must still hit the exact prune count.
  TensorList u = {Tensor::ones({10})};
  prune_smallest(u, 0.3);
  EXPECT_NEAR(sparsity(u), 0.3, 1e-9);
}

// ---- client ----

struct ClientFixture {
  std::shared_ptr<data::Dataset> dataset;
  std::shared_ptr<nn::Sequential> model;
  TensorList weights;
  LocalTrainConfig local;

  ClientFixture() {
    Rng rng(3);
    data::SyntheticSpec spec{.example_shape = {6},
                             .classes = 2,
                             .count = 20,
                             .clamp01 = false};
    Rng drng = rng.fork("d");
    dataset =
        std::make_shared<data::Dataset>(data::generate_synthetic(spec, drng));
    nn::ModelSpec ms{.kind = nn::ModelSpec::Kind::kMlp,
                     .in_features = 6,
                     .classes = 2,
                     .hidden1 = 4,
                     .hidden2 = 4};
    Rng mrng = rng.fork("m");
    model = nn::build_model(ms, mrng);
    weights = model->weights();
    local = {.local_iterations = 1, .batch_size = 4, .learning_rate = 0.5};
  }

  data::ClientData client_data() {
    return data::ClientData(dataset, {0, 1, 2, 3, 4, 5, 6, 7});
  }
};

TEST(Client, NonPrivateUpdateEqualsMinusEtaGrad) {
  // With L=1 the shared update must be exactly -eta * batch gradient.
  ClientFixture fx;
  Client client(0, fx.client_data(), fx.local);
  core::NonPrivatePolicy policy;
  LeakageProbe probe;
  Rng rng(4);
  ClientRoundOutcome outcome =
      client.run_round(*fx.model, fx.weights, policy, 0, rng, &probe);
  ASSERT_TRUE(probe.captured);
  TensorList expected = tensor::list::clone(probe.first_batch_gradient);
  tensor::list::scale_(expected, -0.5f);
  EXPECT_TRUE(tensor::list::allclose(outcome.update.delta, expected, 1e-5f,
                                     1e-4f));
  EXPECT_EQ(outcome.update.client_id, 0);
  EXPECT_EQ(outcome.update.round, 0);
  EXPECT_GT(outcome.first_iteration_grad_norm, 0.0);
  EXPECT_GT(outcome.local_train_ms, 0.0);
}

TEST(Client, PerExamplePathMatchesBatchWhenNoiseless) {
  // Fed-CDP with sigma=0 and a huge clipping bound must reproduce the
  // plain batched gradient: mean of per-example grads == batch grad.
  ClientFixture fx;
  Client client(1, fx.client_data(), fx.local);
  core::FedCdpPolicy policy(/*clipping_bound=*/1e9, /*noise_scale=*/0.0);
  core::NonPrivatePolicy baseline;
  Rng rng_a(5), rng_b(5);
  ClientRoundOutcome a =
      client.run_round(*fx.model, fx.weights, policy, 0, rng_a);
  ClientRoundOutcome b =
      client.run_round(*fx.model, fx.weights, baseline, 0, rng_b);
  EXPECT_TRUE(tensor::list::allclose(a.update.delta, b.update.delta, 1e-4f,
                                     1e-3f));
}

TEST(Client, ProbeCapturesSanitizedType2ForFedCdp) {
  ClientFixture fx;
  Client client(2, fx.client_data(), fx.local);
  core::FedCdpPolicy policy(0.001, 0.0);  // crush gradients to norm 1e-3
  LeakageProbe probe;
  Rng rng(6);
  client.run_round(*fx.model, fx.weights, policy, 0, rng, &probe);
  ASSERT_TRUE(probe.captured);
  // Observed type-2 gradient is post-clipping: total norm <= sqrt(M)*C.
  const double norm = tensor::list::l2_norm(probe.type2_observed);
  EXPECT_LE(norm, 0.001 * std::sqrt(3.0) + 1e-6);
  EXPECT_EQ(probe.type2_example.size(), 1);
}

TEST(Client, ProbeCapturesRawType2ForFedSdp) {
  ClientFixture fx;
  Client client(3, fx.client_data(), fx.local);
  core::FedSdpPolicy policy(0.001, 10.0);  // aggressive on the update
  LeakageProbe probe;
  Rng rng(7);
  client.run_round(*fx.model, fx.weights, policy, 0, rng, &probe);
  // Type-2 observation bypasses Fed-SDP entirely: it is the true
  // gradient, not a crushed one.
  EXPECT_GT(tensor::list::l2_norm(probe.type2_observed), 0.01);
}

TEST(Client, MultipleLocalIterationsMoveWeights) {
  ClientFixture fx;
  fx.local.local_iterations = 5;
  Client client(4, fx.client_data(), fx.local);
  core::NonPrivatePolicy policy;
  Rng rng(8);
  ClientRoundOutcome outcome =
      client.run_round(*fx.model, fx.weights, policy, 0, rng);
  EXPECT_GT(tensor::list::l2_norm(outcome.update.delta), 0.0);
  // Global weights unchanged (client works on a copy).
  EXPECT_TRUE(tensor::list::allclose(fx.weights, fx.weights));
}

TEST(Client, ValidatesConfig) {
  ClientFixture fx;
  LocalTrainConfig bad = fx.local;
  bad.batch_size = 0;
  EXPECT_THROW(Client(0, fx.client_data(), bad), Error);
  bad = fx.local;
  bad.learning_rate = 0.0;
  EXPECT_THROW(Client(0, fx.client_data(), bad), Error);
  EXPECT_THROW(Client(-1, fx.client_data(), fx.local), Error);
}

// ---- server ----

TEST(Server, SampleClientsDistinctAndInRange) {
  Server server({Tensor::ones({2})});
  Rng rng(9);
  auto chosen = server.sample_clients(100, 10, rng);
  EXPECT_EQ(chosen.size(), 10u);
  std::set<std::size_t> uniq(chosen.begin(), chosen.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto c : chosen) EXPECT_LT(c, 100u);
  EXPECT_THROW(server.sample_clients(5, 6, rng), Error);
}

TEST(Server, FedSgdAggregation) {
  Server server({Tensor::zeros({2})});
  core::NonPrivatePolicy policy;
  Rng rng(10);
  std::vector<ClientUpdate> updates(2);
  updates[0] = {0, 0, {Tensor::from_vector({2}, {2, 4})}};
  updates[1] = {1, 0, {Tensor::from_vector({2}, {4, 0})}};
  server.aggregate(std::move(updates), policy, {{0}}, rng);
  // W += (1/2)(u0 + u1)
  EXPECT_FLOAT_EQ(server.weights()[0].at(0), 3.0f);
  EXPECT_FLOAT_EQ(server.weights()[0].at(1), 2.0f);
  EXPECT_EQ(server.round(), 1);
}

TEST(Server, ScreensOutStaleUpdates) {
  // A wrong-round update is screened out per client, not a round abort:
  // the model stays untouched and the miss is reported.
  Server server({Tensor::zeros({1})});
  core::NonPrivatePolicy policy;
  Rng rng(11);
  std::vector<ClientUpdate> updates(1);
  updates[0] = {0, /*round=*/5, {Tensor::ones({1})}};
  ScreeningReport report =
      server.aggregate(std::move(updates), policy, {{0}}, rng).screening;
  EXPECT_EQ(report.accepted, 0);
  EXPECT_EQ(report.rejected_stale, 1);
  EXPECT_FLOAT_EQ(server.weights()[0].at(0), 0.0f);
  EXPECT_EQ(server.round(), 0);  // quorum missed: round not advanced
}

TEST(Server, ServerSideNoiseHookRuns) {
  Server server({Tensor::zeros({64})});
  core::FedSdpPolicy policy(1.0, 1.0, /*noise_at_server=*/true);
  Rng rng(12);
  std::vector<ClientUpdate> updates(1);
  updates[0] = {0, 0, {Tensor::zeros({64})}};
  server.aggregate(std::move(updates), policy, {{0}}, rng);
  // Zero update + server noise -> weights moved.
  EXPECT_GT(server.weights()[0].l2_norm(), 0.0f);
}

// ---- DSSGD ----

TEST(Dssgd, SharesOnlyTopFraction) {
  DssgdPolicy policy(0.25);
  EXPECT_EQ(policy.name(), "DSSGD");
  Rng rng(13);
  TensorList u = {Tensor::from_vector({8}, {8, 1, 7, 2, 6, 3, 5, 4})};
  policy.sanitize_client_update(u, {{0}}, 0, rng);
  EXPECT_NEAR(sparsity(u), 0.75, 1e-9);
  EXPECT_FLOAT_EQ(u[0].at(0), 8.0f);
  EXPECT_FLOAT_EQ(u[0].at(2), 7.0f);
  EXPECT_THROW(DssgdPolicy(0.0), Error);
  EXPECT_THROW(DssgdPolicy(1.5), Error);
}

// ---- trainer ----

TEST(Trainer, EndToEndSmoke) {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 3;
  config.eval_every = 1;
  config.seed = 99;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_EQ(result.history.size(), 3u);
  for (const auto& r : result.history) {
    EXPECT_FALSE(std::isnan(r.accuracy));  // eval_every=1: all evaluated
    EXPECT_GT(r.mean_client_ms, 0.0);
  }
  EXPECT_GT(result.ms_per_local_iteration, 0.0);
  EXPECT_EQ(result.privacy_setup.rounds, 3);
  EXPECT_EQ(result.privacy_setup.clients_per_round, 2);
  EXPECT_GE(result.final_accuracy, 0.0);
  EXPECT_LE(result.final_accuracy, 1.0);
}

TEST(Trainer, DeterministicForSeed) {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 3;
  config.clients_per_round = 2;
  config.rounds = 2;
  config.seed = 7;
  core::FedCdpPolicy policy(4.0, 0.5);
  FlRunResult a = run_experiment(config, policy);
  FlRunResult b = run_experiment(config, policy);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(Trainer, CompressionRunsAndAccuracySurvives) {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 2;
  config.prune_ratio = 0.3;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  EXPECT_GE(result.final_accuracy, 0.0);
}

TEST(Trainer, ValidatesConfig) {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 2;
  config.clients_per_round = 5;  // Kt > K
  core::NonPrivatePolicy policy;
  EXPECT_THROW(run_experiment(config, policy), Error);
}

}  // namespace
}  // namespace fedcl::fl
