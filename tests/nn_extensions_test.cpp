#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "nn/checkpoint.h"
#include "nn/metrics.h"
#include "nn/model_zoo.h"

namespace fedcl::nn {
namespace {

using tensor::Tensor;
using tensor::list::TensorList;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Checkpoint, RoundTrip) {
  Rng rng(1);
  TensorList weights = {Tensor::randn({3, 4}, rng), Tensor::randn({7}, rng),
                        Tensor::randn({2, 2, 2, 2}, rng)};
  const std::string path = temp_path("roundtrip.ckpt");
  save_weights(path, weights);
  TensorList loaded = load_weights(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(tensor::list::allclose(loaded, weights, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, ModelSaveRestore) {
  Rng rng(2);
  ModelSpec spec{.kind = ModelSpec::Kind::kMlp, .in_features = 6,
                 .classes = 3};
  auto model = build_mlp(spec, rng);
  const std::string path = temp_path("model.ckpt");
  save_weights(path, model->weights());

  Rng rng2(3);
  auto other = build_mlp(spec, rng2);  // different init
  other->set_weights(load_weights(path));
  EXPECT_TRUE(tensor::list::allclose(other->weights(), model->weights(),
                                     0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageAndMissing) {
  EXPECT_THROW(load_weights(temp_path("missing.ckpt")), Error);
  const std::string path = temp_path("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a checkpoint";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(load_weights(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncation) {
  Rng rng(4);
  TensorList weights = {Tensor::randn({16}, rng)};
  const std::string path = temp_path("trunc.ckpt");
  save_weights(path, weights);
  // Truncate the file by a few bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 8), 0);
  EXPECT_THROW(load_weights(path), Error);
  std::remove(path.c_str());
}

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
  EXPECT_THROW(cm.add(3, 0), Error);
  EXPECT_THROW(ConfusionMatrix(1), Error);
}

TEST(ConfusionMatrix, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // class 1: TP=2, FP=1, FN=1.
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(0, 1);
  cm.add(1, 0);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 2.0 / 3.0);
  EXPECT_NEAR(cm.f1(1), 2.0 / 3.0, 1e-12);
  EXPECT_GT(cm.macro_f1(), 0.0);
}

TEST(ConfusionMatrix, EmptyClassYieldsZeroNotNan) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, AddBatchFromLogits) {
  ConfusionMatrix cm(2);
  Tensor logits = Tensor::from_vector({3, 2}, {5, 0, 0, 5, 5, 0});
  cm.add_batch(logits, {0, 1, 1});
  EXPECT_DOUBLE_EQ(cm.accuracy(), 2.0 / 3.0);
  EXPECT_NE(cm.render().find("confusion"), std::string::npos);
}

}  // namespace
}  // namespace fedcl::nn
