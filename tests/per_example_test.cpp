// Parity and determinism tests for the batched per-example gradient
// engine and the parallel federated round schedule.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/trainer.h"
#include "nn/grad_utils.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"
#include "nn/per_example.h"
#include "tensor/tensor_list.h"

namespace fedcl {
namespace {

using nn::Sequential;
using tensor::Tensor;
using tensor::list::PerExampleGrads;
using tensor::list::TensorList;

std::vector<std::int64_t> random_labels(Rng& rng, std::int64_t n,
                                        std::int64_t classes) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (auto& l : labels)
    l = static_cast<std::int64_t>(rng.uniform_int(
        static_cast<std::uint64_t>(classes)));
  return labels;
}

// Largest absolute difference between batched and sliced per-example
// gradients over all examples and parameters.
double max_abs_diff(const PerExampleGrads& a, const PerExampleGrads& b) {
  EXPECT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.batch, b.batch);
  double worst = 0.0;
  for (std::size_t p = 0; p < a.rows.size(); ++p) {
    EXPECT_EQ(a.rows[p].numel(), b.rows[p].numel());
    for (std::int64_t i = 0; i < a.rows[p].numel(); ++i) {
      worst = std::max(worst, std::abs(static_cast<double>(
                                  a.rows[p].at(i) - b.rows[p].at(i))));
    }
  }
  return worst;
}

void expect_parity(Sequential& model, const Tensor& x,
                   const std::vector<std::int64_t>& labels,
                   double tol = 1e-5) {
  double loss_batched = 0.0, loss_sliced = 0.0;
  PerExampleGrads batched =
      nn::compute_per_example_gradients(model, x, labels, &loss_batched);
  PerExampleGrads sliced = nn::compute_per_example_gradients_sliced(
      model, x, labels, &loss_sliced);
  EXPECT_LT(max_abs_diff(batched, sliced), tol);
  EXPECT_NEAR(loss_batched, loss_sliced, 1e-5);

  // The mean of the raw per-example gradients is the batch gradient.
  TensorList mean = batched.mean();
  TensorList reference = nn::compute_gradients(model, x, labels);
  ASSERT_EQ(mean.size(), reference.size());
  for (std::size_t p = 0; p < mean.size(); ++p) {
    for (std::int64_t i = 0; i < mean[p].numel(); ++i) {
      EXPECT_NEAR(mean[p].at(i), reference[p].at(i), tol)
          << "param " << p << " index " << i;
    }
  }
}

nn::ModelSpec mlp_spec() {
  nn::ModelSpec spec;
  spec.kind = nn::ModelSpec::Kind::kMlp;
  spec.in_features = 20;
  spec.classes = 5;
  spec.hidden1 = 16;
  spec.hidden2 = 12;
  return spec;
}

nn::ModelSpec cnn_spec() {
  nn::ModelSpec spec;
  spec.kind = nn::ModelSpec::Kind::kImageCnn;
  spec.height = 8;
  spec.width = 8;
  spec.channels = 1;
  spec.classes = 4;
  spec.conv1_channels = 4;
  spec.conv2_channels = 6;
  return spec;
}

TEST(PerExampleEngine, MlpParityAcrossBatchSizes) {
  for (std::int64_t batch : {1, 3, 32}) {
    Rng rng(77 + static_cast<std::uint64_t>(batch));
    auto model = nn::build_model(mlp_spec(), rng);
    ASSERT_TRUE(nn::per_example_supported(*model));
    Tensor x = Tensor::randn({batch, 20}, rng);
    expect_parity(*model, x, random_labels(rng, batch, 5));
  }
}

TEST(PerExampleEngine, CnnParityAcrossBatchSizes) {
  for (std::int64_t batch : {1, 4, 16}) {
    Rng rng(99 + static_cast<std::uint64_t>(batch));
    auto model = nn::build_model(cnn_spec(), rng);
    ASSERT_TRUE(nn::per_example_supported(*model));
    Tensor x = Tensor::uniform({batch, 8, 8, 1}, rng);
    expect_parity(*model, x, random_labels(rng, batch, 4));
  }
}

TEST(PerExampleEngine, MaxPoolTanhSigmoidParity) {
  // Exercise the tape paths the zoo models don't: MaxPool routing plus
  // sigmoid/tanh derivatives-from-output.
  Rng rng(123);
  Sequential model;
  model.emplace<nn::InputScale>(-0.5f, 2.0f);
  model.emplace<nn::Conv2d>(2, 3, 3, 1, 1, rng);
  model.emplace<nn::ActivationLayer>(nn::Activation::kTanh);
  model.emplace<nn::MaxPool2d>(2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(3 * 3 * 3, 8, rng);
  model.emplace<nn::ActivationLayer>(nn::Activation::kSigmoid);
  model.emplace<nn::Linear>(8, 3, rng);
  ASSERT_TRUE(nn::per_example_supported(model));
  const std::int64_t batch = 6;
  Tensor x = Tensor::randn({batch, 6, 6, 2}, rng);
  expect_parity(model, x, random_labels(rng, batch, 3));
}

TEST(PerExampleEngine, DropoutEvalModeParity) {
  // In eval mode Dropout is the identity, so both paths agree; in
  // training mode the two paths consume the layer's mask stream
  // differently, which is why parity is only checked in eval.
  Rng rng(321);
  Sequential model;
  model.emplace<nn::Linear>(10, 8, rng);
  model.emplace<nn::ActivationLayer>(nn::Activation::kRelu);
  model.emplace<nn::Dropout>(0.4, 17);
  model.emplace<nn::Linear>(8, 3, rng);
  model.set_training(false);
  ASSERT_TRUE(nn::per_example_supported(model));
  Tensor x = Tensor::randn({5, 10}, rng);
  expect_parity(model, x, random_labels(rng, 5, 3));
}

TEST(PerExampleEngine, DropoutTrainingMasksWholeBatchConsistently) {
  // A batched forward applies ONE mask tensor to the whole batch; the
  // per-example gradients must reflect exactly that mask.
  Rng rng(55);
  Sequential model;
  model.emplace<nn::Linear>(6, 4, rng);
  model.emplace<nn::Dropout>(0.5, 3);
  model.emplace<nn::Linear>(4, 2, rng);
  Tensor x = Tensor::randn({4, 6}, rng);
  PerExampleGrads grads = nn::compute_per_example_gradients(
      model, x, random_labels(rng, 4, 2));
  EXPECT_EQ(grads.batch, 4);
  EXPECT_EQ(grads.rows.size(), 4u);  // two Linear layers, W+b each
}

TEST(PerExampleEngine, ModeDispatch) {
  Rng rng(7);
  auto model = nn::build_model(mlp_spec(), rng);
  Tensor x = Tensor::randn({3, 20}, rng);
  std::vector<std::int64_t> labels = random_labels(rng, 3, 5);

  nn::set_per_example_mode(nn::PerExampleMode::kSliced);
  PerExampleGrads sliced = nn::per_example_gradients(*model, x, labels);
  nn::set_per_example_mode(nn::PerExampleMode::kBatched);
  PerExampleGrads batched = nn::per_example_gradients(*model, x, labels);
  nn::set_per_example_mode(nn::PerExampleMode::kAuto);
  EXPECT_LT(max_abs_diff(batched, sliced), 1e-5);
}

TEST(PerExampleGradsLayout, ExampleRoundTripAndNorms) {
  PerExampleGrads grads =
      tensor::list::make_per_example(3, {{2, 2}, {2}});
  TensorList one = {Tensor::from_vector({2, 2}, {1, 2, 3, 4}),
                    Tensor::from_vector({2}, {5, 6})};
  grads.set_example(1, one);
  TensorList back = grads.example(1);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_FLOAT_EQ(back[0].at(3), 4.0f);
  EXPECT_FLOAT_EQ(back[1].at(1), 6.0f);
  // Examples 0 and 2 stay zero; the mean is one third of example 1.
  TensorList mean = grads.mean();
  EXPECT_NEAR(mean[0].at(0), 1.0f / 3.0f, 1e-6);
  const double expected =
      std::sqrt(1.0 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0);
  EXPECT_NEAR(grads.example_l2_norm(1), expected, 1e-6);
  EXPECT_NEAR(grads.example_l2_norm(0), 0.0, 1e-12);
}

TEST(PerExamplePolicy, BatchedSanitizeMatchesExampleLoopBitwise) {
  // Fed-CDP's batched clip+noise must consume the RNG stream in the
  // same example-major order as the per-example loop, producing
  // bitwise-identical sanitized gradients.
  Rng rng(42);
  auto model = nn::build_model(mlp_spec(), rng);
  Tensor x = Tensor::randn({8, 20}, rng);
  std::vector<std::int64_t> labels = random_labels(rng, 8, 5);
  PerExampleGrads batched =
      nn::compute_per_example_gradients(*model, x, labels);
  PerExampleGrads looped;
  looped.batch = batched.batch;
  looped.shapes = batched.shapes;
  for (const Tensor& r : batched.rows) looped.rows.push_back(r.clone());

  core::ParamGroups groups;
  for (const auto& g : model->layer_groups()) groups.push_back(g.param_indices);
  core::FedCdpPolicy policy(/*clipping_bound=*/0.7, /*noise_scale=*/1.3);

  Rng noise_a(2024);
  policy.sanitize_per_example_batch(batched, groups, /*round=*/3, noise_a);

  Rng noise_b(2024);
  for (std::int64_t j = 0; j < looped.batch; ++j) {
    TensorList grad = looped.example(j);
    policy.sanitize_per_example(grad, groups, /*round=*/3, noise_b);
    looped.set_example(j, grad);
  }
  EXPECT_EQ(max_abs_diff(batched, looped), 0.0);
}

fl::FlExperimentConfig small_fl_config(std::uint64_t seed) {
  fl::FlExperimentConfig config;
  config.bench =
      data::benchmark_config(data::BenchmarkId::kCancer, BenchScale::kSmoke);
  config.total_clients = 6;
  config.clients_per_round = 4;
  config.rounds = 3;
  config.seed = seed;
  config.client_dropout = 0.2;
  config.faults.fault_rate = 0.2;
  return config;
}

void expect_same_run(const fl::FlRunResult& a, const fl::FlRunResult& b) {
  ASSERT_EQ(a.final_weights.size(), b.final_weights.size());
  for (std::size_t p = 0; p < a.final_weights.size(); ++p) {
    ASSERT_EQ(a.final_weights[p].numel(), b.final_weights[p].numel());
    for (std::int64_t i = 0; i < a.final_weights[p].numel(); ++i) {
      ASSERT_EQ(a.final_weights[p].at(i), b.final_weights[p].at(i))
          << "weights diverge at param " << p << " index " << i;
    }
  }
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.dropped_rounds, b.dropped_rounds);
  EXPECT_EQ(a.total_failures.injected_total(),
            b.total_failures.injected_total());
  EXPECT_EQ(a.total_failures.dropouts, b.total_failures.dropouts);
  EXPECT_EQ(a.total_failures.rejected_total(),
            b.total_failures.rejected_total());
  EXPECT_EQ(a.total_failures.retried_clients,
            b.total_failures.retried_clients);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.history[r].mean_grad_norm,
                     b.history[r].mean_grad_norm);
  }
}

TEST(ParallelTrainer, SerialAndParallelSchedulesBitwiseIdentical) {
  // The phase-split round consumes every shared RNG stream serially
  // and trains each client from its own forked stream, so the
  // parallel schedule must reproduce the serial one bit for bit —
  // for the non-private batched path and for Fed-CDP.
  for (const bool per_example : {false, true}) {
    fl::FlExperimentConfig config = small_fl_config(911);
    std::unique_ptr<core::PrivacyPolicy> policy;
    if (per_example) {
      policy = core::make_fed_cdp(2.0, 0.5);
    } else {
      policy = core::make_non_private();
    }
    config.parallel_clients = false;
    fl::FlRunResult serial = fl::run_experiment(config, *policy);
    config.parallel_clients = true;
    fl::FlRunResult parallel = fl::run_experiment(config, *policy);
    expect_same_run(serial, parallel);
  }
}

TEST(ParallelTrainer, OrderDependentPolicyStaysDeterministic) {
  // The median-norm policy is order-dependent; the trainer must
  // serialize it even when parallel_clients is requested, keeping
  // repeated runs identical.
  fl::FlExperimentConfig config = small_fl_config(500);
  core::FedCdpAdaptivePolicy policy(4.0, 0.5);
  config.parallel_clients = true;
  fl::FlRunResult a = fl::run_experiment(config, policy);
  core::FedCdpAdaptivePolicy policy_b(4.0, 0.5);
  fl::FlRunResult b = fl::run_experiment(config, policy_b);
  expect_same_run(a, b);
}

}  // namespace
}  // namespace fedcl
