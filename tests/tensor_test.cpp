#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace fedcl::tensor {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0f);
  Tensor empty;
  EXPECT_FALSE(empty.defined());
}

TEST(Tensor, Factories) {
  EXPECT_EQ(Tensor::ones({2, 2}).sum(), 4.0f);
  EXPECT_EQ(Tensor::full({3}, 2.5f).at(1), 2.5f);
  EXPECT_EQ(Tensor::scalar(7.0f).item(), 7.0f);
  Tensor v = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(v.at(3), 4.0f);
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, RandnStats) {
  Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  double m = t.sum() / t.numel();
  EXPECT_NEAR(m, 1.0, 0.1);
}

TEST(Tensor, UniformRange) {
  Rng rng(2);
  Tensor t = Tensor::uniform({1000}, rng, -1.0f, 1.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.at(i), -1.0f);
    EXPECT_LT(t.at(i), 1.0f);
  }
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  r.at(0) = 42.0f;
  EXPECT_EQ(t.at(0), 42.0f);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::ones({3});
  Tensor c = t.clone();
  c.at(0) = 9.0f;
  EXPECT_EQ(t.at(0), 1.0f);
}

TEST(Tensor, InPlaceOps) {
  Tensor t = Tensor::ones({3});
  t.scale_(2.0f);
  EXPECT_EQ(t.at(1), 2.0f);
  t.add_(Tensor::ones({3}), 0.5f);
  EXPECT_EQ(t.at(2), 2.5f);
  t.fill_(-1.0f);
  EXPECT_EQ(t.sum(), -3.0f);
  t.clamp_(-0.5f, 0.5f);
  EXPECT_EQ(t.at(0), -0.5f);
}

TEST(Tensor, GaussianNoiseInPlace) {
  Rng rng(3);
  Tensor t = Tensor::zeros({20000});
  t.add_gaussian_noise_(rng, 3.0f);
  double m = t.sum() / t.numel();
  EXPECT_NEAR(m, 0.0, 0.1);
  double var = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) var += t.at(i) * t.at(i);
  var /= t.numel();
  EXPECT_NEAR(var, 9.0, 0.5);
  // stddev 0 is a no-op
  Tensor z = Tensor::ones({4});
  z.add_gaussian_noise_(rng, 0.0f);
  EXPECT_EQ(z.sum(), 4.0f);
}

TEST(Tensor, ElementwiseBinary) {
  Tensor a = Tensor::from_vector({2}, {1, 2});
  Tensor b = Tensor::from_vector({2}, {3, 5});
  EXPECT_EQ(add(a, b).at(1), 7.0f);
  EXPECT_EQ(sub(a, b).at(0), -2.0f);
  EXPECT_EQ(mul(a, b).at(1), 10.0f);
  EXPECT_NEAR(div(a, b).at(0), 1.0f / 3.0f, 1e-6);
  EXPECT_THROW(add(a, Tensor::ones({3})), Error);
}

TEST(Tensor, ElementwiseUnary) {
  Tensor a = Tensor::from_vector({3}, {-1, 0, 2});
  EXPECT_EQ(neg(a).at(0), 1.0f);
  EXPECT_EQ(relu(a).at(0), 0.0f);
  EXPECT_EQ(relu(a).at(2), 2.0f);
  EXPECT_EQ(step_mask(a).at(0), 0.0f);
  EXPECT_EQ(step_mask(a).at(2), 1.0f);
  EXPECT_NEAR(exp(a).at(2), std::exp(2.0f), 1e-5);
  EXPECT_NEAR(sigmoid(a).at(1), 0.5f, 1e-6);
  EXPECT_NEAR(tanh(a).at(2), std::tanh(2.0f), 1e-6);
  EXPECT_NEAR(log(exp(a)).at(0), -1.0f, 1e-5);
  EXPECT_NEAR(sqrt(Tensor::full({1}, 9.0f)).item(), 3.0f, 1e-6);
  EXPECT_NEAR(pow_scalar(a, 2.0f).at(2), 4.0f, 1e-6);
}

TEST(Tensor, ScalarOps) {
  Tensor a = Tensor::from_vector({2}, {1, 2});
  EXPECT_EQ(add_scalar(a, 1.0f).at(1), 3.0f);
  EXPECT_EQ(mul_scalar(a, -2.0f).at(0), -2.0f);
}

TEST(Tensor, Matmul) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at(0), 58.0f);
  EXPECT_EQ(c.at(1), 64.0f);
  EXPECT_EQ(c.at(2), 139.0f);
  EXPECT_EQ(c.at(3), 154.0f);
  EXPECT_THROW(matmul(a, a), Error);
}

TEST(Tensor, Transpose) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(1), 4.0f);
  EXPECT_EQ(t.at(4), 3.0f);
}

TEST(Tensor, DotAndNorms) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 2});
  EXPECT_EQ(dot(a, a), 9.0f);
  EXPECT_EQ(a.l2_norm(), 3.0f);
  EXPECT_EQ(a.max_abs(), 2.0f);
}

TEST(Tensor, RowColReductions) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor rs = row_sum(x);
  EXPECT_EQ(rs.shape(), (Shape{2, 1}));
  EXPECT_EQ(rs.at(0), 6.0f);
  EXPECT_EQ(rs.at(1), 15.0f);
  Tensor rm = row_max(x);
  EXPECT_EQ(rm.at(0), 3.0f);
  EXPECT_EQ(rm.at(1), 6.0f);
  Tensor cs = col_sum(x);
  EXPECT_EQ(cs.shape(), (Shape{3}));
  EXPECT_EQ(cs.at(0), 5.0f);
  EXPECT_EQ(cs.at(2), 9.0f);
}

TEST(Tensor, Broadcasts) {
  Tensor col = Tensor::from_vector({2, 1}, {1, 2});
  Tensor bc = broadcast_col(col, 3);
  EXPECT_EQ(bc.shape(), (Shape{2, 3}));
  EXPECT_EQ(bc.at(2), 1.0f);
  EXPECT_EQ(bc.at(3), 2.0f);
  Tensor row = Tensor::from_vector({3}, {1, 2, 3});
  Tensor br = broadcast_row(row, 2);
  EXPECT_EQ(br.shape(), (Shape{2, 3}));
  EXPECT_EQ(br.at(5), 3.0f);
  Tensor es = expand_scalar(Tensor::scalar(4.0f), {2, 2});
  EXPECT_EQ(es.sum(), 16.0f);
}

TEST(Tensor, PickAndScatter) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor p = pick(x, {2, 0});
  EXPECT_EQ(p.at(0), 3.0f);
  EXPECT_EQ(p.at(1), 4.0f);
  Tensor s = scatter(p, {2, 0}, 3);
  EXPECT_EQ(s.at(2), 3.0f);
  EXPECT_EQ(s.at(3), 4.0f);
  EXPECT_EQ(s.at(0), 0.0f);
  EXPECT_THROW(pick(x, {3, 0}), Error);
}

TEST(Tensor, Allclose) {
  Tensor a = Tensor::ones({3});
  Tensor b = a.clone();
  EXPECT_TRUE(allclose(a, b));
  b.at(0) = 1.1f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_FALSE(allclose(a, Tensor::ones({4})));
}

// ---- im2col / col2im ----

TEST(Im2col, IdentityKernel) {
  // 1x1 kernel stride 1: im2col is a flatten.
  ConvSpec spec{.in_h = 2, .in_w = 2, .in_c = 3, .kernel_h = 1, .kernel_w = 1};
  Rng rng(4);
  Tensor x = Tensor::randn({1, 2, 2, 3}, rng);
  Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{4, 3}));
  EXPECT_TRUE(allclose(cols.reshape({12}), x.reshape({12})));
}

TEST(Im2col, KnownPatch) {
  // 3x3 single-channel image, 2x2 kernel, stride 1 -> 4 patches.
  ConvSpec spec{.in_h = 3, .in_w = 3, .in_c = 1, .kernel_h = 2, .kernel_w = 2};
  Tensor x = Tensor::from_vector({1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{4, 4}));
  // First patch: rows (1,2),(4,5).
  EXPECT_EQ(cols.at(0), 1.0f);
  EXPECT_EQ(cols.at(1), 2.0f);
  EXPECT_EQ(cols.at(2), 4.0f);
  EXPECT_EQ(cols.at(3), 5.0f);
  // Last patch: (5,6),(8,9).
  EXPECT_EQ(cols.at(12), 5.0f);
  EXPECT_EQ(cols.at(15), 9.0f);
}

TEST(Im2col, Padding) {
  ConvSpec spec{.in_h = 2, .in_w = 2, .in_c = 1, .kernel_h = 3, .kernel_w = 3,
                .stride = 1, .pad = 1};
  EXPECT_EQ(spec.out_h(), 2);
  Tensor x = Tensor::from_vector({1, 2, 2, 1}, {1, 2, 3, 4});
  Tensor cols = im2col(x, spec);
  EXPECT_EQ(cols.shape(), (Shape{4, 9}));
  // Top-left patch has zeros in first row/col; center is x[0,0]=1.
  EXPECT_EQ(cols.at(0), 0.0f);
  EXPECT_EQ(cols.at(4), 1.0f);
}

TEST(Im2col, Col2imAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property the autograd vjp relies on.
  ConvSpec spec{.in_h = 5, .in_w = 4, .in_c = 2, .kernel_h = 3, .kernel_w = 2,
                .stride = 2, .pad = 1};
  Rng rng(5);
  Tensor x = Tensor::randn({2, 5, 4, 2}, rng);
  Tensor cols = im2col(x, spec);
  Tensor y = Tensor::randn(cols.shape(), rng);
  Tensor back = col2im(y, spec, 2);
  EXPECT_NEAR(dot(cols, y), dot(x, back), 1e-3);
}

TEST(Im2col, SpecValidation) {
  ConvSpec bad{.in_h = 2, .in_w = 2, .in_c = 1, .kernel_h = 5, .kernel_w = 5};
  EXPECT_THROW(bad.validate(), Error);
}

}  // namespace
}  // namespace fedcl::tensor
