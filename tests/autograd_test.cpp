#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"

namespace fedcl::tensor {
namespace {

namespace o = ops;
using fedcl::testing::expect_gradcheck;

TEST(Var, LeafBasics) {
  Var v(Tensor::ones({2, 2}), true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_TRUE(v.is_leaf());
  Var d = v.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.value().sum(), 4.0f);
  Var undef;
  EXPECT_FALSE(undef.defined());
}

TEST(Var, SetValueOnLeafOnly) {
  Var v(Tensor::ones({2}), true);
  v.set_value(Tensor::from_vector({2}, {3, 4}));
  EXPECT_EQ(v.value().at(1), 4.0f);
  EXPECT_THROW(v.set_value(Tensor::ones({3})), Error);
  Var w = o::add(v, v);
  EXPECT_THROW(w.set_value(Tensor::ones({2})), Error);
}

TEST(Var, GradModeTruncatesGraph) {
  Var v(Tensor::ones({2}), true);
  {
    GradModeGuard guard(false);
    Var w = o::mul_scalar(v, 2.0f);
    EXPECT_FALSE(w.requires_grad());
    EXPECT_TRUE(w.is_leaf());
  }
  Var w2 = o::mul_scalar(v, 2.0f);
  EXPECT_TRUE(w2.requires_grad());
}

TEST(Backward, SimpleChain) {
  // f = sum(2x + 3) -> df/dx = 2.
  Var x(Tensor::from_vector({3}, {1, 2, 3}), true);
  Var f = o::sum_all(o::add_scalar(o::mul_scalar(x, 2.0f), 3.0f));
  Gradients g = backward(f);
  Tensor gx = g.of(x).value();
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(gx.at(i), 2.0f);
}

TEST(Backward, RequiresScalarRoot) {
  Var x(Tensor::ones({2}), true);
  EXPECT_THROW(backward(o::mul_scalar(x, 2.0f)), Error);
  Var c(Tensor::scalar(1.0f), false);
  EXPECT_THROW(backward(c), Error);
}

TEST(Backward, SharedParentAccumulates) {
  // f = sum(x * x) -> 2x (x used twice by mul).
  Var x(Tensor::from_vector({2}, {3, -4}), true);
  Gradients g = backward(o::sum_all(o::mul(x, x)));
  EXPECT_FLOAT_EQ(g.of(x).value().at(0), 6.0f);
  EXPECT_FLOAT_EQ(g.of(x).value().at(1), -8.0f);
}

TEST(Backward, DiamondGraph) {
  // f = sum((x+x) * x) = sum(2x^2) -> 4x.
  Var x(Tensor::from_vector({2}, {1, 2}), true);
  Var f = o::sum_all(o::mul(o::add(x, x), x));
  Gradients g = backward(f);
  EXPECT_FLOAT_EQ(g.of(x).value().at(0), 4.0f);
  EXPECT_FLOAT_EQ(g.of(x).value().at(1), 8.0f);
}

TEST(Backward, UnreachedVariable) {
  Var x(Tensor::ones({2}), true);
  Var y(Tensor::ones({2}), true);
  Gradients g = backward(o::sum_all(x));
  EXPECT_TRUE(g.contains(x));
  EXPECT_FALSE(g.contains(y));
  EXPECT_THROW(g.of(y), Error);
}

TEST(Backward, ConstantsGetNoGrad) {
  Var x(Tensor::ones({2}), true);
  Var c = o::constant(Tensor::ones({2}));
  Gradients g = backward(o::sum_all(o::mul(x, c)));
  EXPECT_FALSE(g.contains(c));
  EXPECT_FLOAT_EQ(g.of(x).value().at(0), 1.0f);
}

// ---- per-op gradient checks against finite differences ----

TEST(Gradcheck, AddSubMulDiv) {
  Rng rng(10);
  Tensor a = Tensor::uniform({2, 3}, rng, 0.5f, 2.0f);
  Tensor b = Tensor::uniform({2, 3}, rng, 0.5f, 2.0f);
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::mul(o::add(v[0], v[1]), o::sub(v[0], v[1])));
      },
      {a, b});
  expect_gradcheck(
      [](const std::vector<Var>& v) { return o::sum_all(o::div(v[0], v[1])); },
      {a, b});
}

TEST(Gradcheck, UnaryOps) {
  Rng rng(11);
  Tensor a = Tensor::uniform({6}, rng, 0.3f, 1.5f);
  expect_gradcheck(
      [](const std::vector<Var>& v) { return o::sum_all(o::exp(v[0])); }, {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) { return o::sum_all(o::log(v[0])); }, {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) { return o::sum_all(o::sigmoid(v[0])); },
      {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) { return o::sum_all(o::tanh(v[0])); },
      {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::pow_scalar(v[0], 3.0f));
      },
      {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) { return o::sum_all(o::neg(v[0])); }, {a});
}

TEST(Gradcheck, ReluAwayFromKink) {
  Tensor a = Tensor::from_vector({4}, {-2.0f, -0.5f, 0.5f, 2.0f});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::mul(o::relu(v[0]), o::relu(v[0])));
      },
      {a});
}

TEST(Gradcheck, MatmulTranspose) {
  Rng rng(12);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({4, 2}, rng);
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::matmul(v[0], v[1])));
      },
      {a, b});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::matmul(o::transpose(v[0]), v[0]));
      },
      {a});
}

TEST(Gradcheck, ReductionsAndBroadcasts) {
  Rng rng(13);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor col = Tensor::randn({3, 1}, rng);
  Tensor row = Tensor::randn({4}, rng);
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::row_sum(v[0])));
      },
      {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::broadcast_col(v[0], 5)));
      },
      {col});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::col_sum(v[0])));
      },
      {a});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::broadcast_row(v[0], 3)));
      },
      {row});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::add_rowvec(v[0], v[1])));
      },
      {a, row});
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(
            o::square(o::expand_scalar(o::sum_all(v[0]), {2, 2})));
      },
      {a});
}

TEST(Gradcheck, PickScatter) {
  Rng rng(14);
  Tensor x = Tensor::randn({3, 4}, rng);
  std::vector<std::int64_t> idx{1, 3, 0};
  expect_gradcheck(
      [&idx](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::pick(v[0], idx)));
      },
      {x});
  Tensor s = Tensor::randn({3, 1}, rng);
  expect_gradcheck(
      [&idx](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::scatter(v[0], idx, 4)));
      },
      {s});
}

TEST(Gradcheck, Reshape) {
  Rng rng(15);
  Tensor a = Tensor::randn({2, 6}, rng);
  expect_gradcheck(
      [](const std::vector<Var>& v) {
        return o::sum_all(o::square(o::reshape(v[0], {3, 4})));
      },
      {a});
}

TEST(Gradcheck, Im2colConvPath) {
  Rng rng(16);
  ConvSpec spec{.in_h = 4, .in_w = 4, .in_c = 2, .kernel_h = 3, .kernel_w = 3,
                .stride = 1, .pad = 1};
  Tensor x = Tensor::randn({2, 4, 4, 2}, rng, 0.0f, 0.5f);
  Tensor w = Tensor::randn({spec.patch_size(), 3}, rng, 0.0f, 0.5f);
  expect_gradcheck(
      [&spec](const std::vector<Var>& v) {
        Var cols = o::im2col(v[0], spec);
        Var y = o::matmul(cols, v[1]);
        return o::sum_all(o::square(y));
      },
      {x, w});
}

TEST(Gradcheck, SoftmaxCrossEntropyComposite) {
  Rng rng(17);
  Tensor logits = Tensor::randn({3, 4}, rng);
  std::vector<std::int64_t> labels{2, 0, 3};
  expect_gradcheck(
      [&labels](const std::vector<Var>& v) {
        const std::int64_t c = v[0].value().dim(1);
        Var m = o::row_max_detached(v[0]);
        Var z = o::sub(v[0], o::broadcast_col(m, c));
        Var lse = o::log(o::row_sum(o::exp(z)));
        Var logp = o::sub(z, o::broadcast_col(lse, c));
        Var picked = o::pick(logp, labels);
        return o::mul_scalar(o::sum_all(picked), -1.0f / 3.0f);
      },
      {logits});
}

// ---- higher-order gradients ----

TEST(HigherOrder, CubePolynomial) {
  // f = sum(x^3); df/dx = 3x^2; d2f/dx2 (via sum of grads) = 6x.
  Var x(Tensor::from_vector({3}, {1, 2, -3}), true);
  Var f = o::sum_all(o::pow_scalar(x, 3.0f));
  Gradients g1 = backward(f, /*create_graph=*/true);
  Var gx = g1.of(x);
  EXPECT_FLOAT_EQ(gx.value().at(1), 12.0f);
  EXPECT_TRUE(gx.requires_grad());
  Gradients g2 = backward(o::sum_all(gx));
  Tensor hx = g2.of(x).value();
  EXPECT_FLOAT_EQ(hx.at(0), 6.0f);
  EXPECT_FLOAT_EQ(hx.at(1), 12.0f);
  EXPECT_FLOAT_EQ(hx.at(2), -18.0f);
}

TEST(HigherOrder, WithoutCreateGraphGradsAreConstant) {
  Var x(Tensor::from_vector({2}, {1, 2}), true);
  Gradients g1 = backward(o::sum_all(o::mul(x, x)));
  EXPECT_FALSE(g1.of(x).requires_grad());
}

TEST(HigherOrder, GradOfGradThroughExp) {
  // f = sum(exp(2x)); f' = 2 e^{2x}; (sum f')' = 4 e^{2x}.
  Var x(Tensor::from_vector({2}, {0.0f, 0.5f}), true);
  Var f = o::sum_all(o::exp(o::mul_scalar(x, 2.0f)));
  Gradients g1 = backward(f, true);
  Gradients g2 = backward(o::sum_all(g1.of(x)));
  EXPECT_NEAR(g2.of(x).value().at(0), 4.0f, 1e-4);
  EXPECT_NEAR(g2.of(x).value().at(1), 4.0f * std::exp(1.0f), 1e-3);
}

TEST(HigherOrder, GradientMatchingObjective) {
  // The attack pattern: match d(loss)/dw computed at x against a target
  // gradient, then differentiate the matching loss w.r.t. x.
  // loss(x, w) = sum((x w)^2) over scalar-ish shapes.
  Var w(Tensor::from_vector({1, 1}, {2.0f}), true);
  auto grad_wrt_w = [&w](const Var& x) {
    Var pred = o::matmul(x, w);  // [1,1]
    Var loss = o::sum_all(o::square(pred));
    Gradients g = backward(loss, true);
    return g.of(w);  // 2 * x^2 * w
  };
  Var x(Tensor::from_vector({1, 1}, {3.0f}), true);
  Var gw = grad_wrt_w(x);
  EXPECT_FLOAT_EQ(gw.value().item(), 36.0f);  // 2*9*2

  Var target = o::constant(Tensor::from_vector({1, 1}, {16.0f}));
  Var match = o::sum_all(o::square(o::sub(gw, target)));
  Gradients gx = backward(match);
  // d/dx (2x^2 w - 16)^2 = 2(2x^2 w - 16) * 4xw = 2*20*24 = 960.
  EXPECT_NEAR(gx.of(x).value().item(), 960.0f, 1e-2);
}

TEST(HigherOrder, SecondOrderMatchesFiniteDifference) {
  // Hessian diagonal of f = sum(sigmoid(x)) via double backward vs FD.
  Rng rng(18);
  Tensor x0 = Tensor::uniform({5}, rng, -1.0f, 1.0f);
  Var x(x0.clone(), true);
  Var f = o::sum_all(o::sigmoid(x));
  Gradients g1 = backward(f, true);
  Gradients g2 = backward(o::sum_all(g1.of(x)));
  Tensor analytic = g2.of(x).value();

  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    auto grad_sum_at = [&](float delta) {
      Tensor xp = x0.clone();
      xp.at(i) += delta;
      Var xv(xp, true);
      Gradients g = backward(o::sum_all(o::sigmoid(xv)));
      return g.of(xv).value().sum();
    };
    float numeric = (grad_sum_at(eps) - grad_sum_at(-eps)) / (2 * eps);
    EXPECT_NEAR(analytic.at(i), numeric, 5e-3) << "element " << i;
  }
}

TEST(Memory, RepeatedBackwardOnSameLeaf) {
  // Successive graphs over the same leaf must not interfere.
  Var x(Tensor::from_vector({2}, {1, 2}), true);
  for (int iter = 0; iter < 3; ++iter) {
    Var f = o::sum_all(o::mul_scalar(o::mul(x, x), static_cast<float>(iter + 1)));
    Gradients g = backward(f);
    EXPECT_FLOAT_EQ(g.of(x).value().at(0), 2.0f * (iter + 1));
  }
}

}  // namespace
}  // namespace fedcl::tensor
