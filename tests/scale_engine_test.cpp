// The virtualized scale path: pinned-order reductions (streaming ==
// buffered == tree, bitwise), the streaming round engine's fan-out /
// schedule invariance, and the on-demand client provider's determinism
// across calls and threads. These are the contracts that let one box
// simulate a million-client federation in bounded memory without
// giving up bitwise reproducibility (DESIGN.md §7).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/protocol.h"
#include "fl/trainer.h"
#include "fl/tree_aggregation.h"
#include "fl/virtual_client.h"

namespace fedcl::fl {
namespace {

using tensor::Tensor;

// ---- pinned-order reductions ----

std::vector<TensorList> make_deltas(std::int64_t n, Rng& rng) {
  std::vector<TensorList> deltas;
  for (std::int64_t i = 0; i < n; ++i) {
    TensorList d;
    d.push_back(Tensor::randn({3, 4}, rng));
    d.push_back(Tensor::randn({5}, rng));
    deltas.push_back(std::move(d));
  }
  return deltas;
}

void expect_bitwise_equal(const ReduceNode& a, const ReduceNode& b) {
  ASSERT_EQ(a.leaves, b.leaves);
  // double == double: the weights fold in the same pinned order, so
  // equality here is exact, not approximate.
  ASSERT_EQ(a.weight, b.weight);
  ASSERT_EQ(serialize_tensor_list(a.sum), serialize_tensor_list(b.sum));
}

TEST(TreeReduction, StreamingEqualsBufferedEqualsTreeBitwise) {
  for (std::int64_t n :
       {1, 2, 3, 5, 7, 8, 9, 16, 17, 31, 33, 64, 65, 100, 127, 130}) {
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    const std::vector<TensorList> deltas = make_deltas(n, rng);
    std::vector<double> weights;
    for (std::int64_t i = 0; i < n; ++i) {
      weights.push_back(1.0 + rng.uniform(0.0, 9.0));
    }

    const std::vector<std::uint8_t> pristine =
        serialize_tensor_list(deltas[0]);
    StreamingReducer streaming;
    for (std::int64_t i = 0; i < n; ++i) {
      streaming.push(tensor::list::clone(deltas[i]),
                     weights[static_cast<std::size_t>(i)]);
    }
    const ReduceNode from_stream = streaming.finalize();
    const ReduceNode from_buffer = reduce_buffered(deltas, weights);
    expect_bitwise_equal(from_stream, from_buffer);

    for (std::int64_t fan_out : {2, 8, 64}) {
      const ReduceNode from_tree = tree_reduce(deltas, weights, fan_out);
      expect_bitwise_equal(from_tree, from_buffer);
    }
    // The buffered reductions detach their inputs: the caller's
    // tensors must come through untouched (tensors share storage on
    // copy, so this pins the deep-copy-at-entry contract).
    EXPECT_EQ(serialize_tensor_list(deltas[0]), pristine);
  }
}

TEST(TreeReduction, UnweightedPathSkipsTheScaleAndStaysBitwise) {
  Rng rng(77);
  const std::int64_t n = 37;
  const std::vector<TensorList> deltas = make_deltas(n, rng);
  const std::vector<double> ones(static_cast<std::size_t>(n), 1.0);

  StreamingReducer streaming;
  for (const TensorList& d : deltas) {
    streaming.push(tensor::list::clone(d), 1.0);
  }
  const ReduceNode s = streaming.finalize();
  expect_bitwise_equal(s, reduce_buffered(deltas, ones));
  expect_bitwise_equal(s, tree_reduce(deltas, ones, 8));
  EXPECT_EQ(s.leaves, n);
  EXPECT_EQ(s.weight, static_cast<double>(n));
}

TEST(TreeReduction, OccupancyIsLogarithmicAndFinalizeResets) {
  Rng rng(5);
  StreamingReducer reducer;
  const std::int64_t n = 1000;
  for (std::int64_t i = 0; i < n; ++i) {
    TensorList d;
    d.push_back(Tensor::randn({4}, rng));
    reducer.push(std::move(d), 1.0);
    // floor(log2(i+1)) + 1 levels suffice for i+1 units.
    std::int64_t bound = 1;
    for (std::int64_t v = i + 1; v > 1; v >>= 1) ++bound;
    EXPECT_LE(reducer.occupancy(), bound);
  }
  EXPECT_EQ(reducer.units(), n);
  const ReduceNode out = reducer.finalize();
  EXPECT_EQ(out.leaves, n);
  EXPECT_EQ(reducer.units(), 0);
  EXPECT_EQ(reducer.occupancy(), 0);
  EXPECT_GT(reducer.max_occupancy(), 0);  // high-water survives finalize
  EXPECT_LE(reducer.max_occupancy(), 10);  // floor(log2 1000)+1
}

TEST(TreeReduction, FinalizeMeanDividesBySummedWeight) {
  ReduceNode node;
  node.sum.push_back(Tensor::full({3}, 12.0f));
  node.weight = 4.0;
  node.leaves = 4;
  const TensorList mean = finalize_mean(std::move(node));
  for (float v : mean[0].to_vector()) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST(TreeReduction, PowerOfTwoGate) {
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_TRUE(is_power_of_two(1) );
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(96));
}

// ---- the streaming round engine ----

FlExperimentConfig scale_config() {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 24;
  config.clients_per_round = 24;
  config.rounds = 3;
  config.seed = 29;
  config.eval_every = 0;
  config.weight_by_data_size = true;
  config.streaming_aggregation = true;
  return config;
}

std::vector<std::uint8_t> run_scale(const FlExperimentConfig& config,
                                    const core::PrivacyPolicy& policy,
                                    FlRunResult* out = nullptr) {
  FlRunResult result = run_experiment(config, policy);
  if (out != nullptr) *out = result;
  return serialize_tensor_list(result.final_weights);
}

TEST(ScaleEngine, FanOutIsAnExecutionDetailOnFaultFreeRounds) {
  // With sanitization noise on (fed_sdp), so the per-client sanitize
  // streams are exercised, not just the reduction order.
  std::unique_ptr<core::PrivacyPolicy> policy = core::make_fed_sdp(4.0, 0.25);
  FlExperimentConfig config = scale_config();
  config.tree_fan_out = 2;
  FlRunResult first;
  const std::vector<std::uint8_t> reference =
      run_scale(config, *policy, &first);
  EXPECT_EQ(first.completed_rounds, config.rounds);
  EXPECT_GT(first.max_stream_levels, 0);
  for (std::int64_t fan_out : {8, 64, 256}) {  // 256 > Kt: one flat reducer
    config.tree_fan_out = fan_out;
    EXPECT_EQ(run_scale(config, *policy), reference)
        << "fan-out " << fan_out << " diverged from fan-out 2";
  }
}

TEST(ScaleEngine, ParallelScheduleMatchesSerialBitwise) {
  std::unique_ptr<core::PrivacyPolicy> policy = core::make_fed_sdp(4.0, 0.25);
  FlExperimentConfig config = scale_config();
  config.parallel_clients = false;
  const std::vector<std::uint8_t> serial = run_scale(config, *policy);
  config.parallel_clients = true;
  EXPECT_EQ(run_scale(config, *policy), serial);
}

TEST(ScaleEngine, DeterministicUnderFaults) {
  std::unique_ptr<core::PrivacyPolicy> policy = core::make_non_private();
  FlExperimentConfig config = scale_config();
  config.rounds = 5;
  config.faults.fault_rate = 0.4;  // all five types, default mix
  FlRunResult a;
  FlRunResult b;
  const std::vector<std::uint8_t> first = run_scale(config, *policy, &a);
  const std::vector<std::uint8_t> second = run_scale(config, *policy, &b);
  EXPECT_EQ(first, second);
  EXPECT_EQ(a.total_failures.injected_total(), b.total_failures.injected_total());
  EXPECT_GT(a.total_failures.injected_total(), 0);
}

TEST(ScaleEngine, AgreesWithLegacySyncEngineUpToRounding) {
  // Streaming computes sum × (1/Σw); the legacy engine folds w/Σw
  // incrementally. Same math, different rounding — so close, not
  // bitwise (the documented boundary in DESIGN.md §7).
  std::unique_ptr<core::PrivacyPolicy> policy = core::make_non_private();
  FlExperimentConfig config = scale_config();
  FlRunResult streaming;
  run_scale(config, *policy, &streaming);
  config.streaming_aggregation = false;
  const FlRunResult legacy = run_experiment(config, *policy);
  EXPECT_TRUE(tensor::list::allclose(streaming.final_weights,
                                     legacy.final_weights, 1e-4f, 1e-4f));
}

// ---- the virtualized provider ----

struct ProviderFixture {
  std::shared_ptr<const data::Dataset> base;
  data::PartitionSpec spec;
  Rng part_rng;
  VirtualClientProvider provider;

  static ProviderFixture make(std::uint64_t seed) {
    const data::BenchmarkConfig bench = data::benchmark_config(
        data::BenchmarkId::kCancer, BenchScale::kSmoke);
    Rng root(seed);
    Rng data_rng = root.fork("train-data");
    Rng part_rng = root.fork("partition");
    auto base = std::make_shared<data::Dataset>(
        data::generate_synthetic(bench.train_spec, data_rng));
    data::PartitionSpec spec = bench.partition;
    spec.num_clients = 64;
    const LocalTrainConfig local{.local_iterations = 2,
                                 .batch_size = 4,
                                 .learning_rate = 0.1};
    FaultInjectionConfig faults;
    faults.fault_rate = 0.3;
    return ProviderFixture{
        base, spec, part_rng,
        VirtualClientProvider(base, spec, part_rng, local, faults, seed)};
  }
};

TEST(VirtualProvider, ShardsMatchTheEagerPartitionExactly) {
  ProviderFixture f = ProviderFixture::make(11);
  const std::vector<data::ClientData> eager =
      data::partition(f.base, f.spec, f.part_rng);
  ASSERT_EQ(static_cast<std::int64_t>(eager.size()),
            f.provider.total_clients());
  for (std::size_t k = 0; k < eager.size(); ++k) {
    const Client c = f.provider.client(static_cast<std::int64_t>(k));
    EXPECT_EQ(c.data().indices(), eager[k].indices()) << "client " << k;
    EXPECT_EQ(f.provider.data_size(static_cast<std::int64_t>(k)),
              eager[k].size());
  }
}

TEST(VirtualProvider, SynthesisIsDeterministicAcrossCallsAndThreads) {
  ProviderFixture f = ProviderFixture::make(23);
  const std::vector<std::int64_t> ids = {0, 7, 31, 63};

  // Reference values from the main thread.
  std::vector<std::vector<std::int64_t>> ref_indices;
  std::vector<double> ref_draws;
  std::vector<FaultType> ref_faults;
  for (std::int64_t id : ids) {
    ref_indices.push_back(f.provider.client(id).data().indices());
    Rng stream = VirtualClientProvider::training_stream(f.part_rng, 3, id);
    ref_draws.push_back(stream.uniform());
    ref_faults.push_back(f.provider.fault_plan().fault_for(3, id));
  }

  std::vector<int> mismatches(4, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 25; ++rep) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const std::int64_t id = ids[i];
          if (f.provider.client(id).data().indices() != ref_indices[i]) {
            ++mismatches[t];
          }
          Rng stream =
              VirtualClientProvider::training_stream(f.part_rng, 3, id);
          if (stream.uniform() != ref_draws[i]) ++mismatches[t];
          if (f.provider.fault_plan().fault_for(3, id) != ref_faults[i]) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(VirtualProvider, TheThreeStreamsAreDistinct) {
  Rng round_rng(99);
  Rng train = VirtualClientProvider::training_stream(round_rng, 2, 5);
  Rng fault = VirtualClientProvider::delivery_fault_stream(round_rng, 2, 5);
  Rng sanitize = VirtualClientProvider::sanitize_stream(round_rng, 2, 5);
  const double a = train.uniform();
  const double b = fault.uniform();
  const double c = sanitize.uniform();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // And distinct (round, id) pairs get distinct streams.
  Rng other = VirtualClientProvider::training_stream(round_rng, 2, 6);
  EXPECT_NE(other.uniform(), a);
}

}  // namespace
}  // namespace fedcl::fl
