// Unit tests for the telemetry layer: instruments, label handling,
// sinks, snapshotting, and the JSONL/Prometheus serializations.
#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace fedcl::telemetry {
namespace {

TEST(TelemetryCounter, ConcurrentIncrementsFromPoolWorkers) {
  Registry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 250;
  compute_pool().parallel_for(kTasks, [&](std::size_t) {
    for (int i = 0; i < kPerTask; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kTasks) * kPerTask);
}

TEST(TelemetryCounter, LabeledSeriesAreIndependent) {
  Registry registry;
  registry.counter("test.c", {{"k", "a"}}).add(2);
  registry.counter("test.c", {{"k", "b"}}).add(5);
  // Label order does not matter: {x,y} and {y,x} name one series.
  registry.counter("test.c2", {{"x", "1"}, {"y", "2"}}).add(1);
  registry.counter("test.c2", {{"y", "2"}, {"x", "1"}}).add(1);
  TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("test.c", {{"k", "a"}}), 2);
  EXPECT_EQ(snap.counter_value("test.c", {{"k", "b"}}), 5);
  EXPECT_EQ(snap.counter_value("test.c2", {{"y", "2"}, {"x", "1"}}), 2);
  EXPECT_EQ(snap.counter_value("test.missing"), 0);
}

TEST(TelemetryHistogram, BucketBoundariesAreInclusiveUpperEdges) {
  Registry registry;
  Histogram& h = registry.histogram("test.h", {1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive upper edge)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // overflow
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(TelemetryHistogram, ExponentialBuckets) {
  const std::vector<double> b = exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(TelemetryRegistry, LabelCardinalityCapFoldsIntoOverflowSeries) {
  Registry registry;
  registry.set_series_limit(2);
  registry.counter("test.capped", {{"id", "1"}}).add(1);
  registry.counter("test.capped", {{"id", "2"}}).add(1);
  // Beyond the cap: folded into the overflow series, not a new one.
  registry.counter("test.capped", {{"id", "3"}}).add(1);
  registry.counter("test.capped", {{"id", "4"}}).add(1);
  TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("test.capped", {{"id", "1"}}), 1);
  EXPECT_EQ(snap.counter_value("test.capped", {{"id", "2"}}), 1);
  EXPECT_EQ(snap.counter_value("test.capped", {{"id", "3"}}), 0);
  EXPECT_EQ(snap.counter_value("test.capped", {{"overflow", "true"}}), 2);
}

TEST(TelemetryRegistry, ResetZeroesButKeepsReferencesValid) {
  Registry registry;
  Counter& c = registry.counter("test.c");
  Gauge& g = registry.gauge("test.g");
  Histogram& h = registry.histogram("test.h", {1.0});
  c.add(7);
  g.set(3.5);
  h.observe(0.5);
  registry.record_point("test.series", 0, 1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(registry.snapshot().series_points("test.series").empty());
  // The same references keep working after reset.
  c.add(1);
  EXPECT_EQ(registry.snapshot().counter_value("test.c"), 1);
}

TEST(TelemetryRegistry, RecordPointBuildsOrderedSeries) {
  Registry registry;
  registry.record_point("test.eps", 0, 1.5, {{"level", "instance"}});
  registry.record_point("test.eps", 1, 2.5, {{"level", "instance"}});
  registry.record_point("test.eps", 0, 9.0, {{"level", "client"}});
  const std::vector<SeriesPoint> pts =
      registry.snapshot().series_points("test.eps", {{"level", "instance"}});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].step, 0);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.5);
  EXPECT_EQ(pts[1].step, 1);
  EXPECT_DOUBLE_EQ(pts[1].value, 2.5);
}

// Every line the JSONL sink writes must parse back with the fields the
// schema promises, in emission order.
TEST(TelemetryJsonl, RoundTripsThroughTheJsonParser) {
  // The stream must outlive the registry: the sink flushes into it on
  // destruction.
  std::ostringstream out;
  Registry registry;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  registry.record_point("test.point", 3, 0.25, {{"k", "v"}});
  {
    SpanTimer span(registry, "test.span", {{"phase", "x"}}, 3);
  }
  registry.log_line("WARN", "something \"quoted\"\n");
  registry.flush_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::vector<json::Value> docs;
  while (std::getline(in, line)) {
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(line, v, &error)) << error << " in: " << line;
    docs.push_back(std::move(v));
  }
  ASSERT_EQ(docs.size(), 4u);

  EXPECT_EQ(docs[0].find("type")->as_string(), "meta");
  EXPECT_EQ(docs[0].find("schema")->as_string(), "fedcl-telemetry-v1");

  EXPECT_EQ(docs[1].find("type")->as_string(), "point");
  EXPECT_EQ(docs[1].find("name")->as_string(), "test.point");
  EXPECT_EQ(docs[1].find("step")->as_int(), 3);
  EXPECT_DOUBLE_EQ(docs[1].find("value")->as_double(), 0.25);
  EXPECT_EQ(docs[1].find("labels")->find("k")->as_string(), "v");

  EXPECT_EQ(docs[2].find("type")->as_string(), "span");
  EXPECT_EQ(docs[2].find("name")->as_string(), "test.span");
  EXPECT_GE(docs[2].find("dur_ms")->as_double(), 0.0);
  EXPECT_EQ(docs[2].find("labels")->find("phase")->as_string(), "x");

  EXPECT_EQ(docs[3].find("type")->as_string(), "log");
  EXPECT_EQ(docs[3].find("level")->as_string(), "WARN");
  EXPECT_EQ(docs[3].find("message")->as_string(), "something \"quoted\"\n");
}

TEST(TelemetrySpan, ObservesDurationHistogram) {
  Registry registry;
  {
    SpanTimer span(registry, "test.phase", {{"phase", "train"}}, 0);
  }
  {
    SpanTimer span(registry, "test.phase", {{"phase", "train"}}, 1);
  }
  const TelemetrySnapshot snap = registry.snapshot();
  const HistogramSample* h =
      snap.find_histogram("test.phase.duration_ms", {{"phase", "train"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
}

// Log lines routed through the global registry land in the sink stream
// interleaved with metric events, in call order.
TEST(TelemetryLogging, GlobalLogLinesReachSinksInOrder) {
  Registry& registry = global_registry();
  registry.reset();
  std::ostringstream out;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  registry.record_point("test.before", 0, 1.0);
  FEDCL_LOG(Warn) << "between events";
  registry.record_point("test.after", 0, 2.0);
  registry.clear_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> types;
  std::string log_message;
  while (std::getline(in, line)) {
    json::Value v;
    ASSERT_TRUE(json::parse(line, v));
    types.push_back(v.find("type")->as_string());
    if (types.back() == "log") log_message = v.find("message")->as_string();
  }
  const std::vector<std::string> expected = {"meta", "point", "log", "point"};
  EXPECT_EQ(types, expected);
  EXPECT_EQ(log_message, "between events");
}

TEST(TelemetryPrometheus, TextExposition) {
  Registry registry;
  registry.counter("test.reqs_total", {{"kind", "a"}}).add(3);
  registry.gauge("dp.epsilon", {{"level", "instance"}}).set(1.25);
  Histogram& h = registry.histogram("test.lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE fedcl_test_reqs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fedcl_test_reqs_total{kind=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fedcl_dp_epsilon{level=\"instance\"} 1.25"),
            std::string::npos);
  // Cumulative buckets with the +Inf terminal, plus _sum and _count.
  EXPECT_NE(text.find("fedcl_test_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("fedcl_test_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("fedcl_test_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fedcl_test_lat_count 3"), std::string::npos);
}

TEST(TelemetryJson, ValueDumpAndParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc["name"] = "bench";
  doc["n"] = 42;
  doc["ratio"] = 0.1;
  doc["flag"] = true;
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["xs"] = std::move(arr);
  const std::string text = doc.dump(2);
  json::Value parsed;
  ASSERT_TRUE(json::parse(text, parsed));
  EXPECT_EQ(parsed.find("name")->as_string(), "bench");
  EXPECT_EQ(parsed.find("n")->as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed.find("ratio")->as_double(), 0.1);
  EXPECT_TRUE(parsed.find("flag")->as_bool());
  ASSERT_EQ(parsed.find("xs")->size(), 2u);
  EXPECT_EQ(parsed.find("xs")->at(0).as_int(), 1);
  EXPECT_EQ(parsed.find("xs")->at(1).as_string(), "two");
}

}  // namespace
}  // namespace fedcl::telemetry
