// Unit tests for the telemetry layer: instruments, label handling,
// sinks, snapshotting, and the JSONL/Prometheus serializations.
#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace fedcl::telemetry {
namespace {

TEST(TelemetryCounter, ConcurrentIncrementsFromPoolWorkers) {
  Registry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 250;
  compute_pool().parallel_for(kTasks, [&](std::size_t) {
    for (int i = 0; i < kPerTask; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), static_cast<std::int64_t>(kTasks) * kPerTask);
}

TEST(TelemetryCounter, LabeledSeriesAreIndependent) {
  Registry registry;
  registry.counter("test.c", {{"k", "a"}}).add(2);
  registry.counter("test.c", {{"k", "b"}}).add(5);
  // Label order does not matter: {x,y} and {y,x} name one series.
  registry.counter("test.c2", {{"x", "1"}, {"y", "2"}}).add(1);
  registry.counter("test.c2", {{"y", "2"}, {"x", "1"}}).add(1);
  TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("test.c", {{"k", "a"}}), 2);
  EXPECT_EQ(snap.counter_value("test.c", {{"k", "b"}}), 5);
  EXPECT_EQ(snap.counter_value("test.c2", {{"y", "2"}, {"x", "1"}}), 2);
  EXPECT_EQ(snap.counter_value("test.missing"), 0);
}

TEST(TelemetryHistogram, BucketBoundariesAreInclusiveUpperEdges) {
  Registry registry;
  Histogram& h = registry.histogram("test.h", {1.0, 2.0, 4.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (inclusive upper edge)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1
  h.observe(4.0);  // bucket 2
  h.observe(9.0);  // overflow
  const std::vector<std::int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(TelemetryHistogram, ExponentialBuckets) {
  const std::vector<double> b = exponential_buckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(TelemetryRegistry, LabelCardinalityCapFoldsIntoOverflowSeries) {
  Registry registry;
  registry.set_series_limit(2);
  registry.counter("test.capped", {{"id", "1"}}).add(1);
  registry.counter("test.capped", {{"id", "2"}}).add(1);
  // Beyond the cap: folded into the overflow series, not a new one.
  registry.counter("test.capped", {{"id", "3"}}).add(1);
  registry.counter("test.capped", {{"id", "4"}}).add(1);
  TelemetrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value("test.capped", {{"id", "1"}}), 1);
  EXPECT_EQ(snap.counter_value("test.capped", {{"id", "2"}}), 1);
  EXPECT_EQ(snap.counter_value("test.capped", {{"id", "3"}}), 0);
  EXPECT_EQ(snap.counter_value("test.capped", {{"overflow", "true"}}), 2);
}

TEST(TelemetryRegistry, ResetZeroesButKeepsReferencesValid) {
  Registry registry;
  Counter& c = registry.counter("test.c");
  Gauge& g = registry.gauge("test.g");
  Histogram& h = registry.histogram("test.h", {1.0});
  c.add(7);
  g.set(3.5);
  h.observe(0.5);
  registry.record_point("test.series", 0, 1.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_TRUE(registry.snapshot().series_points("test.series").empty());
  // The same references keep working after reset.
  c.add(1);
  EXPECT_EQ(registry.snapshot().counter_value("test.c"), 1);
}

TEST(TelemetryRegistry, RecordPointBuildsOrderedSeries) {
  Registry registry;
  registry.record_point("test.eps", 0, 1.5, {{"level", "instance"}});
  registry.record_point("test.eps", 1, 2.5, {{"level", "instance"}});
  registry.record_point("test.eps", 0, 9.0, {{"level", "client"}});
  const std::vector<SeriesPoint> pts =
      registry.snapshot().series_points("test.eps", {{"level", "instance"}});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].step, 0);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.5);
  EXPECT_EQ(pts[1].step, 1);
  EXPECT_DOUBLE_EQ(pts[1].value, 2.5);
}

// Every line the JSONL sink writes must parse back with the fields the
// schema promises, in emission order.
TEST(TelemetryJsonl, RoundTripsThroughTheJsonParser) {
  // The stream must outlive the registry: the sink flushes into it on
  // destruction.
  std::ostringstream out;
  Registry registry;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  registry.record_point("test.point", 3, 0.25, {{"k", "v"}});
  {
    SpanTimer span(registry, "test.span", {{"phase", "x"}}, 3);
  }
  registry.log_line("WARN", "something \"quoted\"\n");
  registry.flush_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::vector<json::Value> docs;
  while (std::getline(in, line)) {
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(line, v, &error)) << error << " in: " << line;
    docs.push_back(std::move(v));
  }
  ASSERT_EQ(docs.size(), 4u);

  EXPECT_EQ(docs[0].find("type")->as_string(), "meta");
  EXPECT_EQ(docs[0].find("schema")->as_string(), "fedcl-telemetry-v1");

  EXPECT_EQ(docs[1].find("type")->as_string(), "point");
  EXPECT_EQ(docs[1].find("name")->as_string(), "test.point");
  EXPECT_EQ(docs[1].find("step")->as_int(), 3);
  EXPECT_DOUBLE_EQ(docs[1].find("value")->as_double(), 0.25);
  EXPECT_EQ(docs[1].find("labels")->find("k")->as_string(), "v");

  EXPECT_EQ(docs[2].find("type")->as_string(), "span");
  EXPECT_EQ(docs[2].find("name")->as_string(), "test.span");
  EXPECT_GE(docs[2].find("dur_ms")->as_double(), 0.0);
  EXPECT_EQ(docs[2].find("labels")->find("phase")->as_string(), "x");

  EXPECT_EQ(docs[3].find("type")->as_string(), "log");
  EXPECT_EQ(docs[3].find("level")->as_string(), "WARN");
  EXPECT_EQ(docs[3].find("message")->as_string(), "something \"quoted\"\n");
}

// Trace identity: nested SpanTimers under a TraceScope share a trace
// id and form a parent chain, with the start/end anchors the Chrome
// exporter needs.
TEST(TelemetryTrace, NestedSpansCarryTraceAndParentIds) {
  std::ostringstream out;
  Registry registry;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  {
    TraceScope scope(round_trace_root(42, 7));
    SpanTimer outer(registry, "test.round", {}, 7);
    ASSERT_TRUE(outer.context().valid());
    { SpanTimer inner(registry, "test.phase", {{"phase", "x"}}, 7); }
  }
  registry.flush_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::vector<json::Value> spans;
  while (std::getline(in, line)) {
    json::Value v;
    ASSERT_TRUE(json::parse(line, v));
    if (v.find("type")->as_string() == "span") spans.push_back(std::move(v));
  }
  ASSERT_EQ(spans.size(), 2u);
  // RAII close order: the inner span is emitted first.
  const json::Value& inner = spans[0];
  const json::Value& outer = spans[1];
  EXPECT_EQ(inner.find("name")->as_string(), "test.phase");
  EXPECT_EQ(outer.find("name")->as_string(), "test.round");
  const std::string trace = outer.find("trace")->as_string();
  EXPECT_EQ(trace.size(), 32u);
  EXPECT_EQ(inner.find("trace")->as_string(), trace);
  // The round span is the trace root; the phase span parents under it.
  EXPECT_EQ(outer.find("parent"), nullptr);
  EXPECT_EQ(inner.find("parent")->as_string(),
            outer.find("span")->as_string());
  EXPECT_NE(inner.find("span")->as_string(), outer.find("span")->as_string());
  // start + duration is consistent with the emit-time anchor.
  for (const json::Value* s : {&inner, &outer}) {
    EXPECT_LE(s->find("start_ms")->as_double(), s->find("t_ms")->as_double());
    EXPECT_GE(s->find("dur_ms")->as_double(), 0.0);
  }
}

// Outside any TraceScope the span event must serialize exactly as it
// did before tracing existed: no trace/span/parent/start_ms fields.
TEST(TelemetryTrace, UntracedSpansCarryNoTraceFields) {
  std::ostringstream out;
  Registry registry;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  { SpanTimer span(registry, "test.span", {}, 0); }
  registry.flush_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);  // meta
  std::getline(in, line);  // the span
  json::Value v;
  ASSERT_TRUE(json::parse(line, v));
  EXPECT_EQ(v.find("type")->as_string(), "span");
  EXPECT_EQ(v.find("trace"), nullptr);
  EXPECT_EQ(v.find("span"), nullptr);
  EXPECT_EQ(v.find("parent"), nullptr);
  EXPECT_EQ(v.find("start_ms"), nullptr);
}

TEST(TelemetryTrace, RoundTraceRootIsDeterministicPerSeedAndRound) {
  const TraceContext a = round_trace_root(97, 3);
  const TraceContext b = round_trace_root(97, 3);
  EXPECT_EQ(a.trace_hi, b.trace_hi);
  EXPECT_EQ(a.trace_lo, b.trace_lo);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.span_id, 0u);
  const TraceContext c = round_trace_root(97, 4);
  EXPECT_FALSE(c.trace_hi == a.trace_hi && c.trace_lo == a.trace_lo);
  const TraceContext d = round_trace_root(98, 3);
  EXPECT_FALSE(d.trace_hi == a.trace_hi && d.trace_lo == a.trace_lo);
}

// A context adopted from another process (TraceContext::remote, the
// wire path) marks only the directly-adopting span's parent as remote;
// grandchildren have locally-resolvable parents.
TEST(TelemetryTrace, RemoteAdoptionFlagsOnlyTheDirectChildParent) {
  std::ostringstream out;
  Registry registry;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  TraceContext wire = round_trace_root(5, 0);
  wire.span_id = next_span_id();  // the (remote) server round span
  wire.remote = true;
  {
    TraceScope scope(wire);
    SpanTimer child(registry, "test.client.round", {}, 0);
    { SpanTimer grandchild(registry, "test.client.phase", {}, 0); }
  }
  registry.flush_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::vector<json::Value> spans;
  while (std::getline(in, line)) {
    json::Value v;
    ASSERT_TRUE(json::parse(line, v));
    if (v.find("type")->as_string() == "span") spans.push_back(std::move(v));
  }
  ASSERT_EQ(spans.size(), 2u);
  const json::Value& grandchild = spans[0];
  const json::Value& child = spans[1];
  EXPECT_NE(child.find("parent_remote"), nullptr);
  EXPECT_TRUE(child.find("parent_remote")->as_bool());
  EXPECT_EQ(grandchild.find("parent_remote"), nullptr);
  EXPECT_EQ(grandchild.find("parent")->as_string(),
            child.find("span")->as_string());
}

// Pool workers adopting one round context emit concurrently into the
// same sink; every span must land with the shared trace id and the
// round span as parent, race-free (this test runs under TSan in CI).
TEST(TelemetryTrace, ConcurrentSpanEmissionFromPoolWorkers) {
  std::ostringstream out;
  Registry registry;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  std::string root_span_hex;
  {
    TraceScope scope(round_trace_root(11, 0));
    SpanTimer round(registry, "test.round", {}, 0);
    const TraceContext ctx = round.context();
    constexpr std::size_t kTasks = 32;
    compute_pool().parallel_for(kTasks, [&](std::size_t i) {
      TraceScope adopt(ctx);
      SpanTimer span(registry, "test.work", {}, static_cast<std::int64_t>(i));
    });
  }
  registry.flush_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::string trace;
  std::string round_span;
  std::size_t workers = 0;
  std::vector<std::string> worker_parents;
  while (std::getline(in, line)) {
    json::Value v;
    ASSERT_TRUE(json::parse(line, v));
    if (v.find("type")->as_string() != "span") continue;
    if (v.find("name")->as_string() == "test.round") {
      round_span = v.find("span")->as_string();
      trace = v.find("trace")->as_string();
    } else {
      ++workers;
      worker_parents.push_back(v.find("parent")->as_string());
    }
  }
  EXPECT_EQ(workers, 32u);
  ASSERT_FALSE(round_span.empty());
  for (const std::string& p : worker_parents) EXPECT_EQ(p, round_span);
}

// The Chrome exporter writes a complete, parseable trace-event JSON
// document whose timestamps are wall-clock anchored.
TEST(TelemetryChromeTrace, WritesCompleteTraceEventJson) {
  const std::string path =
      ::testing::TempDir() + "/fedcl_chrome_trace_test.json";
  Registry registry;
  auto sink = std::make_unique<ChromeTraceSink>(path, "unit-test",
                                                registry.wall_epoch_unix_ms());
  ASSERT_TRUE(sink->ok());
  registry.add_sink(std::move(sink));
  {
    TraceScope scope(round_trace_root(1, 0));
    SpanTimer round(registry, "test.round", {{"k", "v"}}, 0);
    { SpanTimer phase(registry, "test.phase", {}, 0); }
  }
  registry.flush_sinks();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::parse(buf.str(), doc, &error)) << error;
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // process_name metadata + 2 spans.
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ(events->at(0).find("ph")->as_string(), "M");
  EXPECT_EQ(events->at(0).find("args")->find("name")->as_string(),
            "unit-test");
  std::string trace_id;
  for (std::size_t i = 1; i < events->size(); ++i) {
    const json::Value& e = events->at(i);
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_GE(e.find("dur")->as_double(), 0.0);
    // Anchored to the unix epoch: far beyond any registry-relative ms.
    EXPECT_GT(e.find("ts")->as_double(),
              registry.wall_epoch_unix_ms() * 1000.0 - 1.0);
    const json::Value* args = e.find("args");
    ASSERT_NE(args, nullptr);
    if (trace_id.empty()) {
      trace_id = args->find("trace")->as_string();
    } else {
      EXPECT_EQ(args->find("trace")->as_string(), trace_id);
    }
  }
  std::remove(path.c_str());
}

// Repeated flushes append in place: after every flush the file is a
// complete, parseable document, earlier events are never lost or
// duplicated, and a clean (non-dirty) flush leaves the file untouched.
TEST(TelemetryChromeTrace, RepeatedFlushesAppendWithoutDuplication) {
  const std::string path =
      ::testing::TempDir() + "/fedcl_chrome_trace_incremental.json";
  Registry registry;
  auto sink = std::make_unique<ChromeTraceSink>(path, "unit-test",
                                                registry.wall_epoch_unix_ms());
  ASSERT_TRUE(sink->ok());
  registry.add_sink(std::move(sink));
  auto parse_file = [&](json::Value& doc) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string error;
    ASSERT_TRUE(json::parse(buf.str(), doc, &error)) << error;
  };
  for (int round = 0; round < 3; ++round) {
    {
      TraceScope scope(round_trace_root(7, round));
      SpanTimer span(registry, "test.round", {}, round);
    }
    registry.flush_sinks();
    json::Value doc;
    parse_file(doc);
    // process_name metadata + one span per flushed round.
    ASSERT_EQ(doc.find("traceEvents")->size(),
              static_cast<std::size_t>(2 + round));
  }
  registry.flush_sinks();  // nothing pending: must not disturb the file
  json::Value doc;
  parse_file(doc);
  EXPECT_EQ(doc.find("traceEvents")->size(), 4u);
  std::remove(path.c_str());
}

TEST(TelemetrySpan, ObservesDurationHistogram) {
  Registry registry;
  {
    SpanTimer span(registry, "test.phase", {{"phase", "train"}}, 0);
  }
  {
    SpanTimer span(registry, "test.phase", {{"phase", "train"}}, 1);
  }
  const TelemetrySnapshot snap = registry.snapshot();
  const HistogramSample* h =
      snap.find_histogram("test.phase.duration_ms", {{"phase", "train"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
}

// Log lines routed through the global registry land in the sink stream
// interleaved with metric events, in call order.
TEST(TelemetryLogging, GlobalLogLinesReachSinksInOrder) {
  Registry& registry = global_registry();
  registry.reset();
  std::ostringstream out;
  registry.add_sink(std::make_unique<JsonlSink>(&out));
  registry.record_point("test.before", 0, 1.0);
  FEDCL_LOG(Warn) << "between events";
  registry.record_point("test.after", 0, 2.0);
  registry.clear_sinks();

  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> types;
  std::string log_message;
  while (std::getline(in, line)) {
    json::Value v;
    ASSERT_TRUE(json::parse(line, v));
    types.push_back(v.find("type")->as_string());
    if (types.back() == "log") log_message = v.find("message")->as_string();
  }
  const std::vector<std::string> expected = {"meta", "point", "log", "point"};
  EXPECT_EQ(types, expected);
  EXPECT_EQ(log_message, "between events");
}

TEST(TelemetryPrometheus, TextExposition) {
  Registry registry;
  registry.counter("test.reqs_total", {{"kind", "a"}}).add(3);
  registry.gauge("dp.epsilon", {{"level", "instance"}}).set(1.25);
  Histogram& h = registry.histogram("test.lat", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE fedcl_test_reqs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fedcl_test_reqs_total{kind=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fedcl_dp_epsilon{level=\"instance\"} 1.25"),
            std::string::npos);
  // Cumulative buckets with the +Inf terminal, plus _sum and _count.
  EXPECT_NE(text.find("fedcl_test_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("fedcl_test_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("fedcl_test_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("fedcl_test_lat_count 3"), std::string::npos);
}

TEST(TelemetryJson, ValueDumpAndParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc["name"] = "bench";
  doc["n"] = 42;
  doc["ratio"] = 0.1;
  doc["flag"] = true;
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["xs"] = std::move(arr);
  const std::string text = doc.dump(2);
  json::Value parsed;
  ASSERT_TRUE(json::parse(text, parsed));
  EXPECT_EQ(parsed.find("name")->as_string(), "bench");
  EXPECT_EQ(parsed.find("n")->as_int(), 42);
  EXPECT_DOUBLE_EQ(parsed.find("ratio")->as_double(), 0.1);
  EXPECT_TRUE(parsed.find("flag")->as_bool());
  ASSERT_EQ(parsed.find("xs")->size(), 2u);
  EXPECT_EQ(parsed.find("xs")->at(0).as_int(), 1);
  EXPECT_EQ(parsed.find("xs")->at(1).as_string(), "two");
}

}  // namespace
}  // namespace fedcl::telemetry
