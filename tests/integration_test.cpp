// Cross-module integration scenarios: each test wires several
// subsystems together the way a downstream user would.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "attack/leakage_eval.h"
#include "attack/membership.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/client.h"
#include "fl/compression.h"
#include "fl/protocol.h"
#include "fl/secure_aggregation.h"
#include "fl/server.h"
#include "fl/trainer.h"
#include "nn/checkpoint.h"
#include "nn/loss.h"
#include "nn/grad_utils.h"
#include "nn/metrics.h"
#include "nn/model_zoo.h"

namespace fedcl {
namespace {

data::BenchmarkConfig smoke_bench(data::BenchmarkId id) {
  return data::benchmark_config(id, BenchScale::kSmoke);
}

TEST(Integration, TrainCheckpointReloadEvaluate) {
  fl::FlExperimentConfig config;
  config.bench = smoke_bench(data::BenchmarkId::kCancer);
  config.total_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 3;
  config.seed = 7;
  core::NonPrivatePolicy policy;
  fl::FlRunResult result = fl::run_experiment(config, policy);

  // The trainer's pipeline is reproducible; rebuild the data and model
  // to verify a checkpointed copy of freshly trained weights evaluates
  // identically.
  Rng root(config.seed);
  Rng mrng = root.fork("model");
  auto model = nn::build_model(config.bench.model, mrng);
  const std::string path =
      std::string(::testing::TempDir()) + "/integration.ckpt";
  nn::save_weights(path, model->weights());
  auto reloaded = nn::build_model(config.bench.model, mrng);
  reloaded->set_weights(nn::load_weights(path));
  EXPECT_TRUE(tensor::list::allclose(reloaded->weights(), model->weights(),
                                     0.0f, 0.0f));
  std::remove(path.c_str());
  EXPECT_GE(result.final_accuracy, 0.0);
}

TEST(Integration, UpdateTravelsThroughSecureChannelToServer) {
  // Client -> serialize -> seal -> open -> deserialize -> aggregate:
  // the full transport path of one round.
  data::BenchmarkConfig bench = smoke_bench(data::BenchmarkId::kCancer);
  Rng root(3);
  Rng drng = root.fork("data");
  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(bench.train_spec, drng));
  data::PartitionSpec part = bench.partition;
  part.num_clients = 2;
  Rng prng = root.fork("part");
  auto shards = data::partition(train, part, prng);
  Rng mrng = root.fork("model");
  auto model = nn::build_model(bench.model, mrng);
  fl::Server server(model->weights());
  const dp::ParamGroups groups =
      fl::to_param_groups(model->layer_groups());

  fl::LocalTrainConfig local{.local_iterations = 1,
                             .batch_size = 2,
                             .learning_rate = 0.1};
  core::FedSdpPolicy policy(4.0, 0.1);
  fl::SecureChannel channel(0xC0FFEE);
  std::vector<fl::ClientUpdate> received;
  for (std::int64_t ci = 0; ci < 2; ++ci) {
    fl::Client client(ci, shards[static_cast<std::size_t>(ci)], local);
    Rng crng = root.fork("round", static_cast<std::uint64_t>(ci));
    fl::ClientRoundOutcome outcome =
        client.run_round(*model, server.weights(), policy, 0, crng);
    auto wire = channel.seal(fl::serialize_update(outcome.update));
    auto opened = channel.open(wire);
    ASSERT_TRUE(opened.ok()) << opened.error();
    auto decoded = fl::deserialize_update(opened.value());
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    received.push_back(decoded.take());
  }
  tensor::list::TensorList before =
      tensor::list::clone(server.weights());
  Rng arng = root.fork("agg");
  server.aggregate(std::move(received), policy, groups, arng);
  EXPECT_FALSE(tensor::list::allclose(server.weights(), before));
  EXPECT_EQ(server.round(), 1);
}

TEST(Integration, SecureAggregationInsideARound) {
  // Masked updates aggregate to the same global model as plaintext.
  data::BenchmarkConfig bench = smoke_bench(data::BenchmarkId::kCancer);
  Rng root(5);
  Rng drng = root.fork("data");
  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(bench.train_spec, drng));
  data::PartitionSpec part = bench.partition;
  part.num_clients = 3;
  Rng prng = root.fork("part");
  auto shards = data::partition(train, part, prng);
  Rng mrng = root.fork("model");
  auto model = nn::build_model(bench.model, mrng);
  const auto initial = model->weights();
  fl::LocalTrainConfig local{.local_iterations = 1,
                             .batch_size = 2,
                             .learning_rate = 0.1};
  core::NonPrivatePolicy policy;
  fl::SecureAggregator aggregator({0, 1, 2}, 77,
                                  tensor::list::shapes_of(initial));

  std::vector<fl::ClientUpdate> plain, masked;
  for (std::int64_t ci = 0; ci < 3; ++ci) {
    fl::Client client(ci, shards[static_cast<std::size_t>(ci)], local);
    Rng c1 = root.fork("r", static_cast<std::uint64_t>(ci));
    Rng c2 = root.fork("r", static_cast<std::uint64_t>(ci));
    fl::ClientRoundOutcome a =
        client.run_round(*model, initial, policy, 0, c1);
    fl::ClientRoundOutcome b =
        client.run_round(*model, initial, policy, 0, c2);
    aggregator.mask(ci, b.update.delta);
    plain.push_back(std::move(a.update));
    masked.push_back(std::move(b.update));
  }
  const dp::ParamGroups groups =
      fl::to_param_groups(model->layer_groups());
  fl::Server s1(initial), s2(initial);
  Rng a1 = root.fork("agg1");
  Rng a2 = root.fork("agg1");
  s1.aggregate(std::move(plain), policy, groups, a1);
  s2.aggregate(std::move(masked), policy, groups, a2);
  EXPECT_TRUE(
      tensor::list::allclose(s1.weights(), s2.weights(), 1e-4f, 1e-3f));
}

TEST(Integration, AdaptivePolicyEndToEnd) {
  fl::FlExperimentConfig config;
  config.bench = smoke_bench(data::BenchmarkId::kCancer);
  config.total_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 3;
  config.seed = 13;
  core::FedCdpAdaptivePolicy policy(/*initial_bound=*/4.0,
                                    /*noise_scale=*/0.1);
  fl::FlRunResult result = fl::run_experiment(config, policy);
  EXPECT_GE(result.final_accuracy, 0.0);
  // The bound must have adapted away from the initial value once
  // gradients were observed.
  EXPECT_NE(policy.current_bound(), 4.0);
}

TEST(Integration, QuantizedUpdatesStillTrain) {
  // Quantize every client update to 8 bits before aggregation via the
  // policy-free path: compress inside the trainer is prune-based, so
  // exercise quantization through a manual round.
  data::BenchmarkConfig bench = smoke_bench(data::BenchmarkId::kCancer);
  Rng root(17);
  Rng drng = root.fork("data");
  auto train = std::make_shared<data::Dataset>(
      data::generate_synthetic(bench.train_spec, drng));
  data::PartitionSpec part = bench.partition;
  part.num_clients = 2;
  Rng prng = root.fork("part");
  auto shards = data::partition(train, part, prng);
  Rng mrng = root.fork("model");
  auto model = nn::build_model(bench.model, mrng);
  fl::Server server(model->weights());
  const dp::ParamGroups groups =
      fl::to_param_groups(model->layer_groups());
  fl::LocalTrainConfig local{.local_iterations = 2,
                             .batch_size = 2,
                             .learning_rate = 0.1};
  core::NonPrivatePolicy policy;
  for (std::int64_t t = 0; t < 2; ++t) {
    std::vector<fl::ClientUpdate> updates;
    for (std::int64_t ci = 0; ci < 2; ++ci) {
      fl::Client client(ci, shards[static_cast<std::size_t>(ci)], local);
      Rng crng = root.fork("r", static_cast<std::uint64_t>(t * 10 + ci));
      fl::ClientRoundOutcome outcome =
          client.run_round(*model, server.weights(), policy, t, crng);
      const double err = fl::quantize_uniform(outcome.update.delta, 8);
      EXPECT_GE(err, 0.0);
      updates.push_back(std::move(outcome.update));
    }
    Rng arng = root.fork("agg", static_cast<std::uint64_t>(t));
    server.aggregate(std::move(updates), policy, groups, arng);
  }
  EXPECT_EQ(server.round(), 2);
}

TEST(Integration, ConfusionMatrixOnTrainedModel) {
  data::BenchmarkConfig bench = smoke_bench(data::BenchmarkId::kCancer);
  Rng root(19);
  Rng drng = root.fork("data");
  data::Dataset ds = data::generate_synthetic(bench.train_spec, drng);
  Rng mrng = root.fork("model");
  auto model = nn::build_model(bench.model, mrng);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < ds.size(); ++i) idx.push_back(i);
  data::Batch all = ds.gather(idx);
  tensor::GradModeGuard no_grad(false);
  tensor::Var logits = model->forward(tensor::Var(all.x, false));
  nn::ConfusionMatrix cm(bench.train_spec.classes);
  cm.add_batch(logits.value(), all.labels);
  EXPECT_EQ(cm.total(), ds.size());
  EXPECT_NEAR(cm.accuracy(),
              nn::accuracy(logits.value(), all.labels), 1e-12);
}

TEST(Integration, PrivacyAccountingConsistentWithRun) {
  fl::FlExperimentConfig config;
  config.bench = smoke_bench(data::BenchmarkId::kCancer);
  config.total_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 2;
  config.noise_scale = 2.0;
  core::FedCdpPolicy policy(4.0, 2.0);
  fl::FlRunResult result = fl::run_experiment(config, policy);
  core::PrivacyReport report = core::account_privacy(result.privacy_setup);
  EXPECT_EQ(result.privacy_setup.noise_scale, 2.0);
  EXPECT_EQ(report.instance_steps,
            config.rounds * config.effective_local_iterations());
  EXPECT_GT(report.fed_cdp_instance_epsilon, 0.0);
}

}  // namespace
}  // namespace fedcl
