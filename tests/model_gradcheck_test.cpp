// Finite-difference gradient checks over every model_zoo architecture
// and layer type, run against BOTH gradient paths: the autograd batch
// gradient (compute_gradients) and the batched per-example engine's
// mean gradient. This is the safety harness that gates kernel
// optimizations — a wrong matmul/im2col/pool kernel shows up here as a
// mismatch against central differences of the loss itself.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/grad_utils.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"
#include "nn/per_example.h"
#include "tensor/tensor.h"
#include "tensor/tensor_list.h"

namespace fedcl {
namespace {

using nn::Sequential;
using tensor::Tensor;
using tensor::list::TensorList;

std::vector<std::int64_t> labels_for(std::int64_t batch,
                                     std::int64_t classes) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(batch));
  for (std::int64_t j = 0; j < batch; ++j)
    labels[static_cast<std::size_t>(j)] = j % classes;
  return labels;
}

// Central finite differences of the mean cross-entropy loss w.r.t.
// every parameter element, compared against both analytic paths.
void expect_model_gradcheck(Sequential& model, const Tensor& x,
                            const std::vector<std::int64_t>& labels,
                            float eps = 1e-2f, float atol = 6e-3f,
                            float rtol = 6e-2f, int max_skip_percent = 5) {
  const TensorList analytic = nn::compute_gradients(model, x, labels);
  double engine_loss = 0.0;
  const TensorList engine_mean =
      nn::compute_per_example_gradients(model, x, labels, &engine_loss)
          .mean();
  ASSERT_EQ(analytic.size(), engine_mean.size());
  ASSERT_EQ(analytic.size(), model.parameter_count());

  const TensorList saved = model.weights();
  auto loss_at = [&](const TensorList& w) {
    model.set_weights(w);
    double loss = 0.0;
    nn::compute_gradients(model, x, labels, &loss);
    return loss;
  };
  std::int64_t total = 0, skipped = 0;
  for (std::size_t p = 0; p < saved.size(); ++p) {
    for (std::int64_t i = 0; i < saved[p].numel(); ++i) {
      ++total;
      TensorList w = tensor::list::clone(saved);
      const float orig = w[p].at(i);
      auto central_diff = [&](float h) {
        w[p].at(i) = orig + h;
        const double up = loss_at(w);
        w[p].at(i) = orig - h;
        const double down = loss_at(w);
        w[p].at(i) = orig;
        return static_cast<float>((up - down) / (2.0 * static_cast<double>(h)));
      };
      // Two step sizes: for a smooth loss the estimates agree (central
      // differences converge at O(h^2)); where they disagree the
      // element sits on a kink (relu boundary, maxpool argmax flip)
      // and finite differences say nothing — skip it, but bound how
      // many elements may take that exit.
      const float coarse = central_diff(eps);
      const float numeric = central_diff(eps / 4.0f);
      const float tol = atol + rtol * std::abs(numeric);
      if (std::abs(coarse - numeric) > tol / 2.0f) {
        ++skipped;
        continue;
      }
      EXPECT_NEAR(analytic[p].at(i), numeric, tol)
          << "autograd: param " << p << " element " << i;
      EXPECT_NEAR(engine_mean[p].at(i), numeric, tol)
          << "per-example engine: param " << p << " element " << i;
    }
  }
  // The kink exit cannot mask a wrong kernel (skips depend only on the
  // FD estimates, never on the analytic values), but bound it anyway so
  // the check cannot silently degenerate to covering nothing.
  EXPECT_LE(skipped * 100, total * max_skip_percent)
      << "too many non-smooth elements skipped (" << skipped << "/" << total
      << ")";
  model.set_weights(saved);
}

nn::ModelSpec mlp_spec(nn::Activation act) {
  nn::ModelSpec spec;
  spec.kind = nn::ModelSpec::Kind::kMlp;
  spec.in_features = 6;
  spec.classes = 3;
  spec.hidden1 = 5;
  spec.hidden2 = 4;
  spec.activation = act;
  return spec;
}

nn::ModelSpec cnn_spec(nn::Activation act) {
  nn::ModelSpec spec;
  spec.kind = nn::ModelSpec::Kind::kImageCnn;
  spec.height = 8;
  spec.width = 8;
  spec.channels = 1;
  spec.classes = 3;
  spec.conv1_channels = 2;
  spec.conv2_channels = 3;
  spec.activation = act;
  return spec;
}

TEST(ModelGradCheck, MlpAllActivations) {
  for (nn::Activation act :
       {nn::Activation::kRelu, nn::Activation::kTanh,
        nn::Activation::kSigmoid}) {
    Rng rng(11 + static_cast<std::uint64_t>(act));
    auto model = nn::build_model(mlp_spec(act), rng);
    const std::int64_t batch = 3;
    const Tensor x = Tensor::randn({batch, 6}, rng);
    expect_model_gradcheck(*model, x, labels_for(batch, 3));
  }
}

TEST(ModelGradCheck, ImageCnnReluAndTanh) {
  // Conv2d + AvgPool2d + Flatten + Linear, the paper's image model.
  for (nn::Activation act : {nn::Activation::kRelu, nn::Activation::kTanh}) {
    Rng rng(23 + static_cast<std::uint64_t>(act));
    auto model = nn::build_model(cnn_spec(act), rng);
    const std::int64_t batch = 2;
    const Tensor x = Tensor::randn({batch, 8, 8, 1}, rng);
    // Every conv1 weight feeds 64 positions x 2 images worth of relu
    // pre-activations, so perturbations frequently cross a kink; allow
    // a larger (but still bounded) non-smooth fraction for relu.
    const int max_skip_percent = act == nn::Activation::kRelu ? 25 : 5;
    expect_model_gradcheck(*model, x, labels_for(batch, 3), 1e-2f, 6e-3f,
                           6e-2f, max_skip_percent);
  }
}

TEST(ModelGradCheck, MaxPoolDropoutInputScaleStack) {
  // The layer types the zoo models do not cover: InputScale, MaxPool2d
  // and (eval-mode) Dropout, stacked with a conv and a linear head.
  Rng rng(31);
  Sequential model;
  model.emplace<nn::InputScale>(/*shift=*/-0.5f, /*scale=*/2.0f);
  model.emplace<nn::Conv2d>(/*in_channels=*/2, /*out_channels=*/3,
                            /*kernel=*/3, /*stride=*/1, /*pad=*/1, rng);
  model.emplace<nn::ActivationLayer>(nn::Activation::kTanh);
  model.emplace<nn::MaxPool2d>(/*kernel=*/2);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Dropout>(/*p=*/0.3, /*seed=*/5);
  model.emplace<nn::Linear>(3 * 2 * 2, 3, rng);
  // Eval mode: dropout is the identity, so the loss is deterministic
  // and finite differences are meaningful.
  model.set_training(false);
  ASSERT_TRUE(nn::per_example_supported(model));
  const std::int64_t batch = 2;
  const Tensor x = Tensor::randn({batch, 4, 4, 2}, rng);
  expect_model_gradcheck(model, x, labels_for(batch, 3));
}

TEST(ModelGradCheck, SlicedEngineAgreesToo) {
  // The sliced fallback engine goes through the same check on one
  // architecture, pinning all three gradient paths to the same truth.
  Rng rng(47);
  auto model = nn::build_model(mlp_spec(nn::Activation::kTanh), rng);
  const std::int64_t batch = 2;
  const Tensor x = Tensor::randn({batch, 6}, rng);
  const std::vector<std::int64_t> labels = labels_for(batch, 3);
  const TensorList analytic = nn::compute_gradients(*model, x, labels);
  const TensorList sliced_mean =
      nn::compute_per_example_gradients_sliced(*model, x, labels, nullptr)
          .mean();
  ASSERT_EQ(analytic.size(), sliced_mean.size());
  for (std::size_t p = 0; p < analytic.size(); ++p) {
    for (std::int64_t i = 0; i < analytic[p].numel(); ++i) {
      EXPECT_NEAR(analytic[p].at(i), sliced_mean[p].at(i), 1e-5)
          << "param " << p << " element " << i;
    }
  }
}

}  // namespace
}  // namespace fedcl
