#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/accounting.h"
#include "core/policy.h"

namespace fedcl::core {
namespace {

using tensor::Tensor;

TensorList sample_update() {
  // Two layer groups with norms 10 and 1.
  return {Tensor::full({100}, 1.0f), Tensor::full({4}, 0.5f)};
}

ParamGroups sample_groups() { return {{0}, {1}}; }

TEST(NonPrivatePolicy, AllHooksAreNoops) {
  NonPrivatePolicy policy;
  Rng rng(1);
  TensorList u = sample_update();
  TensorList before = tensor::list::clone(u);
  policy.sanitize_per_example(u, sample_groups(), 0, rng);
  policy.sanitize_client_update(u, sample_groups(), 0, rng);
  policy.sanitize_at_server(u, sample_groups(), 0, rng);
  EXPECT_TRUE(tensor::list::allclose(u, before));
  EXPECT_FALSE(policy.needs_per_example_gradients());
  EXPECT_EQ(policy.name(), "non-private");
}

TEST(FedSdpPolicy, ClipsAndNoisesClientUpdate) {
  FedSdpPolicy policy(/*clipping_bound=*/2.0, /*noise_scale=*/1.0);
  Rng rng(2);
  TensorList u = sample_update();
  policy.sanitize_client_update(u, sample_groups(), 0, rng);
  // Layer 0 was clipped from norm 10 to 2, then got noise with stddev
  // sigma*C = 2 — the result cannot still be the constant vector.
  float first = u[0].at(0);
  bool varies = false;
  for (std::int64_t i = 1; i < u[0].numel(); ++i) {
    if (u[0].at(i) != first) varies = true;
  }
  EXPECT_TRUE(varies);
  EXPECT_FALSE(policy.needs_per_example_gradients());
  EXPECT_EQ(policy.name(), "Fed-SDP");
}

TEST(FedSdpPolicy, ClientNoiseVariantLeavesServerAlone) {
  FedSdpPolicy policy(2.0, 1.0, /*noise_at_server=*/false);
  Rng rng(3);
  TensorList u = sample_update();
  TensorList before = tensor::list::clone(u);
  policy.sanitize_at_server(u, sample_groups(), 0, rng);
  EXPECT_TRUE(tensor::list::allclose(u, before));
}

TEST(FedSdpPolicy, ServerNoiseVariant) {
  FedSdpPolicy policy(2.0, 1.0, /*noise_at_server=*/true);
  Rng rng(4);
  TensorList u = sample_update();
  // Client side only clips (no noise): norms bounded by C per group.
  policy.sanitize_client_update(u, sample_groups(), 0, rng);
  EXPECT_LE(u[0].l2_norm(), 2.0f + 1e-4f);
  EXPECT_NEAR(u[1].l2_norm(), 1.0f, 1e-5);  // below bound: untouched
  // Deterministic (no randomness consumed yet): same rng still fresh.
  TensorList clipped = tensor::list::clone(u);
  policy.sanitize_at_server(u, sample_groups(), 0, rng);
  EXPECT_FALSE(tensor::list::allclose(u, clipped));  // server adds noise
}

TEST(FedCdpPolicy, ClipsAndNoisesPerExample) {
  FedCdpPolicy policy(/*clipping_bound=*/2.0, /*noise_scale=*/0.5);
  EXPECT_TRUE(policy.needs_per_example_gradients());
  EXPECT_EQ(policy.name(), "Fed-CDP");
  Rng rng(5);
  TensorList g = sample_update();
  policy.sanitize_per_example(g, sample_groups(), 0, rng);
  // Norm can exceed C only by the noise contribution (stddev 1.0 over
  // 100 coords -> norm ~10); what matters is the signal was clipped:
  // remove noise by re-running with sigma=0 and compare.
  FedCdpPolicy noiseless(2.0, 0.0);
  TensorList g2 = sample_update();
  Rng rng2(6);
  noiseless.sanitize_per_example(g2, sample_groups(), 0, rng2);
  EXPECT_NEAR(g2[0].l2_norm(), 2.0f, 1e-4);
  EXPECT_NEAR(g2[1].l2_norm(), 1.0f, 1e-5);
}

TEST(FedCdpPolicy, ZeroNoiseIsPureClipping) {
  FedCdpPolicy policy(3.0, 0.0);
  Rng rng(7);
  TensorList g = {Tensor::full({9}, 2.0f)};  // norm 6
  policy.sanitize_per_example(g, {{0}}, 0, rng);
  EXPECT_NEAR(g[0].l2_norm(), 3.0f, 1e-5);
  EXPECT_NEAR(g[0].at(0), 1.0f, 1e-6);  // direction preserved
}

TEST(FedCdpPolicy, DecayScheduleTracksRounds) {
  auto policy = make_fed_cdp_decay(/*total_rounds=*/100, 6.0, 2.0, 0.0);
  EXPECT_EQ(policy->name(), "Fed-CDP(decay)");
  EXPECT_DOUBLE_EQ(policy->clipping_bound_at(0), 6.0);
  EXPECT_DOUBLE_EQ(policy->clipping_bound_at(99), 2.0);
  // Sanitization at a late round uses the decayed bound.
  Rng rng(8);
  TensorList g = {Tensor::full({100}, 1.0f)};  // norm 10
  policy->sanitize_per_example(g, {{0}}, 99, rng);
  EXPECT_NEAR(g[0].l2_norm(), 2.0f, 1e-4);
}

TEST(FedCdpPolicy, DecayReducesNoiseVariance) {
  // S tracks C(t), so late rounds get less noise (Section VI).
  auto policy = make_fed_cdp_decay(100, 6.0, 2.0, /*sigma=*/1.0);
  auto noise_norm_at = [&](std::int64_t round) {
    Rng rng(9);
    TensorList g = {Tensor::zeros({4000})};
    policy->sanitize_per_example(g, {{0}}, round, rng);
    return g[0].l2_norm();
  };
  // stddev sigma*C: 6 early vs 2 late; norms scale accordingly.
  EXPECT_GT(noise_norm_at(0), 2.5 * noise_norm_at(99));
}

TEST(PolicyFactories, PaperDefaults) {
  auto sdp = make_fed_sdp();
  EXPECT_DOUBLE_EQ(sdp->clipping_bound(), 4.0);
  EXPECT_DOUBLE_EQ(sdp->noise_scale(), 6.0);
  auto cdp = make_fed_cdp();
  EXPECT_DOUBLE_EQ(cdp->clipping_bound_at(0), 4.0);
  EXPECT_DOUBLE_EQ(cdp->noise_scale(), 6.0);
  EXPECT_EQ(make_non_private()->name(), "non-private");
}

// ---- accounting bridge ----

TEST(Accounting, SamplingRatesAndSteps) {
  FlPrivacySetup setup{.total_examples = 50000,
                       .batch_size = 5,
                       .clients_per_round = 100,
                       .total_clients = 1000,
                       .local_iterations = 100,
                       .rounds = 100,
                       .noise_scale = 6.0,
                       .delta = 1e-5};
  PrivacyReport report = account_privacy(setup);
  EXPECT_NEAR(report.instance_q, 5.0 * 100 / 50000.0, 1e-12);  // 0.01
  EXPECT_NEAR(report.client_q, 0.1, 1e-12);
  EXPECT_EQ(report.instance_steps, 10000);
  EXPECT_EQ(report.client_steps, 100);
  EXPECT_TRUE(report.sampling_condition_ok);  // 0.01 < 1/96
}

TEST(Accounting, BillboardLemmaClientEqualsInstance) {
  FlPrivacySetup setup{.total_examples = 10000,
                       .batch_size = 4,
                       .clients_per_round = 10,
                       .total_clients = 100,
                       .local_iterations = 10,
                       .rounds = 20};
  PrivacyReport report = account_privacy(setup);
  EXPECT_DOUBLE_EQ(report.fed_cdp_client_epsilon,
                   report.fed_cdp_instance_epsilon);
  EXPECT_GT(report.fed_cdp_instance_epsilon, 0.0);
}

TEST(Accounting, FedCdpL1SpendsLessThanL100) {
  FlPrivacySetup setup{.total_examples = 50000,
                       .batch_size = 5,
                       .clients_per_round = 100,
                       .total_clients = 1000,
                       .local_iterations = 1,
                       .rounds = 100};
  PrivacyReport l1 = account_privacy(setup);
  setup.local_iterations = 100;
  PrivacyReport l100 = account_privacy(setup);
  EXPECT_LT(l1.fed_cdp_instance_epsilon, l100.fed_cdp_instance_epsilon);
  // Fed-SDP accounting is unaffected by L (Table VI).
  EXPECT_DOUBLE_EQ(l1.fed_sdp_client_epsilon, l100.fed_sdp_client_epsilon);
}

TEST(Accounting, PaperTable6ClosedFormValues) {
  // MNIST: q=0.01, sigma=6, delta=1e-5, T=100 rounds.
  FlPrivacySetup setup{.total_examples = 50000,
                       .batch_size = 5,
                       .clients_per_round = 100,
                       .total_clients = 1000,
                       .local_iterations = 100,
                       .rounds = 100,
                       .noise_scale = 6.0,
                       .delta = 1e-5};
  PrivacyReport report = account_privacy(setup);
  // Paper Table VI: Fed-CDP L=100 -> 0.8227 (closed form, c2 ~= 1.5).
  EXPECT_NEAR(report.fed_cdp_instance_epsilon_closed_form, 0.8227, 0.06);
  setup.local_iterations = 1;
  report = account_privacy(setup);
  // Paper: Fed-CDP L=1 -> 0.0845.
  EXPECT_NEAR(report.fed_cdp_instance_epsilon_closed_form, 0.0845, 0.006);
}

TEST(Accounting, Validation) {
  FlPrivacySetup bad;
  bad.total_examples = 0;
  EXPECT_THROW(account_privacy(bad), Error);
  FlPrivacySetup too_big{.total_examples = 10,
                         .batch_size = 5,
                         .clients_per_round = 10,
                         .total_clients = 10,
                         .local_iterations = 1,
                         .rounds = 1};
  EXPECT_THROW(account_privacy(too_big), Error);  // B*Kt > N
}

TEST(Accounting, FedSdpNoInstanceLevel) {
  EXPECT_FALSE(PrivacyReport::fed_sdp_supports_instance_level);
}

}  // namespace
}  // namespace fedcl::core
