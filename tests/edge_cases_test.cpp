// Edge cases and contract checks across modules: the inputs a careless
// (or adversarial) caller could produce.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "core/policy.h"
#include "data/synthetic.h"
#include "dp/accountant.h"
#include "fl/client.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "tensor/ops.h"

namespace fedcl {
namespace {

namespace o = tensor::ops;
using tensor::Shape;
using tensor::Tensor;
using tensor::Var;

// ---- autograd edge cases ----

TEST(AutogradEdge, BackwardOnLeafScalar) {
  Var x(Tensor::scalar(5.0f), true);
  tensor::Gradients g = tensor::backward(x);
  EXPECT_TRUE(g.contains(x));
  EXPECT_FLOAT_EQ(g.of(x).value().item(), 1.0f);
}

TEST(AutogradEdge, NestedGradModeGuards) {
  Var x(Tensor::ones({2}), true);
  {
    tensor::GradModeGuard off(false);
    EXPECT_FALSE(tensor::grad_mode_enabled());
    {
      tensor::GradModeGuard on(true);
      EXPECT_TRUE(tensor::grad_mode_enabled());
      EXPECT_TRUE(o::mul_scalar(x, 2.0f).requires_grad());
    }
    EXPECT_FALSE(tensor::grad_mode_enabled());
    EXPECT_FALSE(o::mul_scalar(x, 2.0f).requires_grad());
  }
  EXPECT_TRUE(tensor::grad_mode_enabled());
}

TEST(AutogradEdge, LongChainDoesNotOverflowStack) {
  // The topo sort is iterative; a 20k-op chain must not recurse.
  Var x(Tensor::scalar(1.0f), true);
  Var y = x;
  for (int i = 0; i < 20000; ++i) y = o::add_scalar(y, 1e-6f);
  tensor::Gradients g = tensor::backward(y);
  EXPECT_FLOAT_EQ(g.of(x).value().item(), 1.0f);
}

TEST(AutogradEdge, WideFanOutAccumulates) {
  Var x(Tensor::scalar(2.0f), true);
  Var sum;
  for (int i = 0; i < 64; ++i) {
    Var term = o::mul_scalar(x, static_cast<float>(i));
    sum = sum.defined() ? o::add(sum, term) : term;
  }
  tensor::Gradients g = tensor::backward(sum);
  EXPECT_FLOAT_EQ(g.of(x).value().item(), 63.0f * 64.0f / 2.0f);
}

TEST(AutogradEdge, DetachBlocksGradientFlow) {
  Var x(Tensor::scalar(3.0f), true);
  Var y = o::mul(x.detach(), x);  // only one path carries gradient
  tensor::Gradients g = tensor::backward(y);
  EXPECT_FLOAT_EQ(g.of(x).value().item(), 3.0f);  // not 6
}

// ---- loss properties ----

TEST(LossEdge, CrossEntropyShiftInvariant) {
  Rng rng(1);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::int64_t> labels{0, 2, 4};
  const float base =
      nn::softmax_cross_entropy(Var(logits, false), labels).value().item();
  Tensor shifted = tensor::add_scalar(logits, 100.0f);
  const float moved =
      nn::softmax_cross_entropy(Var(shifted, false), labels).value().item();
  EXPECT_NEAR(base, moved, 1e-4);
}

TEST(LossEdge, CrossEntropyNonNegativeAndStable) {
  // Extreme logits must not produce NaN/inf.
  Tensor logits = Tensor::from_vector({2, 2}, {1e4f, -1e4f, -1e4f, 1e4f});
  Var loss = nn::softmax_cross_entropy(Var(logits, false), {0, 1});
  EXPECT_TRUE(std::isfinite(loss.value().item()));
  EXPECT_GE(loss.value().item(), 0.0f);
}

TEST(LossEdge, LabelOutOfRangeThrows) {
  Tensor logits = Tensor::zeros({1, 3});
  EXPECT_THROW(nn::softmax_cross_entropy(Var(logits, false), {3}), Error);
  EXPECT_THROW(nn::softmax_cross_entropy(Var(logits, false), {-1}), Error);
  EXPECT_THROW(nn::softmax_cross_entropy(Var(logits, false), {0, 1}),
               Error);  // label count mismatch
}

// ---- tensor contracts ----

TEST(TensorEdge, ZeroDimensionTensor) {
  Tensor t({0, 4});
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.defined());
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(TensorEdge, UndefinedTensorAccessThrows) {
  Tensor t;
  EXPECT_THROW(t.data(), Error);
  EXPECT_THROW(t.clone(), Error);
  EXPECT_THROW(Var(Tensor(), false), Error);
}

TEST(TensorEdge, NegativeShapeRejected) {
  EXPECT_THROW(Tensor({2, -1}), Error);
}

// ---- policy contracts under extreme parameters ----

TEST(PolicyEdge, FedCdpZeroGradientStaysZeroWithoutNoise) {
  core::FedCdpPolicy policy(4.0, 0.0);
  Rng rng(2);
  core::TensorList g = {Tensor::zeros({10})};
  policy.sanitize_per_example(g, {{0}}, 0, rng);
  EXPECT_FLOAT_EQ(g[0].l2_norm(), 0.0f);
}

TEST(PolicyEdge, FedSdpHugeNoiseScaleStillFiniteUpdate) {
  core::FedSdpPolicy policy(1.0, 1e6);
  Rng rng(3);
  core::TensorList u = {Tensor::ones({16})};
  policy.sanitize_client_update(u, {{0}}, 0, rng);
  for (std::int64_t i = 0; i < u[0].numel(); ++i) {
    EXPECT_TRUE(std::isfinite(u[0].at(i)));
  }
}

TEST(PolicyEdge, DecayPolicyRejectsNegativeRound) {
  auto policy = core::make_fed_cdp_decay(10);
  EXPECT_THROW(policy->clipping_bound_at(-1), Error);
}

// ---- accountant numeric robustness ----

TEST(AccountantEdge, TinySamplingRateStaysFinite) {
  dp::MomentsAccountant acc(1e-9, 6.0);
  const double eps = acc.epsilon(1000000, 1e-5);
  EXPECT_TRUE(std::isfinite(eps));
  EXPECT_GE(eps, 0.0);
  // The classic conversion floors at log(1/delta)/(max_order - 1)
  // ~= 0.045 for delta=1e-5 and orders up to 256, no matter how small
  // the per-step RDP is.
  EXPECT_LT(eps, 0.05);
}

TEST(AccountantEdge, HugeStepCountStaysFinite) {
  dp::MomentsAccountant acc(0.01, 6.0);
  EXPECT_TRUE(std::isfinite(acc.epsilon(100000000, 1e-5)));
}

TEST(AccountantEdge, ZeroStepsIsFree) {
  dp::MomentsAccountant acc(0.01, 6.0);
  EXPECT_DOUBLE_EQ(acc.epsilon(0, 1e-5), 0.0);
}

// ---- synthetic data degenerate configs ----

TEST(SyntheticEdge, SingleExamplePerClass) {
  data::SyntheticSpec spec{.example_shape = {4}, .classes = 3, .count = 3,
                           .clamp01 = false};
  Rng rng(4);
  data::Dataset ds = data::generate_synthetic(spec, rng);
  EXPECT_EQ(ds.size(), 3);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(ds.indices_of_class(c).size(), 1u);
  }
}

TEST(SyntheticEdge, ZeroNoiseEqualsPrototype) {
  data::SyntheticSpec spec{.example_shape = {4, 4, 1},
                           .classes = 2,
                           .count = 2,
                           .noise = 0.0f};
  Rng rng(5);
  data::Dataset ds = data::generate_synthetic(spec, rng);
  Tensor proto = data::class_prototype(spec, 0);
  data::Batch e = ds.example(0);
  EXPECT_TRUE(tensor::allclose(e.x.reshape(proto.shape()), proto));
}

TEST(SyntheticEdge, InvalidSpecsThrow) {
  Rng rng(6);
  data::SyntheticSpec no_count{.example_shape = {4}, .classes = 2,
                               .count = 0};
  EXPECT_THROW(data::generate_synthetic(no_count, rng), Error);
  data::SyntheticSpec one_class{.example_shape = {4}, .classes = 1,
                                .count = 4};
  EXPECT_THROW(data::generate_synthetic(one_class, rng), Error);
}

// ---- client under single-example datasets ----

TEST(ClientEdge, SingleExampleClientTrains) {
  Rng rng(7);
  data::SyntheticSpec spec{.example_shape = {4}, .classes = 2, .count = 2,
                           .clamp01 = false};
  Rng drng = rng.fork("d");
  auto ds = std::make_shared<data::Dataset>(
      data::generate_synthetic(spec, drng));
  data::ClientData cd(ds, {0});  // one example
  nn::ModelSpec ms{.kind = nn::ModelSpec::Kind::kMlp, .in_features = 4,
                   .classes = 2, .hidden1 = 3, .hidden2 = 3};
  Rng mrng = rng.fork("m");
  auto model = nn::build_model(ms, mrng);
  fl::LocalTrainConfig local{.local_iterations = 2,
                             .batch_size = 3,  // > data size: resampled
                             .learning_rate = 0.1};
  fl::Client client(0, cd, local);
  core::FedCdpPolicy policy(4.0, 0.1);
  Rng crng = rng.fork("c");
  fl::ClientRoundOutcome outcome =
      client.run_round(*model, model->weights(), policy, 0, crng);
  EXPECT_GT(tensor::list::l2_norm(outcome.update.delta), 0.0);
}

}  // namespace
}  // namespace fedcl
