// Chaos soak: every fault type at aggressive rates for 50+ rounds,
// through both round engines, with and without the retry budget. The
// point is not accuracy — it is that the engines survive sustained
// abuse without crashing, without poisoning the model with non-finite
// weights, and without losing track of a single fault: the disposition
// ledger (expired / screened / retried / accepted-stale) must balance
// against the injection counters exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/trainer.h"

namespace fedcl::fl {
namespace {

FlExperimentConfig soak_config(bool async_mode, int max_attempts,
                               std::uint64_t seed) {
  FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer,
                                        BenchScale::kSmoke);
  config.total_clients = 6;
  config.clients_per_round = 3;
  config.rounds = 50;
  config.min_reporting = 1;
  config.seed = seed;
  config.async_mode = async_mode;
  config.retry.max_attempts = max_attempts;
  // All five fault types, half of all dispatches faulty.
  config.faults.fault_rate = 0.5;
  config.faults.crash_weight = 1.0;
  config.faults.straggler_weight = 1.0;
  config.faults.corrupt_weight = 1.0;
  config.faults.bit_flip_weight = 1.0;
  config.faults.stale_round_weight = 1.0;
  return config;
}

void assert_survived(const FlRunResult& result,
                     const FlExperimentConfig& config) {
  // The run completed: one history record per round, and every round is
  // accounted as either applied or dropped.
  ASSERT_EQ(result.history.size(),
            static_cast<std::size_t>(config.effective_rounds()));
  EXPECT_EQ(result.completed_rounds + result.dropped_rounds,
            config.effective_rounds());

  // The model never absorbed a poisoned update: every weight finite.
  for (const auto& t : result.final_weights) {
    const float* p = t.data();
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p[i])) << "non-finite weight at " << i;
    }
  }

  // Under this much injection some faults must actually have fired.
  EXPECT_GT(result.total_failures.injected_total(), 0);

  // The disposition ledger balances exactly: every injected fault
  // instance resolved to expired, screened, retried, or accepted-stale
  // — regardless of dropout, retries, or which engine ran.
  EXPECT_EQ(result.total_failures.injected_total(),
            result.total_failures.faults_resolved_total())
      << "expired=" << result.total_failures.fault_expired
      << " screened=" << result.total_failures.fault_screened
      << " retried=" << result.total_failures.fault_retried
      << " accepted_stale=" << result.total_failures.fault_accepted_stale;

  // Per-round stats sum to the run totals (accumulate() drift check).
  // One sanctioned exception: in async mode, arrivals still pending
  // when the run ends are expired by the end-of-run drain — those
  // resolutions happen after the last round, so they appear in the run
  // totals but in no round record.
  RoundFailureStats summed;
  for (const auto& record : result.history) {
    summed.accumulate(record.failures);
  }
  EXPECT_EQ(summed.injected_total(), result.total_failures.injected_total());
  EXPECT_EQ(summed.rejected_total(), result.total_failures.rejected_total());
  EXPECT_EQ(summed.retry_attempts, result.total_failures.retry_attempts);
  const std::int64_t drained_expired =
      result.total_failures.fault_expired - summed.fault_expired;
  EXPECT_GE(drained_expired, 0);
  EXPECT_EQ(summed.faults_resolved_total() + drained_expired,
            result.total_failures.faults_resolved_total())
      << "disposition drift beyond the end-of-run drain";
  EXPECT_EQ(summed.fault_screened, result.total_failures.fault_screened);
  EXPECT_EQ(summed.fault_retried, result.total_failures.fault_retried);
  EXPECT_EQ(summed.fault_accepted_stale,
            result.total_failures.fault_accepted_stale);
}

TEST(ChaosSoak, SyncEngineNoRetries) {
  FlExperimentConfig config = soak_config(/*async=*/false,
                                          /*max_attempts=*/1, 1301);
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
  EXPECT_EQ(result.total_failures.retry_attempts, 0);
  EXPECT_EQ(result.total_failures.fault_retried, 0);
}

TEST(ChaosSoak, SyncEngineWithRetriesAndDegradation) {
  FlExperimentConfig config = soak_config(/*async=*/false,
                                          /*max_attempts=*/3, 1302);
  config.min_reporting = 2;
  config.reduced_min_reporting = 1;
  config.client_dropout = 0.1;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
  EXPECT_GT(result.total_failures.retry_attempts, 0);
  // The reduced-quorum tier saved at least one round from a skip, and
  // its widening factor was surfaced.
  if (result.reduced_quorum_rounds > 0) {
    EXPECT_GE(result.max_noise_widening, 1.0);
    EXPECT_EQ(result.total_failures.reduced_quorum_rounds,
              result.reduced_quorum_rounds);
  }
}

TEST(ChaosSoak, AsyncEngineNoRetries) {
  FlExperimentConfig config = soak_config(/*async=*/true,
                                          /*max_attempts=*/1, 1303);
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
  EXPECT_GT(result.async_applies, 0);
}

TEST(ChaosSoak, AsyncEngineWithRetriesAndDropout) {
  FlExperimentConfig config = soak_config(/*async=*/true,
                                          /*max_attempts=*/3, 1304);
  config.client_dropout = 0.1;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
  EXPECT_GT(result.async_applies, 0);
  EXPECT_GT(result.total_failures.retry_attempts, 0);
  // Stragglers under sustained load must have been folded in late
  // rather than silently dropped.
  EXPECT_GT(result.total_failures.fault_accepted_stale, 0);
}

TEST(ChaosSoak, StreamingEngineVirtualizedFederation) {
  // The virtualized scale path: a federation three orders of magnitude
  // larger than the cohort (clients materialized on demand, never
  // stored), updates folded into the O(log K) accumulator as they
  // arrive, with retries on. Survival means the same disposition
  // ledger balance as the other engines PLUS bounded accumulator
  // occupancy — the round never regrows the K-sized buffer it
  // replaced.
  FlExperimentConfig config = soak_config(/*async=*/false,
                                          /*max_attempts=*/3, 1306);
  config.total_clients = 10000;
  config.clients_per_round = 40;
  config.min_reporting = 2;
  config.reduced_min_reporting = 1;
  config.client_dropout = 0.1;
  config.streaming_aggregation = true;
  config.tree_fan_out = 8;
  core::NonPrivatePolicy policy;
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
  EXPECT_GT(result.total_failures.retry_attempts, 0);
  // Occupancy bound: every reducer (edge over <= fan_out leaves, root
  // over the round's blocks) stays within floor(log2(units)) + 1 for
  // the worst-case unit count of a round (every dispatch retried).
  const std::int64_t worst_units =
      config.clients_per_round * config.retry.max_attempts;
  std::int64_t bound = 1;
  for (std::int64_t v = worst_units; v > 1; v >>= 1) ++bound;
  EXPECT_GT(result.max_stream_levels, 0);
  EXPECT_LE(result.max_stream_levels, bound);
}

TEST(ChaosSoak, StreamingEngineUnderDpPolicySurvives) {
  // Server-side sanitization runs per update inside the streaming
  // fold (its own per-(round, client) noise stream) — soak it with
  // real noise to catch ordering or double-sanitization bugs.
  FlExperimentConfig config = soak_config(/*async=*/false,
                                          /*max_attempts=*/2, 1307);
  config.total_clients = 10000;
  config.clients_per_round = 40;
  config.streaming_aggregation = true;
  config.tree_fan_out = 8;
  core::FedSdpPolicy policy(/*clip=*/4.0, /*noise_scale=*/0.5,
                            /*noise_at_server=*/true);
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
}

TEST(ChaosSoak, AsyncUnderDpPolicySurvives) {
  // The streaming fold runs the policy's server-side hook per update;
  // soak it with actual server-side noise to catch ordering or
  // double-sanitization bugs the no-op policy cannot see.
  FlExperimentConfig config = soak_config(/*async=*/true,
                                          /*max_attempts=*/2, 1305);
  config.rounds = 50;
  core::FedSdpPolicy policy(/*clip=*/4.0, /*noise_scale=*/0.5,
                            /*noise_at_server=*/true);
  FlRunResult result = run_experiment(config, policy);
  assert_survived(result, config);
}

}  // namespace
}  // namespace fedcl::fl
