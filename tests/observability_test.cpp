// Tests for the observability layer: run manifests (run_info), the
// JSONL meta header, the live /metrics HTTP exporter, and the
// metrics-documentation drift guard — every instrument the stack emits
// in a representative run must be documented in docs/METRICS.md and
// listed in docs/telemetry.schema.json's x-metric-names inventory.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "attack/leakage_eval.h"
#include "common/env.h"
#include "common/json.h"
#include "common/metrics_http.h"
#include "common/run_info.h"
#include "common/telemetry.h"
#include "core/policy.h"
#include "data/benchmarks.h"
#include "fl/trainer.h"

namespace fedcl {
namespace {

#ifndef FEDCL_SOURCE_DIR
#define FEDCL_SOURCE_DIR "."
#endif

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Run manifest

TEST(RunInfo, CapturesHostSeedAndScale) {
  runinfo::RunInfo info = runinfo::current();
  EXPECT_FALSE(info.hostname.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_EQ(info.seed, experiment_seed());
  EXPECT_GE(info.hardware_threads, 1);
  EXPECT_GE(info.compute_threads, 1);
}

TEST(RunInfo, JsonShapeMatchesSchema) {
  json::Value v = runinfo::to_json();
  for (const char* key : {"git", "build", "host", "seed", "scale", "argv"}) {
    EXPECT_NE(v.find(key), nullptr) << "run manifest missing " << key;
  }
  const json::Value* git = v.find("git");
  ASSERT_NE(git, nullptr);
  ASSERT_NE(git->find("sha"), nullptr);
  EXPECT_NE(git->find("dirty"), nullptr);
  EXPECT_FALSE(git->find("sha")->as_string().empty());
  ASSERT_NE(v.find("host"), nullptr);
  EXPECT_NE(v.find("host")->find("name"), nullptr);
  ASSERT_NE(v.find("build"), nullptr);
  EXPECT_NE(v.find("build")->find("compiler"), nullptr);
}

TEST(RunInfo, JsonlMetaLineCarriesRunManifest) {
  std::ostringstream out;
  { telemetry::JsonlSink sink(&out); }
  std::istringstream lines(out.str());
  std::string first;
  ASSERT_TRUE(std::getline(lines, first));
  json::Value meta;
  std::string error;
  ASSERT_TRUE(json::parse(first, meta, &error)) << error;
  ASSERT_NE(meta.find("type"), nullptr);
  EXPECT_EQ(meta.find("type")->as_string(), "meta");
  ASSERT_NE(meta.find("schema"), nullptr);
  EXPECT_EQ(meta.find("schema")->as_string(), "fedcl-telemetry-v1");
  const json::Value* run = meta.find("run");
  ASSERT_NE(run, nullptr);
  ASSERT_NE(run->find("git"), nullptr);
  EXPECT_NE(run->find("git")->find("sha"), nullptr);
  ASSERT_NE(run->find("seed"), nullptr);
  EXPECT_EQ(run->find("seed")->as_int(),
            static_cast<std::int64_t>(experiment_seed()));
}

// ---------------------------------------------------------------------------
// Live /metrics exporter

std::string http_get(int port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = method + " " + target +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(MetricsHttp, ServesByteIdenticalPrometheusText) {
  telemetry::Registry registry;
  registry.counter("fl.client.rounds_total", {{"engine", "batched"}}).add(7);
  registry.gauge("dp.epsilon", {{"level", "instance"}}).set(0.25);
  registry.histogram("fl.client.grad_norm", telemetry::norm_buckets())
      .observe(1.5);

  telemetry::MetricsHttpServer server(registry);
  std::string error;
  ASSERT_TRUE(server.start(0, &error)) << error;
  ASSERT_GT(server.port(), 0);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  // The exporter's body must be byte-identical to the --telemetry-prom
  // dump for the same registry state.
  EXPECT_EQ(body_of(response), registry.prometheus_text());

  // Scrape again after the state changed: the server reads live state.
  registry.counter("fl.client.rounds_total", {{"engine", "batched"}}).add(1);
  EXPECT_EQ(body_of(http_get(server.port(), "/metrics")),
            registry.prometheus_text());

  EXPECT_NE(http_get(server.port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/metrics", "POST").find("405"),
            std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Documentation drift

std::set<std::string> emitted_names(const telemetry::TelemetrySnapshot& s) {
  std::set<std::string> names;
  for (const auto& c : s.counters) names.insert(c.name);
  for (const auto& g : s.gauges) names.insert(g.name);
  for (const auto& h : s.histograms) names.insert(h.name);
  for (const auto& p : s.series) names.insert(p.name);
  return names;
}

TEST(MetricsDoc, EveryEmittedNameIsDocumented) {
  // A representative run that exercises training, DP clipping, faults,
  // screening, eval, and the attack harness.
  fl::FlExperimentConfig config;
  config.bench = data::benchmark_config(data::BenchmarkId::kCancer);
  config.total_clients = 4;
  config.clients_per_round = 2;
  config.rounds = 3;
  config.eval_every = 1;
  config.seed = 42;
  config.faults.fault_rate = 0.4;
  config.screening.norm_outlier_factor = 3.0;
  auto policy = core::make_fed_cdp(4.0, 0.5);
  fl::FlRunResult result = fl::run_experiment(config, *policy);

  attack::LeakageExperimentConfig lcfg;
  lcfg.bench = config.bench;
  lcfg.clients = 1;
  lcfg.seed = 42;
  lcfg.attack.max_iterations = 3;
  attack::evaluate_leakage(lcfg, *policy);

  // The global registry now holds the union of both harnesses'
  // instruments (run_experiment resets it at entry, the attack
  // harness appends).
  std::set<std::string> names =
      emitted_names(telemetry::global_registry().snapshot());
  for (const auto& n : emitted_names(result.telemetry)) names.insert(n);
  ASSERT_FALSE(names.empty());

  const std::string source_dir = FEDCL_SOURCE_DIR;
  const std::string metrics_md =
      read_file_or_die(source_dir + "/docs/METRICS.md");
  const std::string schema_text =
      read_file_or_die(source_dir + "/docs/telemetry.schema.json");
  json::Value schema;
  std::string error;
  ASSERT_TRUE(json::parse(schema_text, schema, &error)) << error;
  const json::Value* listed = schema.find("x-metric-names");
  ASSERT_NE(listed, nullptr);
  std::set<std::string> inventory;
  for (const json::Value& item : listed->elements()) {
    inventory.insert(item.as_string());
  }

  for (const std::string& name : names) {
    EXPECT_NE(metrics_md.find(name), std::string::npos)
        << "metric '" << name << "' is emitted but not documented in "
        << "docs/METRICS.md — add it to the reference tables";
    EXPECT_TRUE(inventory.count(name) > 0)
        << "metric '" << name << "' is emitted but missing from "
        << "x-metric-names in docs/telemetry.schema.json";
  }
}

}  // namespace
}  // namespace fedcl
