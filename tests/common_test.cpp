#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace fedcl {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    FEDCL_CHECK(1 == 2) << "custom detail " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Check, ComparisonMacros) {
  EXPECT_THROW(FEDCL_CHECK_EQ(1, 2), Error);
  EXPECT_THROW(FEDCL_CHECK_LT(2, 1), Error);
  EXPECT_NO_THROW(FEDCL_CHECK_LE(1, 1));
  EXPECT_NO_THROW(FEDCL_CHECK_GE(2, 1));
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependence) {
  Rng root(7);
  Rng c0 = root.fork("client", 0);
  Rng c1 = root.fork("client", 1);
  Rng d0 = root.fork("data", 0);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
  EXPECT_NE(root.fork("client", 0).next_u64(), d0.next_u64());
  // Fork does not consume parent state.
  Rng root2(7);
  EXPECT_EQ(root.next_u64(), root2.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  double m = sum / n;
  double var = sq / n - m * m;
  EXPECT_NEAR(m, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(4);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double m = sum / n;
  double var = sq / n - m * m;
  EXPECT_NEAR(m, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(6);
  auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  auto s2 = rng.sample_without_replacement(100, 5);
  EXPECT_EQ(s2.size(), 5u);
  std::set<std::size_t> uniq2(s2.begin(), s2.end());
  EXPECT_EQ(uniq2.size(), 5u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, SampleWithReplacement) {
  Rng rng(7);
  auto s = rng.sample_with_replacement(5, 1000);
  EXPECT_EQ(s.size(), 1000u);
  for (auto v : s) EXPECT_LT(v, 5u);
}

TEST(Rng, Shuffle) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);  // permutation
}

TEST(Stats, MeanVarMedian) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(min_of(v), 1.0);
  EXPECT_DOUBLE_EQ(max_of(v), 4.0);
  EXPECT_THROW(mean({}), Error);
}

TEST(Stats, Rmse) {
  std::vector<float> a{0.f, 0.f, 0.f};
  std::vector<float> b{3.f, 4.f, 0.f};
  EXPECT_NEAR(rmse(a, b), std::sqrt(25.0 / 3.0), 1e-6);
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Stats, Pearson) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  std::vector<double> flat{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(a, flat), 0.0);
}

TEST(Table, RendersAligned) {
  AsciiTable t("title");
  t.set_header({"a", "bbbb"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  std::string s = t.render();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_NE(s.find("| bbbb"), std::string::npos);
}

TEST(Table, Fmt) {
  EXPECT_EQ(AsciiTable::fmt(0.5, 2), "0.50");
  EXPECT_EQ(AsciiTable::fmt(1.23456, 3), "1.235");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t i) {
                          if (i == 2) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, SubmitFuture) {
  ThreadPool pool(1);
  int x = 0;
  pool.submit([&] { x = 7; }).get();
  EXPECT_EQ(x, 7);
}

TEST(ThreadPool, ExceptionWaitsForAllTasks) {
  // Regression: the old implementation rethrew the first task's
  // exception while later tasks could still be running, letting the
  // callable (and any captured state) be destroyed under them. The
  // rethrow must happen only after every task has finished.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 0) throw Error("early");
                          completed++;
                        }),
      Error);
  // All 63 non-throwing tasks ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ManyExceptionsPropagateExactlyOne) {
  ThreadPool pool(4);
  std::atomic<int> thrown{0};
  try {
    pool.parallel_for(32, [&](std::size_t) {
      thrown++;
      throw Error("each");
    });
    FAIL() << "expected an exception";
  } catch (const Error&) {
  }
  EXPECT_EQ(thrown.load(), 32);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // parallel_for called from a worker of the same pool must run inline
  // instead of enqueuing (which could deadlock a saturated pool).
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(pool.on_worker_thread());
    pool.parallel_for(8, [&](std::size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, ParallelForChunksCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_chunks(100, 7, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksRespectsGrain) {
  ThreadPool pool(8);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(20, 16, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(begin, end);
  });
  // grain 16 over 20 items allows at most ceil(20/16) = 2 chunks.
  EXPECT_LE(chunks.size(), 2u);
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) covered += e - b;
  EXPECT_EQ(covered, 20u);
}

TEST(ComputePool, SingletonIsShared) {
  ThreadPool& a = compute_pool();
  ThreadPool& b = compute_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

}  // namespace
}  // namespace fedcl
