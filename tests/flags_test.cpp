#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "common/flags.h"

namespace fedcl {
namespace {

FlagParser parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagParser(static_cast<int>(args.size()),
                    const_cast<char**>(args.data()));
}

TEST(Flags, EqualsForm) {
  FlagParser f = parse({"--name=value", "--count=7"});
  EXPECT_TRUE(f.has("name"));
  EXPECT_EQ(f.get("name"), "value");
  EXPECT_EQ(f.get_int("count", 0), 7);
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, SpaceForm) {
  FlagParser f = parse({"--rate", "0.25", "--label", "abc"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(f.get("label"), "abc");
}

TEST(Flags, BareBoolean) {
  FlagParser f = parse({"--verbose", "--attack"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.get_bool("attack", false));
  EXPECT_FALSE(f.get_bool("missing", false));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, BooleanValues) {
  FlagParser f = parse({"--a=true", "--b=false", "--c=1", "--d=no"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
  FlagParser bad = parse({"--e=maybe"});
  EXPECT_THROW(bad.get_bool("e", false), Error);
}

TEST(Flags, Positional) {
  FlagParser f = parse({"first", "--x=1", "second"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "first");
  EXPECT_EQ(f.positional()[1], "second");
}

TEST(Flags, Fallbacks) {
  FlagParser f = parse({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
}

TEST(Flags, TypeErrors) {
  FlagParser f = parse({"--n=abc", "--x=1.5.3"});
  EXPECT_THROW(f.get_int("n", 0), Error);
  EXPECT_THROW(f.get_double("x", 0.0), Error);
}

TEST(Flags, NegativeNumberAsValue) {
  FlagParser f = parse({"--offset", "-5"});
  // "-5" does not start with --, so it binds as the value.
  EXPECT_EQ(f.get_int("offset", 0), -5);
}

}  // namespace
}  // namespace fedcl
