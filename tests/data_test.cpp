#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "data/benchmarks.h"
#include "data/dataset.h"
#include "data/partition.h"
#include "data/synthetic.h"

namespace fedcl::data {
namespace {

using tensor::Shape;
using tensor::Tensor;

Dataset tiny_dataset() {
  // 6 examples, 2 features, labels 0,1,2,0,1,2.
  Tensor f = Tensor::from_vector({6, 2},
                                 {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5});
  return Dataset(f, {0, 1, 2, 0, 1, 2}, 3);
}

TEST(Dataset, BasicAccessors) {
  Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 6);
  EXPECT_EQ(ds.num_classes(), 3);
  EXPECT_EQ(ds.example_shape(), (Shape{2}));
  EXPECT_EQ(ds.example_numel(), 2);
}

TEST(Dataset, RejectsBadLabels) {
  Tensor f = Tensor::ones({2, 2});
  EXPECT_THROW(Dataset(f, {0, 5}, 3), Error);
  EXPECT_THROW(Dataset(f, {0}, 3), Error);
  EXPECT_THROW(Dataset(f, {0, 0}, 1), Error);
}

TEST(Dataset, GatherCopiesRows) {
  Dataset ds = tiny_dataset();
  Batch b = ds.gather({4, 0});
  EXPECT_EQ(b.size(), 2);
  EXPECT_FLOAT_EQ(b.x.at(0), 4.0f);
  EXPECT_FLOAT_EQ(b.x.at(2), 0.0f);
  EXPECT_EQ(b.labels, (std::vector<std::int64_t>{1, 0}));
  EXPECT_THROW(ds.gather({6}), Error);
  EXPECT_THROW(ds.gather({}), Error);
}

TEST(Dataset, ExampleAndClassIndex) {
  Dataset ds = tiny_dataset();
  Batch e = ds.example(3);
  EXPECT_EQ(e.size(), 1);
  EXPECT_EQ(e.labels[0], 0);
  EXPECT_EQ(ds.indices_of_class(2), (std::vector<std::int64_t>{2, 5}));
  EXPECT_TRUE(ds.indices_of_class(1).size() == 2);
}

TEST(ClientData, SampleBatchWithReplacement) {
  auto ds = std::make_shared<Dataset>(tiny_dataset());
  ClientData client(ds, {0, 1});
  Rng rng(1);
  Batch b = client.sample_batch(rng, 10);
  EXPECT_EQ(b.size(), 10);
  for (auto label : b.labels) EXPECT_LE(label, 1);
}

TEST(ClientData, AllAndClasses) {
  auto ds = std::make_shared<Dataset>(tiny_dataset());
  ClientData client(ds, {0, 2, 3});
  EXPECT_EQ(client.all().size(), 3);
  EXPECT_EQ(client.classes_present(), (std::vector<std::int64_t>{0, 2}));
  EXPECT_THROW(ClientData(ds, {}), Error);
  EXPECT_THROW(ClientData(ds, {99}), Error);
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticSpec spec{.example_shape = {4, 4, 1}, .classes = 3, .count = 12};
  Rng a(5), b(5);
  Dataset d1 = generate_synthetic(spec, a);
  Dataset d2 = generate_synthetic(spec, b);
  EXPECT_TRUE(tensor::allclose(d1.features(), d2.features()));
  EXPECT_EQ(d1.labels(), d2.labels());
}

TEST(Synthetic, DifferentNoiseStreamsDifferentData) {
  SyntheticSpec spec{.example_shape = {4, 4, 1}, .classes = 3, .count = 12};
  Rng a(5), b(6);
  Dataset d1 = generate_synthetic(spec, a);
  Dataset d2 = generate_synthetic(spec, b);
  EXPECT_FALSE(tensor::allclose(d1.features(), d2.features()));
}

TEST(Synthetic, SharedDomainSeedSharesPrototypes) {
  SyntheticSpec spec{.example_shape = {6, 6, 1},
                     .classes = 2,
                     .count = 4,
                     .noise = 0.0f,
                     .domain_seed = 77};
  Rng a(1), b(2);
  // Zero noise: examples equal the prototypes, so different rngs give
  // identical data when the domain seed matches.
  Dataset d1 = generate_synthetic(spec, a);
  Dataset d2 = generate_synthetic(spec, b);
  EXPECT_TRUE(tensor::allclose(d1.features(), d2.features()));
  spec.domain_seed = 78;
  Rng c(1);
  Dataset d3 = generate_synthetic(spec, c);
  EXPECT_FALSE(tensor::allclose(d1.features(), d3.features()));
}

TEST(Synthetic, BalancedLabels) {
  SyntheticSpec spec{.example_shape = {5}, .classes = 4, .count = 40,
                     .clamp01 = false};
  Rng rng(7);
  Dataset ds = generate_synthetic(spec, rng);
  for (std::int64_t c = 0; c < 4; ++c) {
    EXPECT_EQ(ds.indices_of_class(c).size(), 10u);
  }
}

TEST(Synthetic, Clamp01ForImages) {
  SyntheticSpec spec{.example_shape = {4, 4, 2},
                     .classes = 2,
                     .count = 20,
                     .noise = 1.0f,  // big noise to exercise the clamp
                     .clamp01 = true};
  Rng rng(8);
  Dataset ds = generate_synthetic(spec, rng);
  const Tensor& f = ds.features();
  for (std::int64_t i = 0; i < f.numel(); ++i) {
    EXPECT_GE(f.at(i), 0.0f);
    EXPECT_LE(f.at(i), 1.0f);
  }
}

TEST(Synthetic, PrototypeStableAcrossCalls) {
  SyntheticSpec spec{.example_shape = {4, 4, 1}, .classes = 3, .count = 3,
                     .domain_seed = 99};
  Tensor p1 = class_prototype(spec, 1);
  Tensor p2 = class_prototype(spec, 1);
  EXPECT_TRUE(tensor::allclose(p1, p2));
  Tensor other = class_prototype(spec, 2);
  EXPECT_FALSE(tensor::allclose(p1, other));
  EXPECT_THROW(class_prototype(spec, 3), Error);
}

TEST(Synthetic, AttributePrototypesUnbounded) {
  SyntheticSpec spec{.example_shape = {20}, .classes = 2, .count = 2,
                     .clamp01 = false};
  Tensor p = class_prototype(spec, 0);
  EXPECT_EQ(p.shape(), (Shape{20}));
  // Standard-normal prototype should have some mass beyond [0,1].
  bool outside = false;
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    if (p.at(i) < 0.0f || p.at(i) > 1.0f) outside = true;
  }
  EXPECT_TRUE(outside);
}

TEST(Partition, ShardClassesPerClient) {
  SyntheticSpec spec{.example_shape = {3}, .classes = 10, .count = 200,
                     .clamp01 = false};
  Rng rng(9);
  auto ds = std::make_shared<Dataset>(generate_synthetic(spec, rng));
  PartitionSpec part{.num_clients = 8, .data_per_client = 20,
                     .classes_per_client = 2};
  Rng prng(10);
  auto clients = partition(ds, part, prng);
  ASSERT_EQ(clients.size(), 8u);
  for (const auto& c : clients) {
    EXPECT_EQ(c.size(), 20);
    EXPECT_EQ(c.classes_present().size(), 2u);
  }
}

TEST(Partition, FullCopyMode) {
  auto ds = std::make_shared<Dataset>(tiny_dataset());
  PartitionSpec part{.num_clients = 3, .data_per_client = 6,
                     .classes_per_client = 0};
  Rng rng(11);
  auto clients = partition(ds, part, rng);
  for (const auto& c : clients) {
    EXPECT_EQ(c.size(), ds->size());
    EXPECT_EQ(c.classes_present().size(), 3u);
  }
}

TEST(Partition, DeterministicForSeed) {
  auto ds = std::make_shared<Dataset>(tiny_dataset());
  PartitionSpec part{.num_clients = 4, .data_per_client = 4,
                     .classes_per_client = 2};
  Rng a(12), b(12);
  auto c1 = partition(ds, part, a);
  auto c2 = partition(ds, part, b);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].indices(), c2[i].indices());
  }
}

TEST(Partition, UnevenClassSplitHandled) {
  auto ds = std::make_shared<Dataset>(tiny_dataset());
  // 5 examples per client across 3 classes -> 1+1+3 remainder logic.
  PartitionSpec part{.num_clients = 2, .data_per_client = 5,
                     .classes_per_client = 3};
  Rng rng(13);
  auto clients = partition(ds, part, rng);
  for (const auto& c : clients) EXPECT_EQ(c.size(), 5);
  EXPECT_THROW(partition(nullptr, part, rng), Error);
}

class BenchmarkConfigTest
    : public ::testing::TestWithParam<std::tuple<BenchmarkId, BenchScale>> {};

TEST_P(BenchmarkConfigTest, ConfigIsInternallyConsistent) {
  auto [id, scale] = GetParam();
  BenchmarkConfig cfg = benchmark_config(id, scale);
  EXPECT_EQ(cfg.id, id);
  EXPECT_FALSE(cfg.name.empty());
  EXPECT_GT(cfg.rounds, 0);
  EXPECT_GT(cfg.batch_size, 0);
  EXPECT_GT(cfg.local_iterations, 0);
  EXPECT_GT(cfg.learning_rate, 0.0);
  EXPECT_GT(cfg.train_spec.count, 0);
  EXPECT_GT(cfg.val_spec.count, 0);
  EXPECT_EQ(cfg.train_spec.domain_seed, cfg.val_spec.domain_seed);
  EXPECT_EQ(cfg.train_spec.classes, cfg.model.classes);
  // Model input must match the data shape.
  EXPECT_EQ(cfg.model.input_numel(),
            tensor::shape_numel(cfg.train_spec.example_shape));
  EXPECT_GT(cfg.partition.data_per_client, 0);
  EXPECT_GT(cfg.paper_nonprivate_accuracy, 0.0);
  // There must be enough data to shard at least a few clients.
  EXPECT_GE(cfg.train_spec.count, cfg.partition.data_per_client);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllScales, BenchmarkConfigTest,
    ::testing::Combine(::testing::ValuesIn(all_benchmarks()),
                       ::testing::Values(BenchScale::kSmoke,
                                         BenchScale::kSmall,
                                         BenchScale::kPaper)));

TEST(BenchmarkConfig, PaperScaleMatchesTable1) {
  BenchmarkConfig mnist =
      benchmark_config(BenchmarkId::kMnist, BenchScale::kPaper);
  EXPECT_EQ(mnist.train_spec.example_shape, (Shape{28, 28, 1}));
  EXPECT_EQ(mnist.partition.data_per_client, 500);
  EXPECT_EQ(mnist.batch_size, 5);
  EXPECT_EQ(mnist.local_iterations, 100);
  EXPECT_EQ(mnist.rounds, 100);

  BenchmarkConfig lfw = benchmark_config(BenchmarkId::kLfw, BenchScale::kPaper);
  EXPECT_EQ(lfw.train_spec.classes, 62);
  EXPECT_EQ(lfw.partition.classes_per_client, 15);
  EXPECT_EQ(lfw.rounds, 60);
  EXPECT_EQ(lfw.batch_size, 3);

  BenchmarkConfig adult =
      benchmark_config(BenchmarkId::kAdult, BenchScale::kPaper);
  EXPECT_EQ(adult.train_spec.example_shape, (Shape{105}));
  EXPECT_EQ(adult.rounds, 10);

  BenchmarkConfig cancer =
      benchmark_config(BenchmarkId::kCancer, BenchScale::kPaper);
  EXPECT_EQ(cancer.train_spec.example_shape, (Shape{30}));
  EXPECT_EQ(cancer.rounds, 3);
  EXPECT_EQ(cancer.partition.classes_per_client, 0);  // full copy
}

TEST(BenchmarkConfig, NoiseScaleDefaults) {
  EXPECT_DOUBLE_EQ(default_noise_scale(BenchScale::kPaper), 6.0);
  EXPECT_GT(default_noise_scale(BenchScale::kSmall), 0.0);
  EXPECT_LT(default_noise_scale(BenchScale::kSmall), 6.0);
}

}  // namespace
}  // namespace fedcl::data
