#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "dp/accountant.h"
#include "dp/adaptive_clipping.h"
#include "dp/laplace.h"

namespace fedcl::dp {
namespace {

using tensor::Tensor;

TEST(Laplace, ScaleFromEpsilonAndSensitivity) {
  LaplaceMechanism mech(/*epsilon=*/0.5, /*l1_sensitivity=*/2.0);
  EXPECT_DOUBLE_EQ(mech.scale(), 4.0);
  EXPECT_THROW(LaplaceMechanism(0.0, 1.0), Error);
  EXPECT_THROW(LaplaceMechanism(1.0, 0.0), Error);
}

TEST(Laplace, SampleMomentsMatchDistribution) {
  Rng rng(1);
  const double b = 3.0;
  const int n = 40000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = LaplaceMechanism::sample(rng, b);
    sum += x;
    abs_sum += std::abs(x);
  }
  // Laplace(0, b): mean 0, E|x| = b.
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(abs_sum / n, b, 0.1);
}

TEST(Laplace, SanitizePerturbsEveryTensor) {
  LaplaceMechanism mech(1.0, 1.0);
  Rng rng(2);
  tensor::list::TensorList u = {Tensor::zeros({64}), Tensor::zeros({32})};
  mech.sanitize(u, rng);
  EXPECT_GT(u[0].l2_norm(), 0.0f);
  EXPECT_GT(u[1].l2_norm(), 0.0f);
}

TEST(MedianNormEstimator, MedianOfWindow) {
  MedianNormEstimator est(5);
  EXPECT_FALSE(est.ready());
  EXPECT_THROW(est.median(), Error);
  for (double v : {1.0, 9.0, 5.0}) est.observe(v);
  EXPECT_TRUE(est.ready());
  EXPECT_DOUBLE_EQ(est.median(), 5.0);
  est.observe(7.0);  // {1,9,5,7} -> median 6
  EXPECT_DOUBLE_EQ(est.median(), 6.0);
}

TEST(MedianNormEstimator, WindowEvictsOldest) {
  MedianNormEstimator est(3);
  for (double v : {100.0, 1.0, 2.0, 3.0}) est.observe(v);
  // 100 evicted; window {1,2,3}.
  EXPECT_EQ(est.count(), 3u);
  EXPECT_DOUBLE_EQ(est.median(), 2.0);
  EXPECT_THROW(MedianNormEstimator(0), Error);
  EXPECT_THROW(est.observe(-1.0), Error);
}

TEST(RdpConversion, ImprovedNeverWorseThanClassic) {
  for (double q : {0.005, 0.01, 0.02}) {
    MomentsAccountant acc(q, 6.0);
    for (std::int64_t steps : {100, 1000, 10000}) {
      const double classic =
          acc.epsilon(steps, 1e-5, RdpConversion::kClassic);
      const double improved =
          acc.epsilon(steps, 1e-5, RdpConversion::kImproved);
      EXPECT_LE(improved, classic + 1e-12)
          << "q=" << q << " steps=" << steps;
      EXPECT_GE(improved, 0.0);
    }
  }
}

TEST(RdpConversion, ImprovedStillMonotoneInSteps) {
  MomentsAccountant acc(0.01, 6.0);
  double prev = 0.0;
  for (std::int64_t steps : {10, 100, 1000}) {
    const double eps = acc.epsilon(steps, 1e-5, RdpConversion::kImproved);
    EXPECT_GE(eps, prev);
    prev = eps;
  }
}

}  // namespace
}  // namespace fedcl::dp
