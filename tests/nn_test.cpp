#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "nn/grad_utils.h"
#include "nn/layer.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "testing/gradcheck.h"

namespace fedcl::nn {
namespace {

namespace o = tensor::ops;
using tensor::Shape;
using tensor::Tensor;
using tensor::Var;
using fedcl::testing::expect_gradcheck;

TEST(Linear, ForwardShapeAndValue) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  // Overwrite with known weights.
  auto params = layer.parameters();
  params[0].set_value(Tensor::from_vector({3, 2}, {1, 0, 0, 1, 1, 1}));
  params[1].set_value(Tensor::from_vector({2}, {0.5f, -0.5f}));
  Var x(Tensor::from_vector({1, 3}, {1, 2, 3}), false);
  Tensor y = layer.forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 1 + 3 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(1), 2 + 3 - 0.5f);
}

TEST(Linear, RejectsWrongWidth) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  Var x(Tensor::ones({1, 4}), false);
  EXPECT_THROW(layer.forward(x), Error);
}

TEST(Conv2d, ShapeAndIdentityKernel) {
  Rng rng(3);
  // 1x1 kernel conv is a per-pixel linear map.
  Conv2d conv(2, 3, /*kernel=*/1, /*stride=*/1, /*pad=*/0, rng);
  Var x(Tensor::ones({2, 4, 4, 2}), false);
  Tensor y = conv.forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{2, 4, 4, 3}));
}

TEST(Conv2d, PaddedSameSize) {
  Rng rng(4);
  Conv2d conv(1, 4, 5, 1, 2, rng);
  Var x(Tensor::ones({1, 12, 12, 1}), false);
  EXPECT_EQ(conv.forward(x).value().shape(), (Shape{1, 12, 12, 4}));
}

TEST(Conv2d, MatchesManualConvolution) {
  Rng rng(5);
  Conv2d conv(1, 1, 2, 1, 0, rng);
  auto params = conv.parameters();
  // Kernel [[1,2],[3,4]] flattened in (kh,kw,c) order; bias 0.5.
  params[0].set_value(Tensor::from_vector({4, 1}, {1, 2, 3, 4}));
  params[1].set_value(Tensor::from_vector({1}, {0.5f}));
  Var x(Tensor::from_vector({1, 3, 3, 1}, {1, 2, 3, 4, 5, 6, 7, 8, 9}),
        false);
  Tensor y = conv.forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 1}));
  // Patch (1,2,4,5) . (1,2,3,4) + 0.5 = 1+4+12+20+0.5
  EXPECT_FLOAT_EQ(y.at(0), 37.5f);
  EXPECT_FLOAT_EQ(y.at(3), (5 + 12 + 24 + 36) + 0.5f);
}

TEST(AvgPool2d, Averages) {
  AvgPool2d pool(2);
  Var x(Tensor::from_vector({1, 2, 2, 1}, {1, 2, 3, 4}), false);
  Tensor y = pool.forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 2.5f);
}

TEST(AvgPool2d, PerChannel) {
  AvgPool2d pool(2);
  // Two channels with distinct values.
  Var x(Tensor::from_vector({1, 2, 2, 2}, {1, 10, 2, 20, 3, 30, 4, 40}),
        false);
  Tensor y = pool.forward(x).value();
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(1), 25.0f);
}

TEST(Flatten, Shape) {
  Flatten fl;
  Var x(Tensor::ones({2, 3, 4, 5}), false);
  EXPECT_EQ(fl.forward(x).value().shape(), (Shape{2, 60}));
}

TEST(InputScale, CentersInput) {
  InputScale scale(-0.5f, 2.0f);
  Var x(Tensor::from_vector({1, 2}, {0.0f, 1.0f}), false);
  Tensor y = scale.forward(x).value();
  EXPECT_FLOAT_EQ(y.at(0), -1.0f);
  EXPECT_FLOAT_EQ(y.at(1), 1.0f);
}

class ActivationTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationTest, ForwardMatchesRawOp) {
  ActivationLayer layer(GetParam());
  Tensor in = Tensor::from_vector({4}, {-2, -0.5f, 0.5f, 2});
  Var x(in.clone(), false);
  Tensor y = layer.forward(x).value();
  for (int i = 0; i < 4; ++i) {
    float expect = 0;
    switch (GetParam()) {
      case Activation::kRelu:
        expect = std::max(0.0f, in.at(i));
        break;
      case Activation::kSigmoid:
        expect = 1.0f / (1.0f + std::exp(-in.at(i)));
        break;
      case Activation::kTanh:
        expect = std::tanh(in.at(i));
        break;
    }
    EXPECT_NEAR(y.at(i), expect, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationTest,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(Sequential, LayerGroupsOnlyParameterized) {
  Rng rng(6);
  Sequential model;
  model.emplace<Linear>(4, 3, rng);
  model.emplace<ActivationLayer>(Activation::kRelu);
  model.emplace<Linear>(3, 2, rng);
  EXPECT_EQ(model.layer_count(), 3u);
  EXPECT_EQ(model.parameter_count(), 4u);  // 2 weights + 2 biases
  ASSERT_EQ(model.layer_groups().size(), 2u);
  EXPECT_EQ(model.layer_groups()[0].param_indices,
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(model.layer_groups()[1].param_indices,
            (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(model.parameter_numel(), 4 * 3 + 3 + 3 * 2 + 2);
}

TEST(Sequential, WeightsRoundTrip) {
  Rng rng(7);
  Sequential model;
  model.emplace<Linear>(2, 2, rng);
  TensorList w = model.weights();
  w[0].fill_(3.0f);
  model.set_weights(w);
  EXPECT_FLOAT_EQ(model.parameters()[0].value().at(0), 3.0f);
  // weights() returns copies: mutating them later is inert.
  TensorList w2 = model.weights();
  w2[0].fill_(9.0f);
  EXPECT_FLOAT_EQ(model.parameters()[0].value().at(0), 3.0f);
  w2.pop_back();
  EXPECT_THROW(model.set_weights(w2), Error);
}

TEST(Sequential, EmptyForwardThrows) {
  Sequential model;
  EXPECT_THROW(model.forward(Var(Tensor::ones({1, 2}), false)), Error);
}

TEST(Loss, CrossEntropyUniformLogits) {
  // Uniform logits: loss == log(C) regardless of labels.
  Var logits(Tensor::zeros({4, 10}), false);
  Var loss = softmax_cross_entropy(logits, {0, 3, 7, 9});
  EXPECT_NEAR(loss.value().item(), std::log(10.0f), 1e-5);
}

TEST(Loss, CrossEntropyConfidentCorrect) {
  Tensor t = Tensor::zeros({1, 3});
  t.at(1) = 50.0f;  // near-one-hot on class 1
  Var loss = softmax_cross_entropy(Var(t, false), {1});
  EXPECT_NEAR(loss.value().item(), 0.0f, 1e-4);
}

TEST(Loss, CrossEntropyGradcheck) {
  Rng rng(8);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::int64_t> labels{4, 0, 2};
  expect_gradcheck(
      [&labels](const std::vector<Var>& v) {
        return softmax_cross_entropy(v[0], labels);
      },
      {logits});
}

TEST(Loss, MseBasics) {
  Var a(Tensor::from_vector({2}, {1, 2}), false);
  Var b(Tensor::from_vector({2}, {3, 2}), false);
  EXPECT_NEAR(mse(a, b).value().item(), 2.0f, 1e-6);
  EXPECT_NEAR(mse(a, a).value().item(), 0.0f, 1e-7);
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Rng rng(9);
  Tensor logits = Tensor::randn({4, 6}, rng, 0.0f, 3.0f);
  Tensor probs = softmax(logits);
  for (int r = 0; r < 4; ++r) {
    double s = 0;
    for (int c = 0; c < 6; ++c) s += probs.at(r * 6 + c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Loss, PredictAndAccuracy) {
  Tensor logits = Tensor::from_vector({2, 3}, {0, 5, 1, 9, 2, 3});
  EXPECT_EQ(predict(logits), (std::vector<std::int64_t>{1, 0}));
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 2}), 0.5);
}

TEST(Optimizer, PlainSgdStep) {
  Rng rng(10);
  Sequential model;
  model.emplace<Linear>(2, 1, rng);
  auto params = model.parameters();
  Tensor before = params[0].value().clone();
  TensorList grads = {Tensor::ones({2, 1}), Tensor::ones({1})};
  SgdOptimizer opt(0.5);
  opt.step(params, grads);
  EXPECT_FLOAT_EQ(params[0].value().at(0), before.at(0) - 0.5f);
  EXPECT_THROW(SgdOptimizer(0.0), Error);
}

TEST(Optimizer, MomentumAccumulates) {
  Rng rng(11);
  Sequential model;
  model.emplace<Linear>(1, 1, rng);
  auto params = model.parameters();
  params[0].set_value(Tensor::zeros({1, 1}));
  params[1].set_value(Tensor::zeros({1}));
  TensorList grads = {Tensor::ones({1, 1}), Tensor::zeros({1})};
  SgdOptimizer opt(1.0, 0.9);
  opt.step(params, grads);
  EXPECT_FLOAT_EQ(params[0].value().at(0), -1.0f);
  opt.step(params, grads);
  // velocity = 0.9*1 + 1 = 1.9 -> total -2.9
  EXPECT_FLOAT_EQ(params[0].value().at(0), -2.9f);
}

TEST(Optimizer, ShapeMismatchThrows) {
  Rng rng(12);
  Sequential model;
  model.emplace<Linear>(2, 1, rng);
  auto params = model.parameters();
  TensorList bad = {Tensor::ones({3, 1}), Tensor::ones({1})};
  SgdOptimizer opt(0.1);
  EXPECT_THROW(opt.step(params, bad), Error);
}

TEST(ModelZoo, ImageCnnStructure) {
  Rng rng(13);
  ModelSpec spec{.kind = ModelSpec::Kind::kImageCnn,
                 .height = 12,
                 .width = 12,
                 .channels = 1,
                 .classes = 10};
  auto model = build_image_cnn(spec, rng);
  // Paper architecture: 2 conv + 1 fc = 3 clip groups (M layers).
  EXPECT_EQ(model->layer_groups().size(), 3u);
  Var x(Tensor::ones({2, 12, 12, 1}), false);
  EXPECT_EQ(model->forward(x).value().shape(), (Shape{2, 10}));
}

TEST(ModelZoo, MlpStructure) {
  Rng rng(14);
  ModelSpec spec{.kind = ModelSpec::Kind::kMlp,
                 .in_features = 30,
                 .classes = 2};
  auto model = build_mlp(spec, rng);
  // Two hidden layers + classifier = 3 clip groups.
  EXPECT_EQ(model->layer_groups().size(), 3u);
  Var x(Tensor::ones({4, 30}), false);
  EXPECT_EQ(model->forward(x).value().shape(), (Shape{4, 2}));
}

TEST(ModelZoo, RejectsBadDimensions) {
  Rng rng(15);
  ModelSpec spec{.kind = ModelSpec::Kind::kImageCnn,
                 .height = 10,  // not divisible by 4
                 .width = 12,
                 .channels = 1,
                 .classes = 10};
  EXPECT_THROW(build_image_cnn(spec, rng), Error);
}

TEST(ModelZoo, DispatchMatchesKind) {
  Rng rng(16);
  ModelSpec mlp{.kind = ModelSpec::Kind::kMlp, .in_features = 5, .classes = 3};
  EXPECT_EQ(mlp.input_numel(), 5);
  ModelSpec cnn{.kind = ModelSpec::Kind::kImageCnn,
                .height = 8,
                .width = 8,
                .channels = 3,
                .classes = 2};
  EXPECT_EQ(cnn.input_numel(), 192);
  EXPECT_NE(build_model(mlp, rng), nullptr);
  EXPECT_NE(build_model(cnn, rng), nullptr);
}

TEST(GradUtils, ComputeGradientsMatchesAutodiff) {
  Rng rng(17);
  Sequential model;
  model.emplace<Linear>(3, 2, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  std::vector<std::int64_t> labels{0, 1, 0, 1};
  double loss = 0;
  TensorList grads = compute_gradients(model, x, labels, &loss);
  EXPECT_EQ(grads.size(), 2u);
  EXPECT_GT(loss, 0.0);

  // Cross-check against the Var pathway.
  std::vector<Var> gvars =
      compute_gradient_vars(model, Var(x, false), labels);
  ASSERT_EQ(gvars.size(), 2u);
  EXPECT_TRUE(tensor::allclose(grads[0], gvars[0].value()));
  EXPECT_TRUE(tensor::allclose(grads[1], gvars[1].value()));
}

TEST(GradUtils, PerLayerNorms) {
  TensorList grads = {Tensor::full({2}, 3.0f), Tensor::full({1}, 4.0f),
                      Tensor::full({4}, 1.0f)};
  std::vector<LayerGroup> groups = {{"a", {0, 1}}, {"b", {2}}};
  auto norms = per_layer_l2_norms(grads, groups);
  ASSERT_EQ(norms.size(), 2u);
  EXPECT_NEAR(norms[0], std::sqrt(9.0 + 9.0 + 16.0), 1e-5);
  EXPECT_NEAR(norms[1], 2.0, 1e-6);
}

TEST(GradUtils, EvaluateAccuracyBatched) {
  Rng rng(18);
  Sequential model;
  model.emplace<Linear>(2, 2, rng);
  // Weights mapping x0>x1 -> class 0.
  auto params = model.parameters();
  params[0].set_value(Tensor::from_vector({2, 2}, {1, -1, -1, 1}));
  params[1].set_value(Tensor::zeros({2}));
  Tensor x = Tensor::from_vector({3, 2}, {2, 0, 0, 2, 3, 1});
  std::vector<std::int64_t> labels{0, 1, 0};
  EXPECT_DOUBLE_EQ(evaluate_accuracy(model, x, labels, /*batch=*/2), 1.0);
  EXPECT_DOUBLE_EQ(evaluate_accuracy(model, x, {1, 0, 1}, 2), 0.0);
}

TEST(Training, MlpLearnsSeparableTask) {
  // End-to-end sanity: a tiny MLP fits a linearly separable problem.
  Rng rng(19);
  ModelSpec spec{.kind = ModelSpec::Kind::kMlp,
                 .in_features = 4,
                 .classes = 2,
                 .hidden1 = 8,
                 .hidden2 = 8};
  auto model = build_mlp(spec, rng);
  auto params = model->parameters();
  SgdOptimizer opt(0.3);
  Rng drng(20);
  // Class = sign of the first coordinate.
  const int n = 64;
  Tensor x = Tensor::randn({n, 4}, drng);
  std::vector<std::int64_t> labels(n);
  for (int i = 0; i < n; ++i) labels[i] = x.at(i * 4) > 0 ? 1 : 0;
  for (int epoch = 0; epoch < 60; ++epoch) {
    TensorList g = compute_gradients(*model, x, labels);
    opt.step(params, g);
  }
  EXPECT_GT(evaluate_accuracy(*model, x, labels), 0.95);
}

TEST(Training, CnnGradientsFlowThroughAllLayers) {
  Rng rng(21);
  ModelSpec spec{.kind = ModelSpec::Kind::kImageCnn,
                 .height = 8,
                 .width = 8,
                 .channels = 1,
                 .classes = 4,
                 .conv1_channels = 4,
                 .conv2_channels = 4};
  auto model = build_image_cnn(spec, rng);
  Tensor x = Tensor::uniform({2, 8, 8, 1}, rng);
  TensorList g = compute_gradients(*model, x, {0, 3});
  for (const auto& t : g) {
    EXPECT_GT(t.l2_norm(), 0.0f) << "dead gradient";
  }
}

}  // namespace
}  // namespace fedcl::nn
