// Adversarial-input tests for the wire protocol: deserialize_update and
// SecureChannel::open must return an error — never crash, throw, or
// over-read — for any truncated, bit-flipped, or malicious buffer.
// These run under ASan/UBSan in CI to catch over-reads the happy path
// never exercises.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "fl/protocol.h"

namespace fedcl::fl {
namespace {

using tensor::Tensor;

ClientUpdate sample_update() {
  ClientUpdate u;
  u.client_id = 17;
  u.round = 3;
  Rng rng(123);
  u.delta = {Tensor::randn({3, 4}, rng), Tensor::randn({5}, rng),
             Tensor::randn({2, 2, 2}, rng)};
  return u;
}

TEST(ProtocolRobustness, EveryTruncationFailsCleanly) {
  const auto bytes = serialize_update(sample_update());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    Result<ClientUpdate> r = deserialize_update(prefix);
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " was accepted";
  }
  EXPECT_TRUE(deserialize_update(bytes).ok());
}

TEST(ProtocolRobustness, TrailingBytesRejected) {
  auto bytes = serialize_update(sample_update());
  bytes.push_back(0);
  EXPECT_FALSE(deserialize_update(bytes).ok());
}

TEST(ProtocolRobustness, SingleBitFlipsNeverCrashDeserialize) {
  // Flipping any single bit of the plaintext serialization must either
  // still parse (a flipped payload float) or fail cleanly — never
  // over-read or abort. Exhaustive over all bit positions.
  const auto bytes = serialize_update(sample_update());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      auto mutated = bytes;
      mutated[i] ^= static_cast<std::uint8_t>(1u << b);
      (void)deserialize_update(mutated);  // must not crash
    }
  }
}

TEST(ProtocolRobustness, HugeTensorCountFailsWithoutAllocating) {
  // A bit flip in the count field must not trigger a giant reserve or
  // a long parse loop.
  std::vector<std::uint8_t> bytes(8 + 8 + 4, 0);
  const std::uint32_t count = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 16, &count, sizeof(count));
  Result<ClientUpdate> r = deserialize_update(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "implausible tensor count");
}

TEST(ProtocolRobustness, HugeDimensionFailsWithoutAllocating) {
  // header: id, round, count=1, ndim=2, dims = {2^40, 2^40} — the
  // product overflows; must fail before any allocation.
  std::vector<std::uint8_t> bytes(8 + 8 + 4 + 4 + 8 + 8, 0);
  std::size_t off = 16;
  const std::uint32_t count = 1;
  std::memcpy(bytes.data() + off, &count, 4);
  off += 4;
  const std::uint32_t ndim = 2;
  std::memcpy(bytes.data() + off, &ndim, 4);
  off += 4;
  const std::int64_t dim = std::int64_t{1} << 40;
  std::memcpy(bytes.data() + off, &dim, 8);
  off += 8;
  std::memcpy(bytes.data() + off, &dim, 8);
  EXPECT_FALSE(deserialize_update(bytes).ok());
}

TEST(ProtocolRobustness, NegativeAndZeroDimsRejected) {
  for (std::int64_t dim : {std::int64_t{0}, std::int64_t{-1},
                           std::int64_t{-(std::int64_t{1} << 50)}}) {
    std::vector<std::uint8_t> bytes(8 + 8 + 4 + 4 + 8, 0);
    const std::uint32_t count = 1, ndim = 1;
    std::memcpy(bytes.data() + 16, &count, 4);
    std::memcpy(bytes.data() + 20, &ndim, 4);
    std::memcpy(bytes.data() + 24, &dim, 8);
    EXPECT_FALSE(deserialize_update(bytes).ok()) << "dim " << dim;
  }
}

TEST(ProtocolRobustness, ChannelOpenSurvivesArbitraryCiphertext) {
  SecureChannel channel(0xFEED);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_int(64));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_int(256));
    }
    Result<std::vector<std::uint8_t>> r = channel.open(garbage);
    if (garbage.size() < sizeof(std::uint64_t)) {
      EXPECT_FALSE(r.ok());
    }
    // Longer garbage: almost surely a tag mismatch; either way, no
    // crash and a well-formed Result.
    if (!r.ok()) EXPECT_FALSE(r.error().empty());
  }
}

TEST(ProtocolRobustness, BitFlippedWireDetectedByTag) {
  SecureChannel channel(0xABCDEF);
  const auto wire = channel.seal(serialize_update(sample_update()));
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = wire;
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::uint64_t>(mutated.size())));
    mutated[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    EXPECT_FALSE(channel.open(mutated).ok());
  }
}

TEST(ProtocolRobustness, FailedResultThrowsOnAccess) {
  Result<ClientUpdate> r = deserialize_update({1, 2, 3});
  ASSERT_FALSE(r.ok());
  EXPECT_THROW(r.value(), Error);
}

}  // namespace
}  // namespace fedcl::fl
